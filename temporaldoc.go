// Package temporaldoc is a reproduction of "Incorporating Temporal
// Information for Document Classification" (Luo & Zincir-Heywood, ICDE
// Workshops 2007): a document classifier that preserves the temporal
// order of words.
//
// Documents are encoded by a hierarchical Self-Organizing Map — a 7×13
// character map feeding per-category 8×8 word maps — into ordered
// sequences of 2-dimensional word codes (normalised BMU index, Gaussian
// membership). One Recurrent page-based Linear Genetic Programming
// (RLGP) classifier per category consumes the sequence word by word,
// registers persisting across the document, and the squashed output
// register after the last word decides membership against a
// median-derived threshold.
//
// Quick start:
//
//	corpus, _ := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{Scale: 0.05, Seed: 1})
//	model, _ := temporaldoc.Train(temporaldoc.FastConfig(temporaldoc.DF), corpus)
//	labels, _ := model.Classify(&corpus.Test[0])
//
// The heavy lifting lives in the internal packages (som, hsom, lgp,
// featsel, baselines, reuters); this package is the stable public
// surface.
package temporaldoc

import (
	"fmt"
	"io"

	"temporaldoc/internal/baselines"
	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/metrics"
	"temporaldoc/internal/reuters"
	"temporaldoc/internal/tdt"
	"temporaldoc/internal/textproc"
)

// Document is an ordered word sequence with zero or more category labels.
type Document = corpus.Document

// Corpus is a labelled document collection with train/test splits.
type Corpus = corpus.Corpus

// Config parameterises end-to-end training.
type Config = core.Config

// Model is a trained temporal document classifier.
type Model = core.Model

// CategoryModel is the trained per-category rule, threshold and fitness.
type CategoryModel = core.CategoryModel

// TracePoint is one step of a word-tracking trace (Figures 5 and 6).
type TracePoint = core.TracePoint

// EvalSet holds per-category contingency tables with micro/macro F1.
type EvalSet = metrics.Set

// Contingency is a per-category TP/FN/FP/TN table.
type Contingency = metrics.Contingency

// FeatureMethod selects a feature-selection technique.
type FeatureMethod = featsel.Method

// The four feature-selection techniques of the paper (Table 1).
const (
	// DF ranks by document frequency (top 1000, corpus-wide).
	DF = featsel.DF
	// IG ranks by information gain (top 1000, corpus-wide).
	IG = featsel.IG
	// MI ranks by mutual information (top 300 per category).
	MI = featsel.MI
	// Nouns ranks POS-tagged common nouns by frequency (top 100 per
	// category).
	Nouns = featsel.Nouns
)

// FeatureMethods lists all supported techniques.
func FeatureMethods() []FeatureMethod { return featsel.Methods() }

// GenConfig controls synthetic Reuters-like corpus generation.
type GenConfig = reuters.GenConfig

// Train fits the full system (feature selection → hierarchical SOM →
// per-category RLGP) on the corpus training split.
func Train(cfg Config, c *Corpus) (*Model, error) { return core.Train(cfg, c) }

// PaperConfig returns the paper's full experimental configuration for a
// feature-selection method: Table 1 feature budgets, the 7×13/8×8 SOM
// geometry, Table 2 GP parameters (125 individuals, 48000 tournaments)
// and 20 restarts. Expect long runtimes; use FastConfig for exploration.
func PaperConfig(method FeatureMethod) Config {
	return Config{
		FeatureMethod: method,
		FeatureConfig: featsel.DefaultConfig(method),
		GP:            lgp.DefaultConfig(),
		Restarts:      20,
		Seed:          1,
	}
}

// FastConfig returns a laptop-scale configuration: the paper's
// architecture with reduced GP budgets (40 individuals, 2000
// tournaments, single restart). Suitable for examples and smoke
// experiments.
func FastConfig(method FeatureMethod) Config {
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 40
	gp.Tournaments = 2000
	gp.DSS = &lgp.DSSConfig{SubsetSize: 40, Interval: 100}
	return Config{
		FeatureMethod: method,
		FeatureConfig: featsel.Config{GlobalN: 200, PerCategoryN: 60},
		GP:            gp,
		Restarts:      1,
		Seed:          1,
	}
}

// GenerateReutersLike builds the deterministic synthetic stand-in for
// the Reuters-21578 ModApte top-10 split (see DESIGN.md for the
// substitution rationale). Scale 1.0 reproduces the full split sizes.
func GenerateReutersLike(cfg GenConfig) (*Corpus, error) {
	return reuters.GenerateCorpus(cfg)
}

// ReutersTop10 lists the ten categories of the paper's evaluation.
func ReutersTop10() []string { return append([]string(nil), reuters.Top10...) }

// LoadReutersSGML parses real Reuters-21578 .sgm streams, applies the
// ModApte split discipline, pre-processes bodies and keeps only the
// given categories (pass ReutersTop10() for the paper's setting).
func LoadReutersSGML(categories []string, readers ...io.Reader) (*Corpus, error) {
	var raws []reuters.RawDocument
	for i, r := range readers {
		docs, err := reuters.ParseSGML(r)
		if err != nil {
			return nil, fmt.Errorf("temporaldoc: reader %d: %w", i, err)
		}
		raws = append(raws, docs...)
	}
	pre := textproc.NewPreprocessor(textproc.Options{})
	c := reuters.BuildCorpus(raws, categories, pre)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("temporaldoc: %w", err)
	}
	return c, nil
}

// Stream is an incremental per-word classifier run over a word stream
// (see Model.NewStream) — the online form of the paper's word tracking.
type Stream = core.Stream

// StreamState is the live per-category state inside a Stream.
type StreamState = core.StreamState

// ThresholdRule selects how decision thresholds derive from training
// outputs: ThresholdMedian (Equation 6) or ThresholdF1.
type ThresholdRule = core.ThresholdRule

// The supported threshold rules.
const (
	ThresholdMedian = core.ThresholdMedian
	ThresholdF1     = core.ThresholdF1
)

// TopicSegment is a detected topical span of a word stream.
type TopicSegment = tdt.Segment

// TopicDrift is a detected change of the dominant topic along a stream.
type TopicDrift = tdt.Drift

// DriftDetector segments word streams with a trained model — the Topic
// Detection and Tracking application the paper's conclusion proposes.
type DriftDetector = tdt.Detector

// DriftConfig parameterises drift detection.
type DriftConfig = tdt.Config

// NewDriftDetector wraps a trained model for topic detection and
// tracking over word streams.
func NewDriftDetector(model *Model, cfg DriftConfig) (*DriftDetector, error) {
	return tdt.NewDetector(model, cfg)
}

// DominantTopics returns, per word position covered by a segment, the
// category of the highest-confidence covering segment.
func DominantTopics(segs []TopicSegment, docLen int) []string {
	return tdt.Dominant(segs, docLen)
}

// CVResult summarises one configuration variant's k-fold
// cross-validation performance.
type CVResult = core.CVResult

// CrossValidate performs k-fold cross-validation over the training
// split for a set of configuration variants and returns results sorted
// by mean macro F1 (best first). The test split is never touched.
func CrossValidate(base Config, c *Corpus, k int, variants map[string]func(Config) Config) ([]CVResult, error) {
	return core.CrossValidate(base, c, k, variants)
}

// SaveModel persists a trained model as JSON. Everything needed to
// classify and trace documents is included: the SOM hierarchy,
// per-category keep-sets, evolved programs and thresholds.
func SaveModel(w io.Writer, m *Model) error { return m.Save(w) }

// LoadModel reconstructs a model persisted with SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// RenderSGML writes a corpus in Reuters-21578 SGML form (bodies
// decorated with markup noise that pre-processing removes), so synthetic
// corpora can be persisted and reloaded through the real-data path.
func RenderSGML(w io.Writer, c *Corpus, seed int64) error {
	return reuters.RenderSGML(w, c, seed)
}

// Preprocess applies the paper's pre-processing (markup removal,
// tokenisation, stop-word removal, no stemming) to raw text.
func Preprocess(raw string) []string {
	return textproc.NewPreprocessor(textproc.Options{}).Process(raw)
}

// Baseline names accepted by NewBaseline.
const (
	BaselineNaiveBayes   = "naive-bayes"
	BaselineRocchio      = "rocchio"
	BaselineLinearSVM    = "linear-svm"
	BaselineDecisionTree = "decision-tree"
	BaselineTreeGP       = "tree-gp"
	BaselineKNN          = "knn"
	BaselineSeqKernel    = "seq-kernel"
	BaselineElman        = "elman-rnn"
)

// BaselineClassifier is a binary per-category comparison classifier
// (Tables 5 and 6).
type BaselineClassifier = baselines.Classifier

// NewBaseline constructs a comparison classifier by name over the given
// feature vocabulary (tree-gp builds its own n-gram features and ignores
// the vocabulary).
func NewBaseline(name string, features []string, seed int64) (BaselineClassifier, error) {
	switch name {
	case BaselineNaiveBayes:
		return baselines.NewNaiveBayes(features), nil
	case BaselineRocchio:
		return baselines.NewRocchio(features, 0, 0), nil
	case BaselineLinearSVM:
		return baselines.NewLinearSVM(features, baselines.SVMConfig{Seed: seed}), nil
	case BaselineDecisionTree:
		return baselines.NewDecisionTree(features, baselines.TreeConfig{}), nil
	case BaselineTreeGP:
		return baselines.NewTreeGP(baselines.TreeGPConfig{Seed: seed}), nil
	case BaselineKNN:
		return baselines.NewKNN(features, baselines.KNNConfig{}), nil
	case BaselineSeqKernel:
		return baselines.NewSeqKernel(baselines.SeqKernelConfig{Seed: seed}), nil
	case BaselineElman:
		return baselines.NewElman(baselines.ElmanConfig{Seed: seed}), nil
	default:
		return nil, fmt.Errorf("temporaldoc: unknown baseline %q", name)
	}
}

// EvaluateBaseline trains one baseline per category on the corpus
// training split (documents filtered to the feature selection, as in the
// paper's comparisons) and evaluates on the test split.
func EvaluateBaseline(name string, method FeatureMethod, c *Corpus, seed int64) (*EvalSet, error) {
	sel, err := featsel.Select(method, c.Train, c.Categories, featsel.DefaultConfig(method))
	if err != nil {
		return nil, err
	}
	return evaluateBaselineWithSelection(name, sel, c, seed)
}

// EvaluateBaselineWithBudget is EvaluateBaseline with an explicit
// feature budget (for scaled-down experiments).
func EvaluateBaselineWithBudget(name string, method FeatureMethod, budget featsel.Config, c *Corpus, seed int64) (*EvalSet, error) {
	sel, err := featsel.Select(method, c.Train, c.Categories, budget)
	if err != nil {
		return nil, err
	}
	return evaluateBaselineWithSelection(name, sel, c, seed)
}

func evaluateBaselineWithSelection(name string, sel *featsel.Selection, c *Corpus, seed int64) (*EvalSet, error) {
	set := metrics.NewSet()
	for _, cat := range c.Categories {
		keep := sel.KeepFor(cat)
		features := make([]string, 0, len(keep))
		for f := range keep {
			features = append(features, f)
		}
		clf, err := NewBaseline(name, features, seed)
		if err != nil {
			return nil, err
		}
		train := make([]corpus.Document, len(c.Train))
		for i := range c.Train {
			train[i] = corpus.FilterWords(c.Train[i], keep)
		}
		if err := clf.Train(train, cat); err != nil {
			return nil, fmt.Errorf("temporaldoc: baseline %s on %s: %w", name, cat, err)
		}
		for i := range c.Test {
			filtered := corpus.FilterWords(c.Test[i], keep)
			set.Observe(cat, c.Test[i].HasCategory(cat), clf.Predict(filtered.Words))
		}
	}
	return set, nil
}

// FeatureBudget exposes featsel.Config for budget overrides.
type FeatureBudget = featsel.Config
