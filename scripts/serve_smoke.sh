#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the serving layer (Makefile
# target `serve-smoke`, part of `make ci`).
#
# Trains a tiny model, boots `tdc serve` on an ephemeral port, drives
# the four endpoints with curl and asserts the JSON fields scripted
# clients depend on: model_hash consistency, classify results shape,
# reload idempotence, modelz metadata. Finishes with a SIGTERM and
# checks the drain exits cleanly.
set -euo pipefail

cd "$(dirname "$0")/.."
dir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$dir"
}
trap cleanup EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; [ -f "$dir/serve.out" ] && sed 's/^/  server: /' "$dir/serve.out" >&2; exit 1; }

command -v jq >/dev/null || fail "jq is required"
command -v curl >/dev/null || fail "curl is required"

echo "serve-smoke: building tdc"
go build -o "$dir/tdc" ./cmd/tdc

echo "serve-smoke: training tiny model"
"$dir/tdc" train -profile smoke -scale 0.006 -method df -out "$dir/model.json" >/dev/null

echo "serve-smoke: starting server"
"$dir/tdc" serve -model "$dir/model.json" -method df -addr localhost:0 \
  -timeout 30s -drain 5s >"$dir/serve.out" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#^serving on \(http://.*\)$#\1#p' "$dir/serve.out" | head -1)
  [ -n "$base" ] && break
  kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
[ -n "$base" ] || fail "server never printed its address"
echo "serve-smoke: server at $base"

# --- healthz ---------------------------------------------------------
health=$(curl -fsS "$base/v1/healthz")
[ "$(jq -r .status <<<"$health")" = "ok" ] || fail "healthz status: $health"
hash=$(jq -r .model_hash <<<"$health")
grep -Eq '^[0-9a-f]{64}$' <<<"$hash" || fail "healthz model_hash not a sha256: $hash"

# --- classify: single ------------------------------------------------
single=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"id":"smoke-1","text":"oil crude barrel prices rose sharply"}' \
  "$base/v1/classify")
[ "$(jq -r .model_hash <<<"$single")" = "$hash" ] || fail "classify hash != healthz hash: $single"
[ "$(jq '.results | length' <<<"$single")" = "1" ] || fail "single classify result count: $single"
[ "$(jq -r '.results[0].id' <<<"$single")" = "smoke-1" ] || fail "classify did not echo id: $single"
jq -e '.results[0].categories | type == "array"' <<<"$single" >/dev/null || fail "categories not an array: $single"

# --- classify: batch with scores -------------------------------------
batch=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"documents":[{"id":"a","text":"wheat corn grain tonnes shipment"},{"id":"b","text":"bank rate money interest"}],"scores":true}' \
  "$base/v1/classify")
[ "$(jq '.results | length' <<<"$batch")" = "2" ] || fail "batch result count: $batch"
jq -e '.results[0].predictions | length > 0' <<<"$batch" >/dev/null || fail "scores:true returned no predictions: $batch"
jq -e '.results[0].predictions[0] | has("category") and has("score") and has("in_class")' <<<"$batch" >/dev/null \
  || fail "prediction shape: $batch"

# --- malformed request -> 400 ----------------------------------------
code=$(curl -s -o /dev/null -w '%{http_code}' -d 'not json' "$base/v1/classify")
[ "$code" = "400" ] || fail "malformed body got HTTP $code, want 400"

# --- reload (same file) ----------------------------------------------
reload=$(curl -fsS -X POST "$base/v1/reload")
[ "$(jq -r .model_hash <<<"$reload")" = "$hash" ] || fail "reload changed hash unexpectedly: $reload"
[ "$(jq -r .changed <<<"$reload")" = "false" ] || fail "reload of identical snapshot reported changed: $reload"

# --- modelz ----------------------------------------------------------
modelz=$(curl -fsS "$base/v1/modelz")
[ "$(jq -r .model_hash <<<"$modelz")" = "$hash" ] || fail "modelz hash: $modelz"
[ "$(jq -r .feature_method <<<"$modelz")" = "df" ] || fail "modelz feature_method: $modelz"
jq -e '.categories | length > 0' <<<"$modelz" >/dev/null || fail "modelz categories empty: $modelz"
jq -e '.metrics.counters["serve.docs"] >= 3' <<<"$modelz" >/dev/null || fail "modelz serve.docs counter: $modelz"
jq -e '.metrics.counters["http.classify.requests"] >= 3' <<<"$modelz" >/dev/null || fail "modelz http counters: $modelz"

# --- models ----------------------------------------------------------
# A single-model server presents itself as a one-entry registry:
# mode "single", one model named "default" whose only version is
# "current", resident, latest, and carrying the served hash.
models=$(curl -fsS "$base/v1/models")
[ "$(jq -r .mode <<<"$models")" = "single" ] || fail "models mode: $models"
[ "$(jq -r .default_model <<<"$models")" = "default" ] || fail "models default_model: $models"
[ "$(jq '.models | length' <<<"$models")" = "1" ] || fail "models count: $models"
[ "$(jq -r '.models[0].name' <<<"$models")" = "default" ] || fail "models name: $models"
[ "$(jq -r '.models[0].versions[0].version' <<<"$models")" = "current" ] || fail "models version: $models"
[ "$(jq -r '.models[0].versions[0].sha256' <<<"$models")" = "$hash" ] || fail "models sha256: $models"
jq -e '.models[0].versions[0].latest and .models[0].versions[0].resident' <<<"$models" >/dev/null \
  || fail "models latest/resident flags: $models"

# --- statz -----------------------------------------------------------
# By here the script has made exactly 3 classify calls: single, batch
# and malformed (400) — reload/healthz/modelz are other routes and must
# not count. statz request accounting has to agree.
statz=$(curl -fsS "$base/v1/statz")
[ "$(jq -r .model_hash <<<"$statz")" = "$hash" ] || fail "statz hash: $statz"
jq -e '.uptime_seconds > 0' <<<"$statz" >/dev/null || fail "statz uptime: $statz"
[ "$(jq -r .requests.total <<<"$statz")" = "3" ] || fail "statz requests.total != 3 classify calls: $statz"
[ "$(jq -r .requests.ok <<<"$statz")" = "2" ] || fail "statz requests.ok != 2: $statz"
[ "$(jq -r .requests.client_error <<<"$statz")" = "1" ] || fail "statz requests.client_error != 1: $statz"
[ "$(jq -r .requests.shed <<<"$statz")" = "0" ] || fail "statz sheds in a serial smoke: $statz"
[ "$(jq -r .requests.timeout <<<"$statz")" = "0" ] || fail "statz timeouts in a serial smoke: $statz"
[ "$(jq -r .requests.panics <<<"$statz")" = "0" ] || fail "statz panics: $statz"
[ "$(jq -r .docs_classified <<<"$statz")" = "3" ] || fail "statz docs_classified != 3 (1 single + 2 batch): $statz"
[ "$(jq -r .stages.classify.count <<<"$statz")" = "2" ] || fail "statz classify stage count != 2 scored jobs: $statz"
jq -e '.stages.classify.p50_us <= .stages.classify.p99_us' <<<"$statz" >/dev/null \
  || fail "statz classify percentiles not monotone: $statz"
jq -e '.latency.count == 3 and .latency.p50_us > 0' <<<"$statz" >/dev/null || fail "statz latency: $statz"

# Request-id round trip: a client-chosen id must be echoed.
rid=$(curl -fsS -o /dev/null -D - -H 'X-Request-ID: smoke-rid-1' "$base/v1/healthz" \
  | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip' | head -1)
[ "$rid" = "smoke-rid-1" ] || fail "X-Request-ID not echoed: got '$rid'"

# --- graceful shutdown -----------------------------------------------
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  fail "server did not exit cleanly on SIGTERM"
fi
server_pid=""
echo "serve-smoke: OK"
