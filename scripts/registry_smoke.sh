#!/usr/bin/env bash
# registry_smoke.sh — end-to-end smoke of the model registry and
# multi-tenant serving (Makefile target `registry-smoke`, part of
# `make ci`).
#
# Trains two tiny models with different seeds, publishes them as
# tenant-a/v1 and tenant-b/v1 with `tdc publish`, boots `tdc serve
# -models-dir` and asserts: the /v1/models catalog, per-tenant classify
# routing (each response carries the hash the manifest promised),
# unknown-model 404s, and that publishing a third version becomes
# visible only after a /v1/reload rescan — latest resolves to it while
# the explicit old version keeps serving the old bytes. Finishes with a
# SIGTERM drain check.
set -euo pipefail

cd "$(dirname "$0")/.."
dir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$dir"
}
trap cleanup EXIT

fail() { echo "registry-smoke: FAIL: $*" >&2; [ -f "$dir/serve.out" ] && sed 's/^/  server: /' "$dir/serve.out" >&2; exit 1; }

command -v jq >/dev/null || fail "jq is required"
command -v curl >/dev/null || fail "curl is required"

echo "registry-smoke: building tdc"
go build -o "$dir/tdc" ./cmd/tdc

echo "registry-smoke: training two tiny models"
"$dir/tdc" train -profile smoke -scale 0.006 -method df -seed 5 -out "$dir/model-a.json" >/dev/null
"$dir/tdc" train -profile smoke -scale 0.006 -method df -seed 97 -out "$dir/model-b.json" >/dev/null

echo "registry-smoke: publishing tenant-a/v1 and tenant-b/v1"
models="$dir/models"
"$dir/tdc" publish -models-dir "$models" -name tenant-a -version v1 -snapshot "$dir/model-a.json" >/dev/null
"$dir/tdc" publish -models-dir "$models" -name tenant-b -version v1 -snapshot "$dir/model-b.json" >/dev/null
hash_a=$(jq -r .sha256 "$models/tenant-a/v1/manifest.json")
hash_b=$(jq -r .sha256 "$models/tenant-b/v1/manifest.json")
grep -Eq '^[0-9a-f]{64}$' <<<"$hash_a" || fail "tenant-a manifest sha256: $hash_a"
[ "$hash_a" != "$hash_b" ] || fail "different seeds produced identical snapshots"

# Republish of an existing version must fail: versions are immutable.
if "$dir/tdc" publish -models-dir "$models" -name tenant-a -version v1 \
    -snapshot "$dir/model-b.json" >/dev/null 2>&1; then
  fail "republish over tenant-a/v1 succeeded; versions must be immutable"
fi

echo "registry-smoke: starting server"
"$dir/tdc" serve -models-dir "$models" -addr localhost:0 \
  -timeout 30s -drain 5s >"$dir/serve.out" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#^serving on \(http://.*\)$#\1#p' "$dir/serve.out" | head -1)
  [ -n "$base" ] && break
  kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
[ -n "$base" ] || fail "server never printed its address"
echo "registry-smoke: server at $base"

# --- catalog ---------------------------------------------------------
catalog=$(curl -fsS "$base/v1/models")
[ "$(jq -r .mode <<<"$catalog")" = "registry" ] || fail "models mode: $catalog"
[ "$(jq '.models | length' <<<"$catalog")" = "2" ] || fail "models count: $catalog"
# Two models and no configured default: unnamed requests must be rejected.
[ "$(jq -r '.default_model // empty' <<<"$catalog")" = "" ] || fail "unexpected default: $catalog"
jq -e --arg h "$hash_a" \
  '.models[] | select(.name == "tenant-a") | .versions[0] | .sha256 == $h and .latest and (.resident | not)' \
  <<<"$catalog" >/dev/null || fail "tenant-a/v1 catalog entry: $catalog"

# --- per-tenant routing ----------------------------------------------
a=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"id":"smoke-a","text":"oil crude barrel prices rose sharply","model":"tenant-a"}' \
  "$base/v1/classify")
[ "$(jq -r .model <<<"$a")" = "tenant-a" ] || fail "tenant-a response model: $a"
[ "$(jq -r .version <<<"$a")" = "v1" ] || fail "tenant-a response version: $a"
[ "$(jq -r .model_hash <<<"$a")" = "$hash_a" ] || fail "tenant-a served wrong snapshot: $a"
b=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"id":"smoke-b","text":"oil crude barrel prices rose sharply","model":"tenant-b"}' \
  "$base/v1/classify")
[ "$(jq -r .model_hash <<<"$b")" = "$hash_b" ] || fail "tenant-b served wrong snapshot: $b"

# Both tenants are resident now and the catalog says so.
catalog=$(curl -fsS "$base/v1/models")
jq -e '[.models[].versions[0].resident] == [true, true]' <<<"$catalog" >/dev/null \
  || fail "residency after traffic: $catalog"

# --- error paths -----------------------------------------------------
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
  -d '{"text":"x","model":"nope"}' "$base/v1/classify")
[ "$code" = "404" ] || fail "unknown model got HTTP $code, want 404"
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
  -d '{"text":"x"}' "$base/v1/classify")
[ "$code" = "400" ] || fail "unnamed request with two models got HTTP $code, want 400"

# --- third publish + rescan ------------------------------------------
echo "registry-smoke: publishing tenant-a/v2 and rescanning"
"$dir/tdc" publish -models-dir "$models" -name tenant-a -version v2 -snapshot "$dir/model-b.json" >/dev/null
# Not visible until a rescan.
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
  -d '{"text":"x","model":"tenant-a","version":"v2"}' "$base/v1/classify")
[ "$code" = "404" ] || fail "pre-rescan v2 got HTTP $code, want 404"

rescan=$(curl -fsS -X POST "$base/v1/reload")
[ "$(jq -r .mode <<<"$rescan")" = "registry" ] || fail "rescan mode: $rescan"
[ "$(jq -r .models <<<"$rescan")" = "2" ] || fail "rescan model count: $rescan"
[ "$(jq -r .versions <<<"$rescan")" = "3" ] || fail "rescan version count: $rescan"
[ "$(jq -r .skipped <<<"$rescan")" = "0" ] || fail "rescan skipped versions: $rescan"

# Latest now resolves to v2 (model B's bytes)…
latest=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"text":"wheat corn grain tonnes shipment","model":"tenant-a"}' "$base/v1/classify")
[ "$(jq -r .version <<<"$latest")" = "v2" ] || fail "latest after rescan: $latest"
[ "$(jq -r .model_hash <<<"$latest")" = "$hash_b" ] || fail "v2 hash: $latest"
# …while the pinned old version still serves the old bytes.
old=$(curl -fsS -H 'Content-Type: application/json' \
  -d '{"text":"wheat corn grain tonnes shipment","model":"tenant-a","version":"v1"}' "$base/v1/classify")
[ "$(jq -r .model_hash <<<"$old")" = "$hash_a" ] || fail "explicit v1 hash: $old"

# --- per-model statz -------------------------------------------------
statz=$(curl -fsS "$base/v1/statz")
[ "$(jq -r '.models["tenant-a"].requests' <<<"$statz")" = "3" ] || fail "tenant-a request count: $statz"
[ "$(jq -r '.models["tenant-b"].requests' <<<"$statz")" = "1" ] || fail "tenant-b request count: $statz"

# --- graceful shutdown -----------------------------------------------
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  fail "server did not exit cleanly on SIGTERM"
fi
server_pid=""
echo "registry-smoke: OK"
