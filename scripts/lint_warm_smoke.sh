#!/usr/bin/env bash
# lint_warm_smoke.sh — asserts the incremental analysis cache works
# (Makefile target `lint-warm`, part of `make ci`).
#
# Builds tdlint once, runs it cold against a fresh cache directory and
# then warm, and asserts:
#   1. the warm run reports hits only (misses=0 invalidated=0),
#   2. the warm run is at least 5x faster than the cold one,
#   3. -json findings are byte-identical uncached vs. cached, cold vs.
#      warm, and at -jobs 1 vs. -jobs 8.
# Timing uses millisecond wall clock; the warm measurement takes the
# best of two runs to keep scheduler noise out of the ratio.
set -euo pipefail

cd "$(dirname "$0")/.."
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

fail() { echo "lint-warm: FAIL: $*" >&2; exit 1; }

go build -o "$dir/tdlint" ./cmd/tdlint

now_ms() { date +%s%3N; }

cache="$dir/cache"

# Cold: fresh cache, everything misses.
t0=$(now_ms)
"$dir/tdlint" -cache "$cache" -v ./... 2>"$dir/cold.err" >"$dir/cold.out" \
  || fail "cold run reported findings or failed: $(cat "$dir/cold.out" "$dir/cold.err")"
t1=$(now_ms)
cold_ms=$((t1 - t0))
grep -q 'misses=[1-9]' "$dir/cold.err" || fail "cold run should miss: $(grep 'cache:' "$dir/cold.err")"

# Warm: everything hits; best of two runs.
warm_ms=""
for i in 1 2; do
  t0=$(now_ms)
  "$dir/tdlint" -cache "$cache" -v ./... 2>"$dir/warm.err" >"$dir/warm.out" \
    || fail "warm run reported findings or failed: $(cat "$dir/warm.out" "$dir/warm.err")"
  t1=$(now_ms)
  ms=$((t1 - t0))
  if [ -z "$warm_ms" ] || [ "$ms" -lt "$warm_ms" ]; then warm_ms=$ms; fi
  grep -q 'misses=0 invalidated=0' "$dir/warm.err" \
    || fail "warm run $i not fully cached: $(grep 'cache:' "$dir/warm.err")"
done

if [ $((warm_ms * 5)) -gt "$cold_ms" ]; then
  fail "warm run not 5x faster: cold=${cold_ms}ms warm=${warm_ms}ms"
fi

# Byte-identity: uncached vs. cached, across job counts.
"$dir/tdlint" -cache off  -jobs 1 -json ./... >"$dir/f.uncached1" 2>/dev/null || true
"$dir/tdlint" -cache off  -jobs 8 -json ./... >"$dir/f.uncached8" 2>/dev/null || true
"$dir/tdlint" -cache "$cache" -jobs 1 -json ./... >"$dir/f.cached1" 2>/dev/null || true
"$dir/tdlint" -cache "$cache" -jobs 8 -json ./... >"$dir/f.cached8" 2>/dev/null || true
for v in uncached8 cached1 cached8; do
  cmp -s "$dir/f.uncached1" "$dir/f.$v" || fail "findings differ: uncached1 vs $v"
done

echo "lint-warm: OK cold=${cold_ms}ms warm=${warm_ms}ms ($(grep 'cache:' "$dir/warm.err"))"
