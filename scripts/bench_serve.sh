#!/usr/bin/env bash
# bench_serve.sh — the serving benchmark (Makefile target `bench-serve`).
#
# Trains a tiny model, boots `tdc serve` on an ephemeral port, drives it
# with `tdc loadgen` in both modes and writes BENCH_PR7.json:
#
#   closed  fixed-concurrency run — the throughput/latency story
#   open    Poisson arrivals at a moderate offered rate — latency under
#           a fixed load, including queue-wait
#
# Each report carries the client-side percentiles, achieved throughput,
# shed/timeout rates AND the server's /v1/statz view of the same window
# with the counts/percentiles agreement verdicts. The request stream is
# seed-fixed, so reruns offer identical traffic (timings still vary with
# the machine).
#
# Tunables (env): BENCH_DURATION (default 5s), BENCH_WARMUP (1s),
# BENCH_CONCURRENCY (4), BENCH_RATE (open-loop rps, 80), BENCH_OUT
# (BENCH_PR7.json).
#
# The closed-loop concurrency default is deliberately moderate: drive a
# small box far past saturation and the waiting moves into the kernel
# accept queue, which happens before the handler's clock starts — the
# client and server percentile views then measure genuinely different
# intervals and the agreement check (correctly) refuses to vouch for
# the run. Raise BENCH_CONCURRENCY for a capacity probe, at the cost of
# the percentile cross-check.
set -euo pipefail

cd "$(dirname "$0")/.."
duration=${BENCH_DURATION:-5s}
warmup=${BENCH_WARMUP:-1s}
concurrency=${BENCH_CONCURRENCY:-4}
rate=${BENCH_RATE:-80}
out=${BENCH_OUT:-BENCH_PR7.json}

dir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$dir"
}
trap cleanup EXIT

fail() { echo "bench-serve: FAIL: $*" >&2; [ -f "$dir/serve.out" ] && sed 's/^/  server: /' "$dir/serve.out" >&2; exit 1; }

command -v jq >/dev/null || fail "jq is required"

echo "bench-serve: building tdc"
go build -o "$dir/tdc" ./cmd/tdc

echo "bench-serve: training tiny model"
"$dir/tdc" train -profile smoke -scale 0.006 -method df -out "$dir/model.json" >/dev/null

echo "bench-serve: starting server"
"$dir/tdc" serve -model "$dir/model.json" -method df -addr localhost:0 \
  -timeout 10s -drain 5s >"$dir/serve.out" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#^serving on \(http://.*\)$#\1#p' "$dir/serve.out" | head -1)
  [ -n "$base" ] && break
  kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
[ -n "$base" ] || fail "server never printed its address"
echo "bench-serve: server at $base"

echo "bench-serve: closed loop ($concurrency workers, $duration)"
"$dir/tdc" loadgen -target "$base" -mode closed -concurrency "$concurrency" \
  -warmup "$warmup" -duration "$duration" -batch-mix '1=3,8=1' -seed 1 \
  -out "$dir/closed.json"

echo "bench-serve: open loop (poisson @ ${rate}rps, $duration)"
"$dir/tdc" loadgen -target "$base" -mode open -rate "$rate" -arrival poisson \
  -warmup "$warmup" -duration "$duration" -seed 1 \
  -out "$dir/open.json"

kill -TERM "$server_pid"
wait "$server_pid" || fail "server did not drain cleanly"
server_pid=""

# The benchmark is only worth recording if both sides of the story
# agree: statz counts must match the client's and the percentile views
# must be within tolerance.
for run in closed open; do
  jq -e '.server.counts_agree == true' "$dir/$run.json" >/dev/null \
    || fail "$run: client/server request counts disagree: $(jq -c .server "$dir/$run.json")"
  jq -e '.server.percentiles_agree == true' "$dir/$run.json" >/dev/null \
    || fail "$run: client/server percentiles disagree: $(jq -c .server "$dir/$run.json")"
done

jq -n --slurpfile closed "$dir/closed.json" --slurpfile open "$dir/open.json" \
  '{bench: "serve", generator: "tdc loadgen", closed: $closed[0], open: $open[0]}' >"$out"

echo "bench-serve: wrote $out"
jq -r '"closed: \(.closed.achieved_rps | floor) rps, p50 \(.closed.latency.p50_ms)ms p99 \(.closed.latency.p99_ms)ms; open@\(.open.rate_rps)rps: p50 \(.open.latency.p50_ms)ms p99 \(.open.latency.p99_ms)ms shed \(.open.shed_rate)"' "$out"
