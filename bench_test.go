package temporaldoc

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable1FeatureCounts      Table 1
//	BenchmarkTable2GPParameters       Table 2
//	BenchmarkTable4ProSysAllSelections Table 4
//	BenchmarkTable5ComparisonMI       Table 5
//	BenchmarkTable6ComparisonIG       Table 6
//	BenchmarkFigure3WordBMUMapping    Figure 3
//	BenchmarkFigure5SingleLabelTrace  Figure 5
//	BenchmarkFigure6MultiLabelTrace   Figure 6
//	BenchmarkAblation*                DESIGN.md ablation suite
//
// Benchmarks run the smoke profile so `go test -bench=.` completes in
// minutes; `cmd/benchtables -profile quick|full` runs the same
// experiments at larger scales. F1 outcomes are attached to each bench
// via ReportMetric (microF1/macroF1), so the harness records both speed
// and result shape.

import (
	"math/rand"
	"sync"
	"testing"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/experiments"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/som"
	"temporaldoc/internal/telemetry"
)

var (
	benchOnce    sync.Once
	benchProfile experiments.Profile
	benchCorpus  *corpus.Corpus
)

func benchSetup(b *testing.B) (experiments.Profile, *corpus.Corpus) {
	b.Helper()
	benchOnce.Do(func() {
		benchProfile = experiments.SmokeProfile()
		c, err := benchProfile.Corpus()
		if err != nil {
			b.Fatalf("corpus: %v", err)
		}
		benchCorpus = c
	})
	return benchProfile, benchCorpus
}

func BenchmarkTable1FeatureCounts(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(p, c)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable2GPParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.FormatTable2(lgp.DefaultConfig()); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4ProSysAllSelections(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		table, err := experiments.RunTable4(p, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(table.Micro["DF"], "microF1-DF")
		b.ReportMetric(table.Micro["MI"], "microF1-MI")
	}
}

func BenchmarkTable5ComparisonMI(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		table, err := experiments.RunTable5(p, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(table.Micro["ProSys"], "microF1-ProSys")
		b.ReportMetric(table.Micro["L-SVM"], "microF1-LSVM")
		b.ReportMetric(table.Micro["NB"], "microF1-NB")
	}
}

func BenchmarkTable6ComparisonIG(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		table, err := experiments.RunTable6(p, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(table.Micro["ProSys"], "microF1-ProSys")
		b.ReportMetric(table.Micro["Rocchio"], "microF1-Rocchio")
	}
}

func BenchmarkTableTemporalComparison(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		table, err := experiments.RunTableTemporal(p, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(table.Micro["ProSys"], "microF1-ProSys")
		b.ReportMetric(table.Micro["SeqK"], "microF1-SeqK")
		b.ReportMetric(table.Micro["Elman"], "microF1-Elman")
	}
}

func BenchmarkFigure3WordBMUMapping(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunFigure3(p, c, "earn")
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5SingleLabelTrace(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFigure5(p, c, "earn")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Traces["earn"])), "member-words")
	}
}

func BenchmarkFigure6MultiLabelTrace(b *testing.B) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunFigure6(p, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Categories)), "labels")
	}
}

func benchAblation(b *testing.B, run func(experiments.Profile, *corpus.Corpus) (*experiments.AblationResult, error)) {
	p, c := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := run(p, c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MicroA, "microF1-paper")
		b.ReportMetric(res.MicroB, "microF1-variant")
	}
}

func BenchmarkAblationRecurrence(b *testing.B) {
	benchAblation(b, experiments.RunAblationRecurrence)
}

func BenchmarkAblationBMUFanout(b *testing.B) {
	benchAblation(b, experiments.RunAblationBMUFanout)
}

func BenchmarkAblationDSS(b *testing.B) {
	benchAblation(b, experiments.RunAblationDSS)
}

func BenchmarkAblationDynamicPages(b *testing.B) {
	benchAblation(b, experiments.RunAblationDynamicPages)
}

func BenchmarkAblationMembership(b *testing.B) {
	benchAblation(b, experiments.RunAblationMembership)
}

func BenchmarkAblationF1Fitness(b *testing.B) {
	benchAblation(b, experiments.RunAblationF1Fitness)
}

func BenchmarkAblationStratifiedDSS(b *testing.B) {
	benchAblation(b, experiments.RunAblationStratifiedDSS)
}

func BenchmarkAblationThresholdRule(b *testing.B) {
	benchAblation(b, experiments.RunAblationThresholdRule)
}

// --- component micro-benchmarks ---

func BenchmarkSOMTrainCharMap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, 2000)
	for i := range inputs {
		inputs[i] = []float64{1 + rng.Float64()*25, 1 + rng.Float64()*24}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := som.New(som.Config{
			Width: 7, Height: 13, Dim: 2, Epochs: 1,
			InitialLearningRate: 0.5, Seed: int64(i),
		}, 26)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Train(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderWordVector(b *testing.B) {
	docs := map[string][]corpus.Document{
		"earn": {{ID: "e1", Words: []string{"profit", "dividend", "quarter", "shares"}}},
	}
	enc, err := hsom.Train(hsom.Config{
		CharWidth: 7, CharHeight: 13, WordWidth: 4, WordHeight: 4,
		CharEpochs: 1, WordEpochs: 1, Seed: 1,
	}, docs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := enc.WordVector("dividend"); len(v) != 91 {
			b.Fatal("bad vector")
		}
	}
}

func BenchmarkRLGPSequenceExecution(b *testing.B) {
	cfg := lgp.DefaultConfig()
	cfg.PopulationSize = 4
	cfg.Tournaments = 1
	cfg.DSS = nil
	ex := []lgp.Example{{Inputs: [][]float64{{0.5, 0.5}}, Label: 1}}
	tr, err := lgp.NewTrainer(cfg, ex)
	if err != nil {
		b.Fatal(err)
	}
	res := tr.Run()
	m := lgp.NewMachine(cfg.NumRegisters)
	seq := make([][]float64, 30)
	for i := range seq {
		seq[i] = []float64{float64(i) / 30, 0.5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunSequence(res.Best, seq)
	}
}

func BenchmarkModelScore(b *testing.B) {
	p, c := benchSetup(b)
	model, err := p.TrainProSys(c, DF)
	if err != nil {
		b.Fatal(err)
	}
	doc := &c.Test[0]
	cat := c.Categories[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Score(cat, doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelScoreTelemetry is BenchmarkModelScore with a live
// telemetry registry attached — compare the two for the
// enabled-vs-disabled scoring overhead recorded in BENCH_PR2.json
// (<5% target).
func BenchmarkModelScoreTelemetry(b *testing.B) {
	p, c := benchSetup(b)
	model, err := p.TrainProSys(c, DF)
	if err != nil {
		b.Fatal(err)
	}
	model.AttachTelemetry(telemetry.NewRegistry(), nil)
	doc := &c.Test[0]
	cat := c.Categories[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Score(cat, doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelClassify(b *testing.B) {
	p, c := benchSetup(b)
	model, err := p.TrainProSys(c, DF)
	if err != nil {
		b.Fatal(err)
	}
	doc := &c.Test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Classify(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := GenerateReutersLike(GenConfig{Scale: 0.01, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Train) == 0 {
			b.Fatal("empty corpus")
		}
	}
}
