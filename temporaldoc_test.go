package temporaldoc

import (
	"strings"
	"testing"

	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
)

// apiTestConfig is a minimal-budget Config for API smoke tests.
func apiTestConfig(method FeatureMethod) Config {
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 16
	gp.Tournaments = 80
	gp.MaxPages = 4
	gp.MaxPageSize = 4
	gp.DSS = nil
	return Config{
		FeatureMethod: method,
		FeatureConfig: FeatureBudget{GlobalN: 50, PerCategoryN: 20},
		Encoder: hsom.Config{
			CharWidth: 5, CharHeight: 5,
			WordWidth: 4, WordHeight: 4,
			CharEpochs: 2, WordEpochs: 3,
			Seed: 2,
		},
		GP:       gp,
		Restarts: 1,
		Seed:     7,
	}
}

func apiCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := GenerateReutersLike(GenConfig{Scale: 0.004, Seed: 3})
	if err != nil {
		t.Fatalf("GenerateReutersLike: %v", err)
	}
	return c
}

func TestPublicTrainClassifyTrace(t *testing.T) {
	c := apiCorpus(t)
	m, err := Train(apiTestConfig(DF), c)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := m.Classify(&c.Test[0]); err != nil {
		t.Errorf("Classify: %v", err)
	}
	if _, err := m.Trace("earn", &c.Test[0]); err != nil {
		t.Errorf("Trace: %v", err)
	}
	set, err := m.Evaluate(c.Test[:10])
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if got := set.Pooled().Total(); got != 10*len(c.Categories) {
		t.Errorf("pooled total = %d", got)
	}
}

func TestPaperConfigMatchesPaper(t *testing.T) {
	cfg := PaperConfig(MI)
	if cfg.GP.PopulationSize != 125 || cfg.GP.Tournaments != 48000 {
		t.Errorf("GP params: %+v", cfg.GP)
	}
	if cfg.Restarts != 20 {
		t.Errorf("restarts = %d, want 20", cfg.Restarts)
	}
	if cfg.FeatureConfig.PerCategoryN != 300 {
		t.Errorf("MI budget = %+v", cfg.FeatureConfig)
	}
}

func TestFastConfigIsSmaller(t *testing.T) {
	fast, paper := FastConfig(DF), PaperConfig(DF)
	if fast.GP.Tournaments >= paper.GP.Tournaments {
		t.Error("FastConfig not faster than PaperConfig")
	}
	if fast.Restarts >= paper.Restarts {
		t.Error("FastConfig restarts not reduced")
	}
}

func TestFeatureMethodsComplete(t *testing.T) {
	got := FeatureMethods()
	want := map[FeatureMethod]bool{DF: true, IG: true, MI: true, Nouns: true}
	if len(got) != 4 {
		t.Fatalf("FeatureMethods = %v", got)
	}
	for _, m := range got {
		if !want[m] {
			t.Errorf("unexpected method %v", m)
		}
	}
}

func TestReutersTop10(t *testing.T) {
	cats := ReutersTop10()
	if len(cats) != 10 || cats[0] != "earn" {
		t.Errorf("ReutersTop10 = %v", cats)
	}
	cats[0] = "mutated"
	if ReutersTop10()[0] != "earn" {
		t.Error("ReutersTop10 exposes internal slice")
	}
}

func TestPreprocess(t *testing.T) {
	words := Preprocess("<BODY>The Company announced record PROFITS.</BODY>")
	joined := strings.Join(words, " ")
	if !strings.Contains(joined, "profits") || strings.Contains(joined, "the") {
		t.Errorf("Preprocess = %v", words)
	}
}

func TestLoadReutersSGMLRoundTrip(t *testing.T) {
	src := `<REUTERS TOPICS="YES" LEWISSPLIT="TRAIN" NEWID="1">
<TOPICS><D>earn</D></TOPICS><TITLE>t</TITLE><BODY>profit rose dividend</BODY></REUTERS>
<REUTERS TOPICS="YES" LEWISSPLIT="TEST" NEWID="2">
<TOPICS><D>earn</D></TOPICS><TITLE>t</TITLE><BODY>net loss widened</BODY></REUTERS>`
	c, err := LoadReutersSGML([]string{"earn"}, strings.NewReader(src))
	if err != nil {
		t.Fatalf("LoadReutersSGML: %v", err)
	}
	if len(c.Train) != 1 || len(c.Test) != 1 {
		t.Errorf("splits: %d/%d", len(c.Train), len(c.Test))
	}
}

func TestLoadReutersSGMLBadInput(t *testing.T) {
	if _, err := LoadReutersSGML([]string{"earn"}, strings.NewReader("<REUTERS truncated")); err == nil {
		t.Error("truncated SGML accepted")
	}
	// No matching documents -> invalid (empty) corpus.
	if _, err := LoadReutersSGML([]string{"earn"}, strings.NewReader("")); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestNewBaselineNames(t *testing.T) {
	for _, name := range []string{
		BaselineNaiveBayes, BaselineRocchio, BaselineLinearSVM,
		BaselineDecisionTree, BaselineTreeGP, BaselineKNN, BaselineSeqKernel,
		BaselineElman,
	} {
		clf, err := NewBaseline(name, []string{"a", "b"}, 1)
		if err != nil {
			t.Errorf("NewBaseline(%s): %v", name, err)
			continue
		}
		if clf.Name() != name {
			t.Errorf("Name = %q, want %q", clf.Name(), name)
		}
	}
	if _, err := NewBaseline("bogus", nil, 1); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestEvaluateBaselineEndToEnd(t *testing.T) {
	c := apiCorpus(t)
	set, err := EvaluateBaselineWithBudget(BaselineNaiveBayes, MI,
		FeatureBudget{PerCategoryN: 25}, c, 1)
	if err != nil {
		t.Fatalf("EvaluateBaseline: %v", err)
	}
	if set.MicroF1() <= 0.2 {
		t.Errorf("NB micro F1 = %v, implausibly low for separable synthetic data", set.MicroF1())
	}
	for _, cat := range c.Categories {
		if got := set.Table(cat).Total(); got != len(c.Test) {
			t.Errorf("category %s total %d, want %d", cat, got, len(c.Test))
		}
	}
}

func TestEvaluateBaselineDefaultBudget(t *testing.T) {
	c := apiCorpus(t)
	if _, err := EvaluateBaseline(BaselineRocchio, DF, c, 1); err != nil {
		t.Fatalf("EvaluateBaseline: %v", err)
	}
}
