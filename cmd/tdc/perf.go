package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"temporaldoc/internal/experiments"
)

// perfFlags bundles the performance flags shared by the training and
// evaluation subcommands: -workers bounds the evaluation engine's
// parallelism (GP tournament evaluation, SOM batch BMU search, document
// scoring), and -cpuprofile / -memprofile hook the subcommand up to
// pprof. Training output is bit-identical for every -workers value.
type perfFlags struct {
	workers    *int
	cpuProfile *string
	memProfile *string
}

func registerPerfFlags(fs *flag.FlagSet) *perfFlags {
	return &perfFlags{
		workers:    fs.Int("workers", 0, "evaluation workers (0 = all CPUs); output is identical for any value"),
		cpuProfile: fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		memProfile: fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
	}
}

// apply threads -workers into the experiment profile and starts CPU
// profiling when requested. The returned stop function ends the CPU
// profile and writes the heap profile; call it via defer.
func (pf *perfFlags) apply(p *experiments.Profile) (stop func(), err error) {
	if *pf.workers < 0 {
		return nil, fmt.Errorf("-workers %d must be >= 0", *pf.workers)
	}
	p.Workers = *pf.workers
	var cpuOut *os.File
	if *pf.cpuProfile != "" {
		cpuOut, err = os.Create(*pf.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			_ = cpuOut.Close()
			return nil, err
		}
	}
	memPath := *pf.memProfile
	return func() {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tdc: close cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tdc: create heap profile %s: %v\n", memPath, err)
				return
			}
			runtime.GC() // flush recent frees so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				fmt.Fprintf(os.Stderr, "tdc: write heap profile %s: %v\n", memPath, err)
				return
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tdc: close heap profile %s: %v\n", memPath, err)
			}
		}
	}, nil
}
