package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"temporaldoc/internal/hsom"
)

// cmdSizing reproduces the paper's AWC-based map-size study: it trains a
// character SOM at several candidate geometries over the profile corpus
// and reports AWC / quantisation error per geometry plus the elbow-rule
// choice (the paper picked 7x13 for characters and 8x8 for words this
// way).
func cmdSizing(args []string) error {
	fs := flag.NewFlagSet("sizing", flag.ExitOnError)
	profile := fs.String("profile", "smoke", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	epochs := fs.Int("epochs", 2, "training epochs per candidate")
	candidates := fs.String("candidates", "4x4,5x5,7x7,7x13,10x10,12x12",
		"comma-separated WxH candidate geometries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	c, err := p.Corpus()
	if err != nil {
		return err
	}
	var cands [][2]int
	for _, part := range strings.Split(*candidates, ",") {
		wh := strings.Split(strings.TrimSpace(part), "x")
		if len(wh) != 2 {
			return fmt.Errorf("bad candidate %q (want WxH)", part)
		}
		w, err1 := strconv.Atoi(wh[0])
		h, err2 := strconv.Atoi(wh[1])
		if err1 != nil || err2 != nil || w < 1 || h < 1 {
			return fmt.Errorf("bad candidate %q", part)
		}
		cands = append(cands, [2]int{w, h})
	}

	// Character inputs of the training corpus, as the first-level SOM
	// sees them.
	var inputs [][]float64
	for i := range c.Train {
		for _, w := range c.Train[i].Words {
			inputs = append(inputs, hsom.CharInputs(w)...)
		}
	}
	fmt.Printf("searching %d geometries over %d character inputs\n\n", len(cands), len(inputs))
	results, best, err := hsom.SuggestMapSize(inputs, *epochs, p.Seed, cands)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %12s %10s\n", "size", "units", "finalAWC", "QE")
	for i, r := range results {
		mark := " "
		if i == best {
			mark = " <= chosen"
		}
		fmt.Printf("%dx%-6d %8d %12.5f %10.4f%s\n",
			r.Width, r.Height, r.Units, r.FinalAWC, r.QuantizationError, mark)
	}
	return nil
}
