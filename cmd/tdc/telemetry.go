package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"

	"temporaldoc/internal/core"
	"temporaldoc/internal/experiments"
	"temporaldoc/internal/telemetry"
)

// telemetryFlags bundles the observability flags shared by the train,
// evaluate and classify subcommands:
//
//	-metrics <file>       write the final telemetry snapshot as JSON
//	-trace <file>         write training events as JSON lines
//	-telemetry-addr addr  serve expvar + pprof over HTTP while running
//	-log-format text|json stderr log encoding
//	-v                    verbose logging (per-epoch / per-tournament)
//	-quiet                errors only
type telemetryFlags struct {
	metricsOut *string
	traceOut   *string
	addr       *string
	logFormat  *string
	verbose    *bool
	quiet      *bool
}

func registerTelemetryFlags(fs *flag.FlagSet) *telemetryFlags {
	return &telemetryFlags{
		metricsOut: fs.String("metrics", "", "write the final telemetry snapshot (JSON) to this file"),
		traceOut:   fs.String("trace-events", "", "write training events (JSONL) to this file"),
		addr:       fs.String("telemetry-addr", "", "serve expvar and pprof over HTTP on this address (e.g. localhost:6060)"),
		logFormat:  fs.String("log-format", "text", "stderr log encoding: text or json"),
		verbose:    fs.Bool("v", false, "verbose logging: per-epoch and per-tournament events"),
		quiet:      fs.Bool("quiet", false, "log errors only"),
	}
}

// telemetrySession is the live observability state of one subcommand
// run: the registry the pipeline records into, the structured logger
// replacing ad-hoc stderr prints, the event sinks and the optional
// debug HTTP server. The zero-cost contract holds end to end: when no
// telemetry flag is set, reg stays nil and the whole pipeline runs on
// the no-op path.
type telemetrySession struct {
	reg      *telemetry.Registry
	log      *slog.Logger
	observer core.Observer

	metricsPath string
	events      *telemetry.EventWriter
	eventsFile  *os.File
	listener    net.Listener
}

// expvarOnce guards expvar.Publish, which panics on duplicate names
// (tests open several sessions in one process).
var (
	expvarOnce sync.Once
	expvarReg  *telemetry.Registry
	expvarMu   sync.Mutex
)

// start validates the flags and opens every requested sink.
func (tf *telemetryFlags) start() (*telemetrySession, error) {
	level := slog.LevelInfo
	if *tf.verbose {
		level = slog.LevelDebug
	}
	if *tf.quiet {
		level = slog.LevelError
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *tf.logFormat {
	case "", "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", *tf.logFormat)
	}
	ts := &telemetrySession{
		log:         slog.New(handler),
		metricsPath: *tf.metricsOut,
	}

	if *tf.metricsOut != "" || *tf.addr != "" {
		ts.reg = telemetry.NewRegistry()
	}
	if *tf.traceOut != "" {
		f, err := os.Create(*tf.traceOut)
		if err != nil {
			return nil, fmt.Errorf("trace events: %w", err)
		}
		ts.eventsFile = f
		ts.events = telemetry.NewEventWriter(f)
	}
	// The observer feeds both the JSONL event sink and the logger.
	// High-volume kinds (epochs, tournaments) log at Debug so they only
	// reach stderr under -v; milestones log at Info. It is installed
	// only when something consumes the extra events — an attached
	// observer makes the SOM compute per-epoch quantisation error, which
	// plain runs should not pay for.
	if ts.events != nil || ts.reg != nil || *tf.verbose {
		ts.observer = core.ObserverFunc(ts.onEvent)
	}

	if *tf.addr != "" {
		expvarMu.Lock()
		expvarReg = ts.reg
		expvarMu.Unlock()
		expvarOnce.Do(func() {
			expvar.Publish("telemetry", expvar.Func(func() any {
				expvarMu.Lock()
				r := expvarReg
				expvarMu.Unlock()
				return r.Snapshot()
			}))
		})
		ln, err := net.Listen("tcp", *tf.addr)
		if err != nil {
			return nil, fmt.Errorf("telemetry-addr: %w", err)
		}
		ts.listener = ln
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				ts.log.Error("telemetry server", "err", err)
			}
		}()
		ts.log.Info("telemetry server listening", "addr", ln.Addr().String())
	}
	return ts, nil
}

// onEvent routes one TrainEvent to the logger and the JSONL sink.
func (ts *telemetrySession) onEvent(e core.TrainEvent) {
	if err := ts.events.Emit(e); err != nil {
		ts.log.Error("trace event write failed", "err", err)
	}
	switch e.Kind {
	case core.EventSOMEpoch:
		// The attribute is "map" rather than "level": slog's JSON handler
		// already emits a top-level "level" key for the log severity.
		ts.log.Debug("som epoch",
			"map", e.Level, "category", e.Category, "epoch", e.Epoch,
			"awc", e.AWC, "quant_error", e.QuantError, "radius", e.Radius,
			"dur", e.Duration)
	case core.EventEncoderReady:
		ts.log.Info("encoder trained", "dur", e.Duration)
	case core.EventGeneration:
		ts.log.Debug("gp tournament",
			"category", e.Category, "restart", e.Restart,
			"tournament", e.Tournament, "best", e.BestFitness,
			"mean", e.MeanFitness, "mean_len", e.MeanLen,
			"page_size", e.PageSize, "dur", e.Duration)
	case core.EventCategoryTrained:
		ts.log.Info("classifier ready",
			"category", e.Category, "fitness", e.Fitness,
			"threshold", e.Threshold, "restart", e.Restart, "dur", e.Duration)
	}
}

// apply threads the session's sinks into an experiment profile.
func (ts *telemetrySession) apply(p *experiments.Profile) {
	p.Metrics = ts.reg
	p.Observer = ts.observer
}

// trainProgress returns the legacy milestone callback used when no
// richer observer is active, so a plain `tdc train` keeps its familiar
// encoder/classifier milestones on stderr (now via slog, so -quiet and
// -log-format apply). Nil when the observer already logs them.
func (ts *telemetrySession) trainProgress() func(stage, detail string) {
	if ts.observer != nil {
		return nil
	}
	return func(stage, detail string) {
		if stage == "encoder" {
			ts.log.Info("encoder trained")
			return
		}
		ts.log.Info("classifier ready", "category", detail)
	}
}

// close flushes the snapshot file and tears the sinks down; call via
// defer. Snapshot/teardown errors are reported, not fatal — the
// subcommand's own work already succeeded.
func (ts *telemetrySession) close() {
	if ts.listener != nil {
		_ = ts.listener.Close()
	}
	if ts.metricsPath != "" {
		if err := ts.writeSnapshot(); err != nil {
			ts.log.Error("metrics snapshot failed", "path", ts.metricsPath, "err", err)
		} else {
			ts.log.Info("metrics snapshot written", "path", ts.metricsPath)
		}
	}
	if ts.eventsFile != nil {
		if err := ts.eventsFile.Close(); err != nil {
			ts.log.Error("trace events close failed", "err", err)
		}
	}
}

func (ts *telemetrySession) writeSnapshot() error {
	f, err := os.Create(ts.metricsPath)
	if err != nil {
		return err
	}
	if err := ts.reg.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
