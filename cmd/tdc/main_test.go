package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"smoke", "quick", "full"} {
		p, err := profileByName(name, 0, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile name %q", p.Name)
		}
	}
	if _, err := profileByName("bogus", 0, 0); err == nil {
		t.Error("bogus profile accepted")
	}
	p, _ := profileByName("smoke", 42, 0.5)
	if p.Seed != 42 || p.Scale != 0.5 {
		t.Errorf("overrides not applied: %+v", p)
	}
}

func TestMethodByName(t *testing.T) {
	for _, name := range []string{"df", "ig", "mi", "nouns", "chi"} {
		if _, err := methodByName(name); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
	if _, err := methodByName("tfidf"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestCmdGenerateWritesSGML(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.sgm")
	if err := cmdGenerate([]string{"-scale", "0.004", "-out", out}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<REUTERS") {
		t.Error("output is not SGML")
	}
}

func TestCmdStats(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdStats([]string{"-profile", "smoke", "-scale", "0.004"})
	})
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"training split", "vocabulary", "overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestCmdStatsFromSGMLFile(t *testing.T) {
	sgm := filepath.Join(t.TempDir(), "c.sgm")
	if err := cmdGenerate([]string{"-scale", "0.004", "-out", sgm}); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return cmdStats([]string{"-sgml", sgm})
	}); err != nil {
		t.Fatalf("stats -sgml: %v", err)
	}
}

func TestCmdSizing(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdSizing([]string{"-profile", "smoke", "-scale", "0.004",
			"-epochs", "1", "-candidates", "3x3,5x5"})
	})
	if err != nil {
		t.Fatalf("sizing: %v", err)
	}
	if !strings.Contains(out, "chosen") || !strings.Contains(out, "3x3") {
		t.Errorf("sizing output incomplete:\n%s", out)
	}
	if err := cmdSizing([]string{"-candidates", "nonsense"}); err == nil {
		t.Error("bad candidates accepted")
	}
	if err := cmdSizing([]string{"-candidates", "0x5"}); err == nil {
		t.Error("zero geometry accepted")
	}
}

func TestCmdTrainClassifyRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := cmdTrain([]string{"-profile", "smoke", "-scale", "0.006", "-out", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	out, err := captureStdout(t, func() error {
		return cmdClassify([]string{"-model", model, "-profile", "smoke",
			"-scale", "0.006", "-limit", "3"})
	})
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	if !strings.Contains(out, "predicted=") || !strings.Contains(out, "accuracy") {
		t.Errorf("classify output incomplete:\n%s", out)
	}
}

func TestCmdInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	model := filepath.Join(t.TempDir(), "model.json")
	if err := cmdTrain([]string{"-profile", "smoke", "-scale", "0.006", "-out", model}); err != nil {
		t.Fatalf("train: %v", err)
	}
	out, err := captureStdout(t, func() error {
		return cmdInspect([]string{"-model", model, "-rules"})
	})
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	for _, want := range []string{"ruleLen", "earn", "threshold"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q", want)
		}
	}
	if err := cmdInspect([]string{"-model", "/nonexistent"}); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestCmdRule(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	out, err := captureStdout(t, func() error {
		return cmdRule([]string{"-profile", "smoke", "-scale", "0.006",
			"-category", "earn", "-method", "df"})
	})
	if err != nil {
		t.Fatalf("rule: %v", err)
	}
	if !strings.Contains(out, "R0") || !strings.Contains(out, "Simplified") {
		t.Errorf("rule output incomplete:\n%s", out)
	}
}

func TestCmdTraceSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	svg := filepath.Join(t.TempDir(), "trace.svg")
	if _, err := captureStdout(t, func() error {
		return cmdTrace([]string{"-profile", "smoke", "-scale", "0.008",
			"-category", "earn", "-svg", svg})
	}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG file malformed")
	}
}
