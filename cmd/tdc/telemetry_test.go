package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/telemetry"
)

func TestTelemetryFlagsRejectBadLogFormat(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tf := registerTelemetryFlags(fs)
	if err := fs.Parse([]string{"-log-format", "yaml"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.start(); err == nil {
		t.Error("bad -log-format accepted")
	}
}

func TestTelemetrySessionDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tf := registerTelemetryFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ts, err := tf.start()
	if err != nil {
		t.Fatal(err)
	}
	defer ts.close()
	if ts.reg != nil {
		t.Error("registry allocated without telemetry flags")
	}
	if ts.observer != nil {
		t.Error("observer installed without telemetry flags")
	}
	if ts.trainProgress() == nil {
		t.Error("plain session lost the milestone Progress shim")
	}
}

// TestCmdTrainMetricsSnapshot is the ISSUE's CLI acceptance check:
// `tdc train -metrics <file> -trace-events <file> -log-format json`
// must produce a valid JSON snapshot whose metrics cover SOM epochs, GP
// tournaments and the encode-cache / machine-pool hit rates, plus a
// JSONL event trace.
func TestCmdTrainMetricsSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	metricsOut := filepath.Join(dir, "metrics.json")
	eventsOut := filepath.Join(dir, "events.jsonl")
	err := cmdTrain([]string{"-profile", "smoke", "-scale", "0.006", "-out", model,
		"-metrics", metricsOut, "-trace-events", eventsOut,
		"-log-format", "json", "-quiet"})
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	data, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not a valid snapshot: %v", err)
	}
	for _, name := range []string{"hsom.char.epochs", "hsom.word.epochs", "lgp.tournaments", "core.categories.trained"} {
		if snap.Counters[name] == 0 {
			t.Errorf("snapshot counter %q missing or zero", name)
		}
	}
	// The hit/miss pairs must be present (training encodes through the
	// cache, so misses are guaranteed; pool counters register eagerly).
	if snap.Counters["core.encode.cache.misses"] == 0 {
		t.Errorf("encode-cache misses missing from snapshot: %v", snap.Counters)
	}
	for _, name := range []string{"core.encode.cache.hits", "core.machine.pool.hits", "core.machine.pool.misses"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot missing counter %q", name)
		}
	}
	if snap.Histograms["core.category.train.seconds"].Count == 0 {
		t.Error("category training spans missing from snapshot")
	}

	// The events file must be one JSON object per line, covering SOM
	// epochs, tournaments and both milestones.
	ef, err := os.Open(eventsOut)
	if err != nil {
		t.Fatalf("events file: %v", err)
	}
	defer ef.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(ef)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var e struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds[e.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"som_epoch", "encoder_ready", "generation", "category_trained"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in trace (saw %v)", k, kinds)
		}
	}
}

// TestCmdClassifyWithMetrics covers the Load + AttachTelemetry path.
func TestCmdClassifyWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	if err := cmdTrain([]string{"-profile", "smoke", "-scale", "0.006", "-out", model, "-quiet"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	metricsOut := filepath.Join(dir, "classify-metrics.json")
	if _, err := captureStdout(t, func() error {
		return cmdClassify([]string{"-model", model, "-profile", "smoke",
			"-scale", "0.006", "-limit", "3", "-metrics", metricsOut, "-quiet"})
	}); err != nil {
		t.Fatalf("classify: %v", err)
	}
	data, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("invalid snapshot: %v", err)
	}
	if snap.Histograms["core.classify.seconds"].Count == 0 {
		t.Error("classification latency missing from snapshot")
	}
	if snap.Counters["core.encode.cache.misses"] == 0 {
		t.Errorf("encode-cache misses missing: %v", snap.Counters)
	}
}
