package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/registry"
)

// cmdPublish copies a trained snapshot (tdc train -out) into a model
// registry directory as an immutable (model, version) pair, ready for
// `tdc serve -models-dir`. The copy is atomic — a serving rescan sees
// either nothing or the complete version — and the snapshot is fully
// loaded here first, so a registry never gains a version that cannot
// serve.
func cmdPublish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	dir := fs.String("models-dir", "models", "registry directory to publish into (created if missing)")
	name := fs.String("name", "", "model name to publish under (required)")
	version := fs.String("version", "", "version name, e.g. v1 (required)")
	snapshot := fs.String("snapshot", "", "snapshot file to publish (required)")
	kernel := fs.String("kernel", "", "record an encode-kernel override for this version (float64, float32, legacy; empty inherits the server's)")
	method := fs.String("method", "", "require the snapshot's feature-selection method (df, ig, mi, nouns, chi; empty accepts any)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *version == "" || *snapshot == "" {
		return errors.New("publish needs -name, -version and -snapshot")
	}
	var m featsel.Method
	if *method != "" {
		var err error
		if m, err = methodByName(*method); err != nil {
			return err
		}
	}
	// Deep-validate before publishing: registry.Publish only checks the
	// header, but a version that cannot load has no business in a
	// registry a server scans.
	if _, _, err := core.LoadFile(*snapshot); err != nil {
		return fmt.Errorf("snapshot does not load: %w", err)
	}
	//lint:ignore determinism publish stamp: CreatedAt orders registry versions, it never reaches model state
	now := time.Now()
	man, err := registry.Publish(*dir, *name, *version, *snapshot, registry.PublishOptions{
		CreatedAt: now,
		Kernel:    *kernel,
		Method:    m,
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %s/%s (sha256 %s, %d bytes, method %s)\n",
		man.Model, man.Version, man.SHA256, man.Bytes, man.FeatureMethod)
	return nil
}
