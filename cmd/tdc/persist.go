package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/experiments"
	"temporaldoc/internal/reuters"
	"temporaldoc/internal/textproc"
)

// cmdTrain trains a model (on the synthetic corpus or supplied SGML
// files) and persists it as JSON.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	method := fs.String("method", "df", "feature selection: df, ig, mi, nouns, chi")
	profile := fs.String("profile", "smoke", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	out := fs.String("out", "model.json", "output model file")
	sgml := fs.String("sgml", "", "comma-free glob of SGML training files (default: synthetic corpus)")
	pf := registerPerfFlags(fs)
	tf := registerTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	stop, err := pf.apply(&p)
	if err != nil {
		return err
	}
	defer stop()
	ts, err := tf.start()
	if err != nil {
		return err
	}
	defer ts.close()
	ts.apply(&p)
	m, err := methodByName(*method)
	if err != nil {
		return err
	}
	c, err := loadOrGenerate(p, *sgml)
	if err != nil {
		return err
	}
	ts.log.Info("training", "documents", len(c.Train), "categories", len(c.Categories))
	cfg := p.CoreConfig(m)
	cfg.Progress = ts.trainProgress()
	model, err := core.Train(cfg, c)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := model.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	info, _ := f.Stat()
	var size int64
	if info != nil {
		size = info.Size()
	}
	// Check Close before announcing success: a buffered-write failure
	// here means the model on disk is truncated.
	if err := f.Close(); err != nil {
		return err
	}
	ts.log.Info("model written", "path", *out, "bytes", size)
	return nil
}

// cmdClassify loads a persisted model and classifies the documents of an
// SGML file (or the synthetic test split when none is given).
func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "persisted model file")
	method := fs.String("method", "", "require the snapshot's feature-selection method (df, ig, mi, nouns, chi; empty accepts any)")
	kernel := fs.String("kernel", "", "level-2 encode kernel: float64 (default), float32 (opt-in reduced precision), legacy (dense reference)")
	sgml := fs.String("sgml", "", "SGML file with documents to classify (default: synthetic test split)")
	profile := fs.String("profile", "smoke", "profile for the default synthetic corpus")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	limit := fs.Int("limit", 20, "maximum documents to print")
	tf := registerTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ts, err := tf.start()
	if err != nil {
		return err
	}
	defer ts.close()
	model, info, err := core.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	// A model scored under the wrong feature-selection method silently
	// produces garbage (the keep-sets and encoder belong to the
	// recorded method), so an explicit request must match the snapshot
	// header exactly.
	if *method != "" {
		want, err := methodByName(*method)
		if err != nil {
			return err
		}
		if got := model.FeatureMethod(); got != want {
			return fmt.Errorf("model %s was trained with feature method %q, not the requested %q",
				*modelPath, got, want)
		}
	}
	if err := model.SetKernel(*kernel); err != nil {
		return err
	}
	ts.log.Info("model loaded", "path", info.Path, "sha256", info.SHA256,
		"method", string(model.FeatureMethod()), "kernel", model.Kernel())
	// Loaded models start silent; retrofit the session's registry so
	// classification latency and cache hit rates land in -metrics.
	model.AttachTelemetry(ts.reg, nil)
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	c, err := loadOrGenerate(p, *sgml)
	if err != nil {
		return err
	}
	docs := c.Test
	if len(docs) > *limit {
		docs = docs[:*limit]
	}
	correct, total := 0, 0
	for i := range docs {
		predicted, err := model.Classify(&docs[i])
		if err != nil {
			return err
		}
		fmt.Printf("%-22s true=%v predicted=%v\n", docs[i].ID, docs[i].Categories, predicted)
		for _, cat := range model.Categories() {
			actual := docs[i].HasCategory(cat)
			pred := false
			for _, pc := range predicted {
				if pc == cat {
					pred = true
					break
				}
			}
			if actual == pred {
				correct++
			}
			total++
		}
	}
	fmt.Printf("\nper-(document,category) accuracy: %.2f over %d decisions\n",
		float64(correct)/float64(total), total)
	return nil
}

// cmdStats prints corpus statistics for the synthetic corpus or a
// supplied SGML file.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	profile := fs.String("profile", "quick", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	sgml := fs.String("sgml", "", "SGML file to analyse (default: synthetic corpus)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	c, err := loadOrGenerate(p, *sgml)
	if err != nil {
		return err
	}
	fmt.Println("== training split ==")
	fmt.Print(corpus.ComputeStats(c.Train).Format())
	fmt.Println("\n== test split ==")
	fmt.Print(corpus.ComputeStats(c.Test).Format())
	fmt.Println("\n== category vocabulary overlap ==")
	fmt.Print(experiments.CategoryOverlap(c).Format())
	return nil
}

// cmdInspect prints the inspection report of a persisted model.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "persisted model file")
	rules := fs.Bool("rules", false, "also print each category's simplified rule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	model, err := core.Load(f)
	if err != nil {
		return err
	}
	fmt.Print(model.Report().Format())
	if *rules {
		for _, cat := range model.Categories() {
			rule, err := model.SimplifiedRule(cat)
			if err != nil {
				return err
			}
			fmt.Printf("\n%s:\n  %s\n", cat, rule)
		}
	}
	return nil
}

// loadOrGenerate loads an SGML corpus from a file or generates the
// profile's synthetic one.
func loadOrGenerate(p experiments.Profile, sgmlPath string) (*corpus.Corpus, error) {
	if sgmlPath == "" {
		return p.Corpus()
	}
	f, err := os.Open(sgmlPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raws, err := reuters.ParseSGML(io.Reader(f))
	if err != nil {
		return nil, err
	}
	pre := textproc.NewPreprocessor(textproc.Options{})
	c := reuters.BuildCorpus(raws, reuters.Top10, pre)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("loaded corpus: %w", err)
	}
	return c, nil
}
