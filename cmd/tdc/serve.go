package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"temporaldoc/internal/featsel"
	"temporaldoc/internal/serve"
	"temporaldoc/internal/telemetry"
)

// cmdServe runs the long-lived classification server over a persisted
// model snapshot (-model) or a model registry directory (-models-dir,
// multi-tenant: requests pick a model/version, cold models load lazily
// into a bounded resident cache).
//
// Lifecycle: SIGHUP (or POST /v1/reload) re-reads -model and swaps it
// in atomically — or rescans -models-dir in registry mode;
// SIGINT/SIGTERM stop accepting connections, drain in-flight requests
// for up to -drain, then exit.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "persisted model snapshot to serve")
	modelsDir := fs.String("models-dir", "", "model registry directory to serve (multi-tenant; mutually exclusive with -model)")
	defaultModel := fs.String("default-model", "", "model unnamed requests resolve to in registry mode (default: the sole published model)")
	resident := fs.Int("resident", 0, "max models resident at once in registry mode (default 4)")
	residentBytes := fs.Int64("resident-bytes", 0, "max summed snapshot bytes resident in registry mode (0 = unlimited)")
	addr := fs.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
	method := fs.String("method", "", "require the snapshot's feature-selection method (df, ig, mi, nouns, chi; empty accepts any)")
	kernel := fs.String("kernel", "", "level-2 encode kernel: float64 (default), float32 (opt-in reduced precision), legacy (dense reference)")
	workers := fs.Int("workers", 0, "classification worker count (default GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued-request bound before 503s (default 64)")
	maxBatch := fs.Int("max-batch", 0, "documents per batch request (default 64)")
	maxBody := fs.Int64("max-body", 0, "request body byte limit (default 1 MiB)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline before 504")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown connection drain budget")
	traceSample := fs.Int("trace-sample", 0, "emit every Nth request as a JSONL trace record to -trace-events (0 disables)")
	tf := registerTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m featsel.Method
	if *method != "" {
		var err error
		if m, err = methodByName(*method); err != nil {
			return err
		}
	}
	ts, err := tf.start()
	if err != nil {
		return err
	}
	defer ts.close()
	// Serving always records metrics — the registry backs /v1/modelz —
	// even when no telemetry flag asked for a snapshot file.
	reg := ts.reg
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	if *traceSample > 0 && ts.events == nil {
		return errors.New("-trace-sample needs -trace-events to write the records to")
	}

	// -model has a default for the single-model path; in registry mode it
	// only counts when the user actually set it (then the modes conflict).
	mp := *modelPath
	if *modelsDir != "" {
		modelSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "model" {
				modelSet = true
			}
		})
		if !modelSet {
			mp = ""
		}
	}

	srv, err := serve.New(serve.Config{
		ModelPath:        mp,
		ModelsDir:        *modelsDir,
		DefaultModel:     *defaultModel,
		Resident:         *resident,
		ResidentBytes:    *residentBytes,
		Method:           m,
		Kernel:           *kernel,
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxBatch:         *maxBatch,
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *timeout,
		Metrics:          reg,
		Log:              ts.log,
		Trace:            ts.events,
		TraceSampleEvery: *traceSample,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	// Scripted callers (serve-smoke, examples) parse this line to find
	// the bound port, so it goes to stdout, not the logger.
	fmt.Printf("serving on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigCh)

	for {
		select {
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if srv.MultiTenant() {
					if stats, err := srv.Rescan(); err != nil {
						ts.log.Error("SIGHUP rescan failed; previous catalog keeps serving", "err", err)
					} else {
						ts.log.Info("SIGHUP rescan done", "models", stats.Models, "versions", stats.Versions,
							"skipped", stats.Skipped, "temp_dirs", stats.TempDirs)
					}
				} else if snap, err := srv.Reload(); err != nil {
					ts.log.Error("SIGHUP reload failed; previous model keeps serving", "err", err)
				} else {
					ts.log.Info("SIGHUP reload done", "sha256", snap.Info.SHA256)
				}
				continue
			}
			ts.log.Info("shutting down", "signal", sig.String(), "drain", *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			err := hs.Shutdown(ctx)
			cancel()
			<-serveErr // Serve has returned ErrServerClosed by now
			srv.Close()
			if err != nil {
				return fmt.Errorf("drain incomplete: %w", err)
			}
			return nil
		case err := <-serveErr:
			srv.Close()
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}
