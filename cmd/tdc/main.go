// Command tdc is the temporal document classifier CLI: it generates the
// synthetic Reuters-like corpus, trains the paper's system, evaluates it
// against the baselines, prints evolved rules and renders word-tracking
// traces.
//
// Usage:
//
//	tdc generate -scale 0.05 -out corpus.sgm
//	tdc evaluate -method df -profile quick
//	tdc compare  -method mi -profile quick
//	tdc trace    -category earn -profile smoke
//	tdc rule     -category earn -profile smoke
//	tdc publish  -models-dir models -name earn -version v1 -snapshot model.json
//	tdc serve    -model model.json -addr localhost:8080
//	tdc serve    -models-dir models -resident 4
//	tdc loadgen  -target http://localhost:8080 -duration 10s
//
// All subcommands are deterministic for a fixed -seed; serve and
// loadgen are the long-lived exceptions (they answer or generate live
// traffic, but classification itself stays deterministic per model
// snapshot, and loadgen's request stream is seed-reproducible).
package main

import (
	"flag"
	"fmt"
	"os"

	"temporaldoc/internal/core"
	"temporaldoc/internal/experiments"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/metrics"
	"temporaldoc/internal/reuters"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "rule":
		err = cmdRule(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "publish":
		err = cmdPublish(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "sizing":
		err = cmdSizing(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tdc: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `tdc — temporal document classifier (Luo & Zincir-Heywood, ICDE 2007)

Subcommands:
  generate   write the synthetic Reuters-like corpus as SGML
  evaluate   train ProSys under one feature selection and report F1
  compare    train ProSys and the baselines, print the comparison table
  trace      render a word-tracking trace (Figures 5/6)
  rule       print a category's evolved RLGP rule
  train      train a model and persist it as JSON
  classify   classify SGML documents with a persisted model
  publish    publish a snapshot into a model registry directory
  serve      serve a persisted model (or model registry) over an HTTP JSON API
  loadgen    benchmark a running serve instance with synthetic traffic
  stats      print corpus statistics
  sizing     search SOM geometries by quantisation error (AWC study)
  inspect    summarise a persisted model (rules, thresholds, BMUs)

Run 'tdc <subcommand> -h' for flags.`)
}

// profileFlag resolves -profile into an experiments.Profile.
func profileByName(name string, seed int64, scale float64) (experiments.Profile, error) {
	var p experiments.Profile
	switch name {
	case "smoke":
		p = experiments.SmokeProfile()
	case "quick":
		p = experiments.QuickProfile()
	case "full":
		p = experiments.FullProfile()
	default:
		return p, fmt.Errorf("unknown profile %q (smoke, quick, full)", name)
	}
	if seed != 0 {
		p.Seed = seed
	}
	if scale > 0 {
		p.Scale = scale
	}
	return p, nil
}

func methodByName(name string) (featsel.Method, error) {
	switch featsel.Method(name) {
	case featsel.DF, featsel.IG, featsel.MI, featsel.Nouns, featsel.CHI:
		return featsel.Method(name), nil
	}
	return "", fmt.Errorf("unknown feature method %q (df, ig, mi, nouns)", name)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "fraction of the ModApte split sizes")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := reuters.DefaultGenConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	c, err := reuters.GenerateCorpus(cfg)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := reuters.RenderSGML(f, c, *seed); err != nil {
			_ = f.Close()
			return err
		}
		// A dropped Close error on a just-written file can hide lost data.
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := reuters.RenderSGML(os.Stdout, c, *seed); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d train / %d test documents across %d categories\n",
		len(c.Train), len(c.Test), len(c.Categories))
	return nil
}

func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	method := fs.String("method", "df", "feature selection: df, ig, mi, nouns, chi")
	profile := fs.String("profile", "quick", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	breakeven := fs.Bool("breakeven", false, "also report per-category P/R break-even and average precision")
	pf := registerPerfFlags(fs)
	tf := registerTelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	stop, err := pf.apply(&p)
	if err != nil {
		return err
	}
	defer stop()
	ts, err := tf.start()
	if err != nil {
		return err
	}
	defer ts.close()
	ts.apply(&p)
	m, err := methodByName(*method)
	if err != nil {
		return err
	}
	c, err := p.Corpus()
	if err != nil {
		return err
	}
	fmt.Printf("profile %s, corpus %d train / %d test, method %s\n",
		p.Name, len(c.Train), len(c.Test), m)
	model, err := p.TrainProSys(c, m)
	if err != nil {
		return err
	}
	set, err := model.Evaluate(c.Test)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %8s %8s\n", "Category", "Recall", "Prec", "F1")
	for _, cat := range c.Categories {
		tab := set.Table(cat)
		fmt.Printf("%-12s %8.2f %8.2f %8.2f\n", cat, tab.Recall(), tab.Precision(), tab.F1())
	}
	fmt.Printf("%-12s %26.2f\n", "Macro Ave.", set.MacroF1())
	fmt.Printf("%-12s %26.2f\n", "Micro Ave.", set.MicroF1())
	if *breakeven {
		fmt.Printf("\n%-12s %10s %10s\n", "Category", "BreakEven", "AvgPrec")
		for _, cat := range c.Categories {
			scores := make([]float64, len(c.Test))
			labels := make([]bool, len(c.Test))
			for i := range c.Test {
				s, err := model.Score(cat, &c.Test[i])
				if err != nil {
					return err
				}
				scores[i] = s
				labels[i] = c.Test[i].HasCategory(cat)
			}
			be, err := metrics.BreakEven(scores, labels)
			if err != nil {
				fmt.Printf("%-12s %10s %10s\n", cat, "n/a", "n/a")
				continue
			}
			ap, err := metrics.AveragePrecision(scores, labels)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %10.2f %10.2f\n", cat, be, ap)
		}
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	method := fs.String("method", "mi", "comparison table: mi (Table 5) or ig (Table 6)")
	profile := fs.String("profile", "quick", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	pf := registerPerfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	stop, err := pf.apply(&p)
	if err != nil {
		return err
	}
	defer stop()
	c, err := p.Corpus()
	if err != nil {
		return err
	}
	switch *method {
	case "mi":
		table, err := experiments.RunTable5(p, c)
		if err != nil {
			return err
		}
		fmt.Print(table.Format())
	case "ig":
		table, err := experiments.RunTable6(p, c)
		if err != nil {
			return err
		}
		fmt.Print(table.Format())
	default:
		return fmt.Errorf("unknown comparison %q (mi, ig)", *method)
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	category := fs.String("category", "earn", "category for the single-label trace")
	multi := fs.Bool("multi", false, "trace a multi-label document instead (Figure 6)")
	profile := fs.String("profile", "smoke", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	svg := fs.String("svg", "", "also write the trace as an SVG chart to this file")
	pf := registerPerfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	stop, err := pf.apply(&p)
	if err != nil {
		return err
	}
	defer stop()
	c, err := p.Corpus()
	if err != nil {
		return err
	}
	var res *experiments.TraceResult
	var model *core.Model
	title := "Figure 5. Classification label changes for a single-labeled document"
	if *multi {
		title = "Figure 6. Classification label changes for a multi-labeled document"
		res, model, err = experiments.RunFigure6(p, c)
	} else {
		res, model, err = experiments.RunFigure5(p, c, *category)
	}
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTrace(title, res))
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			return err
		}
		if err := experiments.TraceChart(title, res, model).WriteSVG(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "SVG chart written to %s\n", *svg)
	}
	return nil
}

func cmdRule(args []string) error {
	fs := flag.NewFlagSet("rule", flag.ExitOnError)
	category := fs.String("category", "earn", "category whose evolved rule to print")
	method := fs.String("method", "mi", "feature selection: df, ig, mi, nouns, chi")
	profile := fs.String("profile", "smoke", "experiment profile: smoke, quick, full")
	seed := fs.Int64("seed", 0, "override profile seed")
	scale := fs.Float64("scale", 0, "override corpus scale")
	pf := registerPerfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile, *seed, *scale)
	if err != nil {
		return err
	}
	stop, err := pf.apply(&p)
	if err != nil {
		return err
	}
	defer stop()
	m, err := methodByName(*method)
	if err != nil {
		return err
	}
	c, err := p.Corpus()
	if err != nil {
		return err
	}
	model, err := p.TrainProSys(c, m)
	if err != nil {
		return err
	}
	rule, err := model.Rule(*category)
	if err != nil {
		return err
	}
	cm := model.CategoryModelFor(*category)
	fmt.Printf("Evolved rule for category %q (fitness %.2f, threshold %.3f):\n%s\n",
		*category, cm.Fitness, cm.Threshold, rule)
	simplified, err := model.SimplifiedRule(*category)
	if err != nil {
		return err
	}
	fmt.Printf("\nSimplified (introns removed):\n%s\n", simplified)
	return nil
}
