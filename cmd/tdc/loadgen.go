package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"temporaldoc/internal/loadgen"
)

// cmdLoadgen drives a running `tdc serve` with synthetic classify
// traffic and writes the measured report as JSON: client-side latency
// percentiles and error rates, plus the server's own /v1/statz view of
// the same window and the agreement verdicts between the two.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "http://localhost:8080", "base URL of the server under test")
	mode := fs.String("mode", "closed", "driving mode: closed (fixed concurrency) or open (arrival clock)")
	concurrency := fs.Int("concurrency", 0, "closed-loop workers / open-loop in-flight cap (0 = default)")
	rate := fs.Float64("rate", 0, "open-loop arrival rate, requests/second")
	arrival := fs.String("arrival", "poisson", "open-loop inter-arrival process: constant or poisson")
	warmup := fs.Duration("warmup", time.Second, "warmup window (driven, not measured)")
	duration := fs.Duration("duration", 10*time.Second, "measurement window")
	docMean := fs.Float64("doc-mean", 40, "mean document length, words")
	docStddev := fs.Float64("doc-stddev", 15, "document length standard deviation")
	docMin := fs.Int("doc-min", 5, "minimum document length")
	docMax := fs.Int("doc-max", 200, "maximum document length")
	batchMix := fs.String("batch-mix", "1=1", "batch-size mix as size=weight pairs, e.g. '1=3,8=1'")
	seed := fs.Int64("seed", 1, "request-stream seed (fixed seed = identical traffic)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "client-side per-request timeout")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseBatchMix(*batchMix)
	if err != nil {
		return err
	}

	cfg := loadgen.Config{
		BaseURL:        *target,
		Mode:           loadgen.Mode(*mode),
		Concurrency:    *concurrency,
		Rate:           *rate,
		Arrival:        loadgen.Arrival(*arrival),
		Warmup:         *warmup,
		Duration:       *duration,
		DocLen:         loadgen.LengthDist{Mean: *docMean, Stddev: *docStddev, Min: *docMin, Max: *docMax},
		BatchMix:       mix,
		Seed:           *seed,
		RequestTimeout: *reqTimeout,
	}

	// Ctrl-C ends the run early; Run treats the cancel as end-of-window
	// and still returns the report for what was measured.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tdc loadgen: close %s: %v\n", *out, err)
			}
		}()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
	// A one-line human summary on stderr, whatever the report sink.
	fmt.Fprintf(os.Stderr,
		"%s: %d sent, %.1f rps, p50 %.2fms p95 %.2fms p99 %.2fms, shed %.2f%%, timeout %.2f%%\n",
		rep.Mode, rep.Requests.Sent, rep.AchievedRPS,
		rep.Latency.P50MS, rep.Latency.P95MS, rep.Latency.P99MS,
		rep.ShedRate*100, rep.TimeoutRate*100)
	if s := rep.Server; s != nil && s.Error == "" {
		fmt.Fprintf(os.Stderr, "statz cross-check: counts_agree=%v (diff %d), percentiles_agree=%v (p50 ratio %.2f)\n",
			s.CountsAgree, s.CountsDiff, s.PercentilesAgree, s.P50RatioClient)
	}
	return nil
}

// parseBatchMix parses "1=3,8=1" into batch weights.
func parseBatchMix(s string) ([]loadgen.BatchWeight, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var mix []loadgen.BatchWeight
	for _, part := range strings.Split(s, ",") {
		size, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -batch-mix entry %q (want size=weight)", part)
		}
		n, err := strconv.Atoi(size)
		if err != nil {
			return nil, fmt.Errorf("bad -batch-mix size %q: %v", size, err)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -batch-mix weight %q: %v", weight, err)
		}
		mix = append(mix, loadgen.BatchWeight{Size: n, Weight: w})
	}
	return mix, nil
}
