package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// trainTestModel trains one tiny persisted model per test binary and
// returns its path; later callers reuse it.
var trainedModelPath string

func trainTestModel(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI training skipped in -short")
	}
	if trainedModelPath != "" {
		return trainedModelPath
	}
	dir, err := os.MkdirTemp("", "tdc-persist-test")
	if err != nil {
		t.Fatal(err)
	}
	// Not t.TempDir: the model outlives the first test that trains it.
	path := filepath.Join(dir, "model.json")
	if err := cmdTrain([]string{"-profile", "smoke", "-scale", "0.006",
		"-method", "df", "-out", path}); err != nil {
		t.Fatalf("train: %v", err)
	}
	trainedModelPath = path
	return path
}

// TestClassifyMethodValidation is the regression test for the
// load-path fix: `tdc classify -method X` must verify the snapshot
// header's feature-selection method instead of silently scoring with
// whatever the snapshot was trained under.
func TestClassifyMethodValidation(t *testing.T) {
	model := trainTestModel(t)

	t.Run("matching method accepted", func(t *testing.T) {
		if _, err := captureStdout(t, func() error {
			return cmdClassify([]string{"-model", model, "-method", "df",
				"-profile", "smoke", "-scale", "0.006", "-limit", "1"})
		}); err != nil {
			t.Fatalf("classify with matching -method: %v", err)
		}
	})

	t.Run("mismatching method rejected", func(t *testing.T) {
		_, err := captureStdout(t, func() error {
			return cmdClassify([]string{"-model", model, "-method", "mi",
				"-profile", "smoke", "-scale", "0.006", "-limit", "1"})
		})
		if err == nil {
			t.Fatal("classify accepted a -method the snapshot was not trained with")
		}
		for _, want := range []string{"df", "mi", "feature method"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})

	t.Run("unknown method rejected", func(t *testing.T) {
		_, err := captureStdout(t, func() error {
			return cmdClassify([]string{"-model", model, "-method", "tfidf",
				"-profile", "smoke", "-scale", "0.006", "-limit", "1"})
		})
		if err == nil {
			t.Fatal("classify accepted an unknown -method")
		}
	})
}

// TestClassifyRejectsCorruptMethodHeader covers the persist-path half:
// a snapshot whose header records a method this build does not know
// must fail to load with a clear error, not classify with a broken
// configuration.
func TestClassifyRejectsCorruptMethodHeader(t *testing.T) {
	model := trainTestModel(t)
	raw, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap["feature_method"]; got != "df" {
		t.Fatalf("snapshot header records method %v, want df", got)
	}
	snap["feature_method"] = "bogus"
	corrupt, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = captureStdout(t, func() error {
		return cmdClassify([]string{"-model", path, "-profile", "smoke",
			"-scale", "0.006", "-limit", "1"})
	})
	if err == nil {
		t.Fatal("snapshot with unknown feature_method loaded")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the offending method", err)
	}
}
