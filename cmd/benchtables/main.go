// Command benchtables regenerates every table and figure of the paper's
// evaluation section against the synthetic Reuters-like corpus.
//
// Usage:
//
//	benchtables                    # all tables and figures, quick profile
//	benchtables -table 4           # a single table (1, 2, 4, 5, 6)
//	benchtables -figure 5          # a single figure (3, 5, 6)
//	benchtables -ablations         # the DESIGN.md ablation suite
//	benchtables -profile full      # paper-scale budgets (very long)
package main

import (
	"flag"
	"fmt"
	"os"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/experiments"
	"temporaldoc/internal/lgp"
)

func main() {
	profile := flag.String("profile", "quick", "experiment profile: smoke, quick, full")
	table := flag.Int("table", 0, "regenerate a single table (1, 2, 4, 5, 6)")
	figure := flag.Int("figure", 0, "regenerate a single figure (3, 5, 6)")
	ablations := flag.Bool("ablations", false, "run the ablation suite instead of the paper tables")
	analysis := flag.Bool("analysis", false, "print the vocabulary-overlap and confusion analysis (section 8.1 discussion)")
	temporal := flag.Bool("temporal", false, "run the extension table: ProSys vs the related-work temporal systems")
	significance := flag.Bool("significance", false, "run the Yang&Liu significance tests: ProSys vs baselines under MI")
	seed := flag.Int64("seed", 0, "override profile seed")
	scale := flag.Float64("scale", 0, "override corpus scale")
	flag.Parse()

	var p experiments.Profile
	switch *profile {
	case "smoke":
		p = experiments.SmokeProfile()
	case "quick":
		p = experiments.QuickProfile()
	case "full":
		p = experiments.FullProfile()
	default:
		fmt.Fprintf(os.Stderr, "benchtables: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *scale > 0 {
		p.Scale = *scale
	}

	c, err := p.Corpus()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profile %s: %d train / %d test documents, %d categories\n\n",
		p.Name, len(c.Train), len(c.Test), len(c.Categories))

	if *ablations {
		runAblations(p, c)
		return
	}
	if *analysis {
		runAnalysis(p, c)
		return
	}
	if *temporal {
		table, err := experiments.RunTableTemporal(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(table.Format())
		return
	}
	if *significance {
		out, err := experiments.RunSignificance(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	wantTable := func(n int) bool { return *table == 0 && *figure == 0 || *table == n }
	wantFigure := func(n int) bool { return *table == 0 && *figure == 0 || *figure == n }

	if wantTable(1) {
		rows, err := experiments.RunTable1(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if wantTable(2) {
		fmt.Println(experiments.FormatTable2(lgp.DefaultConfig()))
	}
	if wantTable(4) {
		t4, err := experiments.RunTable4(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t4.Format())
	}
	if wantTable(5) {
		t5, err := experiments.RunTable5(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t5.Format())
	}
	if wantTable(6) {
		t6, err := experiments.RunTable6(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t6.Format())
	}
	if wantFigure(3) {
		out, err := experiments.RunFigure3(p, c, "earn")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if wantFigure(5) {
		res, _, err := experiments.RunFigure5(p, c, "earn")
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTrace(
			"Figure 5. Classification label changes for a single-labeled document", res))
	}
	if wantFigure(6) {
		res, _, err := experiments.RunFigure6(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatTrace(
			"Figure 6. Classification label changes for a multi-labeled document", res))
	}
}

func runAblations(p experiments.Profile, c *corpus.Corpus) {
	runners := []func(experiments.Profile, *corpus.Corpus) (*experiments.AblationResult, error){
		experiments.RunAblationRecurrence,
		experiments.RunAblationBMUFanout,
		experiments.RunAblationDSS,
		experiments.RunAblationDynamicPages,
		experiments.RunAblationMembership,
		experiments.RunAblationF1Fitness,
		experiments.RunAblationStratifiedDSS,
		experiments.RunAblationThresholdRule,
	}
	for _, run := range runners {
		res, err := run(p, c)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
	}
}

func runAnalysis(p experiments.Profile, c *corpus.Corpus) {
	fmt.Println(experiments.CategoryOverlap(c).Format())
	model, err := p.TrainProSys(c, "mi")
	if err != nil {
		fatal(err)
	}
	cm, err := experiments.RunConfusion(model, c)
	if err != nil {
		fatal(err)
	}
	fmt.Println(cm.Format())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
	os.Exit(1)
}
