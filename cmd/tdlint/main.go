// Command tdlint is the repository's domain-specific static-analysis
// gate (`make lint`). It loads packages through `go list` + go/types —
// no dependencies beyond the standard library — and applies the
// analyzers in internal/analysis/analyzers, each of which turns one of
// the pipeline's dynamic invariants (bit-deterministic training,
// perturbation-free telemetry, loss-free persistence) into a
// compile-time-checked contract. See DESIGN.md §7.
//
// Usage:
//
//	tdlint [flags] [packages]
//
//	-baseline file    subtract grandfathered findings (default tdlint.baseline)
//	-write-baseline   regenerate the baseline from the current findings
//	-checks a,b,c     run only the named checks
//	-list             print the available checks and exit
//	-json             one JSON object per finding, one per line, with
//	                  analyzer, position, message and suppression state
//	                  (suppressed findings included, marked)
//	-sarif            one SARIF 2.1.0 document on stdout (suppressed
//	                  findings included as suppressed results); mutually
//	                  exclusive with -json
//	-jobs n           analyze up to n packages concurrently within a
//	                  dependency level (default: number of CPUs)
//	-cache dir        root of the incremental analysis cache (default
//	                  os.UserCacheDir()/tdlint; "off" disables caching)
//	-v                print a per-analyzer timing table (facts and run
//	                  phases split out) and the cache hit/miss counters
//	                  to stderr
//
// Suppress a single finding with an in-source directive on the same
// line or the line above (the reason is mandatory):
//
//	//lint:ignore determinism seeded test-only shuffle
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/analyzers"
	"temporaldoc/internal/analysis/driver"
)

// telemetryPath is the import path of the real telemetry package the
// telemetrysafe contract is anchored to.
const telemetryPath = "temporaldoc/internal/telemetry"

// trainingEntries are the pipeline's reproducibility boundary: every
// function matching one of these "pkg.Prefix" patterns must be provably
// free of nondeterminism, transitively, across packages (see the purity
// analyzer). The list names the paths that produce or apply persisted
// model state.
func trainingEntries() []string {
	return []string{
		"som.Train",   // Map.Train, Map.TrainBatch
		"lgp.Run",     // Trainer.Run (the evolution loop)
		"hsom.Train",  // hierarchical encoder training
		"hsom.Encode", // encoding applies trained state; must replay identically
		"core.Train",  // the end-to-end pipeline entry
		"core.Classify",
		"core.Score",
	}
}

// seedEntries are the training/eval boundaries the seedflow analyzer
// guards: any RNG construction reachable from one of these must seed
// from explicit configuration (Config.Seed or a constant), never from
// time.Now, the global RNG, or an untraceable local. Classify/Score
// apply trained state without drawing randomness, so they are covered
// by purity alone.
func seedEntries() []string {
	return []string{
		"som.Train",
		"lgp.Run",
		"hsom.Train",
		"hsom.Encode",
		"core.Train",
	}
}

// assumePurePaths are packages pure by contract rather than analysis:
// telemetry reads the clock on purpose and is kept write-only (unable
// to perturb models) by the telemetrysafe analyzer plus core's
// byte-identity regression test.
func assumePurePaths() []string {
	return []string{"internal/telemetry"}
}

// repoAnalyzers is the deployed suite.
func repoAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analyzers.Determinism(),
		analyzers.FloatCmp(),
		analyzers.TelemetrySafe(telemetryPath),
		analyzers.ErrDrop(),
		analyzers.LoopCapture(),
		analyzers.Exhaustive(),
		analyzers.Purity(trainingEntries(), assumePurePaths()),
		analyzers.Seedflow(seedEntries()),
		analyzers.LockCheck(),
		analyzers.NilErr(),
		analyzers.HotAlloc(),
		analyzers.AtomicSafe(),
		analyzers.GoLeak(),
		analyzers.CtxFlow(),
		analyzers.ChanDisc(),
	}
}

// repoExcludes are the repository's path-level policy decisions, kept
// here (not in the analyzers) so the rules themselves stay portable:
//
//   - determinism is off inside internal/telemetry: that package
//     implements the timers, so it is the one place wall-clock reads
//     are the point. Telemetry stays write-only by construction
//     (guarded by core's byte-identity regression test), so its
//     internals cannot leak time into models.
func repoExcludes() map[string][]string {
	return map[string][]string{
		"determinism": {"internal/telemetry/"},
	}
}

// resolveCacheDir turns the -cache flag into a driver CacheDir: "off"
// (or a failed user-cache-dir lookup) disables caching, empty picks
// the per-user default.
func resolveCacheDir(flagValue string) string {
	switch flagValue {
	case "off":
		return ""
	case "":
		base, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(base, "tdlint")
	default:
		return flagValue
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	baseline := flag.String("baseline", "tdlint.baseline", "baseline file of grandfathered findings (empty to disable)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the baseline from current findings instead of failing")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default all)")
	list := flag.Bool("list", false, "list available checks and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding (suppressed ones included, marked)")
	sarifOut := flag.Bool("sarif", false, "emit one SARIF 2.1.0 document (suppressed findings included, marked)")
	jobs := flag.Int("jobs", 0, "packages analyzed concurrently per dependency level (0: one per CPU)")
	cacheDir := flag.String("cache", "", `incremental analysis cache directory (default os.UserCacheDir()/tdlint; "off" disables)`)
	verbose := flag.Bool("v", false, "print per-analyzer facts/run timings and cache counters to stderr")
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "tdlint: -json and -sarif are mutually exclusive")
		return 2
	}

	all := repoAnalyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts := driver.Options{
		BaselinePath:      *baseline,
		WriteBaseline:     *writeBaseline,
		Exclude:           repoExcludes(),
		IncludeSuppressed: *jsonOut || *sarifOut,
		Jobs:              *jobs,
		CacheDir:          resolveCacheDir(*cacheDir),
	}
	if *verbose {
		opts.Stats = driver.NewStats()
	}
	if *checks != "" {
		opts.Checks = strings.Split(*checks, ",")
	}
	findings, err := driver.RunCached(".", patterns, all, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdlint: %v\n", err)
		return 2
	}
	if opts.Stats != nil {
		fmt.Fprint(os.Stderr, opts.Stats.Table())
		if line := opts.Stats.CacheLine(); line != "" {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *writeBaseline {
		fmt.Fprintf(os.Stderr, "tdlint: baseline written to %s\n", *baseline)
		return 0
	}
	active := 0
	for _, f := range findings {
		if f.Active() {
			active++
		}
	}
	if *sarifOut {
		doc, err := driver.SARIF(findings, all)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdlint: %v\n", err)
			return 2
		}
		fmt.Println(string(doc))
	} else {
		for _, f := range findings {
			if *jsonOut {
				line, err := f.JSON()
				if err != nil {
					fmt.Fprintf(os.Stderr, "tdlint: %v\n", err)
					return 2
				}
				fmt.Println(string(line))
			} else {
				fmt.Println(f.String())
			}
		}
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "tdlint: %d finding(s)\n", active)
		return 1
	}
	return 0
}
