package temporaldoc_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"temporaldoc"
)

// ExamplePreprocess shows the paper's pre-processing: markup and
// non-textual data removed, stop words dropped, no stemming.
func ExamplePreprocess() {
	words := temporaldoc.Preprocess(
		"<TITLE>WHEAT EXPORTS</TITLE><BODY>The company shipped 3,000 tonnes of wheat.</BODY>")
	fmt.Println(strings.Join(words, " "))
	// Output: wheat exports company shipped tonnes wheat
}

// ExampleGenerateReutersLike shows deterministic corpus generation.
func ExampleGenerateReutersLike() {
	c, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{Scale: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(c.Categories), "categories")
	fmt.Println(c.Categories[0])
	// Output:
	// 10 categories
	// earn
}

// Example_endToEnd sketches the full train/classify/persist flow. The
// GP budget here is far below the paper's; see PaperConfig for the real
// parameters. (No Output comment: training time varies, so this example
// compiles but does not run under `go test`.)
func Example_endToEnd() {
	corpus, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{Scale: 0.02, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	model, err := temporaldoc.Train(temporaldoc.FastConfig(temporaldoc.DF), corpus)
	if err != nil {
		log.Fatal(err)
	}
	labels, err := model.Classify(&corpus.Test[0])
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := temporaldoc.SaveModel(&buf, model); err != nil {
		log.Fatal(err)
	}
	reloaded, err := temporaldoc.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	again, err := reloaded.Classify(&corpus.Test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(labels) == len(again))
}
