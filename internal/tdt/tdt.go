// Package tdt implements Topic Detection and Tracking on word streams —
// the application the paper's conclusion proposes for the temporal
// classifier ("we are going to test the proposed system on topic
// detection and tracking data sets as the next step").
//
// A Detector runs every category classifier of a trained model over a
// document word by word and converts the per-word output-register
// trajectories (the Figure 5/6 signal) into topical segments and drift
// events, with no segmentation supervision.
package tdt

import (
	"fmt"
	"sort"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
)

// Segment is a detected topical span of a document, in original word
// positions (inclusive bounds).
type Segment struct {
	Category  string
	StartWord int
	EndWord   int
	// Confidence is the mean squashed classifier output over the
	// segment's member words.
	Confidence float64
	// MemberWords is the number of member-word observations supporting
	// the segment.
	MemberWords int
}

// Drift is a detected change of the dominant topic.
type Drift struct {
	// WordIndex is the original document position where the dominant
	// topic changes.
	WordIndex int
	// From and To are the dominant categories before and after the
	// drift; From is empty at stream start.
	From, To string
}

// Config parameterises detection.
type Config struct {
	// Window is the smoothing window in member words. Zero means 3.
	Window int
	// MinConfidence is the smoothed output a category needs to own a
	// span. Zero means the category threshold (from the trained model)
	// is used on raw outputs instead of a fixed level.
	MinConfidence float64
	// Categories restricts detection; nil means all trained categories.
	Categories []string
}

// Detector segments word streams with a trained temporal classifier.
type Detector struct {
	model *core.Model
	cfg   Config
}

// NewDetector wraps a trained model. The model is used read-only.
func NewDetector(model *core.Model, cfg Config) (*Detector, error) {
	if model == nil {
		return nil, fmt.Errorf("tdt: nil model")
	}
	if cfg.Window <= 0 {
		cfg.Window = 3
	}
	if cfg.Categories == nil {
		cfg.Categories = model.Categories()
	} else {
		for _, cat := range cfg.Categories {
			if model.CategoryModelFor(cat) == nil {
				return nil, fmt.Errorf("tdt: category %q not in model", cat)
			}
		}
	}
	return &Detector{model: model, cfg: cfg}, nil
}

// smoothed returns, per member word of the category trace, the mean
// output over a centred window of Window member words.
func (d *Detector) smoothed(trace []core.TracePoint) []float64 {
	n := len(trace)
	out := make([]float64, n)
	half := d.cfg.Window / 2
	for i := 0; i < n; i++ {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += trace[k].Output
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Segments detects the topical spans of a document for every configured
// category: maximal runs of member words whose smoothed output stays
// above the decision level. Segments are returned sorted by start
// position, then category.
func (d *Detector) Segments(doc *corpus.Document) ([]Segment, error) {
	var segs []Segment
	for _, cat := range d.cfg.Categories {
		trace, err := d.model.Trace(cat, doc)
		if err != nil {
			return nil, err
		}
		if len(trace) == 0 {
			continue
		}
		level := d.cfg.MinConfidence
		if level == 0 {
			level = d.model.CategoryModelFor(cat).Threshold
		}
		smooth := d.smoothed(trace)
		start := -1
		var sum float64
		var count int
		flush := func(endIdx int) {
			if start < 0 {
				return
			}
			segs = append(segs, Segment{
				Category:    cat,
				StartWord:   trace[start].WordIndex,
				EndWord:     trace[endIdx].WordIndex,
				Confidence:  sum / float64(count),
				MemberWords: count,
			})
			start, sum, count = -1, 0, 0
		}
		for i := range trace {
			if smooth[i] > level {
				if start < 0 {
					start = i
				}
				sum += trace[i].Output
				count++
			} else {
				flush(i - 1)
			}
		}
		flush(len(trace) - 1)
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].StartWord != segs[j].StartWord {
			return segs[i].StartWord < segs[j].StartWord
		}
		return segs[i].Category < segs[j].Category
	})
	return segs, nil
}

// Dominant returns, per original word position covered by at least one
// segment, the category of the highest-confidence covering segment.
func Dominant(segs []Segment, docLen int) []string {
	owner := make([]string, docLen)
	conf := make([]float64, docLen)
	for _, s := range segs {
		for w := s.StartWord; w <= s.EndWord && w < docLen; w++ {
			if owner[w] == "" || s.Confidence > conf[w] {
				owner[w] = s.Category
				conf[w] = s.Confidence
			}
		}
	}
	return owner
}

// Drifts reduces a document's segments to the sequence of dominant-topic
// changes along the stream.
func (d *Detector) Drifts(doc *corpus.Document) ([]Drift, error) {
	segs, err := d.Segments(doc)
	if err != nil {
		return nil, err
	}
	owner := Dominant(segs, len(doc.Words))
	var drifts []Drift
	prev := ""
	for w, cat := range owner {
		if cat == "" || cat == prev {
			continue
		}
		drifts = append(drifts, Drift{WordIndex: w, From: prev, To: cat})
		prev = cat
	}
	return drifts, nil
}
