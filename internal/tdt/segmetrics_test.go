package tdt

import (
	"testing"

	"temporaldoc/internal/corpus"
)

func TestBoundaries(t *testing.T) {
	topics := []string{"a", "a", "b", "b", "", "b", "c"}
	got := Boundaries(topics)
	want := []bool{false, false, true, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Boundaries[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if got := Boundaries(nil); len(got) != 0 {
		t.Errorf("Boundaries(nil) = %v", got)
	}
	// Leading empties don't create boundaries.
	lead := Boundaries([]string{"", "", "a", "a"})
	for i, b := range lead {
		if b {
			t.Errorf("leading-empty boundary at %d", i)
		}
	}
}

func mkBoundaries(n int, at ...int) []bool {
	b := make([]bool, n)
	for _, i := range at {
		b[i] = true
	}
	return b
}

func TestPkPerfectHypothesis(t *testing.T) {
	ref := mkBoundaries(40, 20)
	pk, err := Pk(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if pk != 0 {
		t.Errorf("Pk(ref, ref) = %v", pk)
	}
	wd, err := WindowDiff(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if wd != 0 {
		t.Errorf("WindowDiff(ref, ref) = %v", wd)
	}
}

func TestPkDegradesWithDistance(t *testing.T) {
	ref := mkBoundaries(60, 30)
	near := mkBoundaries(60, 32)
	far := mkBoundaries(60, 50)
	pkNear, err := Pk(ref, near)
	if err != nil {
		t.Fatal(err)
	}
	pkFar, err := Pk(ref, far)
	if err != nil {
		t.Fatal(err)
	}
	if pkNear >= pkFar {
		t.Errorf("Pk near (%v) not below far (%v)", pkNear, pkFar)
	}
}

func TestWindowDiffPenalisesExtraBoundaries(t *testing.T) {
	ref := mkBoundaries(60, 30)
	over := mkBoundaries(60, 10, 20, 30, 40, 50)
	wdRef, err := WindowDiff(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	wdOver, err := WindowDiff(ref, over)
	if err != nil {
		t.Fatal(err)
	}
	if wdOver <= wdRef {
		t.Errorf("over-segmentation not penalised: %v vs %v", wdOver, wdRef)
	}
}

func TestPkErrors(t *testing.T) {
	if _, err := Pk(mkBoundaries(10), mkBoundaries(9)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pk(mkBoundaries(2), mkBoundaries(2)); err == nil {
		t.Error("too-short sequence accepted")
	}
	if _, err := WindowDiff(mkBoundaries(10), mkBoundaries(9)); err == nil {
		t.Error("WindowDiff length mismatch accepted")
	}
}

func TestMetricsInUnitRange(t *testing.T) {
	ref := mkBoundaries(50, 10, 25, 40)
	hyp := mkBoundaries(50, 5, 22, 48)
	pk, err := Pk(ref, hyp)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := WindowDiff(ref, hyp)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{pk, wd} {
		if v < 0 || v > 1 {
			t.Errorf("metric %v out of [0,1]", v)
		}
	}
}

func TestEvaluateSegmentationEndToEnd(t *testing.T) {
	model, c := trainedModel(t)
	d, err := NewDetector(model, Config{Categories: []string{"earn", "crude"}})
	if err != nil {
		t.Fatal(err)
	}
	// Build a two-segment stream with a known reference segmentation.
	var earnDoc, crudeDoc *corpus.Document
	for i := range c.Test {
		doc := &c.Test[i]
		if len(doc.Categories) == 1 && doc.Categories[0] == "earn" && earnDoc == nil {
			earnDoc = doc
		}
		if len(doc.Categories) == 1 && doc.Categories[0] == "crude" && crudeDoc == nil {
			crudeDoc = doc
		}
	}
	if earnDoc == nil || crudeDoc == nil {
		t.Skip("source docs missing")
	}
	stream := corpus.Document{
		ID:    "segeval",
		Words: append(append([]string{}, earnDoc.Words...), crudeDoc.Words...),
	}
	ref := make([]string, len(stream.Words))
	for i := range ref {
		if i < len(earnDoc.Words) {
			ref[i] = "earn"
		} else {
			ref[i] = "crude"
		}
	}
	pk, wd, err := d.EvaluateSegmentation(&stream, ref)
	if err != nil {
		t.Fatalf("EvaluateSegmentation: %v", err)
	}
	for _, v := range []float64{pk, wd} {
		if v < 0 || v > 1 {
			t.Errorf("metric %v out of range", v)
		}
	}
	// Reference mismatch is rejected.
	if _, _, err := d.EvaluateSegmentation(&stream, ref[:3]); err == nil {
		t.Error("short reference accepted")
	}
}
