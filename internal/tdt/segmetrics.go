package tdt

import (
	"fmt"

	"temporaldoc/internal/corpus"
)

// Segmentation evaluation: Pk (Beeferman et al. 1999) and WindowDiff
// (Pevzner & Hearst 2002), the standard text-segmentation error metrics
// for Topic Detection and Tracking. Both slide a window of half the
// mean true segment length over the stream and count disagreements
// between the reference and hypothesised boundaries; both are error
// rates in [0, 1], lower is better.

// Boundaries converts a per-position topic assignment (as produced by
// Dominant) into a boundary indicator: boundary[i] is true when a new
// segment starts at position i (position 0 is never a boundary).
// Positions with empty topics inherit the previous topic, so only real
// topic changes count.
func Boundaries(topics []string) []bool {
	out := make([]bool, len(topics))
	prev := ""
	for i, tpc := range topics {
		cur := tpc
		if cur == "" {
			cur = prev
		}
		if i > 0 && cur != prev && cur != "" && prev != "" {
			out[i] = true
		}
		if cur != "" {
			prev = cur
		}
	}
	return out
}

// meanSegmentLength returns the average true segment length, used to
// derive the evaluation window (half of it, per the literature).
func meanSegmentLength(ref []bool) float64 {
	if len(ref) == 0 {
		return 0
	}
	segments := 1
	for _, b := range ref {
		if b {
			segments++
		}
	}
	return float64(len(ref)) / float64(segments)
}

// windowFor derives the Pk/WindowDiff window: half the mean reference
// segment length, at least 2.
func windowFor(ref []bool) int {
	k := int(meanSegmentLength(ref) / 2)
	if k < 2 {
		k = 2
	}
	return k
}

// Pk computes the Beeferman Pk error: the probability that a randomly
// chosen pair of positions k apart is classified inconsistently (same
// segment in the reference but different in the hypothesis, or vice
// versa). ref and hyp are boundary indicators of equal length.
func Pk(ref, hyp []bool) (float64, error) {
	if len(ref) != len(hyp) {
		return 0, fmt.Errorf("tdt: Pk length mismatch %d vs %d", len(ref), len(hyp))
	}
	k := windowFor(ref)
	if len(ref) <= k {
		return 0, fmt.Errorf("tdt: sequence of %d too short for window %d", len(ref), k)
	}
	disagreements, total := 0, 0
	for i := 0; i+k < len(ref); i++ {
		refSame := !anyBoundary(ref, i+1, i+k)
		hypSame := !anyBoundary(hyp, i+1, i+k)
		if refSame != hypSame {
			disagreements++
		}
		total++
	}
	return float64(disagreements) / float64(total), nil
}

// WindowDiff computes the Pevzner–Hearst error: the fraction of windows
// where the number of reference and hypothesised boundaries differ.
func WindowDiff(ref, hyp []bool) (float64, error) {
	if len(ref) != len(hyp) {
		return 0, fmt.Errorf("tdt: WindowDiff length mismatch %d vs %d", len(ref), len(hyp))
	}
	k := windowFor(ref)
	if len(ref) <= k {
		return 0, fmt.Errorf("tdt: sequence of %d too short for window %d", len(ref), k)
	}
	disagreements, total := 0, 0
	for i := 0; i+k < len(ref); i++ {
		if countBoundaries(ref, i+1, i+k) != countBoundaries(hyp, i+1, i+k) {
			disagreements++
		}
		total++
	}
	return float64(disagreements) / float64(total), nil
}

func anyBoundary(b []bool, lo, hi int) bool {
	for i := lo; i <= hi; i++ {
		if b[i] {
			return true
		}
	}
	return false
}

func countBoundaries(b []bool, lo, hi int) int {
	n := 0
	for i := lo; i <= hi; i++ {
		if b[i] {
			n++
		}
	}
	return n
}

// EvaluateSegmentation scores the detector against a reference topic
// assignment over a document (e.g. the generator's known segment
// structure): it runs Segments+Dominant and reports Pk and WindowDiff
// against the reference boundaries.
func (d *Detector) EvaluateSegmentation(doc *corpus.Document, refTopics []string) (pk, wd float64, err error) {
	if len(refTopics) != len(doc.Words) {
		return 0, 0, fmt.Errorf("tdt: reference covers %d of %d words", len(refTopics), len(doc.Words))
	}
	segs, err := d.Segments(doc)
	if err != nil {
		return 0, 0, err
	}
	hyp := Boundaries(Dominant(segs, len(doc.Words)))
	ref := Boundaries(refTopics)
	pk, err = Pk(ref, hyp)
	if err != nil {
		return 0, 0, err
	}
	wd, err = WindowDiff(ref, hyp)
	return pk, wd, err
}
