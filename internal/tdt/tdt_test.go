package tdt

import (
	"testing"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/reuters"
)

var (
	sharedModel  *core.Model
	sharedCorpus *corpus.Corpus
)

func trainedModel(t *testing.T) (*core.Model, *corpus.Corpus) {
	t.Helper()
	if sharedModel != nil {
		return sharedModel, sharedCorpus
	}
	gen := reuters.DefaultGenConfig()
	gen.Scale = 0.01
	gen.Seed = 4
	c, err := reuters.GenerateCorpus(gen)
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 25
	gp.Tournaments = 500
	gp.MaxPages = 4
	gp.MaxPageSize = 4
	gp.DSS = &lgp.DSSConfig{SubsetSize: 25, Interval: 40}
	model, err := core.Train(core.Config{
		FeatureMethod: featsel.MI,
		FeatureConfig: featsel.Config{PerCategoryN: 30},
		Encoder: hsom.Config{
			CharWidth: 5, CharHeight: 5,
			WordWidth: 4, WordHeight: 4,
			CharEpochs: 2, WordEpochs: 4,
			Seed: 2,
		},
		GP:       gp,
		Restarts: 1,
		Seed:     9,
	}, c)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	sharedModel, sharedCorpus = model, c
	return model, c
}

func TestNewDetectorValidation(t *testing.T) {
	model, _ := trainedModel(t)
	if _, err := NewDetector(nil, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewDetector(model, Config{Categories: []string{"bogus"}}); err == nil {
		t.Error("unknown category accepted")
	}
	d, err := NewDetector(model, Config{})
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	if d.cfg.Window != 3 {
		t.Errorf("default window = %d", d.cfg.Window)
	}
	if len(d.cfg.Categories) != len(model.Categories()) {
		t.Error("default categories not populated")
	}
}

func TestSegmentsWellFormed(t *testing.T) {
	model, c := trainedModel(t)
	d, err := NewDetector(model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Test[:15] {
		doc := &c.Test[i]
		segs, err := d.Segments(doc)
		if err != nil {
			t.Fatalf("Segments: %v", err)
		}
		for _, s := range segs {
			if s.StartWord < 0 || s.EndWord >= len(doc.Words) || s.StartWord > s.EndWord {
				t.Errorf("doc %s: segment bounds %d..%d of %d words", doc.ID, s.StartWord, s.EndWord, len(doc.Words))
			}
			if s.MemberWords <= 0 {
				t.Errorf("segment with %d member words", s.MemberWords)
			}
			if s.Confidence < -1 || s.Confidence > 1 {
				t.Errorf("confidence %v out of range", s.Confidence)
			}
		}
		// Sorted by start position.
		for j := 1; j < len(segs); j++ {
			if segs[j-1].StartWord > segs[j].StartWord {
				t.Errorf("segments unsorted: %v", segs)
			}
		}
	}
}

func TestSegmentsDetectTrueCategory(t *testing.T) {
	model, c := trainedModel(t)
	d, err := NewDetector(model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Over the earn test docs, earn segments should appear in a majority
	// of documents (the classifier fires on its topical words).
	docs := c.TestFor("earn")
	if len(docs) > 20 {
		docs = docs[:20]
	}
	hits := 0
	for i := range docs {
		segs, err := d.Segments(&docs[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			if s.Category == "earn" {
				hits++
				break
			}
		}
	}
	if hits < len(docs)/2 {
		t.Errorf("earn segments found in %d/%d earn docs", hits, len(docs))
	}
}

func TestDominantOwnership(t *testing.T) {
	segs := []Segment{
		{Category: "a", StartWord: 0, EndWord: 4, Confidence: 0.5},
		{Category: "b", StartWord: 3, EndWord: 8, Confidence: 0.9},
	}
	owner := Dominant(segs, 10)
	if owner[0] != "a" || owner[2] != "a" {
		t.Errorf("prefix ownership: %v", owner)
	}
	// Overlap 3..4 goes to the higher-confidence b.
	if owner[3] != "b" || owner[4] != "b" || owner[8] != "b" {
		t.Errorf("overlap ownership: %v", owner)
	}
	if owner[9] != "" {
		t.Errorf("uncovered position owned: %v", owner)
	}
}

func TestDominantClampsToDocLength(t *testing.T) {
	segs := []Segment{{Category: "a", StartWord: 2, EndWord: 99, Confidence: 1}}
	owner := Dominant(segs, 5)
	if len(owner) != 5 || owner[4] != "a" {
		t.Errorf("clamping failed: %v", owner)
	}
}

func TestDriftsOnSplicedStream(t *testing.T) {
	model, c := trainedModel(t)
	d, err := NewDetector(model, Config{Categories: []string{"earn", "crude"}})
	if err != nil {
		t.Fatal(err)
	}
	// Build a stream with a hard topic switch.
	var earnDoc, crudeDoc *corpus.Document
	for i := range c.Test {
		t := &c.Test[i]
		if len(t.Categories) == 1 && t.Categories[0] == "earn" && earnDoc == nil {
			earnDoc = t
		}
		if len(t.Categories) == 1 && t.Categories[0] == "crude" && crudeDoc == nil {
			crudeDoc = t
		}
	}
	if earnDoc == nil || crudeDoc == nil {
		t.Skip("missing source documents")
	}
	stream := corpus.Document{
		ID:    "spliced",
		Words: append(append([]string{}, earnDoc.Words...), crudeDoc.Words...),
	}
	drifts, err := d.Drifts(&stream)
	if err != nil {
		t.Fatalf("Drifts: %v", err)
	}
	// Drift positions must be increasing and within bounds, and From/To
	// must chain.
	prev := -1
	for _, dr := range drifts {
		if dr.WordIndex <= prev || dr.WordIndex >= len(stream.Words) {
			t.Errorf("drift position %d invalid", dr.WordIndex)
		}
		prev = dr.WordIndex
		if dr.To == "" || dr.To == dr.From {
			t.Errorf("degenerate drift %+v", dr)
		}
	}
}

func TestSmoothedWindow(t *testing.T) {
	model, _ := trainedModel(t)
	d, err := NewDetector(model, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	trace := []core.TracePoint{
		{Output: 1}, {Output: -1}, {Output: 1}, {Output: -1},
	}
	s := d.smoothed(trace)
	if len(s) != 4 {
		t.Fatalf("smoothed length %d", len(s))
	}
	// Centre points average three neighbours: (1-1+1)/3 etc.
	if s[1] < 0.3 || s[1] > 0.34 {
		t.Errorf("smoothed[1] = %v, want ~1/3", s[1])
	}
	// Edge points average two.
	if s[0] != 0 {
		t.Errorf("smoothed[0] = %v, want 0", s[0])
	}
}
