// Package plot renders the paper's figures as standalone SVG files
// using only the standard library: word-tracking traces (Figures 5 and
// 6) as step lines over the word axis, and AWC/fitness curves for
// training diagnostics.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Color  string // CSS color; empty picks from the default cycle
	Dashed bool
}

// Chart is a simple line/step chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // pixels; zero means 720
	Height int // pixels; zero means 360
	YMin   float64
	YMax   float64
	FixedY bool // use YMin/YMax instead of auto-scaling
	Step   bool // render as step lines (word-tracking traces)
	HLines []float64
	Series []Series
}

var defaultColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf",
}

// WriteSVG renders the chart. It errors on charts without data.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 360
	}
	const marginL, marginR, marginT, marginB = 56, 16, 36, 44
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d xs and %d ys", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			points++
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: series contain no points")
	}
	if c.FixedY {
		yMin, yMax = c.YMin, c.YMax
	}
	// Degenerate (or collapsed-to-a-point) ranges get unit width; <=
	// rather than == so the guard is not an exact float comparison.
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	sx := func(x float64) float64 { return float64(marginL) + (x-xMin)/(xMax-xMin)*plotW }
	sy := func(y float64) float64 { return float64(marginT) + (yMax-y)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginL, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	// Y ticks: 5 divisions.
	for i := 0; i <= 4; i++ {
		y := yMin + (yMax-yMin)*float64(i)/4
		py := sy(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginL, py, width-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.2f</text>`+"\n",
			marginL-6, py+3, y)
	}
	// X ticks: 6 divisions.
	for i := 0; i <= 5; i++ {
		x := xMin + (xMax-xMin)*float64(i)/5
		px := sx(x)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%.0f</text>`+"\n",
			px, height-marginB+14, x)
	}
	// Axis labels.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			marginL+int(plotW/2), height-8, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			marginT+int(plotH/2), marginT+int(plotH/2), escape(c.YLabel))
	}
	// Horizontal reference lines (e.g. decision thresholds).
	for _, h := range c.HLines {
		if h < yMin || h > yMax {
			continue
		}
		py := sy(h)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#888" stroke-dasharray="4 3"/>`+"\n",
			marginL, py, width-marginR, py)
	}

	// Series.
	for si, s := range c.Series {
		color := s.Color
		if color == "" {
			color = defaultColors[si%len(defaultColors)]
		}
		var path strings.Builder
		for i := range s.X {
			px, py := sx(s.X[i]), sy(clamp(s.Y[i], yMin, yMax))
			if i == 0 {
				fmt.Fprintf(&path, "M%.1f %.1f", px, py)
				continue
			}
			if c.Step {
				prevY := sy(clamp(s.Y[i-1], yMin, yMax))
				fmt.Fprintf(&path, " L%.1f %.1f", px, prevY)
			}
			fmt.Fprintf(&path, " L%.1f %.1f", px, py)
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6 3"`
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"%s/>`+"\n",
			path.String(), color, dash)
		// Legend entry.
		lx := marginL + 10 + si*150
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			lx, marginT-8, lx+18, marginT-8, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			lx+22, marginT-4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
