package plot

import (
	"strings"
	"testing"
)

func chart() *Chart {
	return &Chart{
		Title:  "Trace",
		XLabel: "word",
		YLabel: "output",
		FixedY: true, YMin: -1, YMax: 1,
		Step:   true,
		HLines: []float64{0.25},
		Series: []Series{
			{Name: "earn", X: []float64{1, 2, 3}, Y: []float64{-0.5, 0.8, 0.9}},
			{Name: "grain", X: []float64{1, 2, 3}, Y: []float64{0.1, -0.2, -0.9}, Dashed: true},
		},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var b strings.Builder
	if err := chart().WriteSVG(&b); err != nil {
		t.Fatalf("WriteSVG: %v", err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "Trace", "earn", "grain",
		"stroke-dasharray", "<path", "word", "output"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("malformed SVG envelope")
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var b strings.Builder
	empty := &Chart{}
	if err := empty.WriteSVG(&b); err == nil {
		t.Error("empty chart accepted")
	}
	mismatched := &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := mismatched.WriteSVG(&b); err == nil {
		t.Error("mismatched series accepted")
	}
	noPoints := &Chart{Series: []Series{{Name: "x"}}}
	if err := noPoints.WriteSVG(&b); err == nil {
		t.Error("pointless chart accepted")
	}
}

func TestWriteSVGEscapesText(t *testing.T) {
	c := chart()
	c.Title = `<script>&"`
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<script>") {
		t.Error("title not escaped")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{5}, Y: []float64{2}}}}
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatalf("single-point chart rejected: %v", err)
	}
	if !strings.Contains(b.String(), "<path") {
		t.Error("no path drawn")
	}
}

func TestWriteSVGClampsToFixedRange(t *testing.T) {
	c := &Chart{
		FixedY: true, YMin: -1, YMax: 1,
		Series: []Series{{Name: "spiky", X: []float64{0, 1}, Y: []float64{-50, 50}}},
	}
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	// No coordinate may land far outside the canvas.
	if strings.Contains(b.String(), "NaN") {
		t.Error("NaN coordinates")
	}
}
