package lgp

import (
	"math/rand"
	"testing"
)

// Tests for the paper's future-work features: the F1-based fitness and
// the category-aware (stratified) DSS variant.

func TestFitnessKindValidation(t *testing.T) {
	cfg := testCfg()
	cfg.Fitness = "bogus"
	ex := []Example{{Inputs: [][]float64{{0, 0}}, Label: 1}}
	if _, err := NewTrainer(cfg, ex); err == nil {
		t.Error("unknown fitness kind accepted")
	}
	for _, kind := range []FitnessKind{"", FitnessSSE, FitnessF1} {
		cfg.Fitness = kind
		if _, err := NewTrainer(cfg, ex); err != nil {
			t.Errorf("fitness %q rejected: %v", kind, err)
		}
	}
}

func TestF1FitnessValues(t *testing.T) {
	cfg := testCfg()
	cfg.Fitness = FitnessF1
	// One positive, one negative example; a program accumulating I0
	// classifies both correctly.
	ex := []Example{
		{Inputs: [][]float64{{1, 0}}, Label: 1},
		{Inputs: [][]float64{{-1, 0}}, Label: -1},
	}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	perfect := &Program{Code: []Instruction{pack(ModeExternal, OpAdd, 0, 0)}}
	inverse := &Program{Code: []Instruction{pack(ModeExternal, OpSub, 0, 0)}}
	fp := tr.fitnessOn(perfect, []int{0, 1})
	fi := tr.fitnessOn(inverse, []int{0, 1})
	if fp >= fi {
		t.Errorf("perfect classifier fitness %v not below inverse %v", fp, fi)
	}
	// Perfect F1 leaves only the small SSE tie-breaker.
	if fp > 0.2 {
		t.Errorf("perfect classifier F1 fitness = %v, want near 0", fp)
	}
}

func TestF1FitnessEvolves(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	examples := accumulationExamples(rng, 12)
	cfg := testCfg()
	cfg.Fitness = FitnessF1
	tr, err := NewTrainer(cfg, examples)
	if err != nil {
		t.Fatal(err)
	}
	res := tr.Run()
	m := NewMachine(cfg.NumRegisters)
	correct := 0
	for _, ex := range examples {
		if m.RunSequence(res.Best, ex.Inputs)*ex.Label > 0 {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(examples)); frac < 0.75 {
		t.Errorf("F1-fitness evolution accuracy %v", frac)
	}
}

func TestStratifiedDSSKeepsClassBalance(t *testing.T) {
	// 10 positive, 30 negative examples; quota should track shares and
	// always include positives.
	var ex []Example
	for i := 0; i < 10; i++ {
		ex = append(ex, Example{Inputs: [][]float64{{1, 0}}, Label: 1})
	}
	for i := 0; i < 30; i++ {
		ex = append(ex, Example{Inputs: [][]float64{{-1, 0}}, Label: -1})
	}
	cfg := testCfg()
	cfg.DSS = &DSSConfig{SubsetSize: 8, Interval: 5, Stratify: true}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		tr.selectSubset()
		pos, neg := 0, 0
		seen := map[int]bool{}
		for _, i := range tr.Subset() {
			if seen[i] {
				t.Fatal("duplicate index in stratified subset")
			}
			seen[i] = true
			if ex[i].Label > 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos+neg != 8 {
			t.Fatalf("subset size %d", pos+neg)
		}
		// Expected quota: 8 * 10/40 = 2 positives.
		if pos != 2 {
			t.Errorf("trial %d: %d positives, want 2", trial, pos)
		}
	}
}

func TestStratifiedDSSRareClassAlwaysRepresented(t *testing.T) {
	var ex []Example
	ex = append(ex, Example{Inputs: [][]float64{{1, 0}}, Label: 1}) // single positive
	for i := 0; i < 50; i++ {
		ex = append(ex, Example{Inputs: [][]float64{{-1, 0}}, Label: -1})
	}
	cfg := testCfg()
	cfg.DSS = &DSSConfig{SubsetSize: 10, Interval: 5, Stratify: true}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		tr.selectSubset()
		found := false
		for _, i := range tr.Subset() {
			if ex[i].Label > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: positive example missing from stratified subset", trial)
		}
	}
}

func TestStratifiedDSSSubsetLargerThanData(t *testing.T) {
	ex := []Example{
		{Inputs: [][]float64{{1, 0}}, Label: 1},
		{Inputs: [][]float64{{-1, 0}}, Label: -1},
	}
	cfg := testCfg()
	cfg.DSS = &DSSConfig{SubsetSize: 100, Interval: 5, Stratify: true}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Subset()); got != 2 {
		t.Errorf("subset size %d, want 2", got)
	}
}
