package lgp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyDropsDeadCode(t *testing.T) {
	p := &Program{Code: []Instruction{
		pack(ModeExternal, OpAdd, 3, 0), // dead: R3 never feeds R0
		pack(ModeExternal, OpAdd, 1, 0), // feeds R1
		pack(ModeInternal, OpAdd, 0, 1), // R0 += R1
	}}
	s := p.Simplify(8, false)
	if len(s.Code) != 2 {
		t.Fatalf("simplified to %d instructions, want 2: %s",
			len(s.Code), s.Disassemble(8, 2))
	}
}

func TestSimplifyEmptyAndAllDead(t *testing.T) {
	empty := &Program{}
	if got := empty.Simplify(8, false); len(got.Code) != 0 {
		t.Errorf("empty program simplified to %d instructions", len(got.Code))
	}
	dead := &Program{Code: []Instruction{
		pack(ModeExternal, OpAdd, 5, 0),
		pack(ModeExternal, OpMul, 6, 1),
	}}
	if got := dead.Simplify(8, false); len(got.Code) != 0 {
		t.Errorf("fully dead program kept %d instructions", len(got.Code))
	}
}

// Non-recurrent equivalence: simplified and original programs produce
// identical outputs on single-pass execution.
func TestSimplifyPreservesSinglePassBehaviour(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		code := make([]Instruction, 1+rng.Intn(60))
		for i := range code {
			code[i] = randomInstruction(rng, &cfg)
		}
		p := &Program{Code: code}
		s := p.Simplify(8, false)
		in := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		m1, m2 := NewMachine(8), NewMachine(8)
		m1.Step(p, in)
		m2.Step(s, in)
		if math.Abs(m1.Output()-m2.Output()) > 1e-12 {
			t.Fatalf("trial %d: outputs diverge: %v vs %v\norig: %s\nsimp: %s",
				trial, m1.Output(), m2.Output(),
				p.Disassemble(8, 2), s.Disassemble(8, 2))
		}
	}
}

// Recurrent equivalence: with the conservative recurrent closure, the
// simplified program must reproduce the full output trajectory across
// multi-step sequences.
func TestSimplifyPreservesRecurrentBehaviour(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		code := make([]Instruction, 1+rng.Intn(60))
		for i := range code {
			code[i] = randomInstruction(rng, &cfg)
		}
		p := &Program{Code: code}
		s := p.Simplify(8, true)
		seq := make([][]float64, 4+rng.Intn(5))
		for i := range seq {
			seq[i] = []float64{rng.Float64()*2 - 1, rng.Float64()}
		}
		m1, m2 := NewMachine(8), NewMachine(8)
		t1, t2 := m1.Trace(p, seq), m2.Trace(s, seq)
		for i := range t1 {
			if math.Abs(t1[i]-t2[i]) > 1e-12 {
				t.Fatalf("trial %d step %d: %v vs %v", trial, i, t1[i], t2[i])
			}
		}
	}
}

func TestSimplifyShrinksEvolvedRules(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	examples := accumulationExamples(rng, 10)
	cfg := testCfg()
	tr, err := NewTrainer(cfg, examples)
	if err != nil {
		t.Fatal(err)
	}
	res := tr.Run()
	s := res.Best.Simplify(cfg.NumRegisters, true)
	if len(s.Code) > len(res.Best.Code) {
		t.Errorf("simplification grew the program: %d -> %d",
			len(res.Best.Code), len(s.Code))
	}
	// Behaviour preserved on the training examples.
	m1, m2 := NewMachine(cfg.NumRegisters), NewMachine(cfg.NumRegisters)
	for _, ex := range examples {
		a := m1.RunSequence(res.Best, ex.Inputs)
		b := m2.RunSequence(s, ex.Inputs)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("simplified rule diverges: %v vs %v", a, b)
		}
	}
}
