package lgp

// Simplify returns a copy of the program with structural introns
// removed: instructions that cannot influence the output register R0 at
// the end of execution (dead destination registers) are dropped by a
// backward dependency sweep. The simplified program computes the same
// R0 trajectory in both recurrent and feed-forward modes when run from
// a reset register file once per document — for recurrent use across
// MULTIPLE steps, registers written late can feed R0 on the next pass,
// so the sweep treats every register read anywhere in the program as
// live at the top (conservative recurrent closure).
//
// The paper notes evolved rules "can be easily stored in a database or
// embedded in programs"; Simplify makes the stored rule minimal.
func (p *Program) Simplify(nRegs int, recurrent bool) *Program {
	if len(p.Code) == 0 {
		return p.Clone()
	}
	needed := make([]bool, nRegs)
	needed[0] = true
	if recurrent {
		// In recurrent mode the program body re-executes with carried
		// register state: any register that some kept instruction reads
		// is live across iterations. Iterate to a fixed point.
		keep := p.markLive(nRegs, needed)
		for {
			liveReads := make([]bool, nRegs)
			liveReads[0] = true
			for i, k := range keep {
				if !k {
					continue
				}
				in := p.Code[i]
				liveReads[in.Dst(nRegs)] = true
				if in.Mode() == ModeInternal {
					liveReads[in.SrcReg(nRegs)] = true
				}
			}
			next := p.markLive(nRegs, liveReads)
			if equalBools(next, keep) {
				break
			}
			keep = next
		}
		return p.filter(keep)
	}
	return p.filter(p.markLive(nRegs, needed))
}

// markLive runs the backward sweep with the given initially-needed
// registers and returns the keep mask.
func (p *Program) markLive(nRegs int, neededAtEnd []bool) []bool {
	needed := append([]bool(nil), neededAtEnd...)
	keep := make([]bool, len(p.Code))
	for i := len(p.Code) - 1; i >= 0; i-- {
		in := p.Code[i]
		d := in.Dst(nRegs)
		if !needed[d] {
			continue
		}
		keep[i] = true
		// 2-address form Rd = Rd op Src: Rd stays needed; an internal
		// source register becomes needed.
		if in.Mode() == ModeInternal {
			needed[in.SrcReg(nRegs)] = true
		}
	}
	return keep
}

func (p *Program) filter(keep []bool) *Program {
	out := &Program{Code: make([]Instruction, 0, len(p.Code))}
	for i, k := range keep {
		if k {
			out.Code = append(out.Code, p.Code[i])
		}
	}
	return out
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
