package lgp

import (
	"math"
	"math/rand"
	"testing"
)

func TestParsePaperRuleExample(t *testing.T) {
	// The exact rule printed in the paper's section 8.1 for 'Earn'.
	text := "R1=R1-I1; R0=R0*I1; R1=R1-I1; R0=R0+I1; R1=R1-I1; R0=R0-R1; " +
		"R0=R0-I0; R1=R1-I1; R0=R0-R1; R0=R0-R1; R0=R0-I0; R0=R0/I1; " +
		"R0=R0-I0; R0=R0+I1; R1=R1/I1"
	p, err := ParseProgram(text, 8, 2)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(p.Code) != 15 {
		t.Fatalf("parsed %d instructions, want 15", len(p.Code))
	}
	// Disassembly must round-trip exactly (the paper's notation uses *
	// and / where the text shows × and ÷).
	if got := p.Disassemble(8, 2); got != text {
		t.Errorf("round trip:\n got %q\nwant %q", got, text)
	}
	// The parsed rule must execute.
	m := NewMachine(8)
	out := m.RunSequence(p, [][]float64{{0.5, 0.9}, {0.2, 0.7}})
	if math.IsNaN(out) || out < -1 || out > 1 {
		t.Errorf("execution output %v", out)
	}
}

func TestParseDisassembleRoundTripRandomPrograms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConstantRatio = 1 // include constants in the round trip
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		code := make([]Instruction, 1+rng.Intn(40))
		for i := range code {
			code[i] = randomInstruction(rng, &cfg)
		}
		orig := &Program{Code: code}
		text := orig.Disassemble(8, 2)
		parsed, err := ParseProgram(text, 8, 2)
		if err != nil {
			t.Fatalf("trial %d: %v (text %q)", trial, err, text)
		}
		// Constant quantisation converges after one parse: from the
		// first parsed program onward, the round trip must be a fixed
		// point.
		text2 := parsed.Disassemble(8, 2)
		parsed2, err := ParseProgram(text2, 8, 2)
		if err != nil {
			t.Fatalf("trial %d: reparse: %v (text %q)", trial, err, text2)
		}
		if got := parsed2.Disassemble(8, 2); got != text2 {
			t.Fatalf("trial %d: round trip not idempotent\n got %q\nwant %q", trial, got, text2)
		}
		// Behaviour must match: same outputs on random sequences.
		m1, m2 := NewMachine(8), NewMachine(8)
		seq := [][]float64{
			{rng.Float64(), rng.Float64()},
			{rng.Float64()*2 - 1, rng.Float64()},
		}
		a, b := m1.RunSequence(orig, seq), m2.RunSequence(parsed, seq)
		// Constants are quantised to 2 decimal places in disassembly, so
		// allow a small behavioural tolerance.
		if math.Abs(a-b) > 0.2 {
			t.Fatalf("trial %d: behaviour diverged: %v vs %v", trial, a, b)
		}
	}
}

func TestParseProgramWhitespaceTolerant(t *testing.T) {
	p, err := ParseProgram("  R0 = R0 + I1 ;\n R1=R1*R2 ; ", 8, 2)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(p.Code) != 2 {
		t.Errorf("parsed %d instructions", len(p.Code))
	}
}

func TestParseProgramConstants(t *testing.T) {
	p, err := ParseProgram("R0=R0+0.50", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := p.Code[0]
	if in.Mode() != ModeConstant {
		t.Fatalf("mode = %d", in.Mode())
	}
	if c := in.Const(); math.Abs(c-0.5) > 1.0/255 {
		t.Errorf("constant %v, want ~0.5", c)
	}
	if _, err := ParseProgram("R0=R0+-0.25", 8, 2); err != nil {
		t.Errorf("negative constant rejected: %v", err)
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []string{
		"",
		";;;",
		"R0+R1",
		"R0=R1+R2",  // not 2-address
		"R9=R9+I0",  // register out of range
		"R0=R0+I7",  // input out of range
		"R0=R0+5.0", // constant out of [-1,1]
		"R0=R0?I1",  // bad operator
		"R0=R0+",    // missing operand
		"X0=X0+I1",  // not a register
	}
	for _, text := range cases {
		if _, err := ParseProgram(text, 8, 2); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
	if _, err := ParseProgram("R0=R0+I0", 0, 2); err == nil {
		t.Error("accepted zero registers")
	}
	if _, err := ParseProgram("R0=R0+I0", 8, 0); err == nil {
		t.Error("accepted zero inputs")
	}
}
