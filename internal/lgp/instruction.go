// Package lgp implements the page-based Linear Genetic Programming
// system of the paper (section 7): fixed-length individuals organised in
// pages, steady-state tournament selection, the three variation operators
// (page crossover, instruction XOR mutation, instruction swap), the
// dynamic page-size schedule driven by fitness plateaus, Dynamic Subset
// Selection (DSS) over the training set, and the recurrent execution mode
// (RLGP) in which register state persists across the word sequence of a
// document.
package lgp

import (
	"fmt"
	"math/rand"
	"strings"
)

// Instruction is a 2-address register-transfer instruction packed into a
// uint32:
//
//	bits 13..14  mode   (0 internal: Rd = Rd op Rs,
//	                     1 external: Rd = Rd op I[src],
//	                     2 constant: Rd = Rd op c(src))
//	bits 11..12  opcode (+, -, ×, ÷)
//	bits  8..10  destination register
//	bits  0..7   source field (register / input port / constant code)
//
// All field decodes are defensive (modular), so any uint32 — including
// the result of XOR mutation — is a valid instruction (syntactic
// closure).
type Instruction uint32

// Instruction modes.
const (
	ModeInternal = 0 // operate on a register
	ModeExternal = 1 // read an input port
	ModeConstant = 2 // use an embedded constant
)

// Opcodes: the paper's functional set {+, -, ×, ÷}.
const (
	OpAdd = 0
	OpSub = 1
	OpMul = 2
	OpDiv = 3
)

// Mode returns the decoded instruction type.
func (in Instruction) Mode() int { return int(in>>13&3) % 3 }

// Opcode returns the decoded operation.
func (in Instruction) Opcode() int { return int(in >> 11 & 3) }

// Dst returns the destination register index, reduced modulo nRegs.
func (in Instruction) Dst(nRegs int) int { return int(in>>8&7) % nRegs }

// SrcReg returns the source register index, reduced modulo nRegs.
func (in Instruction) SrcReg(nRegs int) int { return int(in&0xff) % nRegs }

// SrcInput returns the input port index, reduced modulo nInputs.
func (in Instruction) SrcInput(nInputs int) int { return int(in&0xff) % nInputs }

// Const returns the embedded constant, mapped from the 8-bit source field
// onto [-1, 1].
func (in Instruction) Const() float64 { return float64(in&0xff)/255*2 - 1 }

// pack builds an instruction from fields.
func pack(mode, opcode, dst, src int) Instruction {
	return Instruction(mode&3)<<13 | Instruction(opcode&3)<<11 |
		Instruction(dst&7)<<8 | Instruction(src&0xff)
}

var opNames = [4]string{"+", "-", "*", "/"}

// Disassemble renders the instruction in the paper's notation, e.g.
// "R1=R1-I1" or "R0=R0*R3" or "R2=R2+0.43".
func (in Instruction) Disassemble(nRegs, nInputs int) string {
	d := in.Dst(nRegs)
	op := opNames[in.Opcode()]
	switch in.Mode() {
	case ModeExternal:
		return fmt.Sprintf("R%d=R%d%sI%d", d, d, op, in.SrcInput(nInputs))
	case ModeConstant:
		return fmt.Sprintf("R%d=R%d%s%.2f", d, d, op, in.Const())
	default:
		return fmt.Sprintf("R%d=R%d%sR%d", d, d, op, in.SrcReg(nRegs))
	}
}

// Program is a fixed-length linear program: a whole number of pages of
// instructions. Length never changes after initialisation (crossover
// exchanges equal-size pages).
type Program struct {
	Code []Instruction
}

// Clone returns a deep copy.
func (p *Program) Clone() *Program {
	return &Program{Code: append([]Instruction(nil), p.Code...)}
}

// Disassemble renders the whole program in the paper's "R1=R1-I1; ..."
// style.
func (p *Program) Disassemble(nRegs, nInputs int) string {
	parts := make([]string, len(p.Code))
	for i, in := range p.Code {
		parts[i] = in.Disassemble(nRegs, nInputs)
	}
	return strings.Join(parts, "; ")
}

// EffectiveLength returns the number of instructions that can influence
// the output register (register 0) — a structural intron count obtained
// by backward dependency sweep. Useful as a complexity diagnostic.
func (p *Program) EffectiveLength(nRegs int) int {
	needed := make([]bool, nRegs)
	needed[0] = true
	count := 0
	for i := len(p.Code) - 1; i >= 0; i-- {
		in := p.Code[i]
		d := in.Dst(nRegs)
		if !needed[d] {
			continue
		}
		count++
		// Rd = Rd op Src: Rd remains needed (2-address), source register
		// becomes needed.
		if in.Mode() == ModeInternal {
			needed[in.SrcReg(nRegs)] = true
		}
	}
	return count
}

// randomInstruction draws an instruction with the configured type ratios
// (the paper's roulette over Constant/Internal/External proportions),
// then fills the remaining fields uniformly.
func randomInstruction(rng *rand.Rand, cfg *Config) Instruction {
	total := cfg.ConstantRatio + cfg.InternalRatio + cfg.ExternalRatio
	r := rng.Float64() * total
	mode := ModeInternal
	switch {
	case r < cfg.ConstantRatio:
		mode = ModeConstant
	case r < cfg.ConstantRatio+cfg.InternalRatio:
		mode = ModeInternal
	default:
		mode = ModeExternal
	}
	return pack(mode, rng.Intn(4), rng.Intn(8), rng.Intn(256))
}
