package lgp

import "math"

// regClamp bounds register magnitudes so that runaway multiply chains
// cannot overflow to ±Inf during evolution.
const regClamp = 1e6

// Machine executes linear programs over a general-purpose register file.
// In recurrent mode (the R of RLGP) registers persist across sequential
// pattern presentations and are only reset between documents.
type Machine struct {
	regs []float64
}

// NewMachine returns a machine with n general-purpose registers.
func NewMachine(n int) *Machine {
	return &Machine{regs: make([]float64, n)}
}

// Reset zeroes every register (called at document boundaries).
func (m *Machine) Reset() {
	for i := range m.regs {
		m.regs[i] = 0
	}
}

// Registers exposes the register file (aliased, for inspection).
func (m *Machine) Registers() []float64 { return m.regs }

// Output returns the predefined output register R0.
func (m *Machine) Output() float64 { return m.regs[0] }

// Step executes the whole program once against one input vector,
// mutating the register file. Division is protected: a near-zero
// denominator leaves the destination unchanged. Register values are
// clamped to ±1e6 and NaN is flushed to zero, keeping evolution numerics
// finite.
func (m *Machine) Step(p *Program, inputs []float64) {
	nRegs := len(m.regs)
	nIn := len(inputs)
	for _, in := range p.Code {
		d := in.Dst(nRegs)
		var operand float64
		switch in.Mode() {
		case ModeExternal:
			if nIn > 0 {
				operand = inputs[in.SrcInput(nIn)]
			}
		case ModeConstant:
			operand = in.Const()
		default:
			operand = m.regs[in.SrcReg(nRegs)]
		}
		v := m.regs[d]
		switch in.Opcode() {
		case OpAdd:
			v += operand
		case OpSub:
			v -= operand
		case OpMul:
			v *= operand
		case OpDiv:
			if math.Abs(operand) > 1e-9 {
				v /= operand
			}
		}
		if math.IsNaN(v) {
			v = 0
		} else if v > regClamp {
			v = regClamp
		} else if v < -regClamp {
			v = -regClamp
		}
		m.regs[d] = v
	}
}

// Squash maps the raw output register onto [-1, 1] (Equation 4):
//
//	GPoutNew = 2/(1+e^-GPout) - 1
func Squash(out float64) float64 {
	return 2/(1+math.Exp(-out)) - 1
}

// RunSequence resets the machine, presents each input vector of the
// sequence in order (recurrent mode: registers persist between steps)
// and returns the squashed output after the last step. An empty sequence
// yields Squash(0) = 0.
func (m *Machine) RunSequence(p *Program, seq [][]float64) float64 {
	m.Reset()
	for _, in := range seq {
		m.Step(p, in)
	}
	return Squash(m.Output())
}

// RunSequenceNonRecurrent is the ablation variant: registers are reset
// before every pattern, discarding temporal state. The prediction is the
// squashed output after the final pattern.
func (m *Machine) RunSequenceNonRecurrent(p *Program, seq [][]float64) float64 {
	m.Reset()
	for _, in := range seq {
		m.Reset()
		m.Step(p, in)
	}
	return Squash(m.Output())
}

// Trace resets the machine and returns the squashed output register
// value after each input of the sequence — the word-tracking signal of
// Figures 5 and 6.
func (m *Machine) Trace(p *Program, seq [][]float64) []float64 {
	m.Reset()
	out := make([]float64, len(seq))
	for i, in := range seq {
		m.Step(p, in)
		out[i] = Squash(m.Output())
	}
	return out
}
