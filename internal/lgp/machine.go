package lgp

import "math"

// regClamp bounds register magnitudes so that runaway multiply chains
// cannot overflow to ±Inf during evolution.
const regClamp = 1e6

// decodedInst is one pre-decoded instruction: field extraction (shifts
// and modular reductions) is done once per program instead of once per
// instruction per step, which matters because fitness evaluation executes
// the same program over every word of every training sequence.
type decodedInst struct {
	mode   uint8
	opcode uint8
	dst    uint16
	src    uint16 // register or input-port index, already reduced
	konst  float64
}

// Machine executes linear programs over a general-purpose register file.
// In recurrent mode (the R of RLGP) registers persist across sequential
// pattern presentations and are only reset between documents.
//
// A Machine caches the decoded form of the most recently executed
// program, keyed by the *Program pointer, so running the same program
// over many sequences decodes it once. Callers that mutate a Program's
// Code in place must run it through a fresh *Program (Clone) or call
// Invalidate; the evolutionary loop only mutates freshly cloned children,
// so it never hits this case. A Machine is not safe for concurrent use —
// use one Machine per goroutine.
type Machine struct {
	regs []float64

	prog    []decodedInst
	progSrc *Program // program the decode cache was built from
	progLen int      // len(progSrc.Code) at decode time
	progNIn int      // input width the decode was specialised for
}

// NewMachine returns a machine with n general-purpose registers.
func NewMachine(n int) *Machine {
	return &Machine{regs: make([]float64, n)}
}

// Reset zeroes every register (called at document boundaries).
func (m *Machine) Reset() {
	for i := range m.regs {
		m.regs[i] = 0
	}
}

// Invalidate drops the decoded-program cache. Only needed after mutating
// a Program's Code in place between runs on the same Machine.
func (m *Machine) Invalidate() { m.progSrc = nil }

// Registers exposes the register file (aliased, for inspection).
func (m *Machine) Registers() []float64 { return m.regs }

// Output returns the predefined output register R0.
func (m *Machine) Output() float64 { return m.regs[0] }

// compile decodes p for input width nIn into the machine's scratch
// buffer, reusing a previous decode when the same program and width are
// run again.
func (m *Machine) compile(p *Program, nIn int) {
	if m.progSrc == p && m.progNIn == nIn && m.progLen == len(p.Code) {
		return
	}
	nRegs := len(m.regs)
	if cap(m.prog) < len(p.Code) {
		m.prog = make([]decodedInst, len(p.Code))
	}
	m.prog = m.prog[:len(p.Code)]
	for i, in := range p.Code {
		d := decodedInst{
			mode:   uint8(in.Mode()),
			opcode: uint8(in.Opcode()),
			dst:    uint16(in.Dst(nRegs)),
		}
		switch d.mode {
		case ModeExternal:
			if nIn > 0 {
				d.src = uint16(in.SrcInput(nIn))
			}
		case ModeConstant:
			d.konst = in.Const()
		default:
			d.src = uint16(in.SrcReg(nRegs))
		}
		m.prog[i] = d
	}
	m.progSrc, m.progLen, m.progNIn = p, len(p.Code), nIn
}

// stepCompiled executes the decoded program once against one input
// vector, mutating the register file. Division is protected: a near-zero
// denominator leaves the destination unchanged. Register values are
// clamped to ±1e6 and NaN is flushed to zero, keeping evolution numerics
// finite.
//
//tdlint:hotpath
func (m *Machine) stepCompiled(inputs []float64) {
	regs := m.regs
	for _, in := range m.prog {
		var operand float64
		switch in.mode {
		case ModeExternal:
			if s := int(in.src); s < len(inputs) {
				operand = inputs[s]
			}
		case ModeConstant:
			operand = in.konst
		default:
			operand = regs[in.src]
		}
		v := regs[in.dst]
		switch in.opcode {
		case OpAdd:
			v += operand
		case OpSub:
			v -= operand
		case OpMul:
			v *= operand
		case OpDiv:
			if math.Abs(operand) > 1e-9 {
				v /= operand
			}
		}
		if math.IsNaN(v) {
			v = 0
		} else if v > regClamp {
			v = regClamp
		} else if v < -regClamp {
			v = -regClamp
		}
		regs[in.dst] = v
	}
}

// Step executes the whole program once against one input vector,
// mutating the register file (see stepCompiled for the arithmetic
// contract).
func (m *Machine) Step(p *Program, inputs []float64) {
	m.compile(p, len(inputs))
	m.stepCompiled(inputs)
}

// Squash maps the raw output register onto [-1, 1] (Equation 4):
//
//	GPoutNew = 2/(1+e^-GPout) - 1
func Squash(out float64) float64 {
	return 2/(1+math.Exp(-out)) - 1
}

// seqWidth returns the input width the decode should specialise for: the
// width of the first pattern (every pattern of a sequence has the same
// width in this system; stepCompiled degrades gracefully if not).
func seqWidth(seq [][]float64) int {
	if len(seq) == 0 {
		return 0
	}
	return len(seq[0])
}

// RunSequence resets the machine, presents each input vector of the
// sequence in order (recurrent mode: registers persist between steps)
// and returns the squashed output after the last step. An empty sequence
// yields Squash(0) = 0.
func (m *Machine) RunSequence(p *Program, seq [][]float64) float64 {
	m.Reset()
	m.compile(p, seqWidth(seq))
	for _, in := range seq {
		if len(in) != m.progNIn {
			m.compile(p, len(in))
		}
		m.stepCompiled(in)
	}
	return Squash(m.Output())
}

// RunSequenceNonRecurrent is the ablation variant: registers are reset
// before every pattern, discarding temporal state. The prediction is the
// squashed output after the final pattern.
func (m *Machine) RunSequenceNonRecurrent(p *Program, seq [][]float64) float64 {
	m.Reset()
	m.compile(p, seqWidth(seq))
	for _, in := range seq {
		m.Reset()
		if len(in) != m.progNIn {
			m.compile(p, len(in))
		}
		m.stepCompiled(in)
	}
	return Squash(m.Output())
}

// Trace resets the machine and returns the squashed output register
// value after each input of the sequence — the word-tracking signal of
// Figures 5 and 6.
func (m *Machine) Trace(p *Program, seq [][]float64) []float64 {
	m.Reset()
	m.compile(p, seqWidth(seq))
	out := make([]float64, len(seq))
	for i, in := range seq {
		if len(in) != m.progNIn {
			m.compile(p, len(in))
		}
		m.stepCompiled(in)
		out[i] = Squash(m.Output())
	}
	return out
}
