package lgp

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.PopulationSize = 30
	cfg.Tournaments = 300
	cfg.MaxPages = 4
	cfg.MaxPageSize = 4
	cfg.DSS = nil
	cfg.Seed = 1
	return cfg
}

// --- instruction ---

func TestPackDecodeRoundTrip(t *testing.T) {
	in := pack(ModeExternal, OpDiv, 5, 200)
	if in.Mode() != ModeExternal {
		t.Errorf("Mode = %d", in.Mode())
	}
	if in.Opcode() != OpDiv {
		t.Errorf("Opcode = %d", in.Opcode())
	}
	if in.Dst(8) != 5 {
		t.Errorf("Dst = %d", in.Dst(8))
	}
	if in.SrcInput(256) != 200 {
		t.Errorf("SrcInput = %d", in.SrcInput(256))
	}
}

// Syntactic closure: any 32-bit pattern decodes to in-range fields.
func TestInstructionClosureProperty(t *testing.T) {
	f := func(raw uint32) bool {
		in := Instruction(raw)
		if m := in.Mode(); m < 0 || m > 2 {
			return false
		}
		if op := in.Opcode(); op < 0 || op > 3 {
			return false
		}
		if d := in.Dst(8); d < 0 || d > 7 {
			return false
		}
		if s := in.SrcReg(8); s < 0 || s > 7 {
			return false
		}
		if s := in.SrcInput(2); s < 0 || s > 1 {
			return false
		}
		if c := in.Const(); c < -1 || c > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleNotation(t *testing.T) {
	in := pack(ModeExternal, OpSub, 1, 1)
	if got := in.Disassemble(8, 2); got != "R1=R1-I1" {
		t.Errorf("Disassemble = %q", got)
	}
	in = pack(ModeInternal, OpMul, 0, 3)
	if got := in.Disassemble(8, 2); got != "R0=R0*R3" {
		t.Errorf("Disassemble = %q", got)
	}
	in = pack(ModeConstant, OpAdd, 2, 255)
	if got := in.Disassemble(8, 2); got != "R2=R2+1.00" {
		t.Errorf("Disassemble = %q", got)
	}
}

func TestProgramDisassembleJoins(t *testing.T) {
	p := &Program{Code: []Instruction{
		pack(ModeExternal, OpSub, 1, 1),
		pack(ModeInternal, OpAdd, 0, 1),
	}}
	got := p.Disassemble(8, 2)
	if !strings.Contains(got, "; ") || !strings.HasPrefix(got, "R1=R1-I1") {
		t.Errorf("Disassemble = %q", got)
	}
}

func TestEffectiveLength(t *testing.T) {
	// R3 is never read into R0's dependency chain -> intron.
	p := &Program{Code: []Instruction{
		pack(ModeExternal, OpAdd, 3, 0), // intron
		pack(ModeExternal, OpAdd, 1, 0), // feeds R1
		pack(ModeInternal, OpAdd, 0, 1), // R0 += R1
	}}
	if got := p.EffectiveLength(8); got != 2 {
		t.Errorf("EffectiveLength = %d, want 2", got)
	}
	empty := &Program{}
	if got := empty.EffectiveLength(8); got != 0 {
		t.Errorf("EffectiveLength(empty) = %d", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := &Program{Code: []Instruction{1, 2, 3}}
	c := p.Clone()
	c.Code[0] = 99
	if p.Code[0] != 1 {
		t.Error("Clone shares code")
	}
}

func TestRandomInstructionRespectsRatios(t *testing.T) {
	cfg := DefaultConfig() // constants ratio 0
	rng := rand.New(rand.NewSource(1))
	counts := [3]int{}
	for i := 0; i < 5000; i++ {
		counts[randomInstruction(rng, &cfg).Mode()]++
	}
	if counts[ModeConstant] != 0 {
		t.Errorf("constants generated despite zero ratio: %d", counts[ModeConstant])
	}
	// Internal:External = 4:1.
	ratio := float64(counts[ModeInternal]) / float64(counts[ModeExternal])
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("internal/external ratio = %v, want ~4", ratio)
	}
}

// --- machine ---

func TestStepArithmetic(t *testing.T) {
	m := NewMachine(8)
	p := &Program{Code: []Instruction{
		pack(ModeExternal, OpAdd, 0, 0),   // R0 += I0
		pack(ModeExternal, OpMul, 0, 1),   // R0 *= I1
		pack(ModeConstant, OpSub, 0, 255), // R0 -= 1.0
	}}
	m.Step(p, []float64{3, 2})
	if got := m.Output(); math.Abs(got-5) > 1e-12 {
		t.Errorf("R0 = %v, want 5", got)
	}
}

func TestProtectedDivision(t *testing.T) {
	m := NewMachine(8)
	m.Registers()[0] = 7
	p := &Program{Code: []Instruction{pack(ModeExternal, OpDiv, 0, 0)}}
	m.Step(p, []float64{0})
	if got := m.Output(); got != 7 {
		t.Errorf("division by zero changed register: %v", got)
	}
}

func TestRegisterClamping(t *testing.T) {
	m := NewMachine(8)
	m.Registers()[0] = 1e5
	p := &Program{Code: []Instruction{pack(ModeInternal, OpMul, 0, 0)}}
	for i := 0; i < 10; i++ {
		m.Step(p, nil)
	}
	if got := m.Output(); got > regClamp || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("clamping failed: %v", got)
	}
}

func TestSquashRangeAndValues(t *testing.T) {
	if got := Squash(0); got != 0 {
		t.Errorf("Squash(0) = %v", got)
	}
	if got := Squash(1e9); math.Abs(got-1) > 1e-9 {
		t.Errorf("Squash(+inf) = %v", got)
	}
	if got := Squash(-1e9); math.Abs(got+1) > 1e-9 {
		t.Errorf("Squash(-inf) = %v", got)
	}
	f := func(x float64) bool {
		s := Squash(x)
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRunSequenceRecurrence(t *testing.T) {
	// R0 accumulates I0 across patterns only in recurrent mode.
	p := &Program{Code: []Instruction{pack(ModeExternal, OpAdd, 0, 0)}}
	m := NewMachine(8)
	seq := [][]float64{{1, 0}, {1, 0}, {1, 0}}
	rec := m.RunSequence(p, seq)
	non := m.RunSequenceNonRecurrent(p, seq)
	if rec <= non {
		t.Errorf("recurrent %v not greater than non-recurrent %v", rec, non)
	}
	if want := Squash(3); math.Abs(rec-want) > 1e-12 {
		t.Errorf("recurrent = %v, want %v", rec, want)
	}
	if want := Squash(1); math.Abs(non-want) > 1e-12 {
		t.Errorf("non-recurrent = %v, want %v", non, want)
	}
}

func TestRunSequenceEmpty(t *testing.T) {
	p := &Program{Code: []Instruction{pack(ModeExternal, OpAdd, 0, 0)}}
	m := NewMachine(8)
	if got := m.RunSequence(p, nil); got != 0 {
		t.Errorf("empty sequence = %v, want 0", got)
	}
}

func TestTraceMatchesStepwise(t *testing.T) {
	p := &Program{Code: []Instruction{pack(ModeExternal, OpAdd, 0, 0)}}
	m := NewMachine(8)
	seq := [][]float64{{1, 0}, {-2, 0}, {0.5, 0}}
	trace := m.Trace(p, seq)
	if len(trace) != 3 {
		t.Fatalf("trace length %d", len(trace))
	}
	want := []float64{Squash(1), Squash(-1), Squash(-0.5)}
	for i := range want {
		if math.Abs(trace[i]-want[i]) > 1e-12 {
			t.Errorf("trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
	// Final trace value equals RunSequence.
	if final := m.RunSequence(p, seq); math.Abs(final-trace[2]) > 1e-12 {
		t.Errorf("RunSequence %v != trace end %v", final, trace[2])
	}
}

// --- trainer ---

func TestNewTrainerValidation(t *testing.T) {
	good := testCfg()
	ex := []Example{{Inputs: [][]float64{{0, 0}}, Label: 1}}
	if _, err := NewTrainer(good, nil); err == nil {
		t.Error("no examples accepted")
	}
	bad := good
	bad.PopulationSize = 2
	if _, err := NewTrainer(bad, ex); err == nil {
		t.Error("tiny population accepted")
	}
	bad = good
	bad.MaxPageSize = 3
	if _, err := NewTrainer(bad, ex); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	bad = good
	bad.NumRegisters = 9
	if _, err := NewTrainer(bad, ex); err == nil {
		t.Error("9 registers accepted")
	}
	wrongDim := []Example{{Inputs: [][]float64{{1, 2, 3}}, Label: 1}}
	if _, err := NewTrainer(good, wrongDim); err == nil {
		t.Error("wrong input dimension accepted")
	}
	bad = good
	bad.DSS = &DSSConfig{SubsetSize: 0, Interval: 10}
	if _, err := NewTrainer(bad, ex); err == nil {
		t.Error("zero DSS subset accepted")
	}
}

func TestInitialPopulationLengths(t *testing.T) {
	cfg := testCfg()
	ex := []Example{{Inputs: [][]float64{{0, 0}}, Label: 1}}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr.pop {
		if len(p.Code)%cfg.MaxPageSize != 0 {
			t.Errorf("individual %d length %d not a page multiple", i, len(p.Code))
		}
		if len(p.Code) == 0 || len(p.Code) > cfg.MaxPages*cfg.MaxPageSize {
			t.Errorf("individual %d length %d out of bounds", i, len(p.Code))
		}
	}
}

// accumulationExamples builds a temporal task solvable by R0 += I0: the
// in-class sequences carry positive I0 values, out-class negative.
func accumulationExamples(rng *rand.Rand, n int) []Example {
	out := make([]Example, 0, 2*n)
	for i := 0; i < n; i++ {
		length := 5 + rng.Intn(6)
		pos := make([][]float64, length)
		neg := make([][]float64, length)
		for j := 0; j < length; j++ {
			pos[j] = []float64{0.3 + rng.Float64()*0.4, rng.Float64()}
			neg[j] = []float64{-0.3 - rng.Float64()*0.4, rng.Float64()}
		}
		out = append(out, Example{Inputs: pos, Label: 1}, Example{Inputs: neg, Label: -1})
	}
	return out
}

func TestEvolutionLearnsAccumulationTask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	examples := accumulationExamples(rng, 15)
	cfg := testCfg()
	tr, err := NewTrainer(cfg, examples)
	if err != nil {
		t.Fatal(err)
	}
	res := tr.Run()
	if res.Best == nil {
		t.Fatal("no best program")
	}
	// The evolved rule must classify most training examples correctly.
	m := NewMachine(cfg.NumRegisters)
	correct := 0
	for _, ex := range examples {
		out := m.RunSequence(res.Best, ex.Inputs)
		if out*ex.Label > 0 {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(examples)); frac < 0.8 {
		t.Errorf("accuracy %v < 0.8 after evolution (fitness %v)", frac, res.Fitness)
	}
	if len(res.BestHistory) != cfg.Tournaments {
		t.Errorf("history length %d", len(res.BestHistory))
	}
}

func TestEvolutionDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	examples := accumulationExamples(rng, 5)
	cfg := testCfg()
	cfg.Tournaments = 50
	run := func() *Result {
		tr, err := NewTrainer(cfg, examples)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Best.Code, b.Best.Code) || a.Fitness != b.Fitness {
		t.Error("evolution not deterministic for fixed seed")
	}
}

func TestDSSSubsetMechanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	examples := accumulationExamples(rng, 20) // 40 examples
	cfg := testCfg()
	cfg.DSS = &DSSConfig{SubsetSize: 10, Interval: 5}
	tr, err := NewTrainer(cfg, examples)
	if err != nil {
		t.Fatal(err)
	}
	s1 := tr.Subset()
	if len(s1) != 10 {
		t.Fatalf("subset size %d, want 10", len(s1))
	}
	seen := map[int]bool{}
	for _, i := range s1 {
		if seen[i] {
			t.Fatalf("duplicate index %d in subset", i)
		}
		seen[i] = true
		if i < 0 || i >= len(examples) {
			t.Fatalf("index %d out of range", i)
		}
	}
	// Re-selection must (eventually) change the subset.
	changed := false
	for k := 0; k < 5 && !changed; k++ {
		tr.selectSubset()
		changed = !reflect.DeepEqual(s1, tr.Subset())
	}
	if !changed {
		t.Error("subset never changes")
	}
}

func TestDSSSubsetLargerThanDataset(t *testing.T) {
	ex := []Example{
		{Inputs: [][]float64{{1, 0}}, Label: 1},
		{Inputs: [][]float64{{-1, 0}}, Label: -1},
	}
	cfg := testCfg()
	cfg.DSS = &DSSConfig{SubsetSize: 50, Interval: 5}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Subset()); got != 2 {
		t.Errorf("subset size %d, want clamped 2", got)
	}
}

func TestDSSBiasesTowardsDifficult(t *testing.T) {
	// With strong difficulty on one example, it should appear in nearly
	// every re-selected subset.
	ex := make([]Example, 40)
	for i := range ex {
		ex[i] = Example{Inputs: [][]float64{{1, 0}}, Label: 1}
	}
	cfg := testCfg()
	cfg.DSS = &DSSConfig{SubsetSize: 5, Interval: 5}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	tr.difficulty[7] = 1000
	hits := 0
	for k := 0; k < 20; k++ {
		tr.selectSubset()
		for _, i := range tr.Subset() {
			if i == 7 {
				hits++
			}
		}
	}
	if hits < 15 {
		t.Errorf("difficult example selected %d/20 times", hits)
	}
}

func TestPlateauDoublesPageSize(t *testing.T) {
	ex := []Example{{Inputs: [][]float64{{1, 0}}, Label: 1}}
	cfg := testCfg()
	cfg.PlateauWindow = 2
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PageSize() != 1 {
		t.Fatalf("initial page size %d", tr.PageSize())
	}
	// Two identical windows -> plateau -> double.
	tr.trackPlateau(5)
	tr.trackPlateau(5) // window 1 done: sum 10
	tr.trackPlateau(5)
	tr.trackPlateau(5) // window 2 done: sum 10 == prev -> plateau
	if tr.PageSize() != 2 {
		t.Errorf("page size after plateau = %d, want 2", tr.PageSize())
	}
	// Changing fitness -> no plateau.
	tr.trackPlateau(4)
	tr.trackPlateau(5)
	if tr.PageSize() != 2 {
		t.Errorf("page size changed without plateau: %d", tr.PageSize())
	}
}

func TestPageSizeWrapsAfterMax(t *testing.T) {
	ex := []Example{{Inputs: [][]float64{{1, 0}}, Label: 1}}
	cfg := testCfg()
	cfg.PlateauWindow = 1
	cfg.MaxPageSize = 4
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{tr.PageSize()}
	for i := 0; i < 8; i++ {
		tr.trackPlateau(1)
		sizes = append(sizes, tr.PageSize())
	}
	// 1 -> 2 -> 4 -> wrap to 1 -> 2 ...
	found := false
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] == cfg.MaxPageSize && sizes[i] == 1 {
			found = true
		}
		if sizes[i] > cfg.MaxPageSize {
			t.Fatalf("page size %d exceeds max", sizes[i])
		}
	}
	if !found {
		t.Errorf("page size never wrapped: %v", sizes)
	}
}

func TestCrossoverPreservesLengths(t *testing.T) {
	cfg := testCfg()
	ex := []Example{{Inputs: [][]float64{{1, 0}}, Label: 1}}
	tr, err := NewTrainer(cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	a := &Program{Code: make([]Instruction, 8)}
	b := &Program{Code: make([]Instruction, 16)}
	for i := range a.Code {
		a.Code[i] = Instruction(i + 1)
	}
	for i := range b.Code {
		b.Code[i] = Instruction(100 + i)
	}
	tr.pageSize = 4
	tr.crossover(a, b)
	if len(a.Code) != 8 || len(b.Code) != 16 {
		t.Errorf("lengths changed: %d, %d", len(a.Code), len(b.Code))
	}
	// Multiset of instructions preserved across both programs.
	count := map[Instruction]int{}
	for _, in := range a.Code {
		count[in]++
	}
	for _, in := range b.Code {
		count[in]++
	}
	for i := 1; i <= 8; i++ {
		if count[Instruction(i)] != 1 {
			t.Fatalf("instruction %d lost or duplicated", i)
		}
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PopulationSize != 125 || cfg.Tournaments != 48000 ||
		cfg.TournamentSize != 4 || cfg.NumRegisters != 8 {
		t.Errorf("core params: %+v", cfg)
	}
	if cfg.MaxPages*cfg.MaxPageSize != 256 {
		t.Errorf("node limit = %d, want 256", cfg.MaxPages*cfg.MaxPageSize)
	}
	if cfg.PCrossover != 0.9 || cfg.PMutate != 0.5 || cfg.PSwap != 0.9 {
		t.Errorf("variation probabilities: %+v", cfg)
	}
	if cfg.ConstantRatio != 0 || cfg.InternalRatio != 4 || cfg.ExternalRatio != 1 {
		t.Errorf("instruction ratios: %+v", cfg)
	}
	if !cfg.Recurrent {
		t.Error("default not recurrent")
	}
}
