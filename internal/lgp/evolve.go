package lgp

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Config holds the GP parameters (paper Table 2 values are the
// defaults from DefaultConfig).
type Config struct {
	// PopulationSize is the number of individuals (paper: 125).
	PopulationSize int
	// Tournaments is the number of steady-state tournaments (the paper's
	// "Generations": 48000).
	Tournaments int
	// TournamentSize is the number of contestants per tournament
	// (paper: 4; the best two overwrite the worst two).
	TournamentSize int
	// NumRegisters is the register-file size (paper: 8). R0 is the
	// output register.
	NumRegisters int
	// NumInputs is the input-port count (2 for the paper's word codes).
	NumInputs int
	// MaxPageSize is the largest dynamic page size, a power of two.
	MaxPageSize int
	// MaxPages bounds program length: MaxPages*MaxPageSize instructions
	// (paper node limit: 256).
	MaxPages int
	// PCrossover, PMutate, PSwap are the variation probabilities
	// (paper: 0.9, 0.5, 0.9), applied additively.
	PCrossover, PMutate, PSwap float64
	// ConstantRatio, InternalRatio, ExternalRatio weight instruction-type
	// generation (paper: 0, 4, 1).
	ConstantRatio, InternalRatio, ExternalRatio float64
	// PlateauWindow is the tournament window for plateau detection in the
	// dynamic page-size schedule (paper: 10).
	PlateauWindow int
	// Recurrent selects RLGP (true, the paper's system) or the reset-
	// per-pattern ablation.
	Recurrent bool
	// Fitness selects the objective: FitnessSSE (Equation 5, the paper's
	// choice) or FitnessF1 (the IR-measure-based fitness the paper's
	// conclusion proposes as future work).
	Fitness FitnessKind
	// DSS enables Dynamic Subset Selection when non-nil.
	DSS *DSSConfig
	// Workers bounds concurrent fitness evaluations inside each
	// tournament and in final model selection. Zero means
	// runtime.GOMAXPROCS(0); 1 forces the serial path. All RNG draws
	// happen before evaluations fan out and evaluation is pure, so
	// results are bit-identical for every worker count. It is a
	// runtime knob, not a model parameter, so it is excluded from
	// persisted models.
	Workers int `json:"-"`
	// Trace, when non-nil, is called after every tournament with that
	// tournament's statistics — the evolution-trace hook. It is
	// diagnostics-only: the trainer never reads anything back, no RNG is
	// touched, and the evolved programs are bit-identical with and
	// without it. Calls arrive from the trainer's own goroutine.
	// Excluded from persisted models.
	Trace func(TournamentStats) `json:"-"`
	// Seed drives all evolution randomness.
	Seed int64
}

// TournamentStats is the per-tournament telemetry handed to
// Config.Trace.
type TournamentStats struct {
	// Tournament is the 0-based tournament index.
	Tournament int `json:"tournament"`
	// Best and Mean are the best and mean contestant fitness on the
	// active subset (lower is better).
	Best float64 `json:"best"`
	Mean float64 `json:"mean"`
	// MeanLen is the mean contestant program length in instructions.
	MeanLen float64 `json:"mean_len"`
	// PageSize is the dynamic page size in effect after the tournament.
	PageSize int `json:"page_size"`
	// SubsetSize is the active (DSS or full) training-subset size.
	SubsetSize int `json:"subset_size"`
	// Duration is the tournament's wall-clock time.
	Duration time.Duration `json:"duration_ns"`
}

// FitnessKind selects the evolutionary objective.
type FitnessKind string

// Supported objectives.
const (
	// FitnessSSE is the paper's sum-squared-error objective
	// (Equation 5). The empty string also selects it.
	FitnessSSE FitnessKind = "sse"
	// FitnessF1 minimises 1 - F1 of the sign classification over the
	// evaluated examples — the paper's proposed future-work fitness
	// ("fitness functions that can incorporate information retrieval
	// measures (such as F1 measure)"). A small SSE term breaks ties so
	// selection keeps a gradient inside equal-F1 plateaus.
	FitnessF1 FitnessKind = "f1"
)

// DSSConfig parameterises Dynamic Subset Selection (section 7.3;
// Gathercole & Ross style: selection pressure from example difficulty
// and age).
type DSSConfig struct {
	// SubsetSize is the number of training examples per subset.
	SubsetSize int
	// Interval is the number of tournaments between subset reselections.
	Interval int
	// DifficultyExp and AgeExp shape the selection weights
	// difficulty^DifficultyExp + age^AgeExp. Zero values default to 1.
	DifficultyExp, AgeExp float64
	// Stratify selects the subset per class (in-class and out-class
	// drawn separately, in proportion to their training shares but with
	// at least one example of each) — the category-aware DSS variant the
	// paper's conclusion proposes as future work ("subset is selected
	// based on the nature of a category instead of age and difficulty
	// values" alone).
	Stratify bool
}

// DefaultConfig returns the paper's Table 2 parameters.
func DefaultConfig() Config {
	return Config{
		PopulationSize: 125,
		Tournaments:    48000,
		TournamentSize: 4,
		NumRegisters:   8,
		NumInputs:      2,
		MaxPageSize:    8,
		MaxPages:       32, // 32 pages × 8 instructions = node limit 256
		PCrossover:     0.9,
		PMutate:        0.5,
		PSwap:          0.9,
		ConstantRatio:  0,
		InternalRatio:  4,
		ExternalRatio:  1,
		PlateauWindow:  10,
		Recurrent:      true,
		DSS: &DSSConfig{
			SubsetSize: 50,
			Interval:   100,
		},
	}
}

func (c *Config) validate() error {
	if c.PopulationSize < 4 {
		return fmt.Errorf("lgp: population %d < 4", c.PopulationSize)
	}
	if c.TournamentSize < 2 || c.TournamentSize > c.PopulationSize {
		return fmt.Errorf("lgp: tournament size %d out of range", c.TournamentSize)
	}
	if c.NumRegisters < 1 || c.NumRegisters > 8 {
		return fmt.Errorf("lgp: registers %d out of [1,8]", c.NumRegisters)
	}
	if c.NumInputs < 1 {
		return fmt.Errorf("lgp: inputs %d < 1", c.NumInputs)
	}
	if c.MaxPageSize < 1 || c.MaxPageSize&(c.MaxPageSize-1) != 0 {
		return fmt.Errorf("lgp: max page size %d not a power of two", c.MaxPageSize)
	}
	if c.MaxPages < 1 {
		return fmt.Errorf("lgp: max pages %d < 1", c.MaxPages)
	}
	if c.Tournaments < 1 {
		return fmt.Errorf("lgp: tournaments %d < 1", c.Tournaments)
	}
	if c.InternalRatio+c.ExternalRatio+c.ConstantRatio <= 0 {
		return fmt.Errorf("lgp: instruction type ratios sum to zero")
	}
	switch c.Fitness {
	case "", FitnessSSE, FitnessF1:
	default:
		return fmt.Errorf("lgp: unknown fitness kind %q", c.Fitness)
	}
	if c.DSS != nil {
		if c.DSS.SubsetSize < 1 {
			return fmt.Errorf("lgp: DSS subset size %d < 1", c.DSS.SubsetSize)
		}
		if c.DSS.Interval < 1 {
			return fmt.Errorf("lgp: DSS interval %d < 1", c.DSS.Interval)
		}
	}
	if c.Workers < 0 {
		return fmt.Errorf("lgp: workers %d < 0", c.Workers)
	}
	return nil
}

// Example is one training pattern sequence: the ordered input vectors of
// a document's member words and the target label (+1 in-class, -1
// out-class).
type Example struct {
	Inputs [][]float64
	Label  float64
}

// Result is the outcome of a training run.
type Result struct {
	// Best is the best program by full-training-set fitness.
	Best *Program
	// Fitness is Best's sum-squared-error over the full training set
	// (Equation 5).
	Fitness float64
	// BestHistory records the tournament-best fitness (on the active
	// subset) at every tournament — used by the dynamic page-size
	// schedule and useful for convergence plots.
	BestHistory []float64
	// PageSizeHistory records the dynamic page size after each
	// tournament.
	PageSizeHistory []int
}

// Trainer evolves programs against a training set.
type Trainer struct {
	cfg      Config
	examples []Example
	rng      *rand.Rand
	pop      []*Program
	machine  *Machine
	workers  int
	// machines holds one reusable Machine per evaluation worker; worker w
	// always uses machines[w], so no allocation happens in the fan-out.
	machines []*Machine

	// evaluation scratch, reused across tournaments
	fullIdx   []int // 0..len(examples)-1, for FullFitness
	tourIdx   []int // contestant population indices
	tourProgs []*Program
	tourFit   []float64
	tourSeen  []bool // len(pop), reset via tourIdx after each draw

	// dynamic page size state
	pageSize    int
	windowSum   float64
	windowCount int
	prevWindow  float64
	havePrev    bool

	// DSS state
	subset     []int
	difficulty []float64
	age        []float64
}

// NewTrainer validates the configuration and initialises the population
// (uniform number of pages over [1, MaxPages], each page MaxPageSize
// instructions).
func NewTrainer(cfg Config, examples []Example) (*Trainer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("lgp: no training examples")
	}
	for i, ex := range examples {
		for j, in := range ex.Inputs {
			if len(in) != cfg.NumInputs {
				return nil, fmt.Errorf("lgp: example %d input %d has dim %d, want %d", i, j, len(in), cfg.NumInputs)
			}
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t := &Trainer{
		cfg:      cfg,
		examples: examples,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		machine:  NewMachine(cfg.NumRegisters),
		workers:  workers,
		pageSize: 1,
	}
	t.machines = make([]*Machine, workers)
	for i := range t.machines {
		t.machines[i] = NewMachine(cfg.NumRegisters)
	}
	t.fullIdx = make([]int, len(examples))
	for i := range t.fullIdx {
		t.fullIdx[i] = i
	}
	t.tourIdx = make([]int, 0, cfg.TournamentSize)
	t.tourProgs = make([]*Program, cfg.TournamentSize)
	t.tourFit = make([]float64, cfg.TournamentSize)
	t.tourSeen = make([]bool, cfg.PopulationSize)
	t.pop = make([]*Program, cfg.PopulationSize)
	for i := range t.pop {
		pages := 1 + t.rng.Intn(cfg.MaxPages)
		code := make([]Instruction, pages*cfg.MaxPageSize)
		for j := range code {
			code[j] = randomInstruction(t.rng, &cfg)
		}
		t.pop[i] = &Program{Code: code}
	}
	if cfg.DSS != nil {
		t.difficulty = make([]float64, len(examples))
		t.age = make([]float64, len(examples))
		t.selectSubset()
	} else {
		t.subset = make([]int, len(examples))
		for i := range t.subset {
			t.subset[i] = i
		}
	}
	return t, nil
}

// predict runs one example through the trainer's own machine under the
// configured recurrence mode.
func (t *Trainer) predict(p *Program, ex *Example) float64 {
	return t.predictOn(t.machine, p, ex)
}

// predictOn runs one example through an explicit machine — the pure
// evaluation step that worker goroutines share-nothing over.
func (t *Trainer) predictOn(m *Machine, p *Program, ex *Example) float64 {
	if t.cfg.Recurrent {
		return m.RunSequence(p, ex.Inputs)
	}
	return m.RunSequenceNonRecurrent(p, ex.Inputs)
}

// fitnessOn computes the configured objective of p over the example
// indices. Lower is better. FitnessSSE is Equation 5; FitnessF1 is
// (1-F1)·n plus a small SSE tie-breaker.
func (t *Trainer) fitnessOn(p *Program, idxs []int) float64 {
	return t.fitnessOnMachine(t.machine, p, idxs)
}

func (t *Trainer) fitnessOnMachine(m *Machine, p *Program, idxs []int) float64 {
	var sse float64
	var tp, fp, fn int
	for _, i := range idxs {
		out := t.predictOn(m, p, &t.examples[i])
		diff := t.examples[i].Label - out
		sse += diff * diff
		if t.cfg.Fitness == FitnessF1 {
			predicted := out > 0
			actual := t.examples[i].Label > 0
			switch {
			case actual && predicted:
				tp++
			case actual && !predicted:
				fn++
			case !actual && predicted:
				fp++
			}
		}
	}
	if t.cfg.Fitness != FitnessF1 {
		return sse
	}
	f1 := 0.0
	if den := 2*tp + fp + fn; den > 0 {
		f1 = 2 * float64(tp) / float64(den)
	}
	return (1-f1)*float64(len(idxs)) + 0.001*sse
}

// FullFitness computes Equation 5 over the entire training set.
func (t *Trainer) FullFitness(p *Program) float64 {
	return t.fitnessOn(p, t.fullIdx)
}

// evalFitness computes fitnessOn(programs[i], idxs) for every program,
// fanning the (pure, independent) evaluations out over the trainer's
// worker machines. Results are written by index, so the output — and
// therefore the whole evolutionary trajectory — is bit-identical to the
// serial path for any worker count.
func (t *Trainer) evalFitness(programs []*Program, idxs []int, out []float64) {
	workers := t.workers
	if workers > len(programs) {
		workers = len(programs)
	}
	if workers <= 1 {
		for i, p := range programs {
			out[i] = t.fitnessOnMachine(t.machines[0], p, idxs)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int, m *Machine) {
			defer wg.Done()
			for i := w; i < len(programs); i += workers {
				out[i] = t.fitnessOnMachine(m, programs[i], idxs)
			}
		}(w, t.machines[w])
	}
	wg.Wait()
}

// selectSubset draws a new DSS subset by roulette over
// difficulty^d + age^a weights, without replacement. With Stratify set,
// in-class and out-class examples are drawn separately in proportion to
// their training shares (at least one each). Selected examples have
// their age reset; all others age by one.
func (t *Trainer) selectSubset() {
	dss := t.cfg.DSS
	n := len(t.examples)
	size := dss.SubsetSize
	if size > n {
		size = n
	}
	dExp, aExp := dss.DifficultyExp, dss.AgeExp
	if dExp == 0 {
		dExp = 1
	}
	if aExp == 0 {
		aExp = 1
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = powf(t.difficulty[i], dExp) + powf(t.age[i], aExp) + 1
	}

	chosen := make(map[int]bool, size)
	t.subset = t.subset[:0]
	if dss.Stratify {
		var pos, neg []int
		for i := range t.examples {
			if t.examples[i].Label > 0 {
				pos = append(pos, i)
			} else {
				neg = append(neg, i)
			}
		}
		posQuota := size * len(pos) / n
		if posQuota < 1 && len(pos) > 0 {
			posQuota = 1
		}
		if posQuota > len(pos) {
			posQuota = len(pos)
		}
		negQuota := size - posQuota
		if negQuota > len(neg) {
			negQuota = len(neg)
		}
		t.drawFrom(pos, posQuota, weights, chosen)
		t.drawFrom(neg, negQuota, weights, chosen)
	} else {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		t.drawFrom(all, size, weights, chosen)
	}
	for i := range t.age {
		if chosen[i] {
			t.age[i] = 0
		} else {
			t.age[i]++
		}
	}
}

// drawFrom roulette-selects count distinct indices from pool into the
// subset, weighted by weights.
func (t *Trainer) drawFrom(pool []int, count int, weights []float64, chosen map[int]bool) {
	var total float64
	for _, i := range pool {
		total += weights[i]
	}
	for k := 0; k < count; k++ {
		x := t.rng.Float64() * total
		idx := -1
		for _, i := range pool {
			if chosen[i] {
				continue
			}
			if x < weights[i] {
				idx = i
				break
			}
			x -= weights[i]
		}
		if idx < 0 { // numerical fallthrough: take first unchosen
			for _, i := range pool {
				if !chosen[i] {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return // pool exhausted
		}
		chosen[idx] = true
		total -= weights[idx]
		t.subset = append(t.subset, idx)
	}
}

func powf(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	// Small integer exponents dominate in practice. The dispatch is on
	// exact bit patterns: exponents come verbatim from config, so only
	// a literal 1, 2 or 3 takes a fast path.
	switch math.Float64bits(exp) {
	case math.Float64bits(1):
		return base
	case math.Float64bits(2):
		return base * base
	case math.Float64bits(3):
		return base * base * base
	}
	out := 1.0
	for i := 0; i < int(exp); i++ {
		out *= base
	}
	return out
}

// updateDifficulty bumps the difficulty of subset examples the
// tournament winner misclassified and decays the rest.
func (t *Trainer) updateDifficulty(winner *Program) {
	if t.cfg.DSS == nil {
		return
	}
	for _, i := range t.subset {
		out := t.predict(winner, &t.examples[i])
		if out*t.examples[i].Label <= 0 {
			t.difficulty[i]++
		} else if t.difficulty[i] > 0 {
			t.difficulty[i]--
		}
	}
}

// Run executes the configured number of steady-state tournaments and
// returns the best individual by full-training-set fitness.
func (t *Trainer) Run() *Result {
	res := &Result{
		BestHistory:     make([]float64, 0, t.cfg.Tournaments),
		PageSizeHistory: make([]int, 0, t.cfg.Tournaments),
	}
	traced := t.cfg.Trace != nil
	for tour := 0; tour < t.cfg.Tournaments; tour++ {
		if t.cfg.DSS != nil && tour > 0 && tour%t.cfg.DSS.Interval == 0 {
			t.selectSubset()
		}
		var start time.Time
		if traced {
			start = time.Now()
		}
		best := t.tournament()
		res.BestHistory = append(res.BestHistory, best)
		t.trackPlateau(best)
		res.PageSizeHistory = append(res.PageSizeHistory, t.pageSize)
		if traced {
			var sum, lenSum float64
			k := t.cfg.TournamentSize
			for i := 0; i < k; i++ {
				sum += t.tourFit[i]
				lenSum += float64(len(t.tourProgs[i].Code))
			}
			t.cfg.Trace(TournamentStats{
				Tournament: tour,
				Best:       best,
				Mean:       sum / float64(k),
				MeanLen:    lenSum / float64(k),
				PageSize:   t.pageSize,
				SubsetSize: len(t.subset),
				Duration:   time.Since(start),
			})
		}
	}
	// Final model selection over the population on the full training set,
	// evaluated in parallel (pure) with a deterministic serial argmin.
	fits := make([]float64, len(t.pop))
	t.evalFitness(t.pop, t.fullIdx, fits)
	bestIdx, bestFit := 0, fits[0]
	for i := 1; i < len(fits); i++ {
		if fits[i] < bestFit {
			bestIdx, bestFit = i, fits[i]
		}
	}
	res.Best = t.pop[bestIdx].Clone()
	res.Fitness = bestFit
	return res
}

// tournament runs one steady-state tournament of TournamentSize
// contestants: the two fittest reproduce, their children (after
// variation) overwrite the two least fit, and the tournament-best
// fitness is returned.
//
// All RNG draws (contestant selection) happen before the fitness
// evaluations fan out across workers; evaluation itself is pure, so the
// trajectory is bit-identical for any worker count.
func (t *Trainer) tournament() float64 {
	k := t.cfg.TournamentSize
	t.tourIdx = t.tourIdx[:0]
	for len(t.tourIdx) < k {
		i := t.rng.Intn(len(t.pop))
		if !t.tourSeen[i] {
			t.tourSeen[i] = true
			t.tourIdx = append(t.tourIdx, i)
		}
	}
	for _, i := range t.tourIdx {
		t.tourSeen[i] = false
	}
	for i, pi := range t.tourIdx {
		t.tourProgs[i] = t.pop[pi]
	}
	fit := t.tourFit[:k]
	t.evalFitness(t.tourProgs[:k], t.subset, fit)
	// Sort contestants ascending by fitness (lower SSE is better),
	// carrying the population indices along.
	idx := t.tourIdx
	for i := 1; i < k; i++ {
		for j := i; j > 0 && fit[j] < fit[j-1]; j-- {
			fit[j], fit[j-1] = fit[j-1], fit[j]
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	child1 := t.pop[idx[0]].Clone()
	child2 := t.pop[idx[1]].Clone()
	t.vary(child1, child2)
	t.pop[idx[k-1]] = child1
	t.pop[idx[k-2]] = child2
	t.updateDifficulty(t.pop[idx[0]])
	return fit[0]
}

// vary applies the three variation operators additively (each with its
// own probability, possibly all three) to the two children.
func (t *Trainer) vary(a, b *Program) {
	if t.rng.Float64() < t.cfg.PCrossover {
		t.crossover(a, b)
	}
	if t.rng.Float64() < t.cfg.PMutate {
		t.mutate(a)
	}
	if t.rng.Float64() < t.cfg.PMutate {
		t.mutate(b)
	}
	if t.rng.Float64() < t.cfg.PSwap {
		t.swap(a)
	}
	if t.rng.Float64() < t.cfg.PSwap {
		t.swap(b)
	}
}

// crossover exchanges one page of the current dynamic page size between
// the two programs. Pages need not be aligned across parents but always
// hold the same number of instructions, so lengths are preserved.
func (t *Trainer) crossover(a, b *Program) {
	ps := t.pageSize
	na, nb := len(a.Code)/ps, len(b.Code)/ps
	if na == 0 || nb == 0 {
		return
	}
	pa, pb := t.rng.Intn(na)*ps, t.rng.Intn(nb)*ps
	for i := 0; i < ps; i++ {
		a.Code[pa+i], b.Code[pb+i] = b.Code[pb+i], a.Code[pa+i]
	}
}

// mutate XORs one instruction with a freshly generated instruction (the
// paper's 'Mutation' operator).
func (t *Trainer) mutate(p *Program) {
	i := t.rng.Intn(len(p.Code))
	p.Code[i] ^= randomInstruction(t.rng, &t.cfg)
}

// swap interchanges two uniformly chosen instructions within the same
// individual (the paper's 'Swap' operator: right instruction mix, wrong
// order).
func (t *Trainer) swap(p *Program) {
	i, j := t.rng.Intn(len(p.Code)), t.rng.Intn(len(p.Code))
	p.Code[i], p.Code[j] = p.Code[j], p.Code[i]
}

// trackPlateau implements the dynamic page-size schedule: tournament-best
// fitnesses are summed over consecutive non-overlapping windows of
// PlateauWindow tournaments; equal sums in adjacent windows define a
// plateau, which doubles the page size (wrapping to 1 past MaxPageSize).
func (t *Trainer) trackPlateau(best float64) {
	t.windowSum += best
	t.windowCount++
	if t.windowCount < t.cfg.PlateauWindow {
		return
	}
	// Bit-identical window sums define the plateau: the sums aggregate
	// the same deterministic fitness values, so an exactly repeated
	// window really does repeat bit for bit.
	if t.havePrev && math.Float64bits(t.windowSum) == math.Float64bits(t.prevWindow) {
		t.pageSize *= 2
		if t.pageSize > t.cfg.MaxPageSize {
			t.pageSize = 1
		}
	}
	t.prevWindow = t.windowSum
	t.havePrev = true
	t.windowSum = 0
	t.windowCount = 0
}

// PageSize exposes the current dynamic page size (for tests).
func (t *Trainer) PageSize() int { return t.pageSize }

// Subset returns a copy of the active DSS subset indices (for tests and
// diagnostics). The copy allocates on every call — hoist it out of loops;
// the trainer itself always uses the internal slice directly.
func (t *Trainer) Subset() []int { return append([]int(nil), t.subset...) }
