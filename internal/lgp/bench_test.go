package lgp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchExamples builds a training set shaped like the paper's workload:
// n documents of w-word sequences over 2-dimensional word codes.
func benchExamples(n, w int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, n)
	for i := range out {
		seq := make([][]float64, w)
		for j := range seq {
			seq[j] = []float64{rng.Float64(), rng.Float64()}
		}
		label := -1.0
		if i%2 == 0 {
			label = 1
		}
		out[i] = Example{Inputs: seq, Label: label}
	}
	return out
}

func benchTrainer(b *testing.B, workers int) *Trainer {
	b.Helper()
	cfg := DefaultConfig()
	cfg.PopulationSize = 32
	cfg.Tournaments = 10
	cfg.DSS = nil
	cfg.Seed = 7
	cfg.Workers = workers
	tr, err := NewTrainer(cfg, benchExamples(40, 30, 3))
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkTournament(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := benchTrainer(b, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.tournament()
			}
		})
	}
}

// benchTraceSink keeps the compiler from eliding the Trace callback.
var benchTraceSink TournamentStats

// BenchmarkTournamentTrace measures Run with and without the
// per-tournament Trace hook. Trace is read-only, so both variants do
// identical evolutionary work; the delta is the telemetry overhead
// recorded in BENCH_PR2.json (<5% target).
func BenchmarkTournamentTrace(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "trace=off"
		if traced {
			name = "trace=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.PopulationSize = 32
			cfg.Tournaments = 10
			cfg.DSS = nil
			cfg.Seed = 7
			cfg.Workers = 1
			if traced {
				cfg.Trace = func(s TournamentStats) { benchTraceSink = s }
			}
			tr, err := NewTrainer(cfg, benchExamples(40, 30, 3))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Run()
			}
		})
	}
}

func BenchmarkRunSequence(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PopulationSize = 4
	cfg.Tournaments = 1
	cfg.DSS = nil
	tr, err := NewTrainer(cfg, benchExamples(4, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	p := tr.pop[0]
	m := NewMachine(cfg.NumRegisters)
	seq := benchExamples(1, 50, 2)[0].Inputs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunSequence(p, seq)
	}
}
