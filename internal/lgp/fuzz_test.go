package lgp

import (
	"math"
	"testing"
)

// FuzzParseProgram checks the rule parser never panics and that every
// accepted program executes with finite outputs.
func FuzzParseProgram(f *testing.F) {
	f.Add("R0=R0+I1")
	f.Add("R1=R1-I1; R0=R0*I1; R1=R1/I0")
	f.Add("R2=R2+0.43; R0=R0--1.00")
	f.Add("garbage ;; R0=R0")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram(src, 8, 2)
		if err != nil {
			return
		}
		m := NewMachine(8)
		out := m.RunSequence(p, [][]float64{{0.5, -0.5}, {1, 1}})
		if math.IsNaN(out) || out < -1 || out > 1 {
			t.Fatalf("accepted program %q produced %v", src, out)
		}
	})
}

// FuzzMachineStep checks that arbitrary instruction words execute with
// finite register state (syntactic closure end-to-end).
func FuzzMachineStep(f *testing.F) {
	f.Add(uint32(0), 0.5, 0.5)
	f.Add(^uint32(0), -1.0, 1e6)
	f.Add(uint32(1<<13|3<<11), 0.0, 0.0) // external divide
	f.Fuzz(func(t *testing.T, raw uint32, in0, in1 float64) {
		if math.IsNaN(in0) || math.IsNaN(in1) || math.IsInf(in0, 0) || math.IsInf(in1, 0) {
			return
		}
		m := NewMachine(8)
		p := &Program{Code: []Instruction{Instruction(raw)}}
		for i := 0; i < 5; i++ {
			m.Step(p, []float64{in0, in1})
		}
		for _, r := range m.Registers() {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("instruction %#x produced register %v", raw, r)
			}
			if r > regClamp || r < -regClamp {
				t.Fatalf("instruction %#x escaped the clamp: %v", raw, r)
			}
		}
	})
}
