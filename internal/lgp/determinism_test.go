package lgp

import (
	"reflect"
	"testing"
)

// runWithWorkers trains a small population with the given worker count
// and returns the full result. Everything else — seed, examples,
// schedule — is held fixed.
func runWithWorkers(t *testing.T, workers int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PopulationSize = 24
	cfg.Tournaments = 120
	cfg.DSS = &DSSConfig{SubsetSize: 16, Interval: 20}
	cfg.Seed = 42
	cfg.Workers = workers
	tr, err := NewTrainer(cfg, benchExamples(32, 12, 9))
	if err != nil {
		t.Fatalf("NewTrainer(workers=%d): %v", workers, err)
	}
	return tr.Run()
}

// TestRunDeterministicAcrossWorkers is the regression test for the
// parallel evaluation engine: every worker count must yield the exact
// model and fitness trajectory the serial path yields, bit for bit.
// The engine guarantees this by drawing all RNG values before fanning
// out and keeping the fanned-out work pure.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	want := runWithWorkers(t, 1)
	for _, workers := range []int{2, 3, 4, 0} {
		got := runWithWorkers(t, workers)
		if got.Fitness != want.Fitness {
			t.Errorf("workers=%d: final fitness %v, serial %v", workers, got.Fitness, want.Fitness)
		}
		if !reflect.DeepEqual(got.Best.Code, want.Best.Code) {
			t.Errorf("workers=%d: best program differs from serial run", workers)
		}
		if !reflect.DeepEqual(got.BestHistory, want.BestHistory) {
			t.Errorf("workers=%d: fitness trajectory differs from serial run", workers)
		}
		if !reflect.DeepEqual(got.PageSizeHistory, want.PageSizeHistory) {
			t.Errorf("workers=%d: page-size schedule differs from serial run", workers)
		}
	}
}
