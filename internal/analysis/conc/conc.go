// Package conc is the concurrency-dataflow layer under the atomicsafe,
// goleak, ctxflow and chandisc analyzers: CFG divergence (can a
// function fail to reach its exit?), blocking-operation enumeration
// (bare sends/receives, blocking selects, time.Sleep) and stable
// channel naming for may-closed dataflow. Standard library only, like
// the rest of internal/analysis.
//
// The walks here share one attribution convention with the call graph:
// a function literal runs on its encloser's behalf, so its operations
// charge the enclosing function — except when the literal is spawned
// with `go`, which starts a new goroutine (a new job scope) whose
// operations are the goleak analyzer's business, not the spawner's.
package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis/cfg"
)

// Divergence reports whether some block of g is reachable from the
// entry but cannot reach the exit — i.e. the function has a path on
// which it provably never returns (`for {}` without a break, `select{}`,
// a loop whose only exits re-enter it). The returned position is a
// deterministic witness: the first statement of the lowest-index
// diverging block (token.NoPos when every diverging block is empty,
// e.g. a bare `for {}`).
func Divergence(g *cfg.Graph) (token.Pos, bool) {
	if g == nil || len(g.Blocks) == 0 {
		return token.NoPos, false
	}
	// Forward reachability from the entry.
	fwd := make([]bool, len(g.Blocks))
	var walk func(*cfg.Block)
	walk = func(b *cfg.Block) {
		if fwd[b.Index] {
			return
		}
		fwd[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Blocks[0])

	// Reverse reachability from the exit over the predecessor relation.
	preds := make([][]*cfg.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	rev := make([]bool, len(g.Blocks))
	var back func(*cfg.Block)
	back = func(b *cfg.Block) {
		if rev[b.Index] {
			return
		}
		rev[b.Index] = true
		for _, p := range preds[b.Index] {
			back(p)
		}
	}
	back(g.Exit)

	witness, diverges := token.NoPos, false
	for _, b := range g.Blocks {
		if !fwd[b.Index] || rev[b.Index] {
			continue
		}
		diverges = true
		if witness == token.NoPos && len(b.Stmts) > 0 {
			witness = b.Stmts[0].Pos()
		}
	}
	return witness, diverges
}

// OpKind classifies one blocking operation.
type OpKind int

const (
	// OpSend is a bare channel send outside any select.
	OpSend OpKind = iota
	// OpRecv is a bare channel receive outside any select (receives of
	// ctx.Done() are exempt — waiting for cancellation is the point).
	OpRecv
	// OpSelect is a select statement; HasDefault and HasDone qualify it.
	OpSelect
	// OpSleep is a time.Sleep call.
	OpSleep
)

// Op is one potentially blocking operation found in a function body.
type Op struct {
	Kind OpKind
	Pos  token.Pos
	// Chan is the channel expression of a send/receive, nil otherwise.
	Chan ast.Expr
	// HasDefault marks a select with a default clause (non-blocking).
	HasDefault bool
	// HasDone marks a select with a case receiving from a
	// context.Context's Done() channel (cancellable).
	HasDone bool
}

// BlockingOps enumerates the blocking operations of root in source
// order. Send/receive statements that are select communication clauses
// belong to their select and are not double-counted; `go`-spawned
// subtrees are skipped entirely (their blocking runs in another
// goroutine); function literals are included (they run on the
// encloser's behalf). Ranging over a channel is deliberately not an
// op: `for v := range ch` is the owner-closes-drain idiom the goleak
// analyzer blesses as a termination path.
func BlockingOps(info *types.Info, root ast.Node) []Op {
	var ops []Op
	inSelect := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			op := Op{Kind: OpSelect, Pos: x.Pos()}
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					op.HasDefault = true
					continue
				}
				// Mark the clause's send/receive nodes so the walk below
				// does not count them as bare operations.
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						inSelect[m] = true
					case *ast.FuncLit, *ast.GoStmt:
						return false
					}
					return true
				})
				if commReceivesDone(info, cc.Comm) {
					op.HasDone = true
				}
			}
			ops = append(ops, op)
			return true
		case *ast.SendStmt:
			if !inSelect[x] {
				ops = append(ops, Op{Kind: OpSend, Pos: x.Pos(), Chan: x.Chan})
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inSelect[x] && !isDoneCall(info, x.X) {
				ops = append(ops, Op{Kind: OpRecv, Pos: x.Pos(), Chan: x.X})
			}
			return true
		case *ast.CallExpr:
			if isPkgCall(info, x, "time", "Sleep") {
				ops = append(ops, Op{Kind: OpSleep, Pos: x.Pos()})
			}
			return true
		}
		return true
	})
	return ops
}

// commReceivesDone reports whether a select communication statement
// receives from a context's Done() channel.
func commReceivesDone(info *types.Info, comm ast.Stmt) bool {
	found := false
	ast.Inspect(comm, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW && isDoneCall(info, u.X) {
			found = true
		}
		return true
	})
	return found
}

// isDoneCall matches `ctx.Done()` for a context.Context-typed ctx.
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return IsContext(info.TypeOf(sel.X))
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// isPkgCall matches a qualified package-level call pkg.name(...).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// Key renders a channel expression as a stable path ("ch", "p.queue",
// "j.done") for may-closed dataflow keys. Expressions with computed
// parts (indexing, calls) are not trackable and return "".
func Key(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := Key(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return Key(x.X)
	case *ast.StarExpr:
		return Key(x.X)
	}
	return ""
}
