// Package analysistest applies one analyzer to fixture packages under
// a testdata module and compares the diagnostics it reports against
// inline `// want "substring"` comments — the stdlib-only counterpart
// of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in a real (nested, tool-ignored) module so they load
// through the exact `go list` + export-data path production uses:
//
//	testdata/src/go.mod           — module tdfix
//	testdata/src/<check>/<...>.go — seeded violations, marked with
//	                                // want "message substring"
//
// Every line carrying a want comment must produce a matching
// diagnostic, every diagnostic must land on a line that wants it, and
// anything else fails the test.
package analysistest

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/callgraph"
	"temporaldoc/internal/analysis/facts"
	"temporaldoc/internal/analysis/load"
)

// Run loads importPath from the fixture module rooted at testdata/src,
// applies a, and reports want-comment mismatches to t. The raw
// diagnostics are returned for extra assertions.
//
// Interprocedural analyzers get the same treatment production does:
// the call graph spans every loaded fixture package (the target and
// its in-module dependencies), and a Facts phase runs over them in
// dependency order with per-package sealing, so a fixture can exercise
// cross-package fact propagation.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPath string) []analysis.Diagnostic {
	t.Helper()
	res, err := load.Packages(filepath.Join(testdata, "src"), importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", importPath, err)
	}
	var pkg *load.Package
	for _, p := range res.Packages {
		if p.ImportPath == importPath {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatalf("package %s not among loaded packages", importPath)
	}

	cgPkgs := make([]callgraph.Pkg, 0, len(res.Packages))
	for _, p := range res.Packages {
		cgPkgs = append(cgPkgs, callgraph.Pkg{Files: p.Files, Info: p.Info})
	}
	graph := callgraph.Build(cgPkgs)
	var store *facts.Store
	if a.Facts != nil {
		store = facts.NewStore()
		for _, p := range load.DependencyOrder(res.Packages) {
			if err := store.Begin(p.ImportPath); err != nil {
				t.Fatal(err)
			}
			pass := analysis.NewPass(a, res.Fset, p.Files, p.Types, p.Info, func(d analysis.Diagnostic) {
				t.Errorf("%s: facts phase reported a diagnostic: %s", a.Name, d.Message)
			})
			pass.Graph = graph
			pass.Facts = store
			if err := a.Facts(pass); err != nil {
				t.Fatalf("%s: facts: %s: %v", a.Name, p.ImportPath, err)
			}
			if err := store.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	pass.Graph = graph
	pass.Facts = store
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	check(t, res.Fset, pkg, diags)
	return diags
}

// wantKey addresses one fixture source line.
type wantKey struct {
	file string
	line int
}

type want struct {
	substr  string
	matched bool
}

func check(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*want{}
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				pos := fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				for _, substr := range parseWants(c.Text) {
					wants[k] = append(wants[k], &want{substr: substr})
				}
			}
		}
	}
	for _, d := range diags {
		pos := d.Position(fset)
		k := wantKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				filepath.Base(pos.Filename), pos.Line, d.Check, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(k.file), k.line, w.substr)
			}
		}
	}
}

// parseWants extracts the quoted substrings of a `// want "a" "b"`
// comment; non-want comments yield nothing.
func parseWants(comment string) []string {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	parts := strings.Split(text[len("want "):], `"`)
	var out []string
	for i := 1; i < len(parts); i += 2 {
		out = append(out, parts[i])
	}
	return out
}
