// Package facts is the cross-package summary store of the dataflow
// engine. An analyzer's facts phase runs once per package, in import
// order, and records named per-function facts ("impure", with a
// provenance chain, is the canonical one); the driver then *seals* the
// package, serializing its facts to a standalone blob exactly the way
// the build caches export data. Downstream packages read upstream facts
// only through sealed blobs — decoded on demand — so a summary that
// would not survive serialization cannot leak between packages, and the
// blobs could be cached per package alongside export data without any
// API change.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"sync"
)

// Fact is one serialized entry: a named property of one function.
type Fact struct {
	// Fn is the function's full name as types.Func.FullName renders it,
	// e.g. "temporaldoc/internal/som.Train" or
	// "(*temporaldoc/internal/som.Map).BMU".
	Fn string `json:"fn"`
	// Name is the fact name within the owning analyzer's namespace.
	Name string `json:"name"`
	// Detail is free-form payload (the purity analyzer stores the
	// impurity provenance chain here).
	Detail string `json:"detail,omitempty"`
}

type key struct{ fn, name string }

// shared is the sealed-blob state every view of a store reads through.
// The mutex makes concurrent Seal/Get safe, which is what lets the
// driver run independent packages' facts phases in parallel: each
// package works in its own view's open set and only synchronizes on the
// sealed map — the same discipline the build cache applies to export
// data.
type shared struct {
	mu      sync.Mutex
	sealed  map[string][]byte
	decoded map[string]map[key]string
}

// Store holds one analyzer's facts: an open working set for the package
// currently being analyzed, plus sealed per-package blobs for every
// package already finished (shared between views).
type Store struct {
	sh      *shared
	openPkg string
	open    map[key]string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{sh: &shared{
		sealed:  map[string][]byte{},
		decoded: map[string]map[key]string{},
	}}
}

// View returns a store that shares this store's sealed blobs but has
// its own open working set, so independent packages can run Begin/Put/
// Seal concurrently. Views and their parent are interchangeable for
// reads.
func (s *Store) View() *Store { return &Store{sh: s.sh} }

// FuncID is the stable identifier facts are keyed by.
func FuncID(fn *types.Func) string { return fn.FullName() }

// Begin opens a working set for pkgPath. The previous package must have
// been sealed.
func (s *Store) Begin(pkgPath string) error {
	if s.open != nil {
		return fmt.Errorf("facts: package %q still open", s.openPkg)
	}
	s.openPkg = pkgPath
	s.open = map[key]string{}
	return nil
}

// Put records a fact for fn in the open package's working set.
func (s *Store) Put(fn *types.Func, name, detail string) {
	s.PutID(FuncID(fn), name, detail)
}

// PutID records a fact under an arbitrary stable identifier — used for
// non-function subjects such as struct fields (the atomicsafe field
// registry keys facts by "pkg.Type.field").
func (s *Store) PutID(id, name, detail string) {
	if s.open == nil {
		panic("facts: Put outside Begin/Seal")
	}
	s.open[key{id, name}] = detail
}

// Get looks a fact up by subject ID: the open working set first (the
// package being analyzed sees its own facts live), then every sealed
// package, decoding blobs on first touch.
func (s *Store) Get(fnID, name string) (detail string, ok bool) {
	k := key{fnID, name}
	if s.open != nil {
		if d, ok := s.open[k]; ok {
			return d, true
		}
	}
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	for pkg, blob := range s.sh.sealed {
		m, err := s.decode(pkg, blob)
		if err != nil {
			continue
		}
		if d, ok := m[k]; ok {
			return d, true
		}
	}
	return "", false
}

// GetFunc is Get keyed by the function object.
func (s *Store) GetFunc(fn *types.Func, name string) (string, bool) {
	return s.Get(FuncID(fn), name)
}

// Seal serializes the open working set into the package's blob and
// closes it. Sealing an empty set stores an empty blob — "analyzed,
// nothing to report" is itself a result.
func (s *Store) Seal() error {
	if s.open == nil {
		return fmt.Errorf("facts: Seal without Begin")
	}
	blob, err := encode(s.open)
	if err != nil {
		return err
	}
	s.sh.mu.Lock()
	s.sh.sealed[s.openPkg] = blob
	delete(s.sh.decoded, s.openPkg)
	s.sh.mu.Unlock()
	s.open, s.openPkg = nil, ""
	return nil
}

// Export returns the sealed blob of pkgPath (nil when never sealed),
// for callers that persist facts next to export data.
func (s *Store) Export(pkgPath string) []byte {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	return s.sh.sealed[pkgPath]
}

// Import installs a previously exported blob for pkgPath, validating it
// eagerly.
func (s *Store) Import(pkgPath string, blob []byte) error {
	if _, err := decodeBlob(blob); err != nil {
		return fmt.Errorf("facts: importing %s: %v", pkgPath, err)
	}
	s.sh.mu.Lock()
	s.sh.sealed[pkgPath] = blob
	delete(s.sh.decoded, pkgPath)
	s.sh.mu.Unlock()
	return nil
}

// decode caches a blob's decoded map; callers hold sh.mu.
func (s *Store) decode(pkg string, blob []byte) (map[key]string, error) {
	if m, ok := s.sh.decoded[pkg]; ok {
		return m, nil
	}
	m, err := decodeBlob(blob)
	if err != nil {
		return nil, err
	}
	s.sh.decoded[pkg] = m
	return m, nil
}

func encode(m map[key]string) ([]byte, error) {
	facts := make([]Fact, 0, len(m))
	for k, d := range m {
		facts = append(facts, Fact{Fn: k.fn, Name: k.name, Detail: d})
	}
	sort.Slice(facts, func(i, j int) bool {
		if facts[i].Fn != facts[j].Fn {
			return facts[i].Fn < facts[j].Fn
		}
		return facts[i].Name < facts[j].Name
	})
	return json.Marshal(facts)
}

func decodeBlob(blob []byte) (map[key]string, error) {
	var facts []Fact
	if err := json.Unmarshal(blob, &facts); err != nil {
		return nil, err
	}
	m := make(map[key]string, len(facts))
	for _, f := range facts {
		m[key{f.Fn, f.Name}] = f.Detail
	}
	return m, nil
}
