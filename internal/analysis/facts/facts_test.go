package facts_test

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"temporaldoc/internal/analysis/facts"
)

// fixtureFuncs type-checks a tiny source and returns its functions by
// name, so Put has real *types.Func keys.
func fixtureFuncs(t *testing.T, src string) map[string]*types.Func {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("fix/p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	fns := map[string]*types.Func{}
	for id, obj := range info.Defs {
		if fn, ok := obj.(*types.Func); ok {
			fns[id.Name] = fn
		}
	}
	return fns
}

func TestRoundTrip(t *testing.T) {
	fns := fixtureFuncs(t, "package p\nfunc A() {}\nfunc B() {}\n")
	s := facts.NewStore()
	if err := s.Begin("fix/p"); err != nil {
		t.Fatal(err)
	}
	s.Put(fns["A"], "impure", "math/rand.Intn")

	// The open package sees its own facts live.
	if d, ok := s.GetFunc(fns["A"], "impure"); !ok || d != "math/rand.Intn" {
		t.Fatalf("open Get = %q, %v", d, ok)
	}
	if _, ok := s.GetFunc(fns["B"], "impure"); ok {
		t.Fatal("B should have no fact")
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// Sealed facts remain visible — now through the serialized blob.
	if d, ok := s.GetFunc(fns["A"], "impure"); !ok || d != "math/rand.Intn" {
		t.Fatalf("sealed Get = %q, %v", d, ok)
	}
}

func TestExportImport(t *testing.T) {
	fns := fixtureFuncs(t, "package p\nfunc A() {}\n")
	s := facts.NewStore()
	if err := s.Begin("fix/p"); err != nil {
		t.Fatal(err)
	}
	s.Put(fns["A"], "impure", "time.Now")
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	blob := s.Export("fix/p")
	if len(blob) == 0 {
		t.Fatal("empty export blob")
	}

	fresh := facts.NewStore()
	if err := fresh.Import("fix/p", blob); err != nil {
		t.Fatal(err)
	}
	if d, ok := fresh.Get(facts.FuncID(fns["A"]), "impure"); !ok || d != "time.Now" {
		t.Fatalf("imported Get = %q, %v", d, ok)
	}
	if err := fresh.Import("fix/q", []byte("not json")); err == nil {
		t.Fatal("importing garbage should fail")
	}
}

func TestSealDeterministic(t *testing.T) {
	fns := fixtureFuncs(t, "package p\nfunc A() {}\nfunc B() {}\nfunc C() {}\n")
	blob := func() []byte {
		s := facts.NewStore()
		if err := s.Begin("fix/p"); err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"C", "A", "B"} {
			s.Put(fns[n], "impure", "src-"+n)
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		return s.Export("fix/p")
	}
	a, b := blob(), blob()
	if !bytes.Equal(a, b) {
		t.Errorf("sealed blobs differ across runs:\n%s\n%s", a, b)
	}
}

func TestLifecycleErrors(t *testing.T) {
	s := facts.NewStore()
	if err := s.Seal(); err == nil {
		t.Error("Seal without Begin should fail")
	}
	if err := s.Begin("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin("b"); err == nil {
		t.Error("Begin with a package still open should fail")
	}
}
