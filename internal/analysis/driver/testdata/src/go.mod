module drvfix

go 1.22
