// Package concfix exercises the driver-level suppression paths of the
// concurrency analyzers: one caught goroutine leak, one opted out with
// //tdlint:background (analyzer-level), one silenced with //lint:ignore
// (driver-level), plus //lint:ignore'd atomicsafe and chandisc
// findings.
package concfix

import "sync/atomic"

func spin() {
	for {
	}
}

func spawnBad() {
	go spin()
}

// pump is deliberate detached work; the annotation suppresses the
// check inside the analyzer, so the driver never sees a finding.
//
//tdlint:background fixture: deliberate process-lifetime spinner
func pump() {
	for {
	}
}

func spawnAnnotated() {
	go pump()
}

func spawnIgnored() {
	//lint:ignore goleak fixture: accepted wedge, exercised by the driver test
	go spin()
}

// reg's counter is atomic-managed by bump; peek's plain read is an
// atomicsafe finding silenced at the driver layer.
type reg struct {
	n int64
}

func bump(r *reg) {
	atomic.AddInt64(&r.n, 1)
}

func peek(r *reg) int64 {
	//lint:ignore atomicsafe fixture: torn read acceptable in this probe
	return r.n
}

func closeTwice() {
	ch := make(chan int)
	close(ch)
	//lint:ignore chandisc fixture: deliberate double close for the suppression test
	close(ch)
}
