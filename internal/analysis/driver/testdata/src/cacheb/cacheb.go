// Package cacheb sits above cachea in the cache-fixture pair: its
// purity finding depends on cachea's sealed facts, so a warm run that
// skips either package must still reproduce it byte-for-byte.
package cacheb

import "drvfix/cachea"

// Train reaches cachea's impurity across the package boundary; the
// cache tests configure it as a purity entry point.
func Train(n int) int {
	return cachea.Mix(n)
}

// Pure stays clean.
func Pure(a int) int { return cachea.Add(a, 1) }
