// Package suppress exercises the driver's suppression machinery with
// deliberate determinism findings.
package suppress

import "math/rand"

func unsuppressed() int {
	return rand.Int()
}

func sameLine() int {
	return rand.Int() //lint:ignore determinism fixture: suppressed on the same line
}

func lineAbove() int {
	//lint:ignore determinism fixture: suppressed from the line above
	return rand.Int()
}

func malformed() int {
	//lint:ignore determinism
	return rand.Int()
}
