package suppress

//lint:file-ignore determinism fixture: this whole file opts out

import "math/rand"

func fileWide() int {
	return rand.Int()
}

func alsoFileWide() int {
	return rand.Int()
}
