// Package cachea is the leaf of the cache-fixture pair: cacheb imports
// it, so an edit here must invalidate both packages' cache entries
// while leaving the rest of the module warm.
package cachea

import "math/rand"

// Mix draws from the process-global Source. The intraprocedural
// determinism finding is suppressed in-source (keeping the suppression
// fixtures' counts stable); the impurity still propagates to importers
// as a sealed purity fact, which is exactly what the cache has to
// carry for skipped packages.
func Mix(n int) int {
	return n + rand.Int() //lint:ignore determinism fixture: impurity source for cross-package fact propagation
}

// Add is pure.
func Add(a, b int) int { return a + b }
