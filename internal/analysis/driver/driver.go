// Package driver applies analyzers to loaded packages and owns the two
// escape hatches every static-analysis deployment needs: in-source
// suppressions (//lint:ignore with a mandatory reason) and a checked-in
// baseline file for grandfathered findings. Both are deliberate,
// reviewable artifacts — the lint gate itself never silently drops a
// finding.
//
// For interprocedural analyzers (those with a Facts phase) the driver
// is also the dataflow conductor: it builds the whole-program call
// graph once, then runs each analyzer's facts phase over the packages
// in dependency order, sealing every package's facts into a serialized
// blob before its importers run — the same shape in which the loader
// shares compiled export data. Only then do the reporting passes run.
package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/callgraph"
	"temporaldoc/internal/analysis/facts"
	"temporaldoc/internal/analysis/load"
)

// Options configures one lint run.
type Options struct {
	// BaselinePath names the baseline file; empty disables baselining.
	BaselinePath string
	// WriteBaseline regenerates the baseline from the current findings
	// instead of failing on them.
	WriteBaseline bool
	// Exclude maps an analyzer name to module-relative path substrings
	// where the check does not apply (policy decisions, e.g. the time
	// rule is off inside the telemetry package that implements timers).
	Exclude map[string][]string
	// Checks restricts the run to the named analyzers; empty runs all.
	Checks []string
	// IncludeSuppressed keeps findings silenced by a directive, a path
	// exclude or the baseline in the result — marked with their
	// Suppression state — instead of dropping them. Editor/CI
	// integrations (-json) use this to show muted findings in place.
	IncludeSuppressed bool
}

// Suppression states of a finding.
const (
	// SuppressedIgnore: silenced by a //lint:ignore or //lint:file-ignore
	// directive.
	SuppressedIgnore = "ignore"
	// SuppressedExclude: silenced by a path-level policy exclude.
	SuppressedExclude = "exclude"
	// SuppressedBaseline: absorbed by the grandfathered baseline file.
	SuppressedBaseline = "baseline"
)

// Finding is one surviving diagnostic, resolved to a position.
type Finding struct {
	analysis.Diagnostic
	Position token.Position
	// RelPath is the module-relative source path used in output and in
	// the baseline file.
	RelPath string
	// Suppression is "" for an active finding, or one of the
	// Suppressed* states when Options.IncludeSuppressed kept a silenced
	// one.
	Suppression string
}

// Active reports whether the finding still gates the build.
func (f Finding) Active() bool { return f.Suppression == "" }

// String renders the finding in the file:line:col: [check] message form
// the Makefile target prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.RelPath, f.Position.Line, f.Position.Column, f.Check, f.Message)
}

// JSON renders the finding as one line-oriented JSON object for the
// -json output mode: analyzer, position, message, suppression state.
func (f Finding) JSON() ([]byte, error) {
	return json.Marshal(struct {
		Analyzer    string `json:"analyzer"`
		File        string `json:"file"`
		Line        int    `json:"line"`
		Col         int    `json:"col"`
		Message     string `json:"message"`
		Suppressed  bool   `json:"suppressed"`
		Suppression string `json:"suppression,omitempty"`
	}{
		Analyzer:    f.Check,
		File:        f.RelPath,
		Line:        f.Position.Line,
		Col:         f.Position.Column,
		Message:     f.Message,
		Suppressed:  !f.Active(),
		Suppression: f.Suppression,
	})
}

// Run applies the analyzers to every loaded package and returns the
// findings that survive suppressions, path excludes and the baseline
// (all findings, suppressed ones marked, under IncludeSuppressed),
// sorted by position. When opts.WriteBaseline is set the surviving
// findings are written to the baseline file instead and an empty slice
// is returned.
func Run(res *load.Result, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	selected, err := selectAnalyzers(analyzers, opts.Checks)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }

	// Interprocedural context: the call graph is shared; each analyzer
	// with a facts phase gets its own store, filled package by package
	// in dependency order and sealed before importers read it.
	graph := buildGraph(res)
	order := load.DependencyOrder(res.Packages)
	stores := map[string]*facts.Store{}
	for _, a := range selected {
		if a.Facts == nil {
			continue
		}
		st := facts.NewStore()
		stores[a.Name] = st
		for _, pkg := range order {
			if err := st.Begin(pkg.ImportPath); err != nil {
				return nil, fmt.Errorf("%s: %v", a.Name, err)
			}
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, report)
			pass.Graph = graph
			pass.Facts = st
			if err := a.Facts(pass); err != nil {
				return nil, fmt.Errorf("%s: facts: %s: %v", a.Name, pkg.ImportPath, err)
			}
			if err := st.Seal(); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}

	sup := newSuppressions()
	for _, pkg := range res.Packages {
		for _, f := range pkg.Files {
			sup.indexFile(res.Fset, f, report)
		}
		for _, a := range selected {
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, report)
			pass.Graph = graph
			pass.Facts = stores[a.Name]
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}

	var findings []Finding
	for _, d := range diags {
		pos := d.Position(res.Fset)
		rel := relPath(res.ModuleDir, pos.Filename)
		f := Finding{Diagnostic: d, Position: pos, RelPath: rel}
		switch {
		case sup.suppressed(d.Check, pos):
			f.Suppression = SuppressedIgnore
		case excluded(opts.Exclude[d.Check], rel):
			f.Suppression = SuppressedExclude
		}
		if !f.Active() && !opts.IncludeSuppressed {
			continue
		}
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.RelPath != b.RelPath {
			return a.RelPath < b.RelPath
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})

	if opts.BaselinePath == "" {
		return findings, nil
	}
	if opts.WriteBaseline {
		return nil, writeBaseline(opts.BaselinePath, active(findings))
	}
	base, err := readBaseline(opts.BaselinePath)
	if err != nil {
		return nil, err
	}
	return base.apply(findings, opts.IncludeSuppressed), nil
}

// active filters to the findings that still gate the build.
func active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Active() {
			out = append(out, f)
		}
	}
	return out
}

// buildGraph adapts the loader's packages for the call-graph builder.
func buildGraph(res *load.Result) *callgraph.Graph {
	pkgs := make([]callgraph.Pkg, 0, len(res.Packages))
	for _, p := range res.Packages {
		pkgs = append(pkgs, callgraph.Pkg{Files: p.Files, Info: p.Info})
	}
	return callgraph.Build(pkgs)
}

func selectAnalyzers(all []*analysis.Analyzer, names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func excluded(substrings []string, relPath string) bool {
	for _, s := range substrings {
		if strings.Contains(relPath, s) {
			return true
		}
	}
	return false
}

// relPath renders filename relative to the module root with forward
// slashes, falling back to the input on failure.
func relPath(moduleDir, filename string) string {
	if moduleDir == "" {
		return filename
	}
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}
