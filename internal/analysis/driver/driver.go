// Package driver applies analyzers to loaded packages and owns the two
// escape hatches every static-analysis deployment needs: in-source
// suppressions (//lint:ignore with a mandatory reason) and a checked-in
// baseline file for grandfathered findings. Both are deliberate,
// reviewable artifacts — the lint gate itself never silently drops a
// finding.
//
// For interprocedural analyzers (those with a Facts phase) the driver
// is also the dataflow conductor: it builds the whole-program call
// graph once, then runs each analyzer's facts phase over the packages
// in dependency order, sealing every package's facts into a serialized
// blob before its importers run — the same shape in which the loader
// shares compiled export data. Only then do the reporting passes run.
package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/callgraph"
	"temporaldoc/internal/analysis/facts"
	"temporaldoc/internal/analysis/load"
)

// Options configures one lint run.
type Options struct {
	// BaselinePath names the baseline file; empty disables baselining.
	BaselinePath string
	// WriteBaseline regenerates the baseline from the current findings
	// instead of failing on them.
	WriteBaseline bool
	// Exclude maps an analyzer name to module-relative path substrings
	// where the check does not apply (policy decisions, e.g. the time
	// rule is off inside the telemetry package that implements timers).
	Exclude map[string][]string
	// Checks restricts the run to the named analyzers; empty runs all.
	Checks []string
	// IncludeSuppressed keeps findings silenced by a directive, a path
	// exclude or the baseline in the result — marked with their
	// Suppression state — instead of dropping them. Editor/CI
	// integrations (-json) use this to show muted findings in place.
	IncludeSuppressed bool
	// Jobs bounds how many packages are analyzed concurrently within a
	// dependency level; <= 0 means one worker per CPU.
	Jobs int
	// Stats, when non-nil, accumulates per-analyzer wall time across all
	// phases and packages (cumulative over workers, so it reads as CPU
	// time once packages run in parallel).
	Stats *Stats
}

// Stats accumulates per-analyzer time. Safe for concurrent use.
type Stats struct {
	mu  sync.Mutex
	dur map[string]time.Duration
}

// NewStats returns an empty accumulator.
func NewStats() *Stats { return &Stats{dur: map[string]time.Duration{}} }

func (s *Stats) add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur[name] += d
	s.mu.Unlock()
}

// Table renders one "analyzer<tab>duration" row per analyzer, slowest
// first (ties by name), for the -v timing report.
func (s *Stats) Table() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dur))
	for n := range s.dur {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.dur[names[i]] != s.dur[names[j]] {
			return s.dur[names[i]] > s.dur[names[j]]
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-16s %v\n", n, s.dur[n].Round(time.Microsecond))
	}
	return b.String()
}

// Suppression states of a finding.
const (
	// SuppressedIgnore: silenced by a //lint:ignore or //lint:file-ignore
	// directive.
	SuppressedIgnore = "ignore"
	// SuppressedExclude: silenced by a path-level policy exclude.
	SuppressedExclude = "exclude"
	// SuppressedBaseline: absorbed by the grandfathered baseline file.
	SuppressedBaseline = "baseline"
)

// Finding is one surviving diagnostic, resolved to a position.
type Finding struct {
	analysis.Diagnostic
	Position token.Position
	// RelPath is the module-relative source path used in output and in
	// the baseline file.
	RelPath string
	// Suppression is "" for an active finding, or one of the
	// Suppressed* states when Options.IncludeSuppressed kept a silenced
	// one.
	Suppression string
}

// Active reports whether the finding still gates the build.
func (f Finding) Active() bool { return f.Suppression == "" }

// String renders the finding in the file:line:col: [check] message form
// the Makefile target prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.RelPath, f.Position.Line, f.Position.Column, f.Check, f.Message)
}

// JSON renders the finding as one line-oriented JSON object for the
// -json output mode: analyzer, position, message, suppression state.
func (f Finding) JSON() ([]byte, error) {
	return json.Marshal(struct {
		Analyzer    string `json:"analyzer"`
		File        string `json:"file"`
		Line        int    `json:"line"`
		Col         int    `json:"col"`
		Message     string `json:"message"`
		Suppressed  bool   `json:"suppressed"`
		Suppression string `json:"suppression,omitempty"`
	}{
		Analyzer:    f.Check,
		File:        f.RelPath,
		Line:        f.Position.Line,
		Col:         f.Position.Column,
		Message:     f.Message,
		Suppressed:  !f.Active(),
		Suppression: f.Suppression,
	})
}

// Run applies the analyzers to every loaded package and returns the
// findings that survive suppressions, path excludes and the baseline
// (all findings, suppressed ones marked, under IncludeSuppressed),
// sorted by position. When opts.WriteBaseline is set the surviving
// findings are written to the baseline file instead and an empty slice
// is returned.
func Run(res *load.Result, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	selected, err := selectAnalyzers(analyzers, opts.Checks)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) {
		mu.Lock()
		diags = append(diags, d)
		mu.Unlock()
	}

	// Interprocedural context: the call graph is shared; each analyzer
	// with a facts phase gets its own store, filled package by package
	// in dependency order and sealed before importers read it.
	graph := buildGraph(res)
	order := load.DependencyOrder(res.Packages)
	stores := map[string]*facts.Store{}
	for _, a := range selected {
		if a.Facts != nil {
			stores[a.Name] = facts.NewStore()
		}
	}

	// Suppression directives index before any analysis, so malformed
	// directives report deterministically regardless of scheduling.
	sup := newSuppressions()
	for _, pkg := range res.Packages {
		for _, f := range pkg.Files {
			sup.indexFile(res.Fset, f, report)
		}
	}

	// Packages are analyzed level by level: a package's level is one
	// past the deepest of its in-set imports, so everything a package's
	// facts or run phase reads — its imports' sealed blobs — was sealed
	// at an earlier level, and packages within a level are mutually
	// independent and run concurrently. Each worker runs one package end
	// to end (every facts phase in its own store view, sealed, then
	// every run phase), which keeps the facts-before-importers invariant
	// without a global barrier between the phases.
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	for _, level := range dependencyLevels(order) {
		errs := make([]error, len(level))
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		for i, pkg := range level {
			wg.Add(1)
			go func(i int, pkg *load.Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errs[i] = analyzePackage(res, graph, stores, selected, opts.Stats, report, pkg)
			}(i, pkg)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	var findings []Finding
	for _, d := range diags {
		pos := d.Position(res.Fset)
		rel := relPath(res.ModuleDir, pos.Filename)
		f := Finding{Diagnostic: d, Position: pos, RelPath: rel}
		switch {
		case sup.suppressed(d.Check, pos):
			f.Suppression = SuppressedIgnore
		case excluded(opts.Exclude[d.Check], rel):
			f.Suppression = SuppressedExclude
		}
		if !f.Active() && !opts.IncludeSuppressed {
			continue
		}
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.RelPath != b.RelPath {
			return a.RelPath < b.RelPath
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		// Message is the final tie-break so parallel collection order
		// can never leak into the output.
		return a.Message < b.Message
	})

	if opts.BaselinePath == "" {
		return findings, nil
	}
	if opts.WriteBaseline {
		return nil, writeBaseline(opts.BaselinePath, active(findings))
	}
	base, err := readBaseline(opts.BaselinePath)
	if err != nil {
		return nil, err
	}
	return base.apply(findings, opts.IncludeSuppressed), nil
}

// active filters to the findings that still gate the build.
func active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Active() {
			out = append(out, f)
		}
	}
	return out
}

// analyzePackage runs every selected analyzer over one package: facts
// phases first (each in a fresh view of its analyzer's store, sealed
// immediately), then run phases reading through the sealed blobs.
func analyzePackage(res *load.Result, graph *callgraph.Graph, stores map[string]*facts.Store,
	selected []*analysis.Analyzer, stats *Stats, report func(analysis.Diagnostic), pkg *load.Package) error {
	for _, a := range selected {
		if a.Facts == nil {
			continue
		}
		view := stores[a.Name].View()
		if err := view.Begin(pkg.ImportPath); err != nil {
			return fmt.Errorf("%s: %v", a.Name, err)
		}
		pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, report)
		pass.Graph = graph
		pass.Facts = view
		t0 := time.Now()
		err := a.Facts(pass)
		stats.add(a.Name, time.Since(t0))
		if err != nil {
			return fmt.Errorf("%s: facts: %s: %v", a.Name, pkg.ImportPath, err)
		}
		if err := view.Seal(); err != nil {
			return fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	for _, a := range selected {
		pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, report)
		pass.Graph = graph
		pass.Facts = stores[a.Name]
		t0 := time.Now()
		err := a.Run(pass)
		stats.add(a.Name, time.Since(t0))
		if err != nil {
			return fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return nil
}

// dependencyLevels slices a topologically ordered package list into
// levels: level(p) = 1 + max level of p's in-set imports. Same-level
// packages cannot import each other, so they analyze concurrently.
func dependencyLevels(order []*load.Package) [][]*load.Package {
	inSet := make(map[string]bool, len(order))
	for _, p := range order {
		inSet[p.ImportPath] = true
	}
	level := make(map[string]int, len(order))
	var levels [][]*load.Package
	for _, p := range order {
		l := 0
		for _, imp := range p.Types.Imports() {
			if inSet[imp.Path()] && level[imp.Path()]+1 > l {
				l = level[imp.Path()] + 1
			}
		}
		level[p.ImportPath] = l
		for len(levels) <= l {
			levels = append(levels, nil)
		}
		levels[l] = append(levels[l], p)
	}
	return levels
}

// buildGraph adapts the loader's packages for the call-graph builder.
func buildGraph(res *load.Result) *callgraph.Graph {
	pkgs := make([]callgraph.Pkg, 0, len(res.Packages))
	for _, p := range res.Packages {
		pkgs = append(pkgs, callgraph.Pkg{Files: p.Files, Info: p.Info})
	}
	return callgraph.Build(pkgs)
}

func selectAnalyzers(all []*analysis.Analyzer, names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func excluded(substrings []string, relPath string) bool {
	for _, s := range substrings {
		if strings.Contains(relPath, s) {
			return true
		}
	}
	return false
}

// relPath renders filename relative to the module root with forward
// slashes, falling back to the input on failure.
func relPath(moduleDir, filename string) string {
	if moduleDir == "" {
		return filename
	}
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}
