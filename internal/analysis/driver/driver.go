// Package driver applies analyzers to loaded packages and owns the two
// escape hatches every static-analysis deployment needs: in-source
// suppressions (//lint:ignore with a mandatory reason) and a checked-in
// baseline file for grandfathered findings. Both are deliberate,
// reviewable artifacts — the lint gate itself never silently drops a
// finding.
//
// For interprocedural analyzers (those with a Facts phase) the driver
// is also the dataflow conductor: it builds the whole-program call
// graph once, then runs each analyzer's facts phase over the packages
// in dependency order, sealing every package's facts into a serialized
// blob before its importers run — the same shape in which the loader
// shares compiled export data. Only then do the reporting passes run.
//
// RunCached adds the incremental layer on top: every (package,
// analyzer) pair is addressed by a content hash of its inputs (see
// keys.go), and pairs whose hash is already in the cache skip both
// phases — their sealed fact blobs and diagnostics load from disk.
// Packages for which every selected analyzer hits are not even parsed.
package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/cache"
	"temporaldoc/internal/analysis/callgraph"
	"temporaldoc/internal/analysis/facts"
	"temporaldoc/internal/analysis/load"
)

// Options configures one lint run.
type Options struct {
	// BaselinePath names the baseline file; empty disables baselining.
	BaselinePath string
	// WriteBaseline regenerates the baseline from the current findings
	// instead of failing on them.
	WriteBaseline bool
	// Exclude maps an analyzer name to module-relative path substrings
	// where the check does not apply (policy decisions, e.g. the time
	// rule is off inside the telemetry package that implements timers).
	Exclude map[string][]string
	// Checks restricts the run to the named analyzers; empty runs all.
	Checks []string
	// IncludeSuppressed keeps findings silenced by a directive, a path
	// exclude or the baseline in the result — marked with their
	// Suppression state — instead of dropping them. Editor/CI
	// integrations (-json) use this to show muted findings in place.
	IncludeSuppressed bool
	// Jobs bounds how many packages are analyzed concurrently within a
	// dependency level; <= 0 means one worker per CPU.
	Jobs int
	// Stats, when non-nil, accumulates per-analyzer wall time across all
	// phases and packages (cumulative over workers, so it reads as CPU
	// time once packages run in parallel) plus the cache hit/miss
	// counters.
	Stats *Stats
	// CacheDir roots the incremental analysis cache for RunCached;
	// empty disables caching (Run ignores it entirely).
	CacheDir string
}

// Stats accumulates per-analyzer time, split by phase so a cache hit's
// saving is attributable (facts phases dominate for the
// interprocedural analyzers), plus the incremental cache's counters.
// Safe for concurrent use.
type Stats struct {
	mu    sync.Mutex
	facts map[string]time.Duration
	run   map[string]time.Duration

	hits, misses, invalidated int
	cacheUsed                 bool
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{facts: map[string]time.Duration{}, run: map[string]time.Duration{}}
}

func (s *Stats) addFacts(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.facts[name] += d
	s.mu.Unlock()
}

func (s *Stats) addRun(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.run[name] += d
	s.mu.Unlock()
}

// countCache records one (package, analyzer) cache consultation.
func (s *Stats) countCache(hit, invalidated bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cacheUsed = true
	switch {
	case hit:
		s.hits++
	case invalidated:
		s.invalidated++
	default:
		s.misses++
	}
	s.mu.Unlock()
}

// Cache returns the hit/miss/invalidated counters and whether a cache
// was consulted at all. Invalidated units are misses that had an entry
// under a different action key — stale, not cold.
func (s *Stats) Cache() (hits, misses, invalidated int, used bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.invalidated, s.cacheUsed
}

// CacheLine renders the counters as the one-line summary -v prints
// ("" when no cache was consulted). The key=value shape is parsed by
// scripts/lint_warm_smoke.sh.
func (s *Stats) CacheLine() string {
	hits, misses, invalidated, used := s.Cache()
	if !used {
		return ""
	}
	return fmt.Sprintf("cache: hits=%d misses=%d invalidated=%d", hits, misses, invalidated)
}

// Table renders one "analyzer facts run total" row per analyzer,
// slowest total first (ties by name), for the -v timing report.
func (s *Stats) Table() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := map[string]bool{}
	for n := range s.facts {
		names[n] = true
	}
	for n := range s.run {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	total := func(n string) time.Duration { return s.facts[n] + s.run[n] }
	sort.Slice(sorted, func(i, j int) bool {
		if total(sorted[i]) != total(sorted[j]) {
			return total(sorted[i]) > total(sorted[j])
		}
		return sorted[i] < sorted[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s\n", "analyzer", "facts", "run", "total")
	for _, n := range sorted {
		fmt.Fprintf(&b, "%-16s %12v %12v %12v\n", n,
			s.facts[n].Round(time.Microsecond), s.run[n].Round(time.Microsecond),
			total(n).Round(time.Microsecond))
	}
	return b.String()
}

// Suppression states of a finding.
const (
	// SuppressedIgnore: silenced by a //lint:ignore or //lint:file-ignore
	// directive.
	SuppressedIgnore = "ignore"
	// SuppressedExclude: silenced by a path-level policy exclude.
	SuppressedExclude = "exclude"
	// SuppressedBaseline: absorbed by the grandfathered baseline file.
	SuppressedBaseline = "baseline"
)

// Finding is one surviving diagnostic, resolved to a position.
type Finding struct {
	analysis.Diagnostic
	Position token.Position
	// RelPath is the module-relative source path used in output and in
	// the baseline file.
	RelPath string
	// Suppression is "" for an active finding, or one of the
	// Suppressed* states when Options.IncludeSuppressed kept a silenced
	// one.
	Suppression string
}

// Active reports whether the finding still gates the build.
func (f Finding) Active() bool { return f.Suppression == "" }

// String renders the finding in the file:line:col: [check] message form
// the Makefile target prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.RelPath, f.Position.Line, f.Position.Column, f.Check, f.Message)
}

// JSON renders the finding as one line-oriented JSON object for the
// -json output mode: analyzer, position, message, suppression state.
func (f Finding) JSON() ([]byte, error) {
	return json.Marshal(struct {
		Analyzer    string `json:"analyzer"`
		File        string `json:"file"`
		Line        int    `json:"line"`
		Col         int    `json:"col"`
		Message     string `json:"message"`
		Suppressed  bool   `json:"suppressed"`
		Suppression string `json:"suppression,omitempty"`
	}{
		Analyzer:    f.Check,
		File:        f.RelPath,
		Line:        f.Position.Line,
		Col:         f.Position.Column,
		Message:     f.Message,
		Suppressed:  !f.Active(),
		Suppression: f.Suppression,
	})
}

// suppressCheck is the pseudo-check name the per-package suppression
// scan (directive index + lintdirective findings) is cached under.
const suppressCheck = "#suppress"

// pkgPlan is one target package's cache verdict: the action key per
// check and the entries that hit. A package whose every selected check
// (and suppression scan) hit is never parsed; a partially hit package
// is loaded but only its missing checks run.
type pkgPlan struct {
	meta *load.MetaPkg
	// keys maps check name → action key ("" marks an uncacheable
	// package: results are computed live and never written).
	keys map[string]string
	// hits maps check name → the cached entry.
	hits map[string]*cache.Entry
	// loaded records whether the package was parsed this run.
	loaded bool
}

// cacheContext carries the incremental state through one RunCached
// execution; nil means caching is off.
type cacheContext struct {
	store     *cache.Store
	moduleDir string
	// plans covers every target package, keyed by import path.
	plans map[string]*pkgPlan
}

// Run applies the analyzers to every loaded package and returns the
// findings that survive suppressions, path excludes and the baseline
// (all findings, suppressed ones marked, under IncludeSuppressed),
// sorted by position. When opts.WriteBaseline is set the surviving
// findings are written to the baseline file instead and an empty slice
// is returned.
func Run(res *load.Result, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	selected, err := selectAnalyzers(analyzers, opts.Checks)
	if err != nil {
		return nil, err
	}
	return execute(res, selected, opts, nil)
}

// execute is the shared core of Run and RunCached: analyze the loaded
// packages (honoring the cache plans when cc is non-nil), merge in
// cached diagnostics, and resolve suppressions, excludes and the
// baseline.
func execute(res *load.Result, selected []*analysis.Analyzer, opts Options, cc *cacheContext) ([]Finding, error) {
	var mu sync.Mutex
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) {
		mu.Lock()
		diags = append(diags, d)
		mu.Unlock()
	}

	// Interprocedural context: the call graph is shared; each analyzer
	// with a facts phase gets its own store, filled package by package
	// in dependency order and sealed before importers read it. Cached
	// packages contribute their sealed blobs straight from disk.
	graph := buildGraph(res)
	order := load.DependencyOrder(res.Packages)
	stores := map[string]*facts.Store{}
	for _, a := range selected {
		if a.Facts != nil {
			stores[a.Name] = facts.NewStore()
		}
	}
	if cc != nil {
		for _, path := range sortedPlanPaths(cc.plans) {
			plan := cc.plans[path]
			for _, a := range selected {
				if a.Facts == nil {
					continue
				}
				if e, ok := plan.hits[a.Name]; ok && len(e.Facts) > 0 {
					if err := stores[a.Name].Import(path, e.Facts); err != nil {
						return nil, fmt.Errorf("%s: %v", a.Name, err)
					}
				}
			}
		}
	}

	// Suppression directives index before any analysis, so malformed
	// directives report deterministically regardless of scheduling. The
	// per-package lintdirective findings are kept addressable so cache
	// entries can carry them.
	sup := newSuppressions()
	dirDiags := map[string][]analysis.Diagnostic{}
	for _, pkg := range res.Packages {
		for _, f := range pkg.Files {
			sup.indexFile(res.Fset, f, func(d analysis.Diagnostic) {
				dirDiags[pkg.ImportPath] = append(dirDiags[pkg.ImportPath], d)
				report(d)
			})
		}
	}

	// Packages are analyzed level by level: a package's level is one
	// past the deepest of its in-set imports, so everything a package's
	// facts or run phase reads — its imports' sealed blobs — was sealed
	// at an earlier level (or imported from cache before the levels
	// started), and packages within a level are mutually independent and
	// run concurrently. Each worker runs one package end to end (every
	// facts phase in its own store view, sealed, then every run phase),
	// which keeps the facts-before-importers invariant without a global
	// barrier between the phases.
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	for _, level := range dependencyLevels(order) {
		errs := make([]error, len(level))
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		for i, pkg := range level {
			wg.Add(1)
			go func(i int, pkg *load.Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errs[i] = analyzePackage(res, graph, stores, selected, opts.Stats, report, sup, cc, dirDiags[pkg.ImportPath], pkg)
			}(i, pkg)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	var findings []Finding
	for _, d := range diags {
		pos := d.Position(res.Fset)
		rel := relPath(res.ModuleDir, pos.Filename)
		f := Finding{Diagnostic: d, Position: pos, RelPath: rel}
		switch {
		case sup.suppressed(d.Check, pos):
			f.Suppression = SuppressedIgnore
		case excluded(opts.Exclude[d.Check], rel):
			f.Suppression = SuppressedExclude
		}
		if !f.Active() && !opts.IncludeSuppressed {
			continue
		}
		findings = append(findings, f)
	}
	if cc != nil {
		findings = append(findings, cachedFindings(cc, selected, opts)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.RelPath != b.RelPath {
			return a.RelPath < b.RelPath
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		// Message is the final tie-break so parallel collection order
		// can never leak into the output.
		return a.Message < b.Message
	})

	if opts.BaselinePath == "" {
		return findings, nil
	}
	if opts.WriteBaseline {
		return nil, writeBaseline(opts.BaselinePath, active(findings))
	}
	base, err := readBaseline(opts.BaselinePath)
	if err != nil {
		return nil, err
	}
	return base.apply(findings, opts.IncludeSuppressed), nil
}

// cachedFindings materializes the diagnostics of every cache hit:
// analyzer entries for skipped pairs, plus the suppression
// pseudo-entry's lintdirective findings for packages that were never
// parsed (parsed packages re-indexed their directives live). In-source
// suppression state comes baked into the entry; path excludes apply
// fresh.
func cachedFindings(cc *cacheContext, selected []*analysis.Analyzer, opts Options) []Finding {
	var out []Finding
	for _, path := range sortedPlanPaths(cc.plans) {
		plan := cc.plans[path]
		for _, a := range selected {
			if e, ok := plan.hits[a.Name]; ok {
				out = append(out, entryFindings(cc, e, opts)...)
			}
		}
		if !plan.loaded {
			if e, ok := plan.hits[suppressCheck]; ok {
				out = append(out, entryFindings(cc, e, opts)...)
			}
		}
	}
	return out
}

// entryFindings converts one cache entry's diagnostics to findings.
func entryFindings(cc *cacheContext, e *cache.Entry, opts Options) []Finding {
	var out []Finding
	for _, d := range e.Diags {
		f := Finding{
			Diagnostic: analysis.Diagnostic{Check: d.Check, Message: d.Message},
			Position: token.Position{
				Filename: filepath.Join(cc.moduleDir, filepath.FromSlash(d.File)),
				Line:     d.Line,
				Column:   d.Col,
			},
			RelPath: d.File,
		}
		switch {
		case d.Suppressed:
			f.Suppression = SuppressedIgnore
		case excluded(opts.Exclude[d.Check], d.File):
			f.Suppression = SuppressedExclude
		}
		if !f.Active() && !opts.IncludeSuppressed {
			continue
		}
		out = append(out, f)
	}
	return out
}

// active filters to the findings that still gate the build.
func active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Active() {
			out = append(out, f)
		}
	}
	return out
}

// analyzePackage runs every selected analyzer over one package: facts
// phases first (each in a fresh view of its analyzer's store, sealed
// immediately), then run phases reading through the sealed blobs.
// Analyzers whose cache entry hit are skipped entirely — their sealed
// blob was imported up front and their diagnostics merge in from the
// entry. Freshly computed (package, analyzer) results are written back
// to the cache, suppression state resolved, so the next run can skip
// them.
func analyzePackage(res *load.Result, graph *callgraph.Graph, stores map[string]*facts.Store,
	selected []*analysis.Analyzer, stats *Stats, report func(analysis.Diagnostic),
	sup *suppressions, cc *cacheContext, pkgDirDiags []analysis.Diagnostic, pkg *load.Package) error {
	var plan *pkgPlan
	if cc != nil {
		plan = cc.plans[pkg.ImportPath]
	}
	skip := func(a *analysis.Analyzer) bool {
		if plan == nil {
			return false
		}
		_, ok := plan.hits[a.Name]
		return ok
	}
	local := map[string][]analysis.Diagnostic{}
	capture := func(name string) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			local[name] = append(local[name], d)
			report(d)
		}
	}
	for _, a := range selected {
		if a.Facts == nil || skip(a) {
			continue
		}
		view := stores[a.Name].View()
		if err := view.Begin(pkg.ImportPath); err != nil {
			return fmt.Errorf("%s: %v", a.Name, err)
		}
		pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, capture(a.Name))
		pass.Graph = graph
		pass.Facts = view
		t0 := time.Now()
		err := a.Facts(pass)
		stats.addFacts(a.Name, time.Since(t0))
		if err != nil {
			return fmt.Errorf("%s: facts: %s: %v", a.Name, pkg.ImportPath, err)
		}
		if err := view.Seal(); err != nil {
			return fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	for _, a := range selected {
		if skip(a) {
			continue
		}
		pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, capture(a.Name))
		pass.Graph = graph
		pass.Facts = stores[a.Name]
		t0 := time.Now()
		err := a.Run(pass)
		stats.addRun(a.Name, time.Since(t0))
		if err != nil {
			return fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	if plan != nil {
		writeEntries(res, stores, selected, sup, cc, plan, local, pkgDirDiags, pkg)
	}
	return nil
}

// writeEntries persists the freshly computed results of one package:
// one entry per missed analyzer (fact blob + diagnostics) and the
// suppression pseudo-entry (lintdirective findings). Write failures
// are deliberately swallowed — a read-only or full cache directory
// degrades to uncached operation, it does not fail the lint gate.
func writeEntries(res *load.Result, stores map[string]*facts.Store, selected []*analysis.Analyzer,
	sup *suppressions, cc *cacheContext, plan *pkgPlan,
	local map[string][]analysis.Diagnostic, pkgDirDiags []analysis.Diagnostic, pkg *load.Package) {
	put := func(check, key string, factBlob []byte, ds []analysis.Diagnostic) {
		if key == "" {
			return
		}
		e := &cache.Entry{Key: key, ImportPath: pkg.ImportPath, Check: check, Facts: factBlob}
		for _, d := range ds {
			pos := d.Position(res.Fset)
			e.Diags = append(e.Diags, cache.Diag{
				Check:      d.Check,
				File:       relPath(res.ModuleDir, pos.Filename),
				Line:       pos.Line,
				Col:        pos.Column,
				Message:    d.Message,
				Suppressed: sup.suppressed(d.Check, pos),
			})
		}
		_ = cc.store.Put(e)
	}
	for _, a := range selected {
		if _, hit := plan.hits[a.Name]; hit {
			continue
		}
		var blob []byte
		if a.Facts != nil {
			blob = stores[a.Name].Export(pkg.ImportPath)
		}
		put(a.Name, plan.keys[a.Name], blob, local[a.Name])
	}
	if _, hit := plan.hits[suppressCheck]; !hit {
		put(suppressCheck, plan.keys[suppressCheck], nil, pkgDirDiags)
	}
}

// sortedPlanPaths returns the plan keys in deterministic order.
func sortedPlanPaths(plans map[string]*pkgPlan) []string {
	paths := make([]string, 0, len(plans))
	for p := range plans {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// dependencyLevels slices a topologically ordered package list into
// levels: level(p) = 1 + max level of p's in-set imports. Same-level
// packages cannot import each other, so they analyze concurrently.
func dependencyLevels(order []*load.Package) [][]*load.Package {
	inSet := make(map[string]bool, len(order))
	for _, p := range order {
		inSet[p.ImportPath] = true
	}
	level := make(map[string]int, len(order))
	var levels [][]*load.Package
	for _, p := range order {
		l := 0
		for _, imp := range p.Types.Imports() {
			if inSet[imp.Path()] && level[imp.Path()]+1 > l {
				l = level[imp.Path()] + 1
			}
		}
		level[p.ImportPath] = l
		for len(levels) <= l {
			levels = append(levels, nil)
		}
		levels[l] = append(levels[l], p)
	}
	return levels
}

// buildGraph adapts the loader's packages for the call-graph builder.
func buildGraph(res *load.Result) *callgraph.Graph {
	pkgs := make([]callgraph.Pkg, 0, len(res.Packages))
	for _, p := range res.Packages {
		pkgs = append(pkgs, callgraph.Pkg{Files: p.Files, Info: p.Info})
	}
	return callgraph.Build(pkgs)
}

func selectAnalyzers(all []*analysis.Analyzer, names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func excluded(substrings []string, relPath string) bool {
	for _, s := range substrings {
		if strings.Contains(relPath, s) {
			return true
		}
	}
	return false
}

// relPath renders filename relative to the module root with forward
// slashes, falling back to the input on failure.
func relPath(moduleDir, filename string) string {
	if moduleDir == "" {
		return filename
	}
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}
