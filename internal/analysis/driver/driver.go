// Package driver applies analyzers to loaded packages and owns the two
// escape hatches every static-analysis deployment needs: in-source
// suppressions (//lint:ignore with a mandatory reason) and a checked-in
// baseline file for grandfathered findings. Both are deliberate,
// reviewable artifacts — the lint gate itself never silently drops a
// finding.
package driver

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/load"
)

// Options configures one lint run.
type Options struct {
	// BaselinePath names the baseline file; empty disables baselining.
	BaselinePath string
	// WriteBaseline regenerates the baseline from the current findings
	// instead of failing on them.
	WriteBaseline bool
	// Exclude maps an analyzer name to module-relative path substrings
	// where the check does not apply (policy decisions, e.g. the time
	// rule is off inside the telemetry package that implements timers).
	Exclude map[string][]string
	// Checks restricts the run to the named analyzers; empty runs all.
	Checks []string
}

// Finding is one surviving diagnostic, resolved to a position.
type Finding struct {
	analysis.Diagnostic
	Position token.Position
	// RelPath is the module-relative source path used in output and in
	// the baseline file.
	RelPath string
}

// String renders the finding in the file:line:col: [check] message form
// the Makefile target prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.RelPath, f.Position.Line, f.Position.Column, f.Check, f.Message)
}

// Run applies the analyzers to every loaded package and returns the
// findings that survive suppressions, path excludes and the baseline,
// sorted by position. When opts.WriteBaseline is set the surviving
// findings are written to the baseline file instead and an empty slice
// is returned.
func Run(res *load.Result, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	selected, err := selectAnalyzers(analyzers, opts.Checks)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	sup := newSuppressions()
	for _, pkg := range res.Packages {
		for _, f := range pkg.Files {
			sup.indexFile(res.Fset, f, report)
		}
		for _, a := range selected {
			pass := analysis.NewPass(a, res.Fset, pkg.Files, pkg.Types, pkg.Info, report)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}

	var findings []Finding
	for _, d := range diags {
		pos := d.Position(res.Fset)
		rel := relPath(res.ModuleDir, pos.Filename)
		if sup.suppressed(d.Check, pos) || excluded(opts.Exclude[d.Check], rel) {
			continue
		}
		findings = append(findings, Finding{Diagnostic: d, Position: pos, RelPath: rel})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.RelPath != b.RelPath {
			return a.RelPath < b.RelPath
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})

	if opts.BaselinePath == "" {
		return findings, nil
	}
	if opts.WriteBaseline {
		return nil, writeBaseline(opts.BaselinePath, findings)
	}
	base, err := readBaseline(opts.BaselinePath)
	if err != nil {
		return nil, err
	}
	return base.filter(findings), nil
}

func selectAnalyzers(all []*analysis.Analyzer, names []string) ([]*analysis.Analyzer, error) {
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func excluded(substrings []string, relPath string) bool {
	for _, s := range substrings {
		if strings.Contains(relPath, s) {
			return true
		}
	}
	return false
}

// relPath renders filename relative to the module root with forward
// slashes, falling back to the input on failure.
func relPath(moduleDir, filename string) string {
	if moduleDir == "" {
		return filename
	}
	rel, err := filepath.Rel(moduleDir, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}
