package driver

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The baseline file grandfathers known findings so the lint gate can be
// adopted (and new rules added) without blocking on a full cleanup.
// Each line is
//
//	relpath: [check] message
//
// — no line numbers, so unrelated edits that shift code do not churn
// the file. Matching is a multiset: a baseline line absorbs exactly one
// identical finding. Regenerate deliberately with `make lint-baseline`.
// An empty baseline means the tree is clean.

// baseline is a multiset of grandfathered finding keys.
type baseline map[string]int

func baselineKey(f Finding) string {
	return fmt.Sprintf("%s: [%s] %s", f.RelPath, f.Check, f.Message)
}

// readBaseline loads a baseline file; a missing file is an empty
// baseline.
func readBaseline(path string) (baseline, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := baseline{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// apply absorbs active findings into the baseline, consuming one
// baseline entry per match. Absorbed findings are dropped, or kept
// marked SuppressedBaseline when keepSuppressed is set; findings
// already suppressed by other means pass through untouched.
func (b baseline) apply(findings []Finding, keepSuppressed bool) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Active() {
			key := baselineKey(f)
			if b[key] > 0 {
				b[key]--
				if !keepSuppressed {
					continue
				}
				f.Suppression = SuppressedBaseline
			}
		}
		out = append(out, f)
	}
	return out
}

// writeBaseline writes the findings as a fresh baseline file.
func writeBaseline(path string, findings []Finding) error {
	keys := make([]string, len(findings))
	for i, f := range findings {
		keys[i] = baselineKey(f)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# tdlint baseline — grandfathered findings, one per line.\n")
	sb.WriteString("# Regenerate deliberately with `make lint-baseline`; keep empty when the tree is clean.\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteString("\n")
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
