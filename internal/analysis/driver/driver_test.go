package driver_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/analyzers"
	"temporaldoc/internal/analysis/driver"
	"temporaldoc/internal/analysis/load"
)

// loadFixture loads the drvfix module once per test.
func loadFixture(t *testing.T) *load.Result {
	t.Helper()
	res, err := load.Packages(filepath.Join("testdata", "src"), "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return res
}

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{analyzers.Determinism()}
}

func countByCheck(findings []driver.Finding) map[string]int {
	out := map[string]int{}
	for _, f := range findings {
		out[f.Check]++
	}
	return out
}

// TestSuppressions: the fixture seeds five rand.Int() findings — one
// unsuppressed, one suppressed on the same line, one from the line
// above, one behind a malformed (reason-less) directive, and two more
// in a file-ignore'd file. Only the unsuppressed one and the one behind
// the malformed directive survive, plus the malformed directive itself.
func TestSuppressions(t *testing.T) {
	res := loadFixture(t)
	findings, err := driver.Run(res, suite(), driver.Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := countByCheck(findings)
	if got["determinism"] != 2 {
		t.Errorf("determinism findings = %d, want 2 (suppressions must swallow same-line, line-above and file-wide)\n%s",
			got["determinism"], render(findings))
	}
	if got["lintdirective"] != 1 {
		t.Errorf("lintdirective findings = %d, want 1 (reason-less directive must be reported)\n%s",
			got["lintdirective"], render(findings))
	}
	for _, f := range findings {
		if strings.Contains(f.RelPath, "fileignore") {
			t.Errorf("file-ignore'd finding leaked: %s", f)
		}
	}
}

// TestBaselineRoundTrip: writing a baseline from the current findings
// and re-running against it must leave the tree clean; a stale baseline
// entry stays harmless, and a missing file is an empty baseline.
func TestBaselineRoundTrip(t *testing.T) {
	res := loadFixture(t)
	base := filepath.Join(t.TempDir(), "tdlint.baseline")

	if _, err := driver.Run(res, suite(), driver.Options{BaselinePath: base, WriteBaseline: true}); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(data), "[determinism]") {
		t.Fatalf("baseline missing grandfathered findings:\n%s", data)
	}

	findings, err := driver.Run(res, suite(), driver.Options{BaselinePath: base})
	if err != nil {
		t.Fatalf("running against baseline: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("findings survived their own baseline:\n%s", render(findings))
	}

	missing := filepath.Join(t.TempDir(), "does-not-exist")
	findings, err = driver.Run(res, suite(), driver.Options{BaselinePath: missing})
	if err != nil {
		t.Fatalf("running with missing baseline: %v", err)
	}
	if len(findings) == 0 {
		t.Error("missing baseline file must behave as empty, not absorb findings")
	}
}

// TestExcludes: a path exclude for one check drops its findings but
// leaves other checks' findings on the same files alone.
func TestExcludes(t *testing.T) {
	res := loadFixture(t)
	findings, err := driver.Run(res, suite(), driver.Options{
		Exclude: map[string][]string{"determinism": {"suppress/"}},
	})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := countByCheck(findings)
	if got["determinism"] != 0 {
		t.Errorf("excluded determinism findings survived:\n%s", render(findings))
	}
	if got["lintdirective"] != 1 {
		t.Errorf("lintdirective findings = %d, want 1 (excludes are per-check)", got["lintdirective"])
	}
}

// TestChecksFilter: unknown check names are a hard error, and a named
// subset runs only those analyzers.
func TestChecksFilter(t *testing.T) {
	res := loadFixture(t)
	if _, err := driver.Run(res, suite(), driver.Options{Checks: []string{"nope"}}); err == nil {
		t.Error("unknown check name must error")
	}
	findings, err := driver.Run(res, []*analysis.Analyzer{analyzers.Determinism(), analyzers.FloatCmp()},
		driver.Options{Checks: []string{"floatcmp"}})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, f := range findings {
		if f.Check == "determinism" {
			t.Errorf("unselected analyzer ran: %s", f)
		}
	}
}

// TestIncludeSuppressed: with IncludeSuppressed every silenced finding
// stays in the result carrying its suppression state, active findings
// stay unmarked, and counts line up with the default (dropping) run.
func TestIncludeSuppressed(t *testing.T) {
	res := loadFixture(t)
	all, err := driver.Run(res, suite(), driver.Options{IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	activeOnly, err := driver.Run(res, suite(), driver.Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	var active, ignored int
	for _, f := range all {
		switch f.Suppression {
		case "":
			active++
		case driver.SuppressedIgnore:
			ignored++
		default:
			t.Errorf("unexpected suppression state %q: %s", f.Suppression, f)
		}
	}
	if active != len(activeOnly) {
		t.Errorf("active findings = %d, want %d (same as the dropping run)", active, len(activeOnly))
	}
	// The fixture seeds suppressed findings (same-line, line-above,
	// file-wide); all of them must now be visible.
	if ignored < 3 {
		t.Errorf("ignored findings = %d, want >= 3\n%s", ignored, render(all))
	}

	// Baseline absorption is a suppression state too.
	base := filepath.Join(t.TempDir(), "tdlint.baseline")
	if _, err := driver.Run(res, suite(), driver.Options{BaselinePath: base, WriteBaseline: true}); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	baselined, err := driver.Run(res, suite(), driver.Options{BaselinePath: base, IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("running against baseline: %v", err)
	}
	counts := map[string]int{}
	for _, f := range baselined {
		counts[f.Suppression]++
	}
	if counts[""] != 0 {
		t.Errorf("active findings survived their own baseline:\n%s", render(baselined))
	}
	if counts[driver.SuppressedBaseline] != len(activeOnly) {
		t.Errorf("baseline-suppressed = %d, want %d", counts[driver.SuppressedBaseline], len(activeOnly))
	}
}

// TestFindingJSON: the -json mode contract — one object per finding
// with analyzer, position, message and suppression state.
func TestFindingJSON(t *testing.T) {
	res := loadFixture(t)
	findings, err := driver.Run(res, suite(), driver.Options{IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for _, f := range findings {
		line, err := f.JSON()
		if err != nil {
			t.Fatalf("JSON(%s): %v", f, err)
		}
		var got struct {
			Analyzer    string `json:"analyzer"`
			File        string `json:"file"`
			Line        int    `json:"line"`
			Col         int    `json:"col"`
			Message     string `json:"message"`
			Suppressed  bool   `json:"suppressed"`
			Suppression string `json:"suppression"`
		}
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatalf("unmarshalling %s: %v", line, err)
		}
		if got.Analyzer != f.Check || got.File != f.RelPath || got.Line != f.Position.Line ||
			got.Col != f.Position.Column || got.Message != f.Message {
			t.Errorf("JSON fields drifted from finding: %s vs %s", line, f)
		}
		if got.Suppressed != !f.Active() || got.Suppression != f.Suppression {
			t.Errorf("JSON suppression state drifted: %s (want suppressed=%v state=%q)",
				line, !f.Active(), f.Suppression)
		}
		if strings.Contains(string(line), "\n") {
			t.Errorf("JSON must be one line: %q", line)
		}
	}
}

// TestConcurrencySuppressions: the two suppression layers around the
// concurrency analyzers, end to end through the driver. The concfix
// fixture spawns three wedging goroutines: a bare one (must be
// reported), one annotated //tdlint:background (the analyzer itself
// stays silent — no finding even under IncludeSuppressed), and one
// behind //lint:ignore (reported by the analyzer, silenced by the
// driver, visible as state "ignore" under IncludeSuppressed).
func TestConcurrencySuppressions(t *testing.T) {
	res := loadFixture(t)
	goleak := []*analysis.Analyzer{analyzers.GoLeak()}

	findings, err := driver.Run(res, goleak, driver.Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	if got := countByCheck(findings)["goleak"]; got != 1 {
		t.Errorf("goleak findings = %d, want 1 (background and lint:ignore spawns must be silent)\n%s",
			got, render(findings))
	}

	all, err := driver.Run(res, goleak, driver.Options{IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	var active, ignored int
	for _, f := range all {
		if f.Check != "goleak" {
			continue
		}
		switch f.Suppression {
		case "":
			active++
		case driver.SuppressedIgnore:
			ignored++
		default:
			t.Errorf("unexpected suppression state %q: %s", f.Suppression, f)
		}
	}
	if active != 1 || ignored != 1 {
		t.Errorf("goleak active=%d ignored=%d, want 1 and 1 (//tdlint:background leaves no finding at all)\n%s",
			active, ignored, render(all))
	}

	// atomicsafe and chandisc findings behind //lint:ignore: silenced by
	// default, visible as state "ignore" under IncludeSuppressed.
	concSuite := []*analysis.Analyzer{analyzers.AtomicSafe(), analyzers.ChanDisc()}
	findings, err = driver.Run(res, concSuite, driver.Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, f := range findings {
		if f.Check == "atomicsafe" || f.Check == "chandisc" {
			t.Errorf("//lint:ignore'd finding leaked: %s", f)
		}
	}
	all, err = driver.Run(res, concSuite, driver.Options{IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := map[string]int{}
	for _, f := range all {
		if f.Suppression == driver.SuppressedIgnore {
			got[f.Check]++
		}
	}
	if got["atomicsafe"] != 1 || got["chandisc"] != 1 {
		t.Errorf("ignored atomicsafe=%d chandisc=%d, want 1 and 1\n%s",
			got["atomicsafe"], got["chandisc"], render(all))
	}
}

// TestParallelDeterminism: the level-scheduled parallel driver must
// produce byte-identical output regardless of worker count.
func TestParallelDeterminism(t *testing.T) {
	res := loadFixture(t)
	suite := []*analysis.Analyzer{analyzers.Determinism(), analyzers.GoLeak()}
	serial, err := driver.Run(res, suite, driver.Options{Jobs: 1, IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	for i := 0; i < 3; i++ {
		parallel, err := driver.Run(res, suite, driver.Options{Jobs: 8, IncludeSuppressed: true})
		if err != nil {
			t.Fatalf("parallel run: %v", err)
		}
		if render(serial) != render(parallel) {
			t.Fatalf("parallel findings drifted from serial:\n--- jobs=1\n%s--- jobs=8\n%s",
				render(serial), render(parallel))
		}
	}
}

// TestSARIFParity: the SARIF document carries exactly the findings the
// -json mode would, with matching rules, positions and suppression
// states — so CI consumers of either format see the same truth.
func TestSARIFParity(t *testing.T) {
	res := loadFixture(t)
	suite := []*analysis.Analyzer{analyzers.Determinism(), analyzers.GoLeak()}
	findings, err := driver.Run(res, suite, driver.Options{IncludeSuppressed: true})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	doc, err := driver.SARIF(findings, suite)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(doc, &log); err != nil {
		t.Fatalf("unmarshalling SARIF: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("wrong SARIF version/schema: %s %s", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tdlint" {
		t.Errorf("tool name = %q, want tdlint", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range suite {
		if !ruleIDs[a.Name] {
			t.Errorf("rule table missing analyzer %q", a.Name)
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d (parity with -json findings)", len(run.Results), len(findings))
	}
	for i, f := range findings {
		r := run.Results[i]
		if r.RuleID != f.Check || r.Message.Text != f.Message {
			t.Errorf("result %d drifted: %s/%q vs %s", i, r.RuleID, r.Message.Text, f)
		}
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d rule %q missing from rule table", i, r.RuleID)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != f.RelPath || loc.Region.StartLine != f.Position.Line {
			t.Errorf("result %d location drifted: %s:%d vs %s", i, loc.ArtifactLocation.URI, loc.Region.StartLine, f)
		}
		if f.Active() != (len(r.Suppressions) == 0) {
			t.Errorf("result %d suppression parity broken: active=%v sarif=%d", i, f.Active(), len(r.Suppressions))
		}
		if !f.Active() {
			want := "external"
			if f.Suppression == driver.SuppressedIgnore {
				want = "inSource"
			}
			if r.Suppressions[0].Kind != want {
				t.Errorf("result %d suppression kind = %q, want %q", i, r.Suppressions[0].Kind, want)
			}
		}
	}
}

func render(findings []driver.Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
