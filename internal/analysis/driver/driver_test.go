package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/analyzers"
	"temporaldoc/internal/analysis/driver"
	"temporaldoc/internal/analysis/load"
)

// loadFixture loads the drvfix module once per test.
func loadFixture(t *testing.T) *load.Result {
	t.Helper()
	res, err := load.Packages(filepath.Join("testdata", "src"), "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return res
}

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{analyzers.Determinism()}
}

func countByCheck(findings []driver.Finding) map[string]int {
	out := map[string]int{}
	for _, f := range findings {
		out[f.Check]++
	}
	return out
}

// TestSuppressions: the fixture seeds five rand.Int() findings — one
// unsuppressed, one suppressed on the same line, one from the line
// above, one behind a malformed (reason-less) directive, and two more
// in a file-ignore'd file. Only the unsuppressed one and the one behind
// the malformed directive survive, plus the malformed directive itself.
func TestSuppressions(t *testing.T) {
	res := loadFixture(t)
	findings, err := driver.Run(res, suite(), driver.Options{})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := countByCheck(findings)
	if got["determinism"] != 2 {
		t.Errorf("determinism findings = %d, want 2 (suppressions must swallow same-line, line-above and file-wide)\n%s",
			got["determinism"], render(findings))
	}
	if got["lintdirective"] != 1 {
		t.Errorf("lintdirective findings = %d, want 1 (reason-less directive must be reported)\n%s",
			got["lintdirective"], render(findings))
	}
	for _, f := range findings {
		if strings.Contains(f.RelPath, "fileignore") {
			t.Errorf("file-ignore'd finding leaked: %s", f)
		}
	}
}

// TestBaselineRoundTrip: writing a baseline from the current findings
// and re-running against it must leave the tree clean; a stale baseline
// entry stays harmless, and a missing file is an empty baseline.
func TestBaselineRoundTrip(t *testing.T) {
	res := loadFixture(t)
	base := filepath.Join(t.TempDir(), "tdlint.baseline")

	if _, err := driver.Run(res, suite(), driver.Options{BaselinePath: base, WriteBaseline: true}); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if !strings.Contains(string(data), "[determinism]") {
		t.Fatalf("baseline missing grandfathered findings:\n%s", data)
	}

	findings, err := driver.Run(res, suite(), driver.Options{BaselinePath: base})
	if err != nil {
		t.Fatalf("running against baseline: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("findings survived their own baseline:\n%s", render(findings))
	}

	missing := filepath.Join(t.TempDir(), "does-not-exist")
	findings, err = driver.Run(res, suite(), driver.Options{BaselinePath: missing})
	if err != nil {
		t.Fatalf("running with missing baseline: %v", err)
	}
	if len(findings) == 0 {
		t.Error("missing baseline file must behave as empty, not absorb findings")
	}
}

// TestExcludes: a path exclude for one check drops its findings but
// leaves other checks' findings on the same files alone.
func TestExcludes(t *testing.T) {
	res := loadFixture(t)
	findings, err := driver.Run(res, suite(), driver.Options{
		Exclude: map[string][]string{"determinism": {"suppress/"}},
	})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	got := countByCheck(findings)
	if got["determinism"] != 0 {
		t.Errorf("excluded determinism findings survived:\n%s", render(findings))
	}
	if got["lintdirective"] != 1 {
		t.Errorf("lintdirective findings = %d, want 1 (excludes are per-check)", got["lintdirective"])
	}
}

// TestChecksFilter: unknown check names are a hard error, and a named
// subset runs only those analyzers.
func TestChecksFilter(t *testing.T) {
	res := loadFixture(t)
	if _, err := driver.Run(res, suite(), driver.Options{Checks: []string{"nope"}}); err == nil {
		t.Error("unknown check name must error")
	}
	findings, err := driver.Run(res, []*analysis.Analyzer{analyzers.Determinism(), analyzers.FloatCmp()},
		driver.Options{Checks: []string{"floatcmp"}})
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	for _, f := range findings {
		if f.Check == "determinism" {
			t.Errorf("unselected analyzer ran: %s", f)
		}
	}
}

func render(findings []driver.Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
