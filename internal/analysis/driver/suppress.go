package driver

import (
	"go/ast"
	"go/token"
	"strings"

	"temporaldoc/internal/analysis"
)

// Suppression comments:
//
//	//lint:ignore check1,check2 reason      — suppresses the named
//	  checks on the same line or the line directly below the comment.
//	//lint:file-ignore check1,check2 reason — suppresses the named
//	  checks for the whole file.
//
// The reason is mandatory: a directive without one is itself reported
// (check "lintdirective"), so suppressions stay reviewable.
const (
	ignorePrefix     = "lint:ignore "
	fileIgnorePrefix = "lint:file-ignore "
)

// suppressions indexes lint:ignore directives by file and line.
type suppressions struct {
	// line maps filename → line of the directive → suppressed checks.
	// A directive on line N suppresses findings on lines N and N+1.
	line map[string]map[int]map[string]bool
	// file maps filename → checks suppressed file-wide.
	file map[string]map[string]bool
}

func newSuppressions() *suppressions {
	return &suppressions{
		line: map[string]map[int]map[string]bool{},
		file: map[string]map[string]bool{},
	}
}

// lintDirective is the pseudo-analyzer malformed directives are
// reported under.
var lintDirective = &analysis.Analyzer{
	Name: "lintdirective",
	Doc:  "lint:ignore directives must name at least one check and give a reason",
}

// indexFile scans one parsed file's comments for directives. Malformed
// directives (no checks, or no reason) are reported rather than
// silently ignored.
func (s *suppressions) indexFile(fset *token.FileSet, f *ast.File, report func(analysis.Diagnostic)) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			var checks string
			var fileWide bool
			switch {
			case strings.HasPrefix(text, ignorePrefix):
				checks = strings.TrimPrefix(text, ignorePrefix)
			case strings.HasPrefix(text, fileIgnorePrefix):
				checks = strings.TrimPrefix(text, fileIgnorePrefix)
				fileWide = true
			case strings.HasPrefix(text, "lint:"):
				report(analysis.Diagnostic{
					Pos:     c.Pos(),
					Check:   lintDirective.Name,
					Message: "unrecognized lint directive (want lint:ignore or lint:file-ignore)",
				})
				continue
			default:
				continue
			}
			names, reason, _ := strings.Cut(strings.TrimSpace(checks), " ")
			if names == "" || strings.TrimSpace(reason) == "" {
				report(analysis.Diagnostic{
					Pos:     c.Pos(),
					Check:   lintDirective.Name,
					Message: "lint directive needs checks and a reason: //lint:ignore check1,check2 why",
				})
				continue
			}
			pos := fset.Position(c.Pos())
			for _, name := range strings.Split(names, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if fileWide {
					s.addFile(pos.Filename, name)
				} else {
					s.addLine(pos.Filename, pos.Line, name)
				}
			}
		}
	}
}

func (s *suppressions) addLine(filename string, line int, check string) {
	lines, ok := s.line[filename]
	if !ok {
		lines = map[int]map[string]bool{}
		s.line[filename] = lines
	}
	checks, ok := lines[line]
	if !ok {
		checks = map[string]bool{}
		lines[line] = checks
	}
	checks[check] = true
}

func (s *suppressions) addFile(filename, check string) {
	checks, ok := s.file[filename]
	if !ok {
		checks = map[string]bool{}
		s.file[filename] = checks
	}
	checks[check] = true
}

// suppressed reports whether a finding of check at pos is covered by a
// directive: file-wide, on the same line, or on the line above.
func (s *suppressions) suppressed(check string, pos token.Position) bool {
	if s.file[pos.Filename][check] {
		return true
	}
	lines := s.line[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][check] || lines[pos.Line-1][check]
}
