// SARIF 2.1.0 rendering for the -sarif output mode: one run, one rule
// per analyzer, one result per finding. Suppressed findings are kept as
// results carrying a suppression object (kind "inSource" for //lint
// directives, "external" for path excludes and the baseline), which is
// how SARIF consumers — code-scanning dashboards, editor panels — show
// muted findings in place instead of silently dropping them.
package driver

import (
	"encoding/json"

	"temporaldoc/internal/analysis"
)

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// SARIF renders findings as one indented SARIF 2.1.0 document. The rule
// table lists every configured analyzer (clean runs still advertise
// what was checked); pseudo-checks that appear only in findings — the
// driver's own "lintdirective" diagnostics — get rules on demand.
func SARIF(findings []Finding, analyzers []*analysis.Analyzer) ([]byte, error) {
	var rules []sarifRule
	index := map[string]int{}
	addRule := func(id, doc string) int {
		if i, ok := index[id]; ok {
			return i
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
		return index[id]
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:    f.Check,
			RuleIndex: addRule(f.Check, "reported by the tdlint driver"),
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: f.RelPath},
				Region:           sarifRegion{StartLine: f.Position.Line, StartColumn: f.Position.Column},
			}}},
		}
		switch f.Suppression {
		case SuppressedIgnore:
			r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: f.Suppression}}
		case SuppressedExclude, SuppressedBaseline:
			r.Suppressions = []sarifSuppression{{Kind: "external", Justification: f.Suppression}}
		}
		results = append(results, r)
	}

	return json.MarshalIndent(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tdlint", Rules: rules}},
			Results: results,
		}},
	}, "", "  ")
}
