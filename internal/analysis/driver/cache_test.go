package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/analyzers"
	"temporaldoc/internal/analysis/driver"
)

// copyFixture clones the drvfix module into a temp dir so tests can
// edit sources without touching the checked-in fixtures.
func copyFixture(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "src")
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture module: %v", err)
	}
	return dst
}

// cacheSuite pairs an intraprocedural analyzer with an interprocedural
// one, so warm runs exercise both cached diagnostics and cached fact
// blobs (cacheb's purity finding needs cachea's sealed facts).
func cacheSuite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analyzers.Determinism(),
		analyzers.Purity([]string{"cacheb.Train"}, nil),
	}
}

// renderFull renders findings with their suppression state, so
// byte-identity comparisons cover everything an output mode can see.
func renderFull(findings []driver.Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString(f.String())
		if f.Suppression != "" {
			sb.WriteString(" (" + f.Suppression + ")")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func runCached(t *testing.T, dir, cacheDir string, suite []*analysis.Analyzer, jobs int) ([]driver.Finding, *driver.Stats) {
	t.Helper()
	stats := driver.NewStats()
	findings, err := driver.RunCached(dir, []string{"./..."}, suite, driver.Options{
		CacheDir:          cacheDir,
		IncludeSuppressed: true,
		Jobs:              jobs,
		Stats:             stats,
	})
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	return findings, stats
}

func assertCounters(t *testing.T, stats *driver.Stats, wantHits, wantMisses, wantInvalidated int, context string) {
	t.Helper()
	hits, misses, invalidated, used := stats.Cache()
	if !used {
		t.Fatalf("%s: cache not consulted", context)
	}
	if hits != wantHits || misses != wantMisses || invalidated != wantInvalidated {
		t.Fatalf("%s: cache counters hits=%d misses=%d invalidated=%d, want %d/%d/%d",
			context, hits, misses, invalidated, wantHits, wantMisses, wantInvalidated)
	}
}

// TestCacheColdWarmIdentity: a cold cached run, a warm one, an
// uncached one and every -jobs variant must produce byte-identical
// findings; the warm run must be all hits. The fixture has 4 packages
// and the suite 2 analyzers: 8 cacheable units.
func TestCacheColdWarmIdentity(t *testing.T) {
	dir := copyFixture(t)
	cacheDir := t.TempDir()

	uncached, stats := runCached(t, dir, "", cacheSuite(), 0)
	if _, _, _, used := stats.Cache(); used {
		t.Fatalf("empty CacheDir must not consult a cache")
	}
	want := renderFull(uncached)
	if !strings.Contains(want, "[purity]") {
		t.Fatalf("fixture lost its cross-package purity finding:\n%s", want)
	}

	cold, stats := runCached(t, dir, cacheDir, cacheSuite(), 0)
	assertCounters(t, stats, 0, 8, 0, "cold")
	if got := renderFull(cold); got != want {
		t.Fatalf("cold cached findings differ from uncached:\n--- uncached\n%s--- cold\n%s", want, got)
	}

	for _, jobs := range []int{1, 8} {
		warm, stats := runCached(t, dir, cacheDir, cacheSuite(), jobs)
		assertCounters(t, stats, 8, 0, 0, "warm")
		if got := renderFull(warm); got != want {
			t.Fatalf("warm findings (jobs=%d) differ:\n--- uncached\n%s--- warm\n%s", jobs, want, got)
		}
	}
}

// TestCacheColdParallelWarmSerial: populating the cache at -jobs 8 and
// reading it back at -jobs 1 (and vice versa) must not change a byte —
// the determinism guarantee across scheduling.
func TestCacheColdParallelWarmSerial(t *testing.T) {
	dir := copyFixture(t)
	cacheDir := t.TempDir()

	cold, _ := runCached(t, dir, cacheDir, cacheSuite(), 8)
	warm, stats := runCached(t, dir, cacheDir, cacheSuite(), 1)
	assertCounters(t, stats, 8, 0, 0, "warm jobs=1 after cold jobs=8")
	if renderFull(cold) != renderFull(warm) {
		t.Fatalf("findings drifted across jobs/cache states:\n--- cold jobs=8\n%s--- warm jobs=1\n%s",
			renderFull(cold), renderFull(warm))
	}
}

// TestCacheEditInvalidatesDependents: editing the leaf package must
// invalidate its own units and its importer's — and nothing else —
// while leaving the findings untouched (the edit is a trailing
// comment).
func TestCacheEditInvalidatesDependents(t *testing.T) {
	dir := copyFixture(t)
	cacheDir := t.TempDir()

	cold, _ := runCached(t, dir, cacheDir, cacheSuite(), 0)
	f, err := os.OpenFile(filepath.Join(dir, "cachea", "cachea.go"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n// touched: invalidates cachea and its importer cacheb\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	after, stats := runCached(t, dir, cacheDir, cacheSuite(), 0)
	// cachea and cacheb recompute under both analyzers (4 units, each
	// with a stale predecessor entry → invalidated); suppress and
	// concfix stay warm (4 hits).
	assertCounters(t, stats, 4, 0, 4, "after leaf edit")
	if renderFull(cold) != renderFull(after) {
		t.Fatalf("comment-only edit changed findings:\n--- before\n%s--- after\n%s",
			renderFull(cold), renderFull(after))
	}

	warm, stats := runCached(t, dir, cacheDir, cacheSuite(), 0)
	assertCounters(t, stats, 8, 0, 0, "re-warm after edit")
	if renderFull(warm) != renderFull(after) {
		t.Fatalf("re-warmed findings differ from the run that wrote them")
	}
}

// TestCacheVersionBump: bumping one analyzer's version must recompute
// only that analyzer's units; the other analyzer stays fully warm.
func TestCacheVersionBump(t *testing.T) {
	dir := copyFixture(t)
	cacheDir := t.TempDir()

	before, _ := runCached(t, dir, cacheDir, cacheSuite(), 0)

	bumped := cacheSuite()
	bumped[0].Version = bumped[0].Version + "-test-bump"
	after, stats := runCached(t, dir, cacheDir, bumped, 0)
	// 4 determinism units invalidated (version changed under an existing
	// index entry), 4 purity units still hit.
	assertCounters(t, stats, 4, 0, 4, "after version bump")
	if renderFull(before) != renderFull(after) {
		t.Fatalf("version bump changed findings:\n--- before\n%s--- after\n%s",
			renderFull(before), renderFull(after))
	}

	warm, stats := runCached(t, dir, cacheDir, bumped, 0)
	assertCounters(t, stats, 8, 0, 0, "re-warm after bump")
	if renderFull(warm) != renderFull(after) {
		t.Fatalf("re-warmed findings differ after version bump")
	}
}

// TestCacheCorruptionIsMiss: clobbering every cached object must
// degrade to a silent full recompute — same findings, no error — and
// the rewritten entries must serve the next run.
func TestCacheCorruptionIsMiss(t *testing.T) {
	dir := copyFixture(t)
	cacheDir := t.TempDir()

	cold, _ := runCached(t, dir, cacheDir, cacheSuite(), 0)
	var corrupted int
	err := filepath.WalkDir(filepath.Join(cacheDir, "o"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		corrupted++
		return os.WriteFile(path, []byte("{not json"), 0o644)
	})
	if err != nil {
		t.Fatalf("corrupting cache: %v", err)
	}
	if corrupted == 0 {
		t.Fatal("cold run wrote no cache objects")
	}

	after, stats := runCached(t, dir, cacheDir, cacheSuite(), 0)
	// The index still names the right keys, so these are plain misses
	// (the object is unreadable), not invalidations.
	assertCounters(t, stats, 0, 8, 0, "after corruption")
	if renderFull(cold) != renderFull(after) {
		t.Fatalf("corrupted cache changed findings:\n--- before\n%s--- after\n%s",
			renderFull(cold), renderFull(after))
	}

	_, stats = runCached(t, dir, cacheDir, cacheSuite(), 0)
	assertCounters(t, stats, 8, 0, 0, "re-warm after corruption")
}
