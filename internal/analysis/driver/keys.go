// Action-key computation for the incremental cache (see package cache
// for the store itself).
//
// The key of a (package, analyzer) pair is a content hash over
// everything that can influence the analyzer's sealed output on that
// package:
//
//	key(P, X) = H(env, X.name, X.version, X.config, base(P),
//	             key(D, X) for in-set direct imports D, sorted,
//	             H(export data of D) for out-of-set direct imports D, sorted)
//
//	base(P)   = H(P.importPath, (name, H(bytes)) per source file)
//	env       = H(engineVersion, go version, GOOS, GOARCH, go.mod bytes)
//
// In-set imports (other analyzed packages) contribute their own action
// keys, so an edit anywhere in a package invalidates exactly its own
// entries and its transitive dependents' — nothing else. Out-of-set
// imports contribute the hash of their compiled export data, which is
// precisely the artifact analysis reads for them. The analyzer's
// version string makes a semantics change a per-analyzer invalidation;
// the engine version covers driver/facts/callgraph semantics shared by
// all analyzers.
//
// A package whose inputs cannot be hashed (unreadable source, missing
// export data) gets the empty key: it is analyzed live every run and
// its results are never cached. The empty key also poisons dependents,
// since their inputs are then not fully accounted for.
package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/cache"
	"temporaldoc/internal/analysis/load"
)

// engineVersion invalidates every cache entry when the semantics shared
// by all analyzers change: the driver's phase orchestration, the facts
// blob encoding, call-graph construction, or the cached-entry schema.
// Bump it on any such change.
const engineVersion = "tdlint-engine-1"

// keyer computes action keys for one listed package set, memoizing the
// per-package pieces shared by every analyzer.
type keyer struct {
	meta    *load.Meta
	envHash string
	base    map[string]string // import path → source hash, "" = unhashable
	export  map[string]string // import path → export-data hash, "" = unhashable
}

func newKeyer(meta *load.Meta) *keyer {
	k := &keyer{
		meta:   meta,
		base:   make(map[string]string, len(meta.Targets)),
		export: map[string]string{},
	}
	h := sha256.New()
	hashField(h, engineVersion)
	hashField(h, runtime.Version())
	hashField(h, runtime.GOOS)
	hashField(h, runtime.GOARCH)
	// go.mod pins the module graph; dependency *content* is covered by
	// export-data hashes, so an unreadable go.mod degrades to that.
	gomod, _ := os.ReadFile(filepath.Join(meta.ModuleDir, "go.mod"))
	_, _ = h.Write(gomod)
	k.envHash = hex.EncodeToString(h.Sum(nil))
	return k
}

// hashField writes one length-delimited field, so adjacent fields can
// never alias ("ab"+"c" vs "a"+"bc").
func hashField(h hash.Hash, s string) {
	var n [8]byte
	for i, v := 0, uint64(len(s)); i < 8; i++ {
		n[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(n[:])
	_, _ = io.WriteString(h, s)
}

// baseHash hashes a target package's identity and source bytes.
func (k *keyer) baseHash(p *load.MetaPkg) string {
	if b, ok := k.base[p.ImportPath]; ok {
		return b
	}
	h := sha256.New()
	hashField(h, p.ImportPath)
	for _, name := range p.GoFiles {
		data, err := os.ReadFile(filepath.Join(p.Dir, name))
		if err != nil {
			k.base[p.ImportPath] = ""
			return ""
		}
		sum := sha256.Sum256(data)
		hashField(h, name)
		hashField(h, hex.EncodeToString(sum[:]))
	}
	b := hex.EncodeToString(h.Sum(nil))
	k.base[p.ImportPath] = b
	return b
}

// exportHash hashes an out-of-set dependency's compiled export data —
// the exact artifact type-checking reads for it.
func (k *keyer) exportHash(path string) string {
	if e, ok := k.export[path]; ok {
		return e
	}
	p := k.meta.Pkgs[path]
	if p == nil || p.Export == "" {
		k.export[path] = ""
		return ""
	}
	f, err := os.Open(p.Export)
	if err != nil {
		k.export[path] = ""
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		k.export[path] = ""
		return ""
	}
	e := hex.EncodeToString(h.Sum(nil))
	k.export[path] = e
	return e
}

// isTarget reports whether path is one of the analyzed packages (whose
// key recursion uses action keys rather than export data).
func (k *keyer) isTarget(path string) bool {
	p := k.meta.Pkgs[path]
	return p != nil && p.Main && len(p.GoFiles) > 0
}

// analyzerKeys computes key(P, a) for every target P. An empty string
// marks an uncacheable package.
func (k *keyer) analyzerKeys(a *analysis.Analyzer) map[string]string {
	keys := make(map[string]string, len(k.meta.Targets))
	var keyOf func(path string) string
	keyOf = func(path string) string {
		if key, ok := keys[path]; ok {
			return key
		}
		// Pre-mark to terminate on an import cycle (go list should never
		// produce one; a cycle just renders the packages uncacheable).
		keys[path] = ""
		p := k.meta.Pkgs[path]
		base := k.baseHash(p)
		if base == "" {
			return ""
		}
		h := sha256.New()
		hashField(h, k.envHash)
		hashField(h, a.Name)
		hashField(h, a.Version)
		hashField(h, a.Config)
		hashField(h, base)
		for _, imp := range sortedImports(p) {
			if imp == "C" || imp == "unsafe" {
				hashField(h, "dep:"+imp)
				continue
			}
			var dep string
			if k.isTarget(imp) {
				dep = keyOf(imp)
			} else {
				dep = k.exportHash(imp)
			}
			if dep == "" {
				return ""
			}
			hashField(h, "dep:"+imp)
			hashField(h, dep)
		}
		key := hex.EncodeToString(h.Sum(nil))
		keys[path] = key
		return key
	}
	for _, t := range k.meta.Targets {
		keyOf(t.ImportPath)
	}
	return keys
}

// suppressKey keys the per-package suppression scan. Directives are
// purely intra-file, so the key needs no dependency inputs — only the
// sources and the engine fingerprint.
func (k *keyer) suppressKey(p *load.MetaPkg) string {
	base := k.baseHash(p)
	if base == "" {
		return ""
	}
	h := sha256.New()
	hashField(h, k.envHash)
	hashField(h, suppressCheck)
	hashField(h, base)
	return hex.EncodeToString(h.Sum(nil))
}

func sortedImports(p *load.MetaPkg) []string {
	imps := append([]string(nil), p.Imports...)
	sort.Strings(imps)
	return imps
}

// RunCached is Run with the incremental cache in front: it lists the
// packages matched by patterns under dir, computes action keys,
// satisfies what it can from opts.CacheDir, and parses/analyzes only
// the rest (a package all of whose selected analyzers hit is never
// parsed). With an empty CacheDir — or a cache directory that cannot
// be opened — it degrades to exactly Run's behavior. Findings are
// byte-identical to an uncached run in either case.
func RunCached(dir string, patterns []string, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	selected, err := selectAnalyzers(analyzers, opts.Checks)
	if err != nil {
		return nil, err
	}
	meta, err := load.List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	uncached := func() ([]Finding, error) {
		res, err := meta.Load(nil)
		if err != nil {
			return nil, err
		}
		return execute(res, selected, opts, nil)
	}
	if opts.CacheDir == "" {
		return uncached()
	}
	store, err := cache.Open(opts.CacheDir)
	if err != nil {
		// An unusable cache directory must not fail the lint gate.
		return uncached()
	}

	plans := make(map[string]*pkgPlan, len(meta.Targets))
	for _, t := range meta.Targets {
		plans[t.ImportPath] = &pkgPlan{
			meta: t,
			keys: map[string]string{},
			hits: map[string]*cache.Entry{},
		}
	}
	k := newKeyer(meta)
	for _, a := range selected {
		keys := k.analyzerKeys(a)
		for _, t := range meta.Targets {
			plan := plans[t.ImportPath]
			key := keys[t.ImportPath]
			plan.keys[a.Name] = key
			if key == "" {
				opts.Stats.countCache(false, false)
				continue
			}
			if e, ok := store.Get(key, t.ImportPath, a.Name); ok {
				plan.hits[a.Name] = e
				opts.Stats.countCache(true, false)
				continue
			}
			last, had := store.LastKey(t.ImportPath, a.Name)
			opts.Stats.countCache(false, had && last != key)
		}
	}
	// The suppression scan rides along under a pseudo-check; it is not
	// part of the hit/miss counters (it is bookkeeping, not analysis).
	for _, t := range meta.Targets {
		plan := plans[t.ImportPath]
		key := k.suppressKey(t)
		plan.keys[suppressCheck] = key
		if key == "" {
			continue
		}
		if e, ok := store.Get(key, t.ImportPath, suppressCheck); ok {
			plan.hits[suppressCheck] = e
		}
	}

	res, err := meta.Load(func(path string) bool {
		plan := plans[path]
		if _, ok := plan.hits[suppressCheck]; !ok {
			return true
		}
		for _, a := range selected {
			if _, ok := plan.hits[a.Name]; !ok {
				return true
			}
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	for _, p := range res.Packages {
		plans[p.ImportPath].loaded = true
	}
	cc := &cacheContext{store: store, moduleDir: meta.ModuleDir, plans: plans}
	return execute(res, selected, opts, cc)
}
