package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/conc"
)

// CtxFlow makes cancellation structural on the request paths. A
// function that receives a context.Context (or an *http.Request, whose
// context the handler owns) has promised its caller a bounded lifetime;
// every blocking operation in its flow must honour that promise. The
// 504 path of the serving layer only works because handlers select on
// ctx.Done() around every wait — this check keeps the next handler
// honest before the soak test has to.
//
// The facts phase records, per function, whether it can block without
// honouring a context — a bare channel send/receive, a select with
// neither default nor a ctx.Done() case, or time.Sleep — then closes
// the relation over calls that do not pass a context along (handing the
// callee a context discharges the caller; the callee is then judged on
// its own flow). The run phase reports, inside context-carrying
// functions only, each direct blocking operation and each call into a
// may-block callee that receives no context, with provenance chains.
//
// Ranging over a channel is deliberately exempt: `for v := range ch` is
// the owner-closes-drain idiom goleak accepts as a termination path.
// Deliberately detached work opts out with //tdlint:background <reason>
// (shared with goleak, which validates the reason).
func CtxFlow() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "ctxflow",
		Version: "1",
		Doc: "context-carrying functions must honour cancellation at every blocking point " +
			"(no bare sends/receives, no ctx-less selects, no time.Sleep); opt-out: //tdlint:background <reason>",
		Facts: ctxflowFacts,
		Run:   runCtxFlow,
	}
}

// mayBlockFact carries the blocking provenance chain.
const mayBlockFact = "mayblock"

// ctxflowFacts summarizes, per function, the first way it can block
// without honouring a context, closing over context-less calls.
func ctxflowFacts(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("ctxflow needs interprocedural context (call graph + facts)")
	}
	var fns []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	chains := map[*types.Func]string{}
	for _, fn := range pass.Graph.Funcs() {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		decl := pass.Graph.Decl(fn)
		if decl == nil || decl.Body == nil || isBackground(decl) {
			continue
		}
		fns = append(fns, fn)
		decls[fn] = decl
		for _, op := range conc.BlockingOps(pass.Info, decl.Body) {
			if desc := blockingDesc(pass, op); desc != "" {
				chains[fn] = desc + atLoc(pass, op.Pos)
				break
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if chains[fn] != "" {
				continue
			}
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				if chains[fn] != "" {
					return false
				}
				switch x := n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					callee := staticCallee(pass.Info, x)
					if callee == nil || isBackground(pass.Graph.Decl(callee)) || passesContext(pass, x) {
						return true
					}
					var calleeChain string
					if c, ok := chains[callee]; ok && c != "" {
						calleeChain = c
					} else if c, ok := pass.Facts.GetFunc(callee, mayBlockFact); ok {
						calleeChain = c
					} else {
						return true
					}
					chains[fn] = chainName(pass.Pkg, callee) + " → " + calleeChain
					changed = true
					return false
				}
				return true
			})
		}
	}
	for _, fn := range fns {
		if c := chains[fn]; c != "" {
			pass.Facts.Put(fn, mayBlockFact, c)
		}
	}
	return nil
}

// runCtxFlow reports unhonoured blocking inside context-carrying
// functions.
func runCtxFlow(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("ctxflow needs interprocedural context (call graph + facts)")
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !carriesContext(pass, decl) || isBackground(decl) {
				continue
			}
			for _, op := range conc.BlockingOps(pass.Info, decl.Body) {
				switch op.Kind {
				case conc.OpSleep:
					pass.Reportf(op.Pos,
						"time.Sleep ignores ctx; use a time.Timer (or time.After) in a select with ctx.Done()")
				case conc.OpSend:
					pass.Reportf(op.Pos,
						"bare send on %s cannot be cancelled; select on it together with ctx.Done()", chanName(op.Chan))
				case conc.OpRecv:
					pass.Reportf(op.Pos,
						"bare receive from %s cannot be cancelled; select on it together with ctx.Done()", chanName(op.Chan))
				case conc.OpSelect:
					if !op.HasDefault && !op.HasDone {
						pass.Reportf(op.Pos,
							"select blocks without a ctx.Done() case; cancellation cannot reach this wait")
					}
				}
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					callee := staticCallee(pass.Info, x)
					if callee == nil || isBackground(pass.Graph.Decl(callee)) || passesContext(pass, x) {
						return true
					}
					if c, ok := pass.Facts.GetFunc(callee, mayBlockFact); ok {
						pass.Reportf(x.Pos(),
							"%s may block (%s) but receives no context; pass ctx through so cancellation reaches the wait",
							chainName(pass.Pkg, callee), c)
					}
				}
				return true
			})
		}
	}
	return nil
}

// blockingDesc renders one blocking op for a provenance chain; "" for
// ops that do honour cancellation (selects with default or a Done
// case).
func blockingDesc(pass *analysis.Pass, op conc.Op) string {
	switch op.Kind {
	case conc.OpSleep:
		return "time.Sleep"
	case conc.OpSend:
		return "send on " + chanName(op.Chan)
	case conc.OpRecv:
		return "receive from " + chanName(op.Chan)
	case conc.OpSelect:
		if !op.HasDefault && !op.HasDone {
			return "select without ctx.Done"
		}
	}
	return ""
}

// chanName renders a channel expression for diagnostics.
func chanName(e ast.Expr) string {
	if e == nil {
		return "a channel"
	}
	if k := conc.Key(e); k != "" {
		return k
	}
	return render(e)
}

// carriesContext reports whether decl receives a context.Context or an
// *http.Request parameter (whose Context() the function owns).
func carriesContext(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if conc.IsContext(t) {
			return true
		}
		if p, ok := t.(*types.Pointer); ok {
			if named, ok := p.Elem().(*types.Named); ok && namedIs(named, "net/http", "Request") {
				return true
			}
		}
	}
	return false
}

// passesContext reports whether any argument of call is a
// context.Context.
func passesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if conc.IsContext(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}
