package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/cfg"
	"temporaldoc/internal/analysis/conc"
)

// ChanDisc enforces channel ownership discipline: exactly one closer,
// and no operation that can panic at runtime survives lint. Three rule
// families, all running on a may-closed dataflow over the function's
// CFG (the lockcheck shape, with close events instead of lock events):
//
//   - double close: close of a channel that may already be closed on
//     the path, including a body close overlapping a deferred close;
//   - send on closed: a send whose channel may already be closed on the
//     path — including closes that happen inside callees, via a
//     cross-package "closesparam" fact computed over the call graph
//     (a function that closes its parameter, directly or transitively,
//     closes the caller's channel);
//   - close by non-owner: closing a channel that belongs to another
//     package (a foreign struct's field), or handing one to a closing
//     callee. Owning means having made the channel (assignment from a
//     call), holding it as a parameter (a custody chain the closesparam
//     fact makes visible at every call site), or keeping it in a struct
//     the closing package declares.
func ChanDisc() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "chandisc",
		Version: "1",
		Doc: "channel discipline: no double close, no send on a possibly-closed channel, " +
			"and only the owner (maker, parameter holder, or declaring package) closes",
		Facts: chanFacts,
		Run:   runChanDisc,
	}
}

// closesParamFact prefixes the per-parameter close facts:
// "closesparam:0" on fn means fn closes its first channel parameter.
const closesParamFact = "closesparam"

// chanFacts records which of each function's channel parameters the
// function closes, directly or by passing them to closing callees.
func chanFacts(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("chandisc needs interprocedural context (call graph + facts)")
	}
	var fns []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	closes := map[*types.Func]map[int]string{} // param index → provenance
	for _, fn := range pass.Graph.Funcs() {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		if decl := pass.Graph.Decl(fn); decl != nil && decl.Body != nil {
			fns = append(fns, fn)
			decls[fn] = decl
		}
	}
	put := func(fn *types.Func, idx int, chain string) bool {
		m := closes[fn]
		if m == nil {
			m = map[int]string{}
			closes[fn] = m
		}
		if _, ok := m[idx]; ok {
			return false
		}
		m[idx] = chain
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			params := paramObjects(pass, decls[fn])
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					// Another frame/goroutine closes — custody left this
					// function; tracked at that frame instead.
					return false
				case *ast.CallExpr:
					if isBuiltinClose(pass, x) && len(x.Args) == 1 {
						if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
							if idx, ok := params[pass.Info.Uses[id]]; ok {
								if put(fn, idx, "closes "+id.Name+" directly") {
									changed = true
								}
							}
						}
						return true
					}
					callee := staticCallee(pass.Info, x)
					if callee == nil {
						return true
					}
					for i, arg := range x.Args {
						id, ok := ast.Unparen(arg).(*ast.Ident)
						if !ok {
							continue
						}
						idx, ok := params[pass.Info.Uses[id]]
						if !ok {
							continue
						}
						chain, ok := calleeCloses(pass, closes, callee, i)
						if !ok {
							continue
						}
						if put(fn, idx, chainName(pass.Pkg, callee)+" → "+chain) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}
	for _, fn := range fns {
		m := closes[fn]
		idxs := make([]int, 0, len(m))
		for i := range m {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			pass.Facts.Put(fn, closesParamFact+":"+strconv.Itoa(i), m[i])
		}
	}
	return nil
}

// calleeCloses looks up whether callee closes its i-th parameter, in
// the live same-package results first, sealed facts second.
func calleeCloses(pass *analysis.Pass, live map[*types.Func]map[int]string, callee *types.Func, i int) (string, bool) {
	if m, ok := live[callee]; ok {
		if c, ok := m[i]; ok {
			return c, true
		}
	}
	return pass.Facts.GetFunc(callee, closesParamFact+":"+strconv.Itoa(i))
}

// paramObjects maps a declaration's channel parameter objects to their
// flat argument positions.
func paramObjects(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	if decl.Type.Params == nil {
		return out
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				if _, ok := obj.Type().Underlying().(*types.Chan); ok {
					out[obj] = idx
				}
			}
			idx++
		}
	}
	return out
}

// isBuiltinClose matches the builtin close(ch).
func isBuiltinClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// runChanDisc runs the may-closed dataflow and ownership checks over
// every function.
func runChanDisc(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return fmt.Errorf("chandisc needs interprocedural context (call graph + facts)")
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				chanFlow(pass, decl)
			}
		}
	}
	return nil
}

// closedSet tracks which channel keys may be closed on the current
// path.
type closedSet map[string]bool

func (c closedSet) clone() closedSet {
	out := make(closedSet, len(c))
	for k := range c {
		out[k] = true
	}
	return out
}

func (c closedSet) equal(o closedSet) bool {
	if len(c) != len(o) {
		return false
	}
	for k := range c {
		if !o[k] {
			return false
		}
	}
	return true
}

// chanFlow analyzes one declaration: fixpoint first, then a reporting
// sweep with the converged in-states, then the deferred-close overlap.
func chanFlow(pass *analysis.Pass, decl *ast.FuncDecl) {
	g := cfg.New(cfg.FuncName(decl), decl.Body)
	owned := ownedChannels(pass, decl)
	params := paramObjects(pass, decl)

	ins := make([]closedSet, len(g.Blocks))
	for i := range ins {
		ins[i] = closedSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			out := chanTransfer(pass, b, ins[b.Index], nil)
			for _, succ := range b.Succs {
				union := ins[succ.Index].clone()
				for k := range out {
					union[k] = true
				}
				if !union.equal(ins[succ.Index]) {
					ins[succ.Index] = union
					changed = true
				}
			}
		}
	}
	report := func(pos ast.Node, format string, args ...interface{}) {
		pass.Reportf(pos.Pos(), format, args...)
	}
	for _, b := range g.Blocks {
		chanTransfer(pass, b, ins[b.Index], func(n ast.Node, format string, args ...interface{}) {
			report(n, format, args...)
		})
	}

	// Ownership sweep: every close event must be performed by an owner.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isBuiltinClose(pass, x) && len(x.Args) == 1 {
				checkCloseOwnership(pass, x, x.Args[0], owned, params)
				return true
			}
			callee := staticCallee(pass.Info, x)
			if callee == nil {
				return true
			}
			for i, arg := range x.Args {
				if _, ok := calleeCloses(pass, nil, callee, i); !ok {
					continue
				}
				if ownsChannel(pass, arg, owned, params) {
					continue
				}
				pass.Reportf(x.Pos(),
					"passes %s to %s, which closes it, but %s does not own the channel; only the maker (or its delegate) closes",
					render(arg), chainName(pass.Pkg, callee), cfg.FuncName(decl))
			}
		}
		return true
	})

	// Deferred close vs body close: the defer fires at every exit, so a
	// body close of the same channel double-closes.
	exitClosed := ins[g.Exit.Index]
	for _, d := range g.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinClose(pass, call) || len(call.Args) != 1 {
				return true
			}
			if key := conc.Key(call.Args[0]); key != "" && exitClosed[key] {
				pass.Reportf(d.Pos(),
					"deferred close of %s: the channel may already be closed when %s returns (double close)",
					key, cfg.FuncName(decl))
			}
			return true
		})
	}
}

// chanTransfer applies one block's close/send events to the may-closed
// set (on a clone) and returns the out-state; with report non-nil it
// also emits path diagnostics (the fixpoint passes nil).
func chanTransfer(pass *analysis.Pass, b *cfg.Block, in closedSet, report func(ast.Node, string, ...interface{})) closedSet {
	closed := in.clone()
	apply := func(root ast.Node) {
		chanWalk(root, func(sub ast.Node) {
			switch x := sub.(type) {
			case *ast.SendStmt:
				if key := conc.Key(x.Chan); key != "" && closed[key] {
					if report != nil {
						report(x, "send on %s: the channel may already be closed on this path", key)
					}
				}
			case *ast.CallExpr:
				if isBuiltinClose(pass, x) && len(x.Args) == 1 {
					key := conc.Key(x.Args[0])
					if key == "" {
						return
					}
					if closed[key] && report != nil {
						report(x, "close of %s: the channel may already be closed on this path (double close)", key)
					}
					closed[key] = true
					return
				}
				callee := staticCallee(pass.Info, x)
				if callee == nil {
					return
				}
				for i, arg := range x.Args {
					if _, ok := calleeCloses(pass, nil, callee, i); !ok {
						continue
					}
					key := conc.Key(arg)
					if key == "" {
						continue
					}
					if closed[key] && report != nil {
						report(x, "%s closes %s, which may already be closed on this path (double close)",
							chainName(pass.Pkg, callee), key)
					}
					closed[key] = true
				}
			}
		})
	}
	for _, s := range b.Stmts {
		if rs, ok := s.(*ast.RangeStmt); ok {
			// The head rebinds the iteration variables each trip, so
			// facts about the previous element die here — `close(j.done)`
			// inside `for j := range queue` closes a fresh channel every
			// iteration.
			apply(rs.X)
			chanKill(closed, rs.Key)
			chanKill(closed, rs.Value)
			continue
		}
		apply(s)
		killAssigned(closed, s)
	}
	if b.Cond != nil {
		apply(b.Cond)
	}
	return closed
}

// killAssigned drops may-closed facts about variables s reassigns or
// redeclares: the name now holds a different value. Events in the RHS
// were already applied, so `ch = refill(ch)` transfers correctly.
func killAssigned(closed closedSet, s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				chanKill(closed, lhs)
			}
		case *ast.ValueSpec:
			for _, name := range x.Names {
				chanKill(closed, name)
			}
		}
		return true
	})
}

// chanKill removes e's key and everything reached through it
// (killing "j" also kills "j.done").
func chanKill(closed closedSet, e ast.Expr) {
	if e == nil {
		return
	}
	key := conc.Key(e)
	if key == "" {
		return
	}
	for k := range closed {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(closed, k)
		}
	}
}

// chanWalk visits send statements and calls in source order without
// descending into deferred calls (handled at exit), function literals
// or spawned goroutines (other frames' paths).
func chanWalk(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt, *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// ownedChannels collects the local variables holding channels this
// function made (or received from a call — a factory hands custody to
// its caller).
func ownedChannels(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	own := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if _, ok := ast.Unparen(rhs).(*ast.CallExpr); !ok {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil && declaredWithin(obj, decl) {
			owned[obj] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					own(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					own(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	return owned
}

// ownsChannel decides whether e denotes a channel this function may
// close or delegate: a made local, a parameter (custody chain), or a
// field of a struct this package declares.
func ownsChannel(pass *analysis.Pass, e ast.Expr, owned map[types.Object]bool, params map[types.Object]int) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj == nil {
			return false
		}
		if owned[obj] {
			return true
		}
		if _, ok := params[obj]; ok {
			return true
		}
		// Package-level channel variable of this package.
		return obj.Pkg() == pass.Pkg && obj.Parent() == pass.Pkg.Scope()
	case *ast.SelectorExpr:
		selection, ok := pass.Info.Selections[x]
		if !ok || selection.Kind() != types.FieldVal {
			return false
		}
		return selection.Obj().Pkg() == pass.Pkg
	}
	return false
}

// checkCloseOwnership reports a direct close by a non-owner.
func checkCloseOwnership(pass *analysis.Pass, call *ast.CallExpr, arg ast.Expr, owned map[types.Object]bool, params map[types.Object]int) {
	if ownsChannel(pass, arg, owned, params) {
		return
	}
	switch x := ast.Unparen(arg).(type) {
	case *ast.SelectorExpr:
		selection, ok := pass.Info.Selections[x]
		if ok && selection.Kind() == types.FieldVal && selection.Obj().Pkg() != nil {
			pass.Reportf(call.Pos(),
				"close of %s: the channel belongs to package %s; only its owning package may close it",
				render(arg), selection.Obj().Pkg().Name())
			return
		}
	case *ast.Ident:
		pass.Reportf(call.Pos(),
			"close of %s: this function neither made the channel nor received it as a parameter; only the owner closes",
			x.Name)
		return
	}
	// Computed expressions (index, call results) are untracked rather
	// than guessed at.
}
