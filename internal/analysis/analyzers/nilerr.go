package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/cfg"
)

// NilErr guards the error-flow contract around the corpus and model I/O
// boundaries (SGML parsing, snapshot persistence): a dropped or
// inverted error there silently truncates training data. It runs a
// flow-sensitive must-analysis over each function's CFG, tracking for
// every error variable whether it has been compared against nil and, on
// each branch, whether it is known non-nil:
//
//   - a result sibling of an unchecked error (`f, err := Open(...)`)
//     dereferenced before any `err != nil` comparison is a latent nil
//     dereference — the failure case hands back a zero value,
//   - the same dereference inside the `err != nil` branch uses a value
//     the callee already disowned,
//   - `return ..., nil` while some error variable is known non-nil
//     swallows the failure: the caller sees success and keeps going on
//     truncated state.
//
// Branch facts come from the CFG's condition edges: `err != nil` makes
// err known-non-nil on the true edge and known-nil on the false edge
// (and checked on both); joins intersect, so a fact only survives when
// every path agrees.
func NilErr() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "nilerr",
		Version: "1",
		Doc: "flow-sensitive error hygiene: no result use before the error is checked, " +
			"no result use on the failure path, no nil error returned while one is known non-nil",
		Run: runNilErr,
	}
}

func runNilErr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				nilErrFlow(pass, decl)
			}
		}
	}
	return nil
}

// errVarState is the per-error-variable dataflow fact.
type errVarState struct {
	checked bool // compared against nil on every path here
	nonnil  bool // known non-nil on every path here
}

// errState maps tracked error variables to their facts. A nil map is
// the "unvisited" sentinel (top), distinct from an empty map.
type errState map[types.Object]errVarState

func (s errState) clone() errState {
	out := make(errState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s errState) equal(o errState) bool {
	if (s == nil) != (o == nil) || len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// meet intersects two states; facts survive only when both sides agree.
func meet(a, b errState) errState {
	if a == nil {
		return b.clone()
	}
	out := errState{}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		out[k] = errVarState{checked: va.checked && vb.checked, nonnil: va.nonnil && vb.nonnil}
	}
	return out
}

// resultPair is one `v, err := call(...)` site: the error variable and
// the nil-able sibling results whose use is gated on checking it.
type resultPair struct {
	err      types.Object
	siblings map[types.Object]bool
	assigned token.Pos
	callName string
}

// nilErrFlow analyses one declaration.
func nilErrFlow(pass *analysis.Pass, decl *ast.FuncDecl) {
	pairs := collectPairs(pass, decl.Body)
	g := cfg.New(cfg.FuncName(decl), decl.Body)

	errResult := funcReturnsError(pass, decl)

	// Optimistic fixpoint: entry starts empty, everything else
	// unvisited; in[b] is the meet over predecessor edge-outs.
	ins := make([]errState, len(g.Blocks))
	ins[0] = errState{}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if ins[b.Index] == nil {
				continue
			}
			out := nilErrTransfer(pass, pairs, b, ins[b.Index], false, nil)
			for i, succ := range b.Succs {
				edge := applyEdgeFact(pass, b, i, out)
				next := meet(ins[succ.Index], edge)
				if !next.equal(ins[succ.Index]) {
					ins[succ.Index] = next
					changed = true
				}
			}
		}
	}

	// Reporting sweep with converged in-states.
	for _, b := range g.Blocks {
		if ins[b.Index] == nil {
			continue // unreachable
		}
		nilErrTransfer(pass, pairs, b, ins[b.Index], errResult, func(pos token.Pos, format string, args ...interface{}) {
			pass.Reportf(pos, format, args...)
		})
	}
}

// collectPairs finds `v, err := call(...)` assignments (outside nested
// function literals) whose sibling results are nil-able and therefore
// worth gating on the error check.
func collectPairs(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]*resultPair {
	pairs := map[types.Object]*resultPair{}
	inspectStack(body, func(stack []ast.Node) bool {
		if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok {
			return false
		}
		assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
		if !ok || len(assign.Lhs) < 2 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		var errObj types.Object
		sibs := map[types.Object]bool{}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if isErrorType(obj.Type()) {
				errObj = obj
			} else if isNilable(obj.Type()) {
				sibs[obj] = true
			}
		}
		if errObj != nil && len(sibs) > 0 {
			name := lockExprString(call.Fun)
			if name == "" {
				name = "the call"
			}
			pairs[errObj] = &resultPair{err: errObj, siblings: sibs, assigned: assign.Pos(), callName: name}
		}
		return true
	})
	return pairs
}

// nilErrTransfer applies one block's statements to the state (on a
// clone) and returns the out-state. With report non-nil it also emits
// diagnostics; errResult gates the nil-return check on the function
// actually returning an error.
func nilErrTransfer(pass *analysis.Pass, pairs map[types.Object]*resultPair, b *cfg.Block, in errState, errResult bool, report func(token.Pos, string, ...interface{})) errState {
	st := in.clone()
	for _, s := range b.Stmts {
		// A range statement in a head block carries its whole body, but
		// only the range expression is evaluated here; the body's
		// statements live in their own blocks.
		var node ast.Node = s
		if rs, ok := s.(*ast.RangeStmt); ok {
			node = rs.X
		}
		// Uses are evaluated before any assignment in the same
		// statement lands, so report first, then apply effects.
		if report != nil {
			reportSiblingUses(pass, pairs, node, st, report)
			if errResult {
				reportNilReturn(pass, s, st, report)
			}
		}
		applyStmt(pass, pairs, node, st)
	}
	if b.Cond != nil && report != nil {
		reportSiblingUses(pass, pairs, b.Cond, st, report)
	}
	return st
}

// applyStmt updates the state for one statement: a tracked `v, err :=
// call` arms the pair (unchecked, not known non-nil); any other write
// to a tracked error variable drops stale facts.
func applyStmt(pass *analysis.Pass, pairs map[types.Object]*resultPair, s ast.Node, st errState) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				st[obj] = errVarState{} // (re-)armed: unchecked again
			}
		case *ast.UnaryExpr:
			// &err escapes the variable; stop asserting facts about it.
			if x.Op == token.AND {
				if id, ok := x.X.(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil {
						delete(st, obj)
					}
				}
			}
		}
		return true
	})
}

// reportSiblingUses flags dereference-shaped uses of a pair's sibling
// value while its error is unchecked or known non-nil.
func reportSiblingUses(pass *analysis.Pass, pairs map[types.Object]*resultPair, root ast.Node, st errState, report func(token.Pos, string, ...interface{})) {
	bySibling := map[types.Object]*resultPair{}
	for _, p := range pairs {
		for s := range p.siblings {
			bySibling[s] = p
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id := derefBase(n)
		if id == nil {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		pair, ok := bySibling[obj]
		if !ok || id.Pos() < pair.assigned {
			return true
		}
		switch state := st[pair.err]; {
		case state.nonnil:
			report(id.Pos(), "%s is used on the failure path (%s returned a non-nil error); the value is not valid there",
				id.Name, pair.callName)
		case !state.checked:
			report(id.Pos(), "%s is used before the error from %s is checked; on failure this dereferences a zero value",
				id.Name, pair.callName)
		}
		return true
	})
}

// derefBase returns the identifier being dereferenced when n is a
// dereference-shaped expression (sel, index, star, call-of-value).
func derefBase(n ast.Node) *ast.Ident {
	switch x := n.(type) {
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id
		}
	case *ast.IndexExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id
		}
	case *ast.StarExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

// reportNilReturn flags `return ..., nil` while some tracked error is
// known non-nil: the failure is swallowed.
func reportNilReturn(pass *analysis.Pass, s ast.Stmt, st errState, report func(token.Pos, string, ...interface{})) {
	ret, ok := s.(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return
	}
	last := ret.Results[len(ret.Results)-1]
	id, ok := last.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return
	}
	for obj, state := range st {
		if state.nonnil {
			report(ret.Pos(), "returns a nil error while %s is known non-nil; the failure is swallowed — return %s or wrap it",
				obj.Name(), obj.Name())
			return
		}
	}
}

// applyEdgeFact refines the out-state along one CFG edge using the
// block's condition: `err != nil` / `err == nil` set checked on both
// edges and known-non-nil on the matching one.
func applyEdgeFact(pass *analysis.Pass, b *cfg.Block, succIdx int, out errState) errState {
	if b.Cond == nil {
		return out
	}
	obj, eq := nilComparison(pass, b.Cond)
	if obj == nil {
		return out
	}
	st := out.clone()
	// Succs[0] is the true edge. err != nil true → non-nil;
	// err == nil true → nil.
	nonnilEdge := (succIdx == 0) != eq
	st[obj] = errVarState{checked: true, nonnil: nonnilEdge}
	return st
}

// nilComparison matches `x != nil` / `x == nil` over an error-typed
// identifier, returning the object and whether the operator is ==.
func nilComparison(pass *analysis.Pass, cond ast.Expr) (types.Object, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false
	}
	x, y := bin.X, bin.Y
	if isNilIdent(y) {
		// x op nil
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil || !isErrorType(obj.Type()) {
		return nil, false
	}
	return obj, bin.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// funcReturnsError reports whether decl's last result is an error.
func funcReturnsError(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return isErrorType(sig.Results().At(sig.Results().Len() - 1).Type())
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNilable reports whether t's zero value is nil.
func isNilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature, *types.Chan:
		return true
	}
	return false
}
