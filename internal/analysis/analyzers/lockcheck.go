package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/cfg"
)

// LockCheck enforces mutex discipline on the shared state the training
// pipeline mutates from worker goroutines (telemetry registries, the
// shared word-vector cache, evaluation scratch pools). It runs a
// may-held dataflow over each function's control-flow graph:
//
//   - a mutex acquired on some path but not released on every path to
//     return is reported at the function (the classic early-return leak);
//     a deferred Unlock credits every exit path,
//   - Lock while the same mutex may already be held is a self-deadlock,
//   - Unlock without a matching Lock on the path panics at runtime,
//   - spawning a goroutine or sending on a channel while a lock is held
//     couples the lock's hold time to scheduler behaviour: a slow or
//     absent receiver extends the critical section indefinitely,
//   - passing a sync.Mutex (or a struct containing one) by value splits
//     the lock state between the copies.
//
// The analysis is per-path, not per-goroutine: it cannot see a lock
// released by a different goroutine, so hand-off patterns need a
// //lint:ignore with the protocol spelled out.
func LockCheck() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "lockcheck",
		Version: "1",
		Doc: "CFG-based mutex discipline: unlock on every path, no double-lock, no unlock " +
			"without lock, no goroutine spawn or channel send under a held lock, no mutex copies",
		Run: runLockCheck,
	}
}

func runLockCheck(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkMutexCopies(pass, decl)
			if decl.Body != nil {
				lockFlow(pass, decl)
			}
		}
	}
	return nil
}

// checkMutexCopies flags receivers and parameters that carry a mutex by
// value: the callee locks its private copy while callers race on the
// original.
func checkMutexCopies(pass *analysis.Pass, decl *ast.FuncDecl) {
	check := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsMutex(t, 0) {
				pass.Reportf(field.Pos(),
					"%s carries a sync mutex by value; the copy's lock state diverges from the original — take a pointer", cfg.FuncName(decl))
			}
		}
	}
	check(decl.Recv)
	check(decl.Type.Params)
}

// containsMutex reports whether t is, or (transitively, by value)
// contains, a sync.Mutex or sync.RWMutex.
func containsMutex(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if namedIs(named, "sync", "Mutex") || namedIs(named, "sync", "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), depth+1)
	}
	return false
}

// mutexOp is one Lock/Unlock-family call on a trackable mutex
// expression. Read locks get their own key ("mu/R") so RLock pairs with
// RUnlock, not Unlock.
type mutexOp struct {
	key     string
	acquire bool
}

// asMutexOp matches calls to the sync package's Lock/Unlock/RLock/
// RUnlock methods — directly (s.mu.Lock()) or through embedding
// (s.Lock()) — on a receiver expression stable enough to name.
func asMutexOp(pass *analysis.Pass, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return mutexOp{}, false
	}
	base := lockExprString(sel.X)
	if base == "" {
		return mutexOp{}, false
	}
	switch fn.Name() {
	case "Lock":
		return mutexOp{key: base, acquire: true}, true
	case "Unlock":
		return mutexOp{key: base, acquire: false}, true
	case "RLock":
		return mutexOp{key: base + "/R", acquire: true}, true
	case "RUnlock":
		return mutexOp{key: base + "/R", acquire: false}, true
	}
	return mutexOp{}, false
}

// lockExprString renders a mutex receiver as a stable path ("mu",
// "s.mu", "reg.counters"); expressions with computed parts (index,
// calls) are not trackable and return "".
func lockExprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := lockExprString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return lockExprString(x.X)
	case *ast.StarExpr:
		return lockExprString(x.X)
	}
	return ""
}

// displayKey turns a held-set key back into the user-facing name.
func displayKey(key string) string {
	if s, ok := strings.CutSuffix(key, "/R"); ok {
		return s + " (read lock)"
	}
	return key
}

type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func (h heldSet) equal(o heldSet) bool {
	if len(h) != len(o) {
		return false
	}
	for k := range h {
		if !o[k] {
			return false
		}
	}
	return true
}

func (h heldSet) names() string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, displayKey(k))
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// lockFlow runs the may-held analysis over decl's CFG and reports
// violations in a final, deterministic sweep.
func lockFlow(pass *analysis.Pass, decl *ast.FuncDecl) {
	g := cfg.New(cfg.FuncName(decl), decl.Body)

	// Deferred unlocks credit every path into Exit (including through a
	// deferred closure).
	deferred := heldSet{}
	for _, d := range g.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := asMutexOp(pass, call); ok && !op.acquire {
					deferred[op.key] = true
				}
			}
			return true
		})
	}

	// Fixpoint: in[b] = union of predecessors' outs; transfer applies
	// the block's lock operations in source order.
	ins := make([]heldSet, len(g.Blocks))
	for i := range ins {
		ins[i] = heldSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			out := lockTransfer(pass, b, ins[b.Index], nil)
			for _, succ := range b.Succs {
				union := ins[succ.Index].clone()
				for k := range out {
					union[k] = true
				}
				if !union.equal(ins[succ.Index]) {
					ins[succ.Index] = union
					changed = true
				}
			}
		}
	}

	// Reporting sweep with the converged in-states.
	for _, b := range g.Blocks {
		lockTransfer(pass, b, ins[b.Index], func(pos ast.Node, format string, args ...interface{}) {
			pass.Reportf(pos.Pos(), format, args...)
		})
	}

	// Exit imbalance: whatever may still be held at Exit and is not
	// released by a defer leaked past a return.
	leaked := []string{}
	for k := range ins[g.Exit.Index] {
		if !deferred[k] {
			leaked = append(leaked, k)
		}
	}
	sort.Strings(leaked)
	for _, k := range leaked {
		pass.Reportf(decl.Name.Pos(),
			"%s may still be held when %s returns; unlock on every path or defer the unlock",
			displayKey(k), cfg.FuncName(decl))
	}
}

// lockTransfer applies one block's operations to held (mutating a
// clone) and returns the out-state. With report non-nil it also emits
// diagnostics; the fixpoint passes nil.
func lockTransfer(pass *analysis.Pass, b *cfg.Block, in heldSet, report func(ast.Node, string, ...interface{})) heldSet {
	held := in.clone()
	apply := func(n ast.Node) {
		lockWalk(n, func(sub ast.Node) {
			switch x := sub.(type) {
			case *ast.GoStmt:
				if report != nil && len(held) > 0 {
					report(x, "goroutine started while %s is held; the critical section now outlives this frame", held.names())
				}
			case *ast.SendStmt:
				if report != nil && len(held) > 0 {
					report(x, "channel send while %s is held; a slow receiver stretches the critical section", held.names())
				}
			case *ast.CallExpr:
				op, ok := asMutexOp(pass, x)
				if !ok {
					return
				}
				if op.acquire {
					if report != nil && held[op.key] {
						report(x, "%s locked while it may already be held on this path (self-deadlock)", displayKey(op.key))
					}
					held[op.key] = true
				} else {
					if report != nil && !held[op.key] {
						report(x, "%s unlocked without a matching lock on this path", displayKey(op.key))
					}
					delete(held, op.key)
				}
			}
		})
	}
	for _, s := range b.Stmts {
		// A range statement in a head block carries its whole body, but
		// only the range expression is evaluated here; the body's
		// statements live in their own blocks.
		if rs, ok := s.(*ast.RangeStmt); ok {
			apply(rs.X)
			continue
		}
		apply(s)
	}
	if b.Cond != nil {
		apply(b.Cond)
	}
	return held
}

// lockWalk visits n's relevant nodes in source order, without
// descending into deferred calls (they run at exit, credited
// separately) or function literals (a different frame's path).
func lockWalk(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.GoStmt:
			visit(n)
			return false // the spawned body runs elsewhere
		case *ast.SendStmt, *ast.CallExpr:
			visit(n)
		}
		return true
	})
}
