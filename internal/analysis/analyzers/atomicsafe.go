package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"temporaldoc/internal/analysis"
)

// AtomicSafe guards the serving layer's snapshot discipline at the
// memory-model level. It enforces two contracts:
//
//  1. No mixed access models. A struct field that is managed by
//     sync/atomic — either declared as an atomic.* type or passed by
//     address to a sync/atomic function anywhere in its declaring
//     package — must never be read or written plainly. A plain access
//     next to atomic ones is a data race the race detector only
//     catches when the schedule cooperates; this check catches it at
//     lint time.
//
//  2. Pin the snapshot once. An atomic.Pointer/atomic.Value field is a
//     hot-swappable handle (serve's model snapshot is the archetype).
//     Loading it twice in one request/job flow — directly or through
//     any chain of calls — means a concurrent Store between the loads
//     hands the two halves of the flow different generations: the
//     mixed-model-response bug class. The facts phase counts load
//     sites per function, propagating through the call graph with
//     provenance chains like purity's, and the run phase reports any
//     function whose own flow pins the same field more than once.
//
// A call site into a callee that itself loads is charged as a single
// pin no matter how many loads the callee performs — the callee is
// reported separately, and double-charging every caller above it would
// bury the root cause in cascade noise.
func AtomicSafe() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "atomicsafe",
		Version: "1",
		Doc: "fields managed by sync/atomic must never be accessed plainly, and an atomic.Pointer/" +
			"atomic.Value snapshot must be loaded at most once per request/job flow",
		Facts: atomicFacts,
		Run:   runAtomicSafe,
	}
}

const (
	// atomicFieldFact registers one atomic field, keyed by
	// "pkgpath.Type.field"; the detail is the atomic kind ("Int64",
	// "Pointer", ...) or "plain" for an ordinary field accessed through
	// sync/atomic package functions.
	atomicFieldFact = "atomicfield"
	// ptrLoadsFact carries a function's pointer-pin summary: one line
	// per loaded field with the site count and up to two provenance
	// chains.
	ptrLoadsFact = "ptrloads"
)

// pinInfo accumulates one function's load sites for one field.
type pinInfo struct {
	count  int
	chains []string
}

// atomicFacts registers the package's atomic fields and computes
// per-function pointer-pin summaries.
func atomicFacts(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("atomicsafe needs interprocedural context (call graph + facts)")
	}

	// Field registry: declared atomic.* fields of this package's named
	// structs, plus plain fields whose address feeds a sync/atomic call
	// (registration stays in the declaring package so results cannot
	// depend on which importers happen to be analyzed).
	kinds := map[string]string{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					kind := atomicKind(pass.TypeOf(field.Type))
					if kind == "" {
						continue
					}
					for _, name := range field.Names {
						kinds[pass.Pkg.Path()+"."+ts.Name.Name+"."+name.Name] = kind
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, _ := calleePkgFunc(pass, call); pkg != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fid, fld, ok := atomicFieldID(pass, sel)
			if !ok || fld.Pkg() != pass.Pkg {
				return true
			}
			if _, exists := kinds[fid]; !exists {
				kinds[fid] = "plain"
			}
			return true
		})
	}
	for fid, kind := range kinds {
		pass.Facts.PutID(fid, atomicFieldFact, kind)
	}

	// isPinnedField: is sel a pointer-style atomic field (local registry
	// first, imported packages' sealed registries second)?
	isPinnedField := func(sel *ast.SelectorExpr) (string, bool) {
		fid, _, ok := atomicFieldID(pass, sel)
		if !ok {
			return "", false
		}
		k := kinds[fid]
		if k == "" {
			k, _ = pass.Facts.Get(fid, atomicFieldFact)
		}
		if k == "Pointer" || k == "Value" {
			return fid, true
		}
		return "", false
	}

	// Pin counting: distinct syntactic sites per function that reach a
	// Load of each pinned field — direct x.f.Load() calls plus call
	// sites into callees that load (charged once per site). Function
	// literals, go statements and defers are separate flows/scopes and
	// do not charge the encloser.
	var fns []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, fn := range pass.Graph.Funcs() {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		if decl := pass.Graph.Decl(fn); decl != nil && decl.Body != nil {
			fns = append(fns, fn)
			decls[fn] = decl
		}
	}
	summaries := map[*types.Func]string{}
	compute := func(fn *types.Func) string {
		out := map[string]*pinInfo{}
		add := func(fid, chain string) {
			p := out[fid]
			if p == nil {
				p = &pinInfo{}
				out[fid] = p
			}
			p.count++
			if len(p.chains) < 2 {
				p.chains = append(p.chains, chain)
			}
		}
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
					if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
						if fid, ok := isPinnedField(inner); ok {
							pos := pass.Fset.Position(x.Pos())
							add(fid, fmt.Sprintf("%s.Load at %s:%d",
								shortFieldID(fid), filepath.Base(pos.Filename), pos.Line))
							return true
						}
					}
				}
				callee := staticCallee(pass.Info, x)
				if callee == nil {
					return true
				}
				var detail string
				if local, ok := summaries[callee]; ok {
					detail = local
				} else if d, ok := pass.Facts.GetFunc(callee, ptrLoadsFact); ok {
					detail = d
				} else {
					return true
				}
				for _, e := range parsePtrLoads(detail) {
					chain := chainName(pass.Pkg, callee)
					if len(e.chains) > 0 {
						chain += " → " + e.chains[0]
					}
					add(e.fid, chain)
				}
			}
			return true
		})
		return encodePtrLoads(out)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			next := compute(fn)
			if summaries[fn] != next {
				summaries[fn] = next
				changed = true
			}
		}
	}
	for _, fn := range fns {
		if s := summaries[fn]; s != "" {
			pass.Facts.Put(fn, ptrLoadsFact, s)
		}
	}
	return nil
}

// runAtomicSafe reports plain accesses of registered atomic fields and
// multi-pin flows of pointer-style atomics.
func runAtomicSafe(pass *analysis.Pass) error {
	if pass.Facts == nil {
		return fmt.Errorf("atomicsafe needs interprocedural context (call graph + facts)")
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			detail, ok := pass.Facts.GetFunc(fn, ptrLoadsFact)
			if !ok {
				continue
			}
			for _, e := range parsePtrLoads(detail) {
				if e.count < 2 {
					continue
				}
				pass.Reportf(decl.Name.Pos(),
					"%s loads atomic snapshot %s %d times in one flow (%s); a concurrent Store between the loads mixes generations — pin one load per request/job and pass it down",
					decl.Name.Name, shortFieldID(e.fid), e.count, strings.Join(e.chains, "; "))
			}
		}
		inspectStack(f, func(stack []ast.Node) bool {
			sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fid, fld, ok := atomicFieldID(pass, sel)
			if !ok {
				return true
			}
			kind := atomicKind(fld.Type())
			if kind == "" {
				k, ok := pass.Facts.Get(fid, atomicFieldFact)
				if !ok || k != "plain" {
					return true
				}
				kind = "plain"
			}
			if atomicAccessAllowed(pass, stack, kind) {
				return true
			}
			verb := "read"
			if isWriteContext(stack) {
				verb = "write"
			}
			if kind == "plain" {
				pass.Reportf(sel.Pos(),
					"plain %s of %s, which is accessed via sync/atomic elsewhere; mixing the two models is a data race — use the atomic API here too",
					verb, shortFieldID(fid))
			} else {
				pass.Reportf(sel.Pos(),
					"plain %s of atomic field %s (atomic.%s) bypasses the memory model; use its Load/Store/Add methods",
					verb, shortFieldID(fid), kind)
			}
			return true
		})
	}
	return nil
}

// atomicAccessAllowed decides whether the field selector at the top of
// stack is used through the atomic API: a method call on the atomic
// value (x.f.Load()), taking its address to alias it (&x.f — only
// meaningful for atomic-typed fields), or, for plain registered fields,
// an &x.f argument fed directly to a sync/atomic function.
func atomicAccessAllowed(pass *analysis.Pass, stack []ast.Node, kind string) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		// x.f.Method — the selector is the receiver of an atomic-type
		// method (plain fields have no such methods, so kind != "plain"
		// is implied by the type checker).
		return kind != "plain"
	case *ast.UnaryExpr:
		if p.Op != token.AND {
			return false
		}
		if kind != "plain" {
			return true
		}
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok {
				if pkg, _ := calleePkgFunc(pass, call); pkg == "sync/atomic" {
					return true
				}
			}
		}
	}
	return false
}

// isWriteContext reports whether the node at the top of stack is (part
// of) an assignment target or inc/dec operand.
func isWriteContext(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		switch p := stack[i-1].(type) {
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == stack[i] {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == stack[i]
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.StarExpr, *ast.IndexExpr:
			// keep climbing lvalue chains
		default:
			return false
		}
	}
	return false
}

// atomicKind returns the sync/atomic type name of t ("Int64",
// "Pointer", ...) or "" when t is not a sync/atomic named type.
func atomicKind(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() != "sync/atomic" {
		return ""
	}
	return named.Obj().Name()
}

// atomicFieldID resolves a selector to a struct field and renders its
// stable identity "pkgpath.Type.field" (keyed on the receiver's named
// type, so embedded promotion keeps one identity per access path).
func atomicFieldID(pass *analysis.Pass, sel *ast.SelectorExpr) (string, *types.Var, bool) {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", nil, false
	}
	fld, ok := selection.Obj().(*types.Var)
	if !ok {
		return "", nil, false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", nil, false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name(), fld, true
}

// shortFieldID drops the module-path noise from a field ID:
// "temporaldoc/internal/serve.Handle.cur" → "serve.Handle.cur".
func shortFieldID(fid string) string {
	if i := strings.LastIndex(fid, "/"); i >= 0 {
		return fid[i+1:]
	}
	return fid
}

// staticCallee resolves a call's static callee (plain function, method,
// or qualified package function), or nil for dynamic/builtin calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ptrLoadEntry is one parsed line of a ptrloads summary.
type ptrLoadEntry struct {
	fid    string
	count  int
	chains []string
}

// encodePtrLoads renders pin summaries into the fact detail: one
// tab-separated line per field, sorted by field ID for determinism.
func encodePtrLoads(m map[string]*pinInfo) string {
	fids := make([]string, 0, len(m))
	for fid := range m {
		fids = append(fids, fid)
	}
	sort.Strings(fids)
	var lines []string
	for _, fid := range fids {
		p := m[fid]
		parts := append([]string{fid, strconv.Itoa(p.count)}, p.chains...)
		lines = append(lines, strings.Join(parts, "\t"))
	}
	return strings.Join(lines, "\n")
}

// parsePtrLoads inverts encodePtrLoads.
func parsePtrLoads(s string) []ptrLoadEntry {
	if s == "" {
		return nil
	}
	var out []ptrLoadEntry
	for _, line := range strings.Split(s, "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) < 2 {
			continue
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		out = append(out, ptrLoadEntry{fid: parts[0], count: n, chains: parts[2:]})
	}
	return out
}
