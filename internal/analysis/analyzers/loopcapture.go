package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis"
)

// LoopCapture polices the two goroutine-spawn patterns that have bitten
// parallel evaluation engines like ours:
//
//  1. `go func() { ... i ... }()` inside a loop, capturing the loop
//     variable instead of passing it. Per-iteration loop variables
//     (Go 1.22) make this safe in-process, but the engine's worker
//     spawns pass their shard bounds explicitly — captures hide the
//     data flow, break the moment the code is restructured into a
//     pre-1.22-style shared variable, and resist review.
//  2. `go func() { wg.Add(1); ... }()` — WaitGroup.Add inside the
//     spawned goroutine races with the matching Wait: Wait can observe
//     a zero counter and return before the goroutine starts. Add must
//     happen on the spawning side, before `go`.
func LoopCapture() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "loopcapture",
		Version: "1",
		Doc:     "flags goroutines capturing loop variables instead of taking parameters, and WaitGroup.Add inside the spawned goroutine",
		Run:     runLoopCapture,
	}
}

func runLoopCapture(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(stack []ast.Node) bool {
			g, ok := stack[len(stack)-1].(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkWaitGroupAdd(pass, lit)
			if loop := enclosingLoop(stack); loop != nil {
				checkLoopVarCapture(pass, lit, loop)
			}
			return true
		})
	}
	return nil
}

// checkWaitGroupAdd reports wg.Add on an outside WaitGroup from inside
// the spawned goroutine's body (calls nested in further function
// literals belong to those literals, not this spawn).
func checkWaitGroupAdd(pass *analysis.Pass, lit *ast.FuncLit) {
	inspectStack(lit.Body, func(stack []ast.Node) bool {
		if _, nested := stack[len(stack)-1].(*ast.FuncLit); nested {
			return false
		}
		call, ok := stack[len(stack)-1].(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := calleeMethod(pass, call)
		if method != "Add" || !namedIs(recv, "sync", "WaitGroup") {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		id := rootIdent(sel.X)
		if id == nil {
			return true
		}
		if obj := pass.Info.ObjectOf(id); obj != nil && !declaredWithin(obj, lit) {
			pass.Reportf(call.Pos(),
				"WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
		}
		return true
	})
}

// loopVars collects the variables a for/range statement declares per
// iteration.
func loopVars(pass *analysis.Pass, loop ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		if l.Tok == token.DEFINE {
			add(l.Key)
			if l.Value != nil {
				add(l.Value)
			}
		}
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				add(lhs)
			}
		}
	}
	return vars
}

func checkLoopVarCapture(pass *analysis.Pass, lit *ast.FuncLit, loop ast.Node) {
	vars := loopVars(pass, loop)
	if len(vars) == 0 {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !vars[obj] || reported[obj] {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"goroutine captures loop variable %s; pass it as an argument to make the per-iteration data flow explicit", id.Name)
		return true
	})
}
