package analyzers

import (
	"go/ast"
	"go/types"

	"temporaldoc/internal/analysis"
)

// TelemetrySafe guards the telemetry layer's two contracts: the
// nil-safe no-op default (disabled telemetry costs nothing and cannot
// perturb training) and the hot-path discipline (metric handles are
// pre-resolved, never looked up per call). It rejects:
//
//  1. Composite literals of telemetry types outside the telemetry
//     package. `&telemetry.Registry{}` carries nil metric maps and
//     panics on first use; only NewRegistry and the registry's own
//     lookup methods hand out working values. (The zero Timer{} and
//     Span{} literals are documented no-ops and stay allowed.)
//  2. Registry lookups (Counter/Gauge/Histogram/Timer) inside loop
//     bodies: each lookup takes the registry lock and a map probe, so
//     hot paths must hoist handles out of the loop — the pre-resolved
//     handle pattern of core's modelMetrics.
//  3. Registry lookups with non-constant metric names: dynamic names
//     allocate on every call and explode metric cardinality.
//  4. Function literals that capture variables, passed to telemetry
//     APIs: the closure allocates at the call site, breaking the
//     zero-alloc disabled path.
//
// The analyzer is parameterised by the telemetry package's import path
// so fixtures can exercise it against a stand-in package.
func TelemetrySafe(telemetryPath string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "telemetrysafe",
		Version: "1",
		Config:  telemetryPath,
		Doc: "flags telemetry-type literals bypassing the nil-safe registry, registry lookups " +
			"in loops or with dynamic names, and capturing closures passed to telemetry APIs",
		Run: func(pass *analysis.Pass) error {
			return runTelemetrySafe(pass, telemetryPath)
		},
	}
}

// zeroLiteralOK lists telemetry types whose *empty* composite literal
// is a documented no-op value.
var zeroLiteralOK = map[string]bool{"Timer": true, "Span": true}

// registryLookups are the methods that lock the registry and probe a
// metric map.
var registryLookups = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Timer": true,
}

func runTelemetrySafe(pass *analysis.Pass, telemetryPath string) error {
	if pass.Pkg.Path() == telemetryPath {
		return nil // the implementation package builds its own types
	}
	for _, f := range pass.Files {
		inspectStack(f, func(stack []ast.Node) bool {
			switch n := stack[len(stack)-1].(type) {
			case *ast.CompositeLit:
				checkTelemetryLiteral(pass, n, telemetryPath)
			case *ast.CallExpr:
				checkRegistryLookup(pass, n, stack, telemetryPath)
				checkTelemetryClosureArg(pass, n, telemetryPath)
			}
			return true
		})
	}
	return nil
}

func checkTelemetryLiteral(pass *analysis.Pass, lit *ast.CompositeLit, telemetryPath string) {
	t := pass.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != telemetryPath {
		return
	}
	if len(lit.Elts) == 0 && zeroLiteralOK[named.Obj().Name()] {
		return
	}
	pass.Reportf(lit.Pos(),
		"composite literal of telemetry.%s bypasses the nil-safe registry; construct via NewRegistry and registry lookups", named.Obj().Name())
}

func checkRegistryLookup(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, telemetryPath string) {
	recv, method := calleeMethod(pass, call)
	if !namedIs(recv, telemetryPath, "Registry") || !registryLookups[method] {
		return
	}
	if enclosingLoop(stack) != nil {
		pass.Reportf(call.Pos(),
			"registry lookup %s(...) inside a loop locks the registry per iteration; hoist the metric handle out of the hot path", method)
	}
	if len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value == nil {
			pass.Reportf(call.Args[0].Pos(),
				"metric name passed to %s must be a compile-time constant; dynamic names allocate and explode cardinality", method)
		}
	}
}

// checkTelemetryClosureArg flags func literals with captures handed to
// telemetry functions or methods.
func checkTelemetryClosureArg(pass *analysis.Pass, call *ast.CallExpr, telemetryPath string) {
	inTelemetry := false
	if pkg, _ := calleePkgFunc(pass, call); pkg == telemetryPath {
		inTelemetry = true
	}
	if recv, _ := calleeMethod(pass, call); recv != nil && recv.Obj().Pkg() != nil &&
		recv.Obj().Pkg().Path() == telemetryPath {
		inTelemetry = true
	}
	if !inTelemetry {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		if capturesVariables(pass, lit) {
			pass.Reportf(lit.Pos(),
				"closure capturing local state passed to a telemetry API allocates per call; pass values instead")
		}
	}
}

// capturesVariables reports whether lit references a local variable
// declared outside itself (package-level vars do not force a heap
// allocation for the closure).
func capturesVariables(pass *analysis.Pass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		if !declaredWithin(v, lit) {
			captured = true
			return false
		}
		return true
	})
	return captured
}
