package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis"
)

// hotDirective marks a function as per-example hot: it runs once per
// word vector, per SOM node, or per LGP instruction, millions of times
// per training epoch.
const hotDirective = "tdlint:hotpath"

// HotAlloc keeps the training inner loops allocation-free. Functions
// annotated `//tdlint:hotpath` in their doc comment run once per
// example or per instruction — any per-call heap allocation there
// multiplies into GC pressure that dwarfs the arithmetic (the PR-1
// engine work exists precisely to keep these paths flat). Four
// allocation shapes are banned inside annotated functions:
//
//   - heap-escaping composite literals (&T{...}) and slice/map
//     literals, which allocate on every call,
//   - closures capturing outer variables — each capture materialises a
//     heap cell plus the closure object,
//   - append inside a loop to a slice that was not preallocated with a
//     capacity, which reallocates O(log n) times per call,
//   - interface boxing: passing or assigning a concrete value where an
//     interface is expected copies it to the heap.
//
// The annotation is the contract: cold functions allocate freely, and
// adding //tdlint:hotpath to a function is a reviewable claim that it
// must not.
func HotAlloc() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "hotalloc",
		Version: "1",
		Doc: "//tdlint:hotpath functions must not allocate per call: no escaping composite " +
			"literals, no capturing closures, no unpreallocated append growth, no interface boxing",
		Run: runHotAlloc,
	}
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if ok, _ := funcDirective(decl, hotDirective); !ok {
				continue
			}
			checkHotFunc(pass, decl)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, decl *ast.FuncDecl) {
	inspectStack(decl.Body, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.CompositeLit:
			checkCompositeLit(pass, n, stack)
		case *ast.FuncLit:
			checkClosureCapture(pass, n)
			return false // the literal's own body is a different frame
		case *ast.CallExpr:
			checkAppendGrowth(pass, decl, n, stack)
			checkCallBoxing(pass, n)
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n)
		}
		return true
	})
}

// checkCompositeLit flags literals that allocate per call: slice and
// map literals always do; a struct literal only when its address is
// taken (it escapes to the heap).
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, stack []ast.Node) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates on every call of a hot-path function; hoist it to a package variable or reuse a buffer")
		return
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates on every call of a hot-path function; hoist it to a package variable")
		return
	}
	if len(stack) >= 2 {
		if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
			pass.Reportf(u.Pos(), "&%s escapes to the heap on every call of a hot-path function; reuse a caller-provided value", render(lit.Type))
		}
	}
}

// checkClosureCapture flags function literals that close over outer
// variables: each captured variable becomes a heap cell.
func checkClosureCapture(pass *analysis.Pass, lit *ast.FuncLit) {
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || declaredWithin(obj, lit) {
			return true
		}
		// Package-level variables are not captures.
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		captured = id
		return false
	})
	if captured != nil {
		pass.Reportf(lit.Pos(), "closure captures %s and allocates on every call of a hot-path function; pass it as a parameter or hoist the closure", captured.Name)
	}
}

// checkAppendGrowth flags `x = append(x, ...)` inside a loop when x was
// declared in this function without a capacity: each growth step
// reallocates and copies.
func checkAppendGrowth(pass *analysis.Pass, decl *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return
	}
	if enclosingLoop(stack) == nil {
		return
	}
	id := rootIdent(call.Args[0])
	if id == nil {
		return
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if !declaredWithin(obj, decl.Body) {
		return // parameters and fields: the caller owns the capacity
	}
	if preallocated(pass, decl, obj) {
		return
	}
	pass.Reportf(call.Pos(), "append grows %s inside a loop without preallocation; size it up front with make(%s, 0, n)",
		id.Name, render(call.Args[0]))
}

// preallocated reports whether obj's declaration inside decl
// initialises it with make and an explicit length or capacity.
func preallocated(pass *analysis.Pass, decl *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(decl, func(n ast.Node) bool {
		if found {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.Defs[id] != obj || i >= len(assign.Rhs) {
				continue
			}
			if mk, ok := assign.Rhs[i].(*ast.CallExpr); ok {
				if fn, ok := mk.Fun.(*ast.Ident); ok && fn.Name == "make" && len(mk.Args) >= 2 {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// checkCallBoxing flags concrete values passed where the callee takes
// an interface: the value is copied to the heap to fit.
func checkCallBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	if _, isMutex := asMutexOp(pass, call); isMutex {
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversions, builtins
	}
	if call.Ellipsis.IsValid() {
		return // xs... forwards an existing slice, no per-element boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if boxes(pass.TypeOf(arg), pt) {
			pass.Reportf(arg.Pos(), "passing %s boxes a concrete %s into %s on a hot path; use a concrete-typed helper",
				render(arg), pass.TypeOf(arg), pt)
		}
	}
}

// checkAssignBoxing flags assignments of concrete values to
// interface-typed variables.
func checkAssignBoxing(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		if boxes(pass.TypeOf(assign.Rhs[i]), pass.TypeOf(lhs)) {
			pass.Reportf(assign.Rhs[i].Pos(), "assigning %s boxes a concrete %s into %s on a hot path",
				render(assign.Rhs[i]), pass.TypeOf(assign.Rhs[i]), pass.TypeOf(lhs))
		}
	}
}

// boxes reports whether storing a value of type from into type to
// requires an interface conversion of a concrete value.
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return false
	}
	if _, isIface := from.Underlying().(*types.Interface); isIface {
		return false // interface-to-interface is a pointer copy
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
