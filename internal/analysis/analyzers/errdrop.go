package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis"
)

// ErrDrop flags discarded errors from the flush-shaped methods — Close,
// Flush, Sync, Write, WriteString — called as bare statements or defers.
// On a buffered or OS-level writer these are the calls that actually
// commit bytes; dropping their error turns a full disk or failed flush
// into a silently truncated model file (internal/core's persist path
// shipped exactly this bug once). Deliberate discards remain available
// as `_ = f.Close()` or a //lint:ignore with a reason.
//
// Two shapes are recognised as safe and allowed:
//
//   - receivers whose error is documented always-nil (strings.Builder,
//     bytes.Buffer);
//   - `defer f.Close()` on a file obtained from os.Open — a read-only
//     descriptor has nothing left to commit.
func ErrDrop() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "errdrop",
		Version: "1",
		Doc:     "flags discarded errors from Close/Flush/Sync/Write on writers in statement or defer position",
		Run:     runErrDrop,
	}
}

// flushMethods commit buffered state; their errors carry data loss.
var flushMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true,
	"Write": true, "WriteString": true,
}

func runErrDrop(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		origins := callOrigins(pass, f)
		inspectStack(f, func(stack []ast.Node) bool {
			var call *ast.CallExpr
			switch n := stack[len(stack)-1].(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call != nil {
				checkDiscardedFlush(pass, call, origins)
			}
			return true
		})
	}
	return nil
}

func checkDiscardedFlush(pass *analysis.Pass, call *ast.CallExpr, origins map[types.Object]string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !flushMethods[sel.Sel.Name] {
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	recvType := pass.TypeOf(sel.X)
	if alwaysNilError(recvType) {
		return
	}
	if sel.Sel.Name == "Close" {
		if id := rootIdent(sel.X); id != nil {
			if origins[pass.Info.ObjectOf(id)] == "os.Open" {
				return // read-only descriptor: nothing left to commit
			}
		}
	}
	pass.Reportf(call.Pos(),
		"error from %s discarded; on write paths this loses data — check it, or discard explicitly with `_ =`", sel.Sel.Name)
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// alwaysNilError lists receiver types whose writer methods document a
// nil error.
func alwaysNilError(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return namedIs(named, "strings", "Builder") || namedIs(named, "bytes", "Buffer")
}

// callOrigins maps each variable defined by `v, ... := pkg.Fn(...)` to
// "pkg.Fn", so the Close rule can tell os.Open files from os.Create
// ones.
func callOrigins(pass *analysis.Pass, f *ast.File) map[types.Object]string {
	origins := map[types.Object]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := calleePkgFunc(pass, call)
		if pkg == "" {
			return true
		}
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.Info.Defs[id]; obj != nil {
					origins[obj] = pkg + "." + name
				}
			}
		}
		return true
	})
	return origins
}
