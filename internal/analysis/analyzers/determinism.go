package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis"
)

// Determinism guards the pipeline's bit-reproducibility contract:
// identical seeds must give byte-identical trained models, regardless
// of worker count, GOMAXPROCS or telemetry. Three code patterns break
// it silently and are rejected:
//
//  1. math/rand package-level functions (rand.Intn, rand.Float64, ...)
//     draw from the shared, process-global Source. Model code must
//     thread a rand.New(rand.NewSource(cfg.Seed)) explicitly.
//  2. time.Now outside the "stopwatch" pattern. Wall-clock time leaking
//     into anything but duration telemetry (a variable whose only uses
//     are time.Since arguments) makes runs unrepeatable — the classic
//     offender is rand.NewSource(time.Now().UnixNano()).
//  3. Floating-point accumulation in map iteration order. Go randomises
//     map order per run, and float addition is not associative, so
//     `sum += m[k]` or `vals = append(vals, m[k])` inside `range m`
//     changes result bits run to run. Iterate sorted keys instead.
func Determinism() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "determinism",
		Version: "1",
		Doc: "flags shared-global RNG use, wall-clock reads outside duration telemetry, " +
			"and order-dependent floating-point work inside map iteration",
		Run: runDeterminism,
	}
}

// randConstructors are the math/rand functions that take an explicit
// Source or seed and therefore stay reproducible.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(stack []ast.Node) bool {
			switch n := stack[len(stack)-1].(type) {
			case *ast.CallExpr:
				checkRandCall(pass, n)
				checkTimeNow(pass, n, stack)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkRandCall(pass *analysis.Pass, call *ast.CallExpr) {
	if name, ok := randGlobalCall(pass, call); ok {
		pass.Reportf(call.Pos(),
			"rand.%s draws from the process-global Source; thread a rand.New(rand.NewSource(seed)) from config for reproducible training", name)
	}
}

// randGlobalCall matches calls to math/rand package-level functions
// that draw from the shared global Source; shared with the purity
// analyzer.
func randGlobalCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	pkg, name := calleePkgFunc(pass, call)
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return "", false
	}
	if randConstructors[name] {
		return "", false
	}
	return name, true
}

// checkTimeNow allows time.Now only in the stopwatch pattern: the
// result is assigned to a variable whose every other use is a
// time.Since argument (or a re-arming `v = time.Now()`), so wall-clock
// time can feed duration telemetry but nothing else.
func checkTimeNow(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	if timeNowViolation(pass, call, stack) {
		pass.Reportf(call.Pos(),
			"time.Now outside the stopwatch pattern (a variable used only by time.Since); wall-clock values must not reach model state")
	}
}

// timeNowViolation reports whether call is a time.Now read outside the
// stopwatch pattern; shared with the purity analyzer.
func timeNowViolation(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if pkg, name := calleePkgFunc(pass, call); pkg != "time" || name != "Now" {
		return false
	}
	obj := stopwatchTarget(pass, call, stack)
	body := enclosingFuncBody(stack)
	return obj == nil || body == nil || !stopwatchOnly(pass, obj, body)
}

// stopwatchTarget returns the variable a `v := time.Now()`-shaped
// statement assigns to, or nil when the call is used any other way.
func stopwatchTarget(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) types.Object {
	if len(stack) < 2 {
		return nil
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		if len(parent.Rhs) == 1 && parent.Rhs[0] == call && len(parent.Lhs) == 1 {
			if id, ok := parent.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				return pass.Info.ObjectOf(id)
			}
		}
	case *ast.ValueSpec:
		if len(parent.Values) == 1 && parent.Values[0] == call && len(parent.Names) == 1 {
			return pass.Info.Defs[parent.Names[0]]
		}
	}
	return nil
}

// stopwatchOnly reports whether every use of obj inside body is either
// a time.Since argument or a re-arming assignment from time.Now.
func stopwatchOnly(pass *analysis.Pass, obj types.Object, body *ast.BlockStmt) bool {
	ok := true
	inspectStack(body, func(stack []ast.Node) bool {
		id, isIdent := stack[len(stack)-1].(*ast.Ident)
		if !isIdent || pass.Info.Uses[id] != obj || len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.CallExpr:
			if pkg, name := calleePkgFunc(pass, parent); pkg == "time" && name == "Since" &&
				len(parent.Args) == 1 && parent.Args[0] == id {
				return true
			}
		case *ast.AssignStmt:
			if len(parent.Lhs) == 1 && parent.Lhs[0] == id && len(parent.Rhs) == 1 {
				if rhs, isCall := parent.Rhs[0].(*ast.CallExpr); isCall {
					if pkg, name := calleePkgFunc(pass, rhs); pkg == "time" && name == "Now" {
						return true
					}
				}
			}
		}
		ok = false
		return true
	})
	return ok
}

// checkMapRange flags order-dependent floating-point work inside a
// range over a map: compound float assignment to state declared outside
// the loop, and appends of float-bearing values to outside slices.
// (Collecting keys into a slice for sorting appends key-typed values,
// typically strings or ints, and stays clean.)
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	for _, f := range mapOrderFloatFindings(pass, rng) {
		if f.append {
			pass.Reportf(f.pos,
				"appending float-bearing values in map iteration order is nondeterministic; collect and sort keys first")
		} else {
			pass.Reportf(f.pos,
				"floating-point accumulation in map iteration order is nondeterministic (addition is not associative); iterate sorted keys")
		}
	}
}

// mapOrderFinding is one order-dependent float operation inside a map
// range: a compound accumulation, or an append of float-bearing values.
type mapOrderFinding struct {
	pos    token.Pos
	append bool
}

// mapOrderFloatFindings detects order-dependent floating-point work in
// a range statement; shared by the determinism analyzer (which reports
// each site) and the purity analyzer (which turns them into
// per-function facts).
func mapOrderFloatFindings(pass *analysis.Pass, rng *ast.RangeStmt) []mapOrderFinding {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []mapOrderFinding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := assign.Lhs[0]
			if isFloat(pass.TypeOf(lhs)) && outsideTarget(pass, lhs, rng) {
				out = append(out, mapOrderFinding{pos: assign.Pos()})
			}
		case token.ASSIGN, token.DEFINE:
			for _, rhs := range assign.Rhs {
				if pos, ok := floatAppendPos(pass, rhs, rng); ok {
					out = append(out, mapOrderFinding{pos: pos, append: true})
				}
			}
		default:
			// Other assignment tokens (%=, &=, ...) are integer-only.
		}
		return true
	})
	return out
}

// floatAppendPos matches `s = append(s, v...)` inside a map range when
// s lives outside the loop and v carries floats.
func floatAppendPos(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) (token.Pos, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return 0, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return 0, false
	}
	if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return 0, false
	}
	if !outsideTarget(pass, call.Args[0], rng) {
		return 0, false
	}
	for _, arg := range call.Args[1:] {
		if hasFloat(pass.TypeOf(arg)) {
			return call.Pos(), true
		}
	}
	return 0, false
}

// outsideTarget reports whether the root variable of e is declared
// outside the range statement (so writes to it survive the loop).
func outsideTarget(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	return obj != nil && !declaredWithin(obj, rng)
}
