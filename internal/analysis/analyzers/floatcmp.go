package analyzers

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"strings"

	"temporaldoc/internal/analysis"
)

// FloatCmp flags == and != on floating-point operands, and switches on
// a float tag (the same exact comparison in statement clothing). After
// any arithmetic, two mathematically equal floats rarely compare equal,
// so exact comparison encodes a silent assumption that both sides took
// bit-identical paths. Three uses are recognised as legitimate and
// allowed:
//
//   - comparison against the literal 0 (an exact, well-defined guard,
//     e.g. protecting a division);
//   - x != x / x == x (the idiomatic NaN test);
//   - comparisons inside an epsilon helper itself (a function whose
//     name contains "approx", "almost" or "epsilon" — the fast path
//     `if a == b` before the tolerance check).
//
// Everything else should go through an epsilon helper (see
// metrics.ApproxEqual) or compare math.Float64bits explicitly when
// bit-identity is the actual intent.
func FloatCmp() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "floatcmp",
		Version: "1",
		Doc:     "flags exact ==/!= on floats outside epsilon helpers, zero guards and NaN tests",
		Run:     runFloatCmp,
	}
}

func runFloatCmp(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(stack []ast.Node) bool {
			if sw, ok := stack[len(stack)-1].(*ast.SwitchStmt); ok && sw.Tag != nil &&
				isFloat(pass.TypeOf(sw.Tag)) {
				pass.Reportf(sw.Pos(),
					"switch on a float compares cases exactly; use an epsilon helper, or switch on math.Float64bits when bit-identity is intended")
				return true
			}
			bin, ok := stack[len(stack)-1].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true
			}
			if exprString(pass.Fset, bin.X) == exprString(pass.Fset, bin.Y) {
				return true // NaN test: x != x
			}
			if inEpsilonHelper(stack) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"exact %s on floats; use an epsilon helper, or math.Float64bits when bit-identity is intended", bin.Op)
			return true
		})
	}
	return nil
}

func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0 && tv.Value.Kind() != constant.Bool
}

func inEpsilonHelper(stack []ast.Node) bool {
	for _, n := range stack {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := strings.ToLower(fd.Name.Name)
		for _, marker := range []string{"approx", "almost", "epsilon"} {
			if strings.Contains(name, marker) {
				return true
			}
		}
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return ""
	}
	return sb.String()
}
