// Package analyzers holds the domain-specific checks behind cmd/tdlint.
// Each analyzer guards one invariant the pipeline's tests can only spot
// after the fact: bit-deterministic training, telemetry that cannot
// perturb models, persistence that cannot silently lose data. See
// DESIGN.md §7 for the catalogue.
package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis"
)

// inspectStack walks a tree keeping the ancestor stack; fn returning
// false prunes the subtree. stack[len(stack)-1] is the current node.
func inspectStack(root ast.Node, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// calleePkgFunc resolves a call to a package-level function and returns
// its package path and name ("" when the call is not of that shape,
// e.g. a method call or a conversion).
func calleePkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// calleeMethod resolves a call to a (possibly embedded) method and
// returns the receiver's named type ("" otherwise).
func calleeMethod(pass *analysis.Pass, call *ast.CallExpr) (recv *types.Named, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, ""
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named, sel.Sel.Name
}

// namedIs reports whether t is the named type pkgPath.name.
func namedIs(t *types.Named, pkgPath, name string) bool {
	if t == nil || t.Obj() == nil || t.Obj().Pkg() == nil {
		return false
	}
	return t.Obj().Pkg().Path() == pkgPath && t.Obj().Name() == name
}

// rootIdent descends selector/index/star/paren chains to the base
// identifier of an lvalue or receiver expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// hasFloat reports whether t contains a floating-point (or complex)
// component: a bare float, a struct with a float field, or an
// array/slice of such. Pointers and maps are not traversed.
func hasFloat(t types.Type) bool {
	return hasFloatDepth(t, 0)
}

func hasFloatDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloatDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Slice:
		return hasFloatDepth(u.Elem(), depth+1)
	case *types.Array:
		return hasFloatDepth(u.Elem(), depth+1)
	}
	return false
}

// isFloat reports whether t's core type is floating point or complex.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// enclosingLoop returns the innermost for/range statement in the stack
// enclosing the current node, or nil.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncLit, *ast.FuncDecl:
			return nil // a function boundary ends the loop's influence
		}
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function
// (declaration or literal) enclosing the current node, or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// render prints an expression compactly for diagnostics.
func render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "expression"
	}
	return buf.String()
}
