package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"temporaldoc/internal/analysis"
)

// Seedflow proves that every RNG the training paths construct is
// seeded from configuration, not from the environment. The purity
// analyzer already bans *drawing* from the global Source; this one
// closes the remaining reproducibility hole: a locally constructed
// `rand.New(rand.NewSource(...))` is invisible to purity, yet if its
// seed derives from time.Now, from the global RNG, or from a value the
// analyzer cannot trace to a parameter or constant, the resulting
// model is just as irreproducible.
//
// Mechanics: the facts phase builds a per-function seed-provenance
// summary. Every math/rand constructor call (New, NewSource, NewPCG,
// NewChaCha8, NewZipf) has its seed operands classified by walking the
// expression: constants and parameters (a Config.Seed field threaded
// through the call chain, receiver state included) are explicit;
// time.Now and global-Source draws are environmental; locals trace
// through their assignments; anything opaque is unflowed. Functions
// constructing an environmentally- or unflowed-seeded RNG carry an
// "unseeded" fact with the construction site and reason, and the fact
// closes over the call graph — cross-package through sealed facts — so
// the run phase can report every training/eval entry point that
// reaches one, provenance chain in the message.
//
// A function may opt out with `//tdlint:seeded <reason>` in its doc
// comment: its constructions are accepted and its callees' unseeded
// facts stop propagating there (the reason is the reviewable
// contract). A reason-less annotation is itself a finding.
func Seedflow(entries []string) *analysis.Analyzer {
	s := &seedflow{entries: entries}
	return &analysis.Analyzer{
		Name:    "seedflow",
		Version: "1",
		Config:  strings.Join(entries, ","),
		Doc: "training-path entry points must not reach RNG constructions seeded from time.Now, " +
			"the global RNG, or untraceable values (opt-out: //tdlint:seeded <reason>)",
		Facts: s.facts,
		Run:   s.run,
	}
}

// unseededFact carries the provenance chain from a function to the
// offending RNG construction.
const unseededFact = "unseeded"

// seededDirective is the opt-out annotation.
const seededDirective = "tdlint:seeded"

type seedflow struct {
	// entries are "pkgname.NamePrefix" patterns naming the training and
	// evaluation entry points (see matchesEntry).
	entries []string
}

// seedVerdict classifies a seed expression. Ordered so that combining
// operands is a max: one bad operand poisons a sum, one unflowed
// operand degrades it.
type seedVerdict int

const (
	seedOK seedVerdict = iota
	seedUnflowed
	seedBad
)

// facts computes this package's per-function unseeded summaries:
// direct construction sites first, then a fixed-point closure over
// same-package calls, reading imported packages' sealed facts at the
// boundary — the same shape as purity.
func (s *seedflow) facts(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("seedflow needs interprocedural context (call graph + facts)")
	}

	type fnInfo struct {
		fn      *types.Func
		decl    *ast.FuncDecl
		chain   string // unseeded provenance ("" = clean so far)
		barrier bool   // //tdlint:seeded opt-out
	}
	var fns []*fnInfo
	byFunc := map[*types.Func]*fnInfo{}
	for _, fn := range pass.Graph.Funcs() {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		node := pass.Graph.Node(fn)
		info := &fnInfo{fn: fn, decl: node.Decl}
		if node.Decl != nil {
			if ok, _ := funcDirective(node.Decl, seededDirective); ok {
				info.barrier = true
			}
		}
		fns = append(fns, info)
		byFunc[fn] = info
	}

	// Direct construction sites.
	for _, info := range fns {
		if info.barrier || info.decl == nil || info.decl.Body == nil {
			continue
		}
		info.chain = s.directUnseeded(pass, info.decl)
	}

	// Fixed point over the call graph: a function reaches an unseeded
	// construction when any callee does — same-package callees resolved
	// live, imported ones through their sealed facts.
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.barrier || info.chain != "" {
				continue
			}
			node := pass.Graph.Node(info.fn)
			if node == nil {
				continue
			}
			for _, call := range node.Calls {
				callee := call.Callee
				var calleeChain string
				if local, ok := byFunc[callee]; ok {
					if local.barrier || local.chain == "" {
						continue
					}
					calleeChain = local.chain
				} else if chain, ok := pass.Facts.GetFunc(callee, unseededFact); ok {
					calleeChain = chain
				} else {
					continue
				}
				info.chain = chainName(pass.Pkg, callee) + " → " + calleeChain
				changed = true
				break
			}
		}
	}

	for _, info := range fns {
		if info.chain != "" {
			pass.Facts.Put(info.fn, unseededFact, info.chain)
		}
	}
	return nil
}

// run reports entry points carrying an unseeded fact, and annotation
// misuse (a //tdlint:seeded without a reason).
func (s *seedflow) run(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("seedflow needs interprocedural context (call graph + facts)")
	}
	pkgBase := pass.Pkg.Name()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if ok, reason := funcDirective(decl, seededDirective); ok && strings.TrimSpace(reason) == "" {
				pass.Reportf(decl.Pos(),
					"//tdlint:seeded needs a reason: //tdlint:seeded <why this RNG's seeding is acceptable>")
			}
			if !matchesEntry(s.entries, pkgBase, decl.Name.Name) {
				continue
			}
			fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			if chain, ok := pass.Facts.GetFunc(fn, unseededFact); ok {
				pass.Reportf(decl.Name.Pos(),
					"%s is a training entry point but reaches an unseeded RNG: %s; thread Config.Seed through the chain, or annotate //tdlint:seeded <reason>",
					decl.Name.Name, chain)
			}
		}
	}
	return nil
}

// directUnseeded scans one declaration (closures included) for
// math/rand constructor calls whose seed operands do not trace to an
// explicit parameter or constant, and returns the first site's
// provenance detail, or "".
func (s *seedflow) directUnseeded(pass *analysis.Pass, decl *ast.FuncDecl) string {
	cls := &seedClassifier{pass: pass, params: seedParamObjects(pass, decl), body: decl}
	// Nested constructions (`rand.New(rand.NewSource(x))`) report once,
	// at the outermost call; inner constructor calls are consumed.
	consumed := map[*ast.CallExpr]bool{}
	detail := ""
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || consumed[call] || detail != "" {
			return detail == ""
		}
		name, ok := randConstructorCall(pass, call)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if inner, ok := m.(*ast.CallExpr); ok {
					if _, isCtor := randConstructorCall(pass, inner); isCtor {
						consumed[inner] = true
					}
				}
				return true
			})
		}
		verdict, why := seedOK, ""
		for _, arg := range call.Args {
			v, w := cls.classify(arg, 0, map[types.Object]bool{})
			if v > verdict {
				verdict, why = v, w
			}
		}
		if verdict != seedOK {
			pos := pass.Fset.Position(call.Pos())
			detail = fmt.Sprintf("rand.%s at %s:%d seeded from %s",
				name, filepath.Base(pos.Filename), pos.Line, why)
		}
		return true
	})
	return detail
}

// randConstructorCall matches calls to the math/rand (v1 or v2)
// source/RNG constructors.
func randConstructorCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	pkg, name := calleePkgFunc(pass, call)
	if (pkg == "math/rand" || pkg == "math/rand/v2") && randConstructors[name] {
		return name, true
	}
	return "", false
}

// seedClassifier walks a seed expression and decides whether it traces
// to explicit, reproducible inputs.
type seedClassifier struct {
	pass *analysis.Pass
	// params holds every parameter, receiver and closure parameter
	// object of the declaration under analysis — the "explicitly
	// threaded" roots.
	params map[types.Object]bool
	// body is the declaration searched for local assignments.
	body *ast.FuncDecl
}

// classify returns the worst verdict reachable from e, with a short
// reason for anything other than seedOK.
func (c *seedClassifier) classify(e ast.Expr, depth int, seen map[types.Object]bool) (seedVerdict, string) {
	if depth > 12 {
		return seedUnflowed, "seed expression too deep to trace"
	}
	if tv, ok := c.pass.Info.Types[e]; ok && tv.Value != nil {
		return seedOK, "" // compile-time constant
	}
	switch n := e.(type) {
	case *ast.ParenExpr:
		return c.classify(n.X, depth+1, seen)
	case *ast.UnaryExpr:
		return c.classify(n.X, depth+1, seen)
	case *ast.StarExpr:
		return c.classify(n.X, depth+1, seen)
	case *ast.IndexExpr:
		return c.classify(n.X, depth+1, seen)
	case *ast.BinaryExpr:
		return c.combine([]ast.Expr{n.X, n.Y}, depth, seen)
	case *ast.CompositeLit:
		return c.combine(n.Elts, depth, seen)
	case *ast.KeyValueExpr:
		return c.classify(n.Value, depth+1, seen)
	case *ast.SelectorExpr:
		// A field chain (cfg.Seed, m.cfg.Seed) is as traceable as its
		// root variable.
		if root := rootIdent(n); root != nil {
			return c.classifyIdent(root, depth, seen)
		}
		return seedUnflowed, "untraceable selector " + render(n)
	case *ast.Ident:
		return c.classifyIdent(n, depth, seen)
	case *ast.CallExpr:
		return c.classifyCall(n, depth, seen)
	}
	return seedUnflowed, "untraceable seed expression " + render(e)
}

func (c *seedClassifier) combine(exprs []ast.Expr, depth int, seen map[types.Object]bool) (seedVerdict, string) {
	verdict, why := seedOK, ""
	for _, e := range exprs {
		v, w := c.classify(e, depth+1, seen)
		if v > verdict {
			verdict, why = v, w
		}
	}
	return verdict, why
}

func (c *seedClassifier) classifyIdent(id *ast.Ident, depth int, seen map[types.Object]bool) (seedVerdict, string) {
	obj := c.pass.Info.ObjectOf(id)
	switch obj := obj.(type) {
	case *types.Const:
		return seedOK, ""
	case *types.Var:
		if c.params[obj] {
			return seedOK, "" // explicitly threaded parameter/receiver
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return seedUnflowed, "package-level variable " + obj.Name()
		}
		return c.classifyLocal(obj, depth, seen)
	case *types.Func:
		return seedOK, "" // a function value, not a seed
	case nil:
		return seedUnflowed, "unresolved identifier " + id.Name
	}
	return seedUnflowed, "untraceable identifier " + id.Name
}

// classifyLocal traces a local variable through every assignment to it
// inside the declaration: the worst assigned value wins. Range-clause
// bindings count as explicit (deterministic iteration state); a local
// with no visible definition is unflowed.
func (c *seedClassifier) classifyLocal(obj *types.Var, depth int, seen map[types.Object]bool) (seedVerdict, string) {
	if seen[obj] {
		return seedOK, "" // cycle: this object's other assignments decide
	}
	seen[obj] = true
	found := false
	verdict, why := seedOK, ""
	record := func(v seedVerdict, w string) {
		found = true
		if v > verdict {
			verdict, why = v, w
		}
	}
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || c.pass.Info.ObjectOf(id) != obj {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					v, w := c.classify(n.Rhs[i], depth+1, seen)
					record(v, w)
				} else if len(n.Rhs) == 1 {
					v, w := c.classify(n.Rhs[0], depth+1, seen)
					record(v, w)
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if c.pass.Info.Defs[name] != obj {
					continue
				}
				if len(n.Values) == 0 {
					record(seedOK, "") // zero value is deterministic
				} else if i < len(n.Values) {
					v, w := c.classify(n.Values[i], depth+1, seen)
					record(v, w)
				} else if len(n.Values) == 1 {
					v, w := c.classify(n.Values[0], depth+1, seen)
					record(v, w)
				}
			}
		case *ast.RangeStmt:
			for _, kv := range []ast.Expr{n.Key, n.Value} {
				if id, ok := kv.(*ast.Ident); ok && c.pass.Info.ObjectOf(id) == obj {
					record(seedOK, "")
				}
			}
		}
		return true
	})
	if !found {
		return seedUnflowed, "local " + obj.Name() + " with no traceable definition"
	}
	if verdict != seedOK && why == "" {
		why = "local " + obj.Name()
	}
	return verdict, why
}

func (c *seedClassifier) classifyCall(call *ast.CallExpr, depth int, seen map[types.Object]bool) (seedVerdict, string) {
	// Conversions classify as their operand.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.classify(call.Args[0], depth+1, seen)
	}
	if pkg, name := calleePkgFunc(c.pass, call); pkg == "time" && (name == "Now" || name == "Since") {
		return seedBad, "time." + name
	}
	if name, ok := randGlobalCall(c.pass, call); ok {
		return seedBad, "global math/rand." + name
	}
	// A constructor as a value (rand.New(rand.NewSource(x))): classify
	// its own seed operands.
	if _, ok := randConstructorCall(c.pass, call); ok {
		return c.combine(call.Args, depth, seen)
	}
	// Any other call: trust it iff every input (method receivers
	// included) is itself explicit — the splitSeed(cfg.Seed) pattern.
	// Environmental sources hiding behind an *imported* call surface
	// when that function's own package is analyzed and the fact
	// propagates here through the call graph.
	inputs := append([]ast.Expr(nil), call.Args...)
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isMethod := c.pass.Info.Selections[sel]; isMethod {
			inputs = append(inputs, sel.X)
		}
	}
	v, w := c.combine(inputs, depth, seen)
	if v != seedOK && w == "" {
		w = "call " + render(call.Fun)
	}
	return v, w
}

// seedParamObjects collects the parameter, receiver and named-result
// objects of decl and of every closure inside it.
func seedParamObjects(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFields(decl.Recv)
	addFields(decl.Type.Params)
	ast.Inspect(decl, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addFields(lit.Type.Params)
		}
		return true
	})
	return out
}
