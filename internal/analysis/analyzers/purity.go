package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"temporaldoc/internal/analysis"
)

// Purity is the interprocedural arm of the determinism contract. The
// intraprocedural determinism analyzer flags nondeterminism at the
// offending line; this one proves the *training paths* never reach such
// a line through any chain of calls, across package boundaries: a
// helper that draws from the global RNG poisons every entry point that
// can reach it, and the sequence-order-sensitive pipeline (ordered word
// vectors through per-category SOMs into recurrent LGP registers) turns
// that poison into silently irreproducible models.
//
// Mechanics: the facts phase records, per function, whether it
// *directly* touches an impurity source — a math/rand package-level
// call, a time.Now read outside the stopwatch pattern, or
// floating-point accumulation in map iteration order — then closes the
// relation over the call graph (function-value references included)
// within the package, consuming imported packages' sealed facts at the
// boundary. The run phase reports every entry point carrying an
// "impure" fact, with the offending call chain in the message.
//
// A function may opt out with a `//tdlint:impure <reason>` annotation
// in its doc comment: its own impurity is accepted and does not
// propagate to callers (the stated reason is the reviewable contract,
// e.g. a deliberately wall-clock-seeded demo). An annotation without a
// reason is itself a finding.
func Purity(entries []string, assumePure []string) *analysis.Analyzer {
	p := &purity{entries: entries, assumePure: assumePure}
	return &analysis.Analyzer{
		Name:    "purity",
		Version: "1",
		Config:  strings.Join(entries, ",") + "|" + strings.Join(assumePure, ","),
		Doc: "training-path entry points must not transitively reach global RNG, wall-clock reads " +
			"or map-order float accumulation (opt-out: //tdlint:impure <reason>)",
		Facts: p.facts,
		Run:   p.run,
	}
}

// impureFact is the fact name carrying the provenance chain.
const impureFact = "impure"

// impureDirective is the opt-out annotation.
const impureDirective = "tdlint:impure"

type purity struct {
	// entries are "pkgname.NamePrefix" patterns naming the training
	// entry points, matched against the package's base name and the
	// function or method name ("som.Train" matches som.Train and
	// (*som.Map).TrainBatch alike).
	entries []string
	// assumePure lists import-path substrings whose packages are pure
	// by contract rather than by analysis — the telemetry package reads
	// the clock on purpose and is guarded dynamically by the
	// byte-identity regression test.
	assumePure []string
}

func (p *purity) isAssumedPure(pkgPath string) bool {
	for _, s := range p.assumePure {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// facts computes this package's per-function impurity summaries:
// direct sources first, then a fixed-point closure over same-package
// calls, reading imported packages' sealed facts at the boundary.
func (p *purity) facts(pass *analysis.Pass) error {
	if p.isAssumedPure(pass.Pkg.Path()) {
		return nil
	}
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("purity needs interprocedural context (call graph + facts)")
	}

	// decls: this package's declared functions, in deterministic order.
	type fnInfo struct {
		fn      *types.Func
		decl    *ast.FuncDecl
		chain   string // impurity provenance ("" = clean so far)
		barrier bool   // //tdlint:impure opt-out: impurity stops here
	}
	var fns []*fnInfo
	byFunc := map[*types.Func]*fnInfo{}
	for _, fn := range pass.Graph.Funcs() {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		node := pass.Graph.Node(fn)
		info := &fnInfo{fn: fn, decl: node.Decl}
		if node.Decl != nil {
			if ok, _ := funcDirective(node.Decl, impureDirective); ok {
				info.barrier = true
			}
		}
		fns = append(fns, info)
		byFunc[fn] = info
	}

	// Direct sources.
	for _, info := range fns {
		if info.barrier || info.decl == nil || info.decl.Body == nil {
			continue
		}
		info.chain = directImpurity(pass, info.decl)
	}

	// Fixed point over the call graph: a function is impure when any
	// callee is — same-package callees resolved live, imported ones
	// through their sealed facts, assume-pure packages never.
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.barrier || info.chain != "" {
				continue
			}
			node := pass.Graph.Node(info.fn)
			if node == nil {
				continue
			}
			for _, call := range node.Calls {
				callee := call.Callee
				if calleePkg := callee.Pkg(); calleePkg == nil || p.isAssumedPure(calleePkg.Path()) {
					continue
				}
				var calleeChain string
				if local, ok := byFunc[callee]; ok {
					if local.barrier || local.chain == "" {
						continue
					}
					calleeChain = local.chain
				} else if chain, ok := pass.Facts.GetFunc(callee, impureFact); ok {
					calleeChain = chain
				} else {
					continue
				}
				info.chain = chainName(pass.Pkg, callee) + " → " + calleeChain
				changed = true
				break
			}
		}
	}

	for _, info := range fns {
		if info.chain != "" {
			pass.Facts.Put(info.fn, impureFact, info.chain)
		}
	}
	return nil
}

// run reports entry points carrying an impure fact, and annotation
// misuse (a //tdlint:impure without a reason).
func (p *purity) run(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("purity needs interprocedural context (call graph + facts)")
	}
	pkgBase := pass.Pkg.Name()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if ok, reason := funcDirective(decl, impureDirective); ok && strings.TrimSpace(reason) == "" {
				pass.Reportf(decl.Pos(),
					"//tdlint:impure needs a reason: //tdlint:impure <why this function may be nondeterministic>")
			}
			if !p.isEntry(pkgBase, decl.Name.Name) {
				continue
			}
			fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			if chain, ok := pass.Facts.GetFunc(fn, impureFact); ok {
				pass.Reportf(decl.Name.Pos(),
					"%s is a training entry point but reaches nondeterminism: %s; thread seeded state through the chain, or annotate the boundary //tdlint:impure <reason>",
					decl.Name.Name, chain)
			}
		}
	}
	return nil
}

func (p *purity) isEntry(pkgBase, funcName string) bool {
	return matchesEntry(p.entries, pkgBase, funcName)
}

// matchesEntry matches a function against "pkgname.NamePrefix" entry
// patterns ("som.Train" covers som.Train and (*som.Map).TrainBatch
// alike; a bare "pkg." covers the package's exported API). Shared by
// the purity and seedflow analyzers.
func matchesEntry(entries []string, pkgBase, funcName string) bool {
	for _, e := range entries {
		pkg, prefix, ok := strings.Cut(e, ".")
		if !ok || pkg != pkgBase {
			continue
		}
		if prefix == "" {
			// Bare "pkg." entries cover the package's exported API.
			if ast.IsExported(funcName) {
				return true
			}
			continue
		}
		if strings.HasPrefix(funcName, prefix) {
			return true
		}
	}
	return false
}

// directImpurity scans one declaration's body (closures included —
// they run on the encloser's behalf) for the three direct impurity
// sources and returns a one-hop provenance string, or "". The walk
// starts at the declaration so the stopwatch exemption can see the
// enclosing function.
func directImpurity(pass *analysis.Pass, decl *ast.FuncDecl) string {
	var sources []string
	inspectStack(decl, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.CallExpr:
			if name, ok := randGlobalCall(pass, n); ok {
				sources = append(sources, "math/rand."+name)
			} else if timeNowViolation(pass, n, stack) {
				sources = append(sources, "time.Now")
			}
		case *ast.RangeStmt:
			if len(mapOrderFloatFindings(pass, n)) > 0 {
				sources = append(sources, "map-order float accumulation")
			}
		}
		return true
	})
	if len(sources) == 0 {
		return ""
	}
	sort.Strings(sources)
	return sources[0]
}

// chainName renders a callee for provenance chains: bare "Fn" for
// same-package hops, "pkg.Fn" across a package boundary.
func chainName(from *types.Package, fn *types.Func) string {
	name := shortFuncName(fn)
	if fn.Pkg() == from {
		if _, local, ok := strings.Cut(name, "."); ok {
			return local
		}
	}
	return name
}

// shortFuncName renders a callee for provenance chains:
// "pkg.Fn" or "pkg.Recv.Method" without the module path noise.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// funcDirective scans a declaration's doc comment for a //tdlint:<name>
// directive, returning its presence and trailing argument.
func funcDirective(decl *ast.FuncDecl, directive string) (bool, string) {
	if decl.Doc == nil {
		return false, ""
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == directive {
			return true, ""
		}
		if strings.HasPrefix(text, directive+" ") {
			return true, strings.TrimSpace(text[len(directive)+1:])
		}
	}
	return false, ""
}
