package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"temporaldoc/internal/analysis"
	"temporaldoc/internal/analysis/cfg"
	"temporaldoc/internal/analysis/conc"
)

// GoLeak demands a provable termination path for every goroutine the
// repo spawns. The serving layer's contract is that shutdown drains:
// workers end when the owner closes the queue, the reload watcher ends
// on context cancellation, loadgen's fan-out is bounded. A goroutine
// whose body can wedge in a loop that never reaches return outlives
// every one of those mechanisms and leaks — worse, it pins whatever
// snapshot or buffer it captured.
//
// Mechanics: the facts phase marks each function whose CFG has a
// reachable block that cannot reach the exit (a path that provably
// never returns), then closes the relation over calls — a function
// that calls a diverging callee may never return either — with
// provenance chains, reading imported packages' sealed facts at the
// boundary. The run phase inspects every `go` statement: a spawned
// named function carrying a diverges fact, or a spawned literal whose
// own CFG diverges (or that calls a diverging callee), is reported at
// the spawn site, where the missing exit path has to be designed.
//
// Deliberately detached work opts out with `//tdlint:background
// <reason>` on the spawned function (or on the spawner, for literals);
// the reason is the reviewable contract, and an annotation without one
// is itself a finding.
func GoLeak() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "goleak",
		Version: "1",
		Doc: "every go statement needs a provable termination path (context cancellation, " +
			"owner-closed channel, or bounded loop); opt-out: //tdlint:background <reason>",
		Facts: goleakFacts,
		Run:   runGoLeak,
	}
}

// divergesFact carries the non-termination provenance chain.
const divergesFact = "diverges"

// backgroundDirective is the shared opt-out for deliberately detached
// work, honoured by goleak (termination) and ctxflow (cancellation).
const backgroundDirective = "tdlint:background"

// isBackground reports whether decl opts out of the concurrency
// contracts as deliberate detached work.
func isBackground(decl *ast.FuncDecl) bool {
	if decl == nil {
		return false
	}
	ok, _ := funcDirective(decl, backgroundDirective)
	return ok
}

// goleakFacts computes per-function divergence: direct CFG divergence
// first, then a fixed point over calls (a caller of a function that
// never returns never returns either).
func goleakFacts(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("goleak needs interprocedural context (call graph + facts)")
	}
	var fns []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	chains := map[*types.Func]string{}
	for _, fn := range pass.Graph.Funcs() {
		if fn.Pkg() != pass.Pkg {
			continue
		}
		decl := pass.Graph.Decl(fn)
		if decl == nil || decl.Body == nil || isBackground(decl) {
			continue
		}
		fns = append(fns, fn)
		decls[fn] = decl
		g := cfg.New(cfg.FuncName(decl), decl.Body)
		if pos, div := conc.Divergence(g); div {
			chains[fn] = "never reaches return" + atLoc(pass, pos)
		}
	}

	// Fixed point: calls into diverging callees (same package live,
	// imported through sealed facts). Function literals and go/defer
	// subtrees are other flows and do not charge the encloser.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if chains[fn] != "" {
				continue
			}
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				if chains[fn] != "" {
					return false
				}
				switch x := n.(type) {
				case *ast.FuncLit, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					callee := staticCallee(pass.Info, x)
					if callee == nil || isBackground(pass.Graph.Decl(callee)) {
						return true
					}
					var calleeChain string
					if c, ok := chains[callee]; ok && c != "" {
						calleeChain = c
					} else if c, ok := pass.Facts.GetFunc(callee, divergesFact); ok {
						calleeChain = c
					} else {
						return true
					}
					chains[fn] = chainName(pass.Pkg, callee) + " → " + calleeChain
					changed = true
					return false
				}
				return true
			})
		}
	}
	for _, fn := range fns {
		if c := chains[fn]; c != "" {
			pass.Facts.Put(fn, divergesFact, c)
		}
	}
	return nil
}

// runGoLeak reports go statements spawning work with no provable
// termination path, and //tdlint:background annotations without a
// reason.
func runGoLeak(pass *analysis.Pass) error {
	if pass.Graph == nil || pass.Facts == nil {
		return fmt.Errorf("goleak needs interprocedural context (call graph + facts)")
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if ok, reason := funcDirective(decl, backgroundDirective); ok && strings.TrimSpace(reason) == "" {
				pass.Reportf(decl.Pos(),
					"//tdlint:background needs a reason: //tdlint:background <why this work is deliberately detached>")
			}
			if decl.Body == nil || isBackground(decl) {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if chain := spawnDiverges(pass, g); chain != "" {
					pass.Reportf(g.Pos(),
						"goroutine has no provable termination path: %s; exit on ctx.Done()/an owner-closed channel, or annotate the function //tdlint:background <reason>",
						chain)
				}
				return true
			})
		}
	}
	return nil
}

// spawnDiverges decides whether the goroutine started by g can wedge,
// returning the provenance chain ("" when it provably can terminate —
// or when nothing proves otherwise).
func spawnDiverges(pass *analysis.Pass, g *ast.GoStmt) string {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body := cfg.New("go func", fun.Body)
		if pos, div := conc.Divergence(body); div {
			return "the spawned func literal never reaches return" + atLoc(pass, pos)
		}
		// One hop into the literal's own calls: a literal that wraps a
		// diverging function diverges with it.
		chain := ""
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if chain != "" {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				callee := staticCallee(pass.Info, x)
				if callee == nil || isBackground(pass.Graph.Decl(callee)) {
					return true
				}
				if c, ok := pass.Facts.GetFunc(callee, divergesFact); ok {
					chain = chainName(pass.Pkg, callee) + " → " + c
					return false
				}
			}
			return true
		})
		return chain
	default:
		callee := staticCallee(pass.Info, g.Call)
		if callee == nil || isBackground(pass.Graph.Decl(callee)) {
			return ""
		}
		if c, ok := pass.Facts.GetFunc(callee, divergesFact); ok {
			return chainName(pass.Pkg, callee) + " → " + c
		}
		return ""
	}
}

// atLoc renders " (file:line)" for a witness position, or "".
func atLoc(pass *analysis.Pass, pos token.Pos) string {
	if !pos.IsValid() {
		return ""
	}
	p := pass.Fset.Position(pos)
	return fmt.Sprintf(" (%s:%d)", filepath.Base(p.Filename), p.Line)
}
