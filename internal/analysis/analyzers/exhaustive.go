package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"temporaldoc/internal/analysis"
)

// Exhaustive checks that value switches over enum-like types handle
// every declared member. A type is enum-like when it is a named type
// with a string or integer underlying type and at least two
// package-level constants of exactly that type in its defining package
// — core.EventKind is the motivating case: a new TrainEvent kind must
// be routed by every switch site (the CLI's event logger, the Progress
// shim), not silently dropped.
//
// A `default` case opts a switch out: partial handling is then a
// visible, deliberate decision. Switches with any non-constant case
// expression are skipped.
func Exhaustive() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:    "exhaustive",
		Version: "1",
		Doc:     "flags switches over enum-like constant sets that miss members and have no default",
		Run:     runExhaustive,
	}
}

func runExhaustive(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(stack []ast.Node) bool {
			sw, ok := stack[len(stack)-1].(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	named, ok := pass.TypeOf(sw.Tag).(*types.Named)
	if !ok {
		return
	}
	members := enumMembers(named)
	if len(members) < 2 {
		return
	}
	handled := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default case: partial handling is deliberate
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				return // dynamic case expression: not an enum dispatch
			}
			for _, m := range members {
				if constant.Compare(tv.Value, token.EQL, m.Val()) {
					handled[m.Name()] = true
				}
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !handled[m.Name()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch on %s misses %s; handle them or add an explicit default", named.Obj().Name(), strings.Join(missing, ", "))
}

// enumMembers returns the package-level constants declared with exactly
// the named type, in declaration-scope order.
func enumMembers(named *types.Named) []*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 || basic.Kind() == types.Bool {
		return nil
	}
	scope := obj.Pkg().Scope()
	var members []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		members = append(members, c)
	}
	return members
}
