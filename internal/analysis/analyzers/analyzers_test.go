package analyzers_test

import (
	"testing"

	"temporaldoc/internal/analysis/analysistest"
	"temporaldoc/internal/analysis/analyzers"
)

const testdata = "testdata"

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Determinism(), "tdfix/determinism")
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.FloatCmp(), "tdfix/floatcmp")
}

func TestTelemetrySafe(t *testing.T) {
	// The analyzer is anchored to the fixture's stand-in telemetry
	// package, exactly as cmd/tdlint anchors it to the real one.
	analysistest.Run(t, testdata, analyzers.TelemetrySafe("tdfix/telemetry"), "tdfix/telemetrysafe")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.ErrDrop(), "tdfix/errdrop")
}

func TestLoopCapture(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.LoopCapture(), "tdfix/loopcapture")
}

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Exhaustive(), "tdfix/exhaustive")
}

func TestPurity(t *testing.T) {
	// Entry points configured the way cmd/tdlint configures the real
	// training paths; the fixture's cross-package chain goes through
	// tdfix/purityhelp's sealed facts.
	analysistest.Run(t, testdata,
		analyzers.Purity([]string{"purity.Train", "purity.Encode"}, nil),
		"tdfix/purity")
}

func TestSeedflow(t *testing.T) {
	// Entry points configured the way cmd/tdlint configures the real
	// training paths; the fixture's cross-package chain goes through
	// tdfix/seedflowhelp's sealed facts.
	analysistest.Run(t, testdata,
		analyzers.Seedflow([]string{"seedflow.Train"}),
		"tdfix/seedflow")
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.LockCheck(), "tdfix/lockcheck")
}

func TestNilErr(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.NilErr(), "tdfix/nilerr")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.HotAlloc(), "tdfix/hotalloc")
}

func TestAtomicSafe(t *testing.T) {
	// Cross-package cases read tdfix/atomichelp's sealed field registry
	// and pointer-pin facts.
	analysistest.Run(t, testdata, analyzers.AtomicSafe(), "tdfix/atomicsafe")
}

func TestGoLeak(t *testing.T) {
	// The two-hop and cross-package spawns resolve through
	// tdfix/goleakhelp's sealed divergence facts.
	analysistest.Run(t, testdata, analyzers.GoLeak(), "tdfix/goleak")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.CtxFlow(), "tdfix/ctxflow")
}

func TestChanDisc(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.ChanDisc(), "tdfix/chandisc")
}
