package analyzers_test

import (
	"testing"

	"temporaldoc/internal/analysis/analysistest"
	"temporaldoc/internal/analysis/analyzers"
)

const testdata = "testdata"

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Determinism(), "tdfix/determinism")
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.FloatCmp(), "tdfix/floatcmp")
}

func TestTelemetrySafe(t *testing.T) {
	// The analyzer is anchored to the fixture's stand-in telemetry
	// package, exactly as cmd/tdlint anchors it to the real one.
	analysistest.Run(t, testdata, analyzers.TelemetrySafe("tdfix/telemetry"), "tdfix/telemetrysafe")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.ErrDrop(), "tdfix/errdrop")
}

func TestLoopCapture(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.LoopCapture(), "tdfix/loopcapture")
}

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, testdata, analyzers.Exhaustive(), "tdfix/exhaustive")
}
