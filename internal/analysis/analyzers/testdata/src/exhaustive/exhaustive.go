// Package exhaustive seeds a partially handled enum-like switch next
// to fully handled and deliberately defaulted ones.
package exhaustive

// Kind is an enum-like type: named, string-underlying, with
// package-level constants.
type Kind string

// The members every switch must route.
const (
	KindA Kind = "a"
	KindB Kind = "b"
	KindC Kind = "c"
)

func partial(k Kind) int {
	switch k { // want "misses KindC"
	case KindA:
		return 1
	case KindB:
		return 2
	}
	return 0
}

func full(k Kind) int {
	switch k { // clean: every member handled
	case KindA, KindB:
		return 1
	case KindC:
		return 2
	}
	return 0
}

func defaulted(k Kind) int {
	switch k { // clean: explicit default opts out
	case KindA:
		return 1
	default:
		return 0
	}
}

func dynamic(k, other Kind) int {
	switch k { // clean: non-constant case expression is not enum dispatch
	case other:
		return 1
	}
	return 0
}
