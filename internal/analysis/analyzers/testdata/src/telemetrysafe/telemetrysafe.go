// Package telemetrysafe seeds violations of the telemetry discipline
// against the stand-in tdfix/telemetry package.
package telemetrysafe

import "tdfix/telemetry"

func badLiteral() *telemetry.Registry {
	return &telemetry.Registry{} // want "bypasses the nil-safe registry"
}

func badCounterLiteral() *telemetry.Counter {
	return &telemetry.Counter{} // want "bypasses the nil-safe registry"
}

func zeroTimer() telemetry.Timer {
	return telemetry.Timer{} // clean: documented no-op zero value
}

func zeroSpan() telemetry.Span {
	return telemetry.Span{} // clean: documented no-op zero value
}

func lookupInLoop(r *telemetry.Registry, n int) {
	for i := 0; i < n; i++ {
		r.Counter("fixture.iterations").Inc() // want "inside a loop"
	}
}

func dynamicName(r *telemetry.Registry, level string) {
	r.Counter("fixture." + level).Inc() // want "compile-time constant"
}

func hoisted(r *telemetry.Registry, n int) {
	c := r.Counter("fixture.total") // clean: hoisted constant-name lookup
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

func capturingClosure(x int) {
	telemetry.Do(func() { _ = x }) // want "closure capturing"
}

func plainClosure() {
	telemetry.Do(func() {}) // clean: captures nothing
}
