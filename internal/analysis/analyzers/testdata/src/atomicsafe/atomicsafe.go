// Fixture for the atomicsafe analyzer: plain accesses to atomic-managed
// fields (declared atomic.* types and sync/atomic-managed plain fields,
// same-package and imported), and snapshot pin-once violations (direct,
// through a same-package helper, and through an imported package's
// sealed facts).
package atomicsafe

import (
	"sync/atomic"

	"tdfix/atomichelp"
)

// counter mixes a declared atomic field with a plain field managed via
// sync/atomic package functions.
type counter struct {
	n    int64
	hits atomic.Int64
}

// bump registers n as atomically managed and uses hits correctly.
func bump(c *counter) {
	atomic.AddInt64(&c.n, 1)
	c.hits.Add(1)
}

func readPlain(c *counter) int64 {
	return c.n // want "plain read of atomicsafe.counter.n"
}

func writePlain(c *counter) {
	c.n = 0 // want "plain write of atomicsafe.counter.n"
}

func resetAtomic(c *counter) {
	c.hits = atomic.Int64{} // want "plain write of atomic field atomicsafe.counter.hits"
}

func readAtomic(c *counter) int64 {
	return c.hits.Load() // allowed: the atomic API
}

// handle is the same-package snapshot holder.
type handle struct {
	cur atomic.Pointer[int]
}

func loadOnce(h *handle) *int {
	return h.cur.Load()
}

func doubleLoad(h *handle) int { // want "doubleLoad loads atomic snapshot atomicsafe.handle.cur 2 times in one flow"
	a := *h.cur.Load()
	b := *h.cur.Load()
	return a + b
}

func indirectDouble(h *handle) int { // want "indirectDouble loads atomic snapshot atomicsafe.handle.cur 2 times"
	a := *loadOnce(h)
	b := *h.cur.Load()
	return a + b
}

// pinned loads once and passes the snapshot down: the blessed shape.
func pinned(h *handle) int {
	p := h.cur.Load()
	return use(p)
}

func use(p *int) int { return *p }

// twoCrossLoads pins the imported handle twice, both times through the
// helper package's accessor — visible only via sealed ptrloads facts.
func twoCrossLoads(h *atomichelp.Handle) int { // want "twoCrossLoads loads atomic snapshot atomichelp.Handle.Cur 2 times"
	a := *h.Current()
	b := *h.Current()
	return a + b
}

func oneCrossLoad(h *atomichelp.Handle) int {
	return *h.Current()
}

// legacyPlainRead mixes access models across the package boundary: N is
// registered as sync/atomic-managed by its declaring package.
func legacyPlainRead(l *atomichelp.Legacy) int64 {
	return l.N // want "plain read of atomichelp.Legacy.N"
}
