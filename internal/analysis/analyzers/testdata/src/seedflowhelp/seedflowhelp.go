// Package seedflowhelp seeds RNG constructors in a *different*
// package, so the seedflow fixture exercises provenance propagation
// across a package boundary through sealed facts.
package seedflowhelp

import (
	"math/rand"
	"time"
)

// NewRNG constructs a wall-clock-seeded RNG — the unseeded pattern the
// analyzer exists to catch.
func NewRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// NewSeeded threads an explicit seed — the reproducible pattern.
func NewSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
