// Package telemetry is a miniature stand-in for the real telemetry
// package: just enough registry/handle surface for the telemetrysafe
// fixtures to violate. The analyzer is parameterised by import path, so
// the tests anchor it here ("tdfix/telemetry") instead of the real
// package.
package telemetry

// Registry hands out metric handles by name.
type Registry struct {
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{counters: map[string]*Counter{}} }

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return nil }

// Timer returns the named timer.
func (r *Registry) Timer(name string) Timer { return Timer{} }

// Counter is a monotonically increasing metric.
type Counter struct{ v int64 }

// Inc increments the counter.
func (c *Counter) Inc() {}

// Gauge is a last-write-wins metric.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) {}

// Timer observes durations; the zero Timer is a documented no-op.
type Timer struct{ h *Counter }

// Start begins a span.
func (t Timer) Start() Span { return Span{} }

// Span is one in-flight measurement; the zero Span is a no-op.
type Span struct{ h *Counter }

// End finishes the span.
func (s Span) End() {}

// Do invokes fn — a package-level API the fixtures can hand closures to.
func Do(fn func()) { fn() }
