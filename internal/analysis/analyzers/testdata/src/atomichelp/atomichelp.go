// Package atomichelp seeds atomic-managed state in a *different*
// package, so the atomicsafe fixture exercises both fact families —
// the field registry and the pointer-pin summaries — across a package
// boundary through sealed blobs.
package atomichelp

import "sync/atomic"

// Handle is the snapshot-holder archetype: an atomic.Pointer swapped
// by a reloader, pinned by request flows.
type Handle struct {
	Cur atomic.Pointer[int]
}

// Current pins the snapshot once; callers that call it twice in one
// flow split the flow across generations.
func (h *Handle) Current() *int {
	return h.Cur.Load()
}

// Legacy manages a plain int64 through sync/atomic package functions —
// the pre-Go-1.19 style. Registration happens here, in the declaring
// package.
type Legacy struct {
	N int64
}

// Bump is the atomic write that marks N as atomically managed.
func (l *Legacy) Bump() {
	atomic.AddInt64(&l.N, 1)
}
