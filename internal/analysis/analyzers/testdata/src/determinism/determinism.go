// Package determinism seeds violations of the bit-reproducibility
// contract: global RNG draws, wall-clock reads outside the stopwatch
// pattern, and float work in map iteration order.
package determinism

import (
	"math/rand"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want "process-global Source"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // clean: explicit seeded source
	return r.Intn(10)
}

func wallClock() int64 {
	t := time.Now() // want "stopwatch"
	return t.UnixNano()
}

func stopwatch() time.Duration {
	start := time.Now() // clean: only consumed by time.Since
	work()
	return time.Since(start)
}

func rearmed() (a, b time.Duration) {
	start := time.Now() // clean: re-armed and consumed by time.Since
	work()
	a = time.Since(start)
	start = time.Now()
	work()
	b = time.Since(start)
	return a, b
}

func work() {}

func mapAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "map iteration order"
	}
	return sum
}

func mapAppendFloats(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "float-bearing"
	}
	return out
}

func mapCollectKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // clean: key collection carries no floats
	}
	return keys
}

func sliceAccumulate(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // clean: slice order is deterministic
	}
	return sum
}
