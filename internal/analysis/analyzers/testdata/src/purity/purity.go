// Fixture for the purity analyzer. Entry points (configured in the
// test as "purity.Train" and "purity.Encode") must not transitively
// reach global RNG, non-stopwatch time.Now, or map-order float
// accumulation. Non-entry functions never get reports — their impurity
// only matters when an entry can reach it.
package purity

import (
	"math/rand"
	"time"

	"tdfix/purityhelp"
)

// TrainDirect reaches the global RNG in its own body (one hop).
func TrainDirect(n int) int { // want "TrainDirect is a training entry point but reaches nondeterminism: math/rand.Intn"
	return rand.Intn(n)
}

// TrainChained reaches the global RNG through a helper: the two-hop
// chain entry → helper → math/rand the intraprocedural determinism
// analyzer cannot see from here.
func TrainChained(n int) int { // want "reaches nondeterminism: helper → math/rand.Intn"
	return helper(n)
}

func helper(n int) int {
	return rand.Intn(n)
}

// TrainCrossPkg reaches the global RNG through an imported package's
// sealed facts.
func TrainCrossPkg(xs []int) { // want "reaches nondeterminism: purityhelp.Shuffle → math/rand.Shuffle"
	purityhelp.Shuffle(xs)
}

// TrainClock reaches a wall-clock read that is not a stopwatch.
func TrainClock() int64 { // want "reaches nondeterminism: clockHelper → time.Now"
	return clockHelper()
}

func clockHelper() int64 {
	return time.Now().UnixNano()
}

// TrainMapOrder reaches order-dependent float accumulation.
func TrainMapOrder(m map[string]float64) float64 { // want "reaches nondeterminism: accumulate → map-order float accumulation"
	return accumulate(m)
}

func accumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// TrainSeeded threads explicit sources all the way down: clean.
func TrainSeeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n) + purityhelp.SeededPick(seed, n) + purityhelp.Sum([]int{n})
}

// TrainStopwatch times itself the allowed way: clean.
func TrainStopwatch(xs []int) (int, time.Duration) {
	start := time.Now()
	s := purityhelp.Sum(xs)
	return s, time.Since(start)
}

// TrainAnnotated calls an opted-out helper: the annotation is a
// barrier, so the entry stays clean.
func TrainAnnotated(xs []int) {
	demoShuffle(xs)
}

// demoShuffle is deliberately nondeterministic, and says why.
//
//tdlint:impure demo-only shuffle, never on a persisted model path
func demoShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// badAnnotation opts out without a reason: that is itself a finding.
//
//tdlint:impure
func badAnnotation() int { // want "tdlint:impure needs a reason"
	return rand.Int()
}

// Encode reaches impurity through a deeper same-package chain —
// entry → mid → deep → rand.
func Encode(n int) int { // want "reaches nondeterminism: mid → deep → math/rand.Int63"
	return mid(n)
}

func mid(n int) int {
	return deep(n)
}

func deep(n int) int {
	return int(rand.Int63()) % n
}

// NotAnEntry is impure but matches no entry pattern: no report here.
func NotAnEntry() int {
	return rand.Int()
}
