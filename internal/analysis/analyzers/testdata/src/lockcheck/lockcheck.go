// Fixture for the lockcheck analyzer: CFG-based mutex discipline.
package lockcheck

import "sync"

type registry struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
}

// BalancedStraight locks and unlocks on the single path: clean.
func (r *registry) BalancedStraight(k string) int {
	r.mu.Lock()
	v := r.items[k]
	r.mu.Unlock()
	return v
}

// DeferBalanced defers the unlock: clean on every path.
func (r *registry) DeferBalanced(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[k]
}

// DeferClosure releases through a deferred closure: still credited.
func (r *registry) DeferClosure(k string) int {
	r.mu.Lock()
	defer func() { r.mu.Unlock() }()
	return r.items[k]
}

// LeakOnBranch forgets the unlock on the early return.
func (r *registry) LeakOnBranch(k string) int { // want "r.mu may still be held when (*registry).LeakOnBranch returns"
	r.mu.Lock()
	if v, ok := r.items[k]; ok {
		return v // leaks r.mu
	}
	r.mu.Unlock()
	return 0
}

// DoubleLock re-acquires a mutex it may already hold.
func (r *registry) DoubleLock() {
	r.mu.Lock()
	r.mu.Lock() // want "r.mu locked while it may already be held"
	r.mu.Unlock()
}

// UnlockFirst releases a lock it never took.
func (r *registry) UnlockFirst() {
	r.mu.Unlock() // want "r.mu unlocked without a matching lock"
}

// GoUnderLock spawns a goroutine inside the critical section.
func (r *registry) GoUnderLock(done chan struct{}) {
	r.mu.Lock()
	go func() { // want "goroutine started while r.mu is held"
		<-done
	}()
	r.mu.Unlock()
}

// SendUnderLock blocks on a channel inside the critical section.
func (r *registry) SendUnderLock(out chan int, k string) {
	r.mu.Lock()
	out <- r.items[k] // want "channel send while r.mu is held"
	r.mu.Unlock()
}

// SendAfterUnlock hands off outside the critical section: clean.
func (r *registry) SendAfterUnlock(out chan int, k string) {
	r.mu.Lock()
	v := r.items[k]
	r.mu.Unlock()
	out <- v
}

// ReadBalanced pairs RLock with RUnlock: clean, and independent of the
// write-lock key.
func (r *registry) ReadBalanced(k string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.items[k]
}

// ReadLeak pairs RLock with nothing.
func (r *registry) ReadLeak(k string) int { // want "r.rw (read lock) may still be held"
	r.rw.RLock()
	return r.items[k]
}

// LoopBalanced locks and unlocks per iteration: the back edge carries
// no held locks, so no double-lock false positive.
func (r *registry) LoopBalanced(keys []string) int {
	total := 0
	for _, k := range keys {
		r.mu.Lock()
		total += r.items[k]
		r.mu.Unlock()
	}
	return total
}

// ByValue receives the mutex owner by value: the lock state diverges.
func ByValue(r registry) { // want "ByValue carries a sync mutex by value"
	r.mu.Lock()
	r.mu.Unlock()
}

// ParamMutex takes a bare mutex by value.
func ParamMutex(mu sync.Mutex) { // want "ParamMutex carries a sync mutex by value"
	mu.Lock()
	mu.Unlock()
}

// PointerParam is the correct shape: clean.
func PointerParam(r *registry) {
	r.mu.Lock()
	r.mu.Unlock()
}

type embedded struct {
	sync.Mutex
	n int
}

// Embedded locks through the promoted method; the early return leaks
// the promoted mutex too.
func (e *embedded) Embedded(stop bool) int { // want "e may still be held when (*embedded).Embedded returns"
	e.Lock()
	if stop {
		return 0
	}
	e.Unlock()
	return e.n
}
