// Fixture for the seedflow analyzer. Entry points (configured in the
// test as "seedflow.Train") must not reach an RNG construction whose
// seed derives from time.Now, the global RNG, or an untraceable value.
// Non-entry functions never get reports — their constructions only
// matter when an entry can reach them.
package seedflow

import (
	"math/rand"
	"time"

	"tdfix/seedflowhelp"
)

// Config is the explicit-seed carrier, mirroring the real repo's
// per-subsystem configs.
type Config struct {
	Seed int64
}

// globalSeed is mutable process state: not a traceable seed.
var globalSeed int64

// TrainGood threads the config seed straight in: clean.
func TrainGood(cfg Config, n int) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return rng.Intn(n)
}

// TrainConst seeds from a compile-time constant: clean.
func TrainConst(n int) int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(n)
}

// TrainDerived mixes a parameter with constants through a local —
// still fully traceable: clean.
func TrainDerived(seed int64, n int) int {
	s := seed ^ 0x7a11
	rng := rand.New(rand.NewSource(s + 1))
	return rng.Intn(n)
}

// TrainBad seeds from the wall clock in its own body.
func TrainBad(n int) int { // want "TrainBad is a training entry point but reaches an unseeded RNG: rand.New at seedflow.go"
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return rng.Intn(n)
}

// TrainGlobal seeds from the process-global RNG.
func TrainGlobal(n int) int { // want "seeded from global math/rand.Int63"
	src := rand.NewSource(rand.Int63())
	return rand.New(src).Intn(n)
}

// TrainUnflowed seeds from mutable package-level state.
func TrainUnflowed(n int) int { // want "seeded from package-level variable globalSeed"
	rng := rand.New(rand.NewSource(globalSeed))
	return rng.Intn(n)
}

// TrainTwoHop reaches a wall-clock construction through a helper —
// invisible intraprocedurally.
func TrainTwoHop(n int) int { // want "reaches an unseeded RNG: newClockRNG → rand.New at seedflow.go"
	return newClockRNG().Intn(n)
}

func newClockRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// TrainCross reaches a wall-clock construction in an imported package,
// through its sealed facts.
func TrainCross(n int) int { // want "reaches an unseeded RNG: seedflowhelp.NewRNG → rand.New at seedflowhelp.go"
	return seedflowhelp.NewRNG().Intn(n)
}

// TrainCrossSeeded uses the helper package's explicit-seed path: clean.
func TrainCrossSeeded(cfg Config, n int) int {
	return seedflowhelp.NewSeeded(cfg.Seed).Intn(n)
}

// TrainSuppressed calls an opted-out helper: the annotation is a
// barrier, so the entry stays clean.
func TrainSuppressed(n int) int {
	return demoRNG().Intn(n)
}

// demoRNG is deliberately wall-clock seeded, and says why.
//
//tdlint:seeded demo-only RNG, its draws never reach persisted model state
func demoRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// badSeeded opts out without a reason: that is itself a finding.
//
//tdlint:seeded
func badSeeded() *rand.Rand { // want "tdlint:seeded needs a reason"
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// NotAnEntry constructs a wall-clock RNG but matches no entry pattern:
// no report here.
func NotAnEntry() *rand.Rand {
	return newClockRNG()
}
