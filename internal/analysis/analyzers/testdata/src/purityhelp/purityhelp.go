// Package purityhelp seeds impure and pure helpers in a *different*
// package, so the purity fixture exercises fact propagation across a
// package boundary through sealed blobs.
package purityhelp

import "math/rand"

// Shuffle is impure: it draws from the process-global Source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Sum is pure.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// SeededPick threads an explicit source — the reproducible pattern.
func SeededPick(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}
