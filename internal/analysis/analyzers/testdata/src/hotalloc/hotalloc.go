// Fixture for the hotalloc analyzer: //tdlint:hotpath functions must
// not allocate per call. Unannotated functions allocate freely.
package hotalloc

type vec struct {
	x, y float64
}

var scratch []float64

func sink(v interface{}) { _ = v }

func sinkConcrete(v float64) { _ = v }

// Dot is the shape the annotation is for: arithmetic only.
//
//tdlint:hotpath
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// EscapingLit heap-allocates a struct per call.
//
//tdlint:hotpath
func EscapingLit(x, y float64) *vec {
	return &vec{x: x, y: y} // want "&vec escapes to the heap on every call"
}

// ValueLit builds the struct by value: stays on the stack, clean.
//
//tdlint:hotpath
func ValueLit(x, y float64) vec {
	return vec{x: x, y: y}
}

// SliceLit allocates backing storage per call.
//
//tdlint:hotpath
func SliceLit(x float64) float64 {
	ws := []float64{x, 2 * x} // want "slice literal allocates on every call"
	return ws[0] + ws[1]
}

// MapLit allocates a map per call.
//
//tdlint:hotpath
func MapLit(x float64) float64 {
	m := map[string]float64{"x": x} // want "map literal allocates on every call"
	return m["x"]
}

// Closure captures its accumulator.
//
//tdlint:hotpath
func Closure(xs []float64) float64 {
	total := 0.0
	add := func(v float64) { total += v } // want "closure captures total and allocates on every call"
	for _, x := range xs {
		add(x)
	}
	return total
}

// ParamClosure takes everything through parameters: clean.
//
//tdlint:hotpath
func ParamClosure(xs []float64) float64 {
	add := func(a, b float64) float64 { return a + b }
	s := 0.0
	for _, x := range xs {
		s = add(s, x)
	}
	return s
}

// AppendGrow reallocates O(log n) times per call.
//
//tdlint:hotpath
func AppendGrow(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x*x) // want "append grows out inside a loop without preallocation"
	}
	return out
}

// AppendPrealloc sizes the slice up front: clean.
//
//tdlint:hotpath
func AppendPrealloc(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*x)
	}
	return out
}

// AppendToParam appends into caller-owned storage: the caller sized it.
//
//tdlint:hotpath
func AppendToParam(dst, xs []float64) []float64 {
	for _, x := range xs {
		dst = append(dst, x*x)
	}
	return dst
}

// Boxes converts a float into an interface per call.
//
//tdlint:hotpath
func Boxes(x float64) {
	sink(x) // want "passing x boxes a concrete float64 into interface{}"
}

// BoxAssign boxes through an assignment.
//
//tdlint:hotpath
func BoxAssign(x float64) interface{} {
	var v interface{}
	v = x // want "assigning x boxes a concrete float64 into interface{}"
	return v
}

// ConcreteCall keeps everything concrete: clean.
//
//tdlint:hotpath
func ConcreteCall(x float64) {
	sinkConcrete(x)
}

// coldPath is unannotated: every banned shape is fine here.
func coldPath(xs []float64) *vec {
	out := []float64{}
	for _, x := range xs {
		out = append(out, x)
	}
	sink(out)
	f := func(v float64) { out = append(out, v) }
	f(1)
	return &vec{x: out[0]}
}
