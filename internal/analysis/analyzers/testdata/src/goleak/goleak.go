// Fixture for the goleak analyzer: go statements spawning work with no
// provable termination path — named functions, literals, one- and
// two-hop chains, and a cross-package case through sealed facts — plus
// the //tdlint:background opt-out and its mandatory reason.
package goleak

import (
	"context"

	"tdfix/goleakhelp"
)

func spin() {
	for {
	}
}

func spawnSpin() {
	go spin() // want "goroutine has no provable termination path: spin → never reaches return"
}

func spawnLiteral() {
	go func() { // want "the spawned func literal never reaches return"
		for {
		}
	}()
}

// spawnBounded's goroutine ends when the owner closes ch: clean.
func spawnBounded(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// spawnCtx's goroutine exits on cancellation: clean.
func spawnCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

func spawnCross() {
	go goleakhelp.Forever() // want "goleakhelp.Forever → never reaches return"
}

// viaHelper never returns, but only its callee's sealed fact proves it.
func viaHelper() {
	goleakhelp.Forever()
}

func spawnTwoHop() {
	go viaHelper() // want "viaHelper → goleakhelp.Forever → never reaches return"
}

// pump intentionally runs for the process lifetime.
//
//tdlint:background owns the flush loop for the process lifetime
func pump() {
	for {
	}
}

// spawnPump is clean: pump declared itself deliberate background work.
func spawnPump() {
	go pump()
}

//tdlint:background
func badPump() { // want "needs a reason"
	for {
	}
}
