// Package ctxflowhelp seeds blocking helpers in a *different* package,
// so the ctxflow fixture exercises may-block propagation across a
// package boundary through sealed facts.
package ctxflowhelp

import "context"

// Drain blocks on ch with no cancellation path.
func Drain(ch chan int) int {
	return <-ch
}

// DrainTwice blocks through Drain — a two-hop chain.
func DrainTwice(ch chan int) int {
	return Drain(ch) + Drain(ch)
}

// DrainCtx honours cancellation; handing it a ctx discharges callers.
func DrainCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}
