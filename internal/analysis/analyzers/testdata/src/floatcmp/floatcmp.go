// Package floatcmp seeds exact floating-point comparisons alongside the
// allowed zero-guard, NaN-test and epsilon-helper shapes.
package floatcmp

func equal(a, b float64) bool {
	return a == b // want "exact == on floats"
}

func notEqual(a, b float64) bool {
	return a != b // want "exact != on floats"
}

func switchTag(x float64) int {
	switch x { // want "switch on a float"
	case 1:
		return 1
	}
	return 0
}

func zeroGuard(x float64) bool { return x == 0 } // clean: exact zero guard

func nanTest(x float64) bool { return x != x } // clean: idiomatic NaN test

func approxEqual(a, b float64) bool {
	if a == b { // clean: fast path inside an epsilon helper
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func intCompare(a, b int) bool { return a == b } // clean: not floats
