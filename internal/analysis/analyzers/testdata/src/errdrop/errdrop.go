// Package errdrop seeds discarded flush-path errors next to the
// allowed read-only, always-nil and explicit-discard shapes.
package errdrop

import (
	"os"
	"strings"
)

func dropClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // want "error from Close discarded"
	return nil
}

func deferCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "error from Close discarded"
	_, err = f.WriteString("x")
	return err
}

func dropWrite(f *os.File) {
	f.WriteString("x") // want "error from WriteString discarded"
}

func deferOpen(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // clean: read-only descriptor, nothing to commit
	return nil
}

func explicitDiscard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_ = f.Close() // clean: deliberate, visible discard
	return nil
}

func builder() string {
	var b strings.Builder
	b.WriteString("x") // clean: strings.Builder documents a nil error
	return b.String()
}

func checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close() // clean: error propagated
}
