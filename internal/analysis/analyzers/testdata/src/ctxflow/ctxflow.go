// Fixture for the ctxflow analyzer: context-carrying functions must
// honour cancellation at every blocking point — direct ops, calls into
// may-block helpers (same-package and via sealed cross-package facts) —
// with the //tdlint:background opt-out and the context-passing
// discharge.
package ctxflow

import (
	"context"
	"time"

	"tdfix/ctxflowhelp"
)

func sleepy(ctx context.Context) {
	time.Sleep(time.Millisecond) // want "time.Sleep ignores ctx"
}

func bareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "bare send on ch cannot be cancelled"
}

func bareRecv(ctx context.Context, ch chan int) int {
	return <-ch // want "bare receive from ch cannot be cancelled"
}

func blindSelect(ctx context.Context, a, b chan int) {
	select { // want "select blocks without a ctx.Done"
	case <-a:
	case <-b:
	}
}

// okSelect honours ctx at the wait: clean.
func okSelect(ctx context.Context, ch chan int) {
	select {
	case <-ch:
	case <-ctx.Done():
	}
}

// okDefault never blocks: clean.
func okDefault(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// okRange drains an owner-closed channel: the goleak-blessed idiom is
// exempt here too.
func okRange(ctx context.Context, ch chan int) {
	for range ch {
	}
}

func viaHelper(ctx context.Context, ch chan int) int {
	return ctxflowhelp.Drain(ch) // want "ctxflowhelp.Drain may block"
}

func viaTwoHops(ctx context.Context, ch chan int) int {
	return ctxflowhelp.DrainTwice(ch) // want "ctxflowhelp.DrainTwice may block"
}

// handsCtx passes the context along; the callee is judged on its own
// flow: clean.
func handsCtx(ctx context.Context, ch chan int) int {
	return ctxflowhelp.DrainCtx(ctx, ch)
}

// plainWorker made no context promise: clean.
func plainWorker(ch chan int) int {
	return <-ch
}

// pump is deliberately detached; the annotation suppresses the check.
//
//tdlint:background drained by owner close at shutdown
func pump(ctx context.Context, ch chan int) int {
	return <-ch
}
