module tdfix

go 1.22
