// Package loopcapture seeds the two goroutine-spawn hazards: loop
// variables captured instead of passed, and WaitGroup.Add racing Wait
// from inside the spawned goroutine.
package loopcapture

import "sync"

func captures(xs []int, ch chan int) {
	for _, x := range xs {
		go func() {
			ch <- x // want "captures loop variable x"
		}()
	}
}

func passes(xs []int, ch chan int) {
	for _, x := range xs {
		go func(v int) { // clean: shard passed as an argument
			ch <- v
		}(x)
	}
}

func indexCapture(n int, ch chan int) {
	for i := 0; i < n; i++ {
		go func() {
			ch <- i // want "captures loop variable i"
		}()
	}
}

func addInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "races with Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addOutside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1) // clean: Add on the spawning side
		go func(i int) {
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

func notALoop(ch chan int, x int) {
	go func() {
		ch <- x // clean: no enclosing loop
	}()
}
