// Fixture for the chandisc analyzer: double close (direct, branchy,
// deferred, and through closing callees — same-package and via sealed
// cross-package facts), send on a possibly-closed channel, and close by
// a non-owner.
package chandisc

import "tdfix/chandischelp"

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "close of ch: the channel may already be closed on this path"
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch: the channel may already be closed on this path"
}

func branchyClose(cond bool) {
	ch := make(chan int)
	if cond {
		close(ch)
	}
	close(ch) // want "may already be closed on this path"
}

func deferDouble() {
	ch := make(chan int)
	defer close(ch) // want "deferred close of ch"
	close(ch)
}

func closeViaHelper() {
	ch := make(chan int)
	close(ch)
	chandischelp.Finish(ch) // want "chandischelp.Finish closes ch, which may already be closed"
}

func closeTwoHop() {
	ch := make(chan int)
	close(ch)
	chandischelp.FinishIndirect(ch) // want "chandischelp.FinishIndirect closes ch, which may already be closed"
}

// producer closes its parameter: custody arrived with the argument.
func producer(ch chan int) {
	ch <- 1
	close(ch)
}

// runProducer made ch, so handing it to a closing callee is fine.
func runProducer() {
	ch := make(chan int, 1)
	producer(ch)
}

// owner closes its own field: the owning package's prerogative.
type owner struct {
	done chan struct{}
}

func (o *owner) shut() {
	close(o.done)
}

func foreignClose(s *chandischelp.Source) {
	close(s.Ch) // want "the channel belongs to package chandischelp; only its owning package may close it"
}

func passesForeign(s *chandischelp.Source) {
	chandischelp.Finish(s.Ch) // want "does not own the channel"
}

func closesBorrowed(m map[string]chan int) {
	ch := m["x"]
	close(ch) // want "neither made the channel nor received it as a parameter"
}

// job mirrors the serving layer's per-job completion channel.
type job struct {
	done chan struct{}
}

// drainJobs closes a *fresh* channel every trip — the range head
// rebinds j, killing the loop-carried may-closed state: clean.
func drainJobs(jobs chan *job) {
	for j := range jobs {
		close(j.done)
	}
}

// refill reassigns ch to a new channel after closing the old one;
// the assignment kills the closed fact: clean.
func refill() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// consume only receives: clean.
func consume(s *chandischelp.Source) int {
	total := 0
	for v := range s.Ch {
		total += v
	}
	return total
}
