// Package chandischelp seeds channel-closing helpers and a foreign
// channel owner in a *different* package, so the chandisc fixture
// exercises closesparam propagation and ownership checks across a
// package boundary through sealed facts.
package chandischelp

// Source owns Ch; consumers must not close it.
type Source struct {
	Ch chan int
}

// Finish closes its parameter — custody transfers at every call site.
func Finish(ch chan int) {
	close(ch)
}

// FinishIndirect closes ch through Finish — a two-hop chain.
func FinishIndirect(ch chan int) {
	Finish(ch)
}
