// Fixture for the nilerr analyzer: flow-sensitive error hygiene.
package nilerr

import "errors"

type doc struct {
	Title string
	Body  []byte
}

func open(name string) (*doc, error) {
	if name == "" {
		return nil, errors.New("empty name")
	}
	return &doc{Title: name}, nil
}

func do() error { return nil }

// UseBeforeCheck dereferences the result before looking at the error.
func UseBeforeCheck(name string) string {
	d, err := open(name)
	t := d.Title // want "d is used before the error from open is checked"
	if err != nil {
		return ""
	}
	return t
}

// UseOnFailurePath dereferences the result inside the err != nil branch.
func UseOnFailurePath(name string) string {
	d, err := open(name)
	if err != nil {
		return d.Title // want "d is used on the failure path (open returned a non-nil error)"
	}
	return d.Title
}

// CheckedThenUse is the canonical shape: clean.
func CheckedThenUse(name string) (string, error) {
	d, err := open(name)
	if err != nil {
		return "", err
	}
	return d.Title, nil
}

// EqNilForm checks with ==: the happy path is the true branch.
func EqNilForm(name string) (string, error) {
	d, err := open(name)
	if err == nil {
		return d.Title, nil
	}
	return "", err
}

// NilOnFailure returns a nil error from the branch where err is known
// non-nil: the caller sees success on truncated state.
func NilOnFailure(name string) (*doc, error) {
	d, err := open(name)
	if err != nil {
		return nil, nil // want "returns a nil error while err is known non-nil"
	}
	return d, nil
}

// NilAfterRecovery re-arms err before the return: clean.
func NilAfterRecovery(name string) (*doc, error) {
	d, err := open(name)
	if err != nil {
		err = do()
		if err != nil {
			return nil, err
		}
		return &doc{}, nil
	}
	return d, nil
}

// JoinKillsFact: after the branches merge, err is no longer known
// non-nil, so the final nil return is clean.
func JoinKillsFact(name string) (*doc, error) {
	d, err := open(name)
	if err != nil {
		d = &doc{}
	}
	return d, nil
}

// LoopRecheck re-arms the error each iteration; the use after the
// check stays clean across the back edge.
func LoopRecheck(names []string) []string {
	var out []string
	for _, n := range names {
		d, err := open(n)
		if err != nil {
			continue
		}
		out = append(out, d.Title)
	}
	return out
}

// IndexBeforeCheck dereferences a slice-typed sibling.
func IndexBeforeCheck(name string) byte {
	d, err := open(name)
	b := d.Body[0] // want "d is used before the error from open is checked"
	if err != nil {
		return 0
	}
	return b
}
