// Package goleakhelp seeds a diverging function in a *different*
// package, so the goleak fixture exercises divergence propagation
// across a package boundary through sealed facts.
package goleakhelp

// Forever spins with no exit path.
func Forever() {
	for {
	}
}

// Bounded drains ch until the owner closes it — the termination path
// goleak accepts.
func Bounded(ch chan int) {
	for range ch {
	}
}
