// Fixture bodies for the CFG golden test. Shapes on purpose: straight
// line, if/else, early return, for with continue/break, range, switch
// with fallthrough, labeled break, select, defer, goto.
package fixtures

func straight(a, b int) int {
	c := a + b
	c *= 2
	return c
}

func ifElse(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}

func earlyReturn(err error) error {
	if err != nil {
		return err
	}
	return nil
}

func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}

func rangeLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func switchFall(k int) string {
	switch k {
	case 0:
		return "zero"
	case 1:
		fallthrough
	case 2:
		return "small"
	default:
		return "big"
	}
}

func labeled(grid [][]int) int {
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}

func selects(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	}
	return 0
}

func deferred(mu interface{ Lock() }, f func()) {
	mu.Lock()
	defer f()
	f()
}

func gotos(n int) int {
	i := 0
again:
	i++
	if i < n {
		goto again
	}
	return i
}
