// Package cfg builds per-function control-flow graphs from Go syntax,
// the flow-sensitive substrate under the lockcheck and nilerr
// analyzers. Like the rest of internal/analysis it is standard-library
// only — a deliberately small subset of golang.org/x/tools/go/cfg:
// basic blocks of statements, condition-labelled branch edges, and a
// synthetic exit block every return feeds into.
//
// The graph is intentionally syntactic. Statements are not decomposed
// into sub-expressions; a block's Cond is the branch condition whose
// truth chooses between Succs[0] (true) and Succs[1] (false). Range
// loops, switches and selects fan out without a Cond — analyzers that
// need path facts key off Cond-bearing blocks only. Defers are
// collected on the side (Graph.Defers): they run at every function
// exit, which is how lockcheck credits `defer mu.Unlock()`.
//
// panic and runtime aborts are not modelled as flow edges; a panicking
// statement sits in its block like any other. That keeps the builder
// simple and errs towards reporting (a "lock held at return" on a path
// that in fact panics is still worth a look).
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Name labels the graph in dumps (function name, or "func" for
	// literals).
	Name string
	// Blocks holds every block; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic exit block (no statements, no successors).
	// Every return statement and every fall-off-the-end path feeds it.
	Exit *Block
	// Defers are the defer statements of the body, in source order.
	// Their calls run, in reverse order, on every path into Exit.
	Defers []*ast.DeferStmt
}

// Block is a maximal straight-line sequence of statements.
type Block struct {
	Index int
	Stmts []ast.Stmt
	// Cond, when non-nil, is the branch condition evaluated after
	// Stmts: control reaches Succs[0] when it is true and Succs[1]
	// when it is false.
	Cond ast.Expr
	// Succs are the successor blocks. Multiple successors without a
	// Cond model range loops, switches and selects.
	Succs []*Block
}

// New builds the graph of a function body. name is used only for
// dumps. A nil body (declaration without body) yields a graph whose
// entry falls straight into Exit.
func New(name string, body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{Name: name}}
	entry := b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Fall-off-the-end reaches Exit — unless the walk left us in the
	// empty unreachable block that follows a terminal return/branch.
	if b.cur == entry || len(b.cur.Stmts) > 0 || hasPreds(b.g, b.cur) {
		b.jump(b.g.Exit)
	}
	return b.g
}

func hasPreds(g *Graph, blk *Block) bool {
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == blk {
				return true
			}
		}
	}
	return false
}

// FuncName renders the dump label for a declaration.
func FuncName(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		var buf bytes.Buffer
		_ = printer.Fprint(&buf, token.NewFileSet(), decl.Recv.List[0].Type)
		return "(" + buf.String() + ")." + decl.Name.Name
	}
	return decl.Name.Name
}

// builder threads the current block and break/continue/goto targets
// through the statement walk.
type builder struct {
	g   *Graph
	cur *Block
	// breaks/continues are innermost-first target stacks; each frame
	// carries the label naming it ("" for unlabeled loops/switches).
	breaks    []targetFrame
	continues []targetFrame
	// gotos maps a label name to its block, created on first use by
	// either the goto or the labeled statement.
	gotos map[string]*Block
	// pendingLabel names the label attached to the next loop/switch
	// statement, so `continue L` resolves.
	pendingLabel string
}

type targetFrame struct {
	label string
	block *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump terminates the current block with an unconditional edge.
func (b *builder) jump(to *Block) {
	b.cur.Succs = append(b.cur.Succs, to)
}

// startUnreachable begins a fresh block with no predecessors, for code
// after a return/branch statement.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *builder) labelBlock(name string) *Block {
	if b.gotos == nil {
		b.gotos = map[string]*Block{}
	}
	blk, ok := b.gotos[name]
	if !ok {
		blk = b.newBlock()
		b.gotos[name] = blk
	}
	return blk
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, targetFrame{label, brk})
	b.continues = append(b.continues, targetFrame{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func findTarget(frames []targetFrame, label string) *Block {
	for i := len(frames) - 1; i >= 0; i-- {
		if label == "" || frames[i].label == label {
			return frames[i].block
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(n.List)

	case *ast.LabeledStmt:
		// Land the label's block so `goto L` joins here, then build the
		// labeled statement with the label pending for break/continue.
		lb := b.labelBlock(n.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.pendingLabel = n.Label.Name
		b.stmt(n.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, n)
		b.jump(b.g.Exit)
		b.startUnreachable()

	case *ast.BranchStmt:
		b.branch(n)

	case *ast.IfStmt:
		b.ifStmt(n)

	case *ast.ForStmt:
		b.forStmt(n)

	case *ast.RangeStmt:
		b.rangeStmt(n)

	case *ast.SwitchStmt:
		b.switchStmt(n.Init, n.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(n.Init, n.Body)

	case *ast.SelectStmt:
		b.selectStmt(n)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, n)
		b.cur.Stmts = append(b.cur.Stmts, n)

	default:
		// Plain statements (assignments, calls, sends, declarations,
		// go statements, ...) extend the current block.
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

func (b *builder) branch(n *ast.BranchStmt) {
	label := ""
	if n.Label != nil {
		label = n.Label.Name
	}
	var target *Block
	switch n.Tok {
	case token.BREAK:
		target = findTarget(b.breaks, label)
	case token.CONTINUE:
		target = findTarget(b.continues, label)
	case token.GOTO:
		if n.Label != nil {
			target = b.labelBlock(n.Label.Name)
		}
	case token.FALLTHROUGH:
		// Handled by switchStmt via fallthroughTarget; a stray one is
		// malformed source — drop the edge.
	default:
		// A BranchStmt carries no other tokens in well-formed source.
	}
	b.cur.Stmts = append(b.cur.Stmts, n)
	if target != nil {
		b.jump(target)
	}
	b.startUnreachable()
}

func (b *builder) ifStmt(n *ast.IfStmt) {
	if n.Init != nil {
		b.cur.Stmts = append(b.cur.Stmts, n.Init)
	}
	head := b.cur
	head.Cond = n.Cond
	then := b.newBlock()
	after := b.newBlock()
	head.Succs = append(head.Succs, then)
	elseTarget := after
	if n.Else != nil {
		elseTarget = b.newBlock()
	}
	head.Succs = append(head.Succs, elseTarget)

	b.cur = then
	b.stmtList(n.Body.List)
	b.jump(after)

	if n.Else != nil {
		b.cur = elseTarget
		b.stmt(n.Else)
		b.jump(after)
	}
	b.cur = after
}

func (b *builder) forStmt(n *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if n.Init != nil {
		b.cur.Stmts = append(b.cur.Stmts, n.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	post := head
	if n.Post != nil {
		post = b.newBlock()
	}
	b.jump(head)

	b.cur = head
	if n.Cond != nil {
		head.Cond = n.Cond
		head.Succs = append(head.Succs, body, after)
	} else {
		head.Succs = append(head.Succs, body)
	}

	b.pushLoop(label, after, post)
	b.cur = body
	b.stmtList(n.Body.List)
	b.jump(post)
	b.popLoop()

	if n.Post != nil {
		b.cur = post
		b.stmt(n.Post)
		b.jump(head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(n *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	b.jump(head)

	// The RangeStmt itself sits in the head block so analyzers see the
	// iteration variables being (re)assigned each trip.
	head.Stmts = append(head.Stmts, n)
	head.Succs = append(head.Succs, body, after)

	b.pushLoop(label, after, head)
	b.cur = body
	b.stmtList(n.Body.List)
	b.jump(head)
	b.popLoop()
	b.cur = after
}

// switchStmt covers value and type switches: the head fans out to every
// case clause (and to after, when there is no default).
func (b *builder) switchStmt(init ast.Stmt, body *ast.BlockStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if init != nil {
		b.cur.Stmts = append(b.cur.Stmts, init)
	}
	head := b.cur
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}

	// A switch is a break target but not a continue target.
	b.breaks = append(b.breaks, targetFrame{label, after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.stmtListWithFallthrough(cc.Body, blocks, i)
		b.jump(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// stmtListWithFallthrough builds a case body, wiring a trailing
// fallthrough to the next case block.
func (b *builder) stmtListWithFallthrough(list []ast.Stmt, blocks []*Block, i int) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
			b.cur.Stmts = append(b.cur.Stmts, br)
			b.jump(blocks[i+1])
			b.startUnreachable()
			continue
		}
		b.stmt(s)
	}
}

func (b *builder) selectStmt(n *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	after := b.newBlock()

	b.breaks = append(b.breaks, targetFrame{label, after})
	for _, c := range n.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		head.Succs = append(head.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// String renders the graph for golden tests and debugging: one section
// per block, statements one-per-line, then the condition and successor
// list. Unreachable empty blocks are elided.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fn %s\n", g.Name)
	reach := g.reachable()
	for _, blk := range g.Blocks {
		if !reach[blk] && len(blk.Stmts) == 0 && blk != g.Blocks[0] {
			continue
		}
		name := fmt.Sprintf("b%d", blk.Index)
		if blk == g.Exit {
			name += " (exit)"
		}
		fmt.Fprintf(&sb, "%s:\n", name)
		for _, s := range blk.Stmts {
			fmt.Fprintf(&sb, "\t%s\n", render(s))
		}
		if blk.Cond != nil {
			fmt.Fprintf(&sb, "\tcond %s\n", render(blk.Cond))
		}
		if len(blk.Succs) > 0 {
			var succs []string
			for i, s := range blk.Succs {
				tag := ""
				if blk.Cond != nil && i == 0 {
					tag = "(T)"
				} else if blk.Cond != nil && i == 1 {
					tag = "(F)"
				}
				succs = append(succs, fmt.Sprintf("b%d%s", s.Index, tag))
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(succs, " "))
		}
	}
	if len(g.Defers) > 0 {
		sb.WriteString("defers:\n")
		for _, d := range g.Defers {
			fmt.Fprintf(&sb, "\t%s\n", render(d))
		}
	}
	return sb.String()
}

// reachable marks blocks reachable from the entry.
func (g *Graph) reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

// render prints a node on one line, collapsing interior newlines.
func render(n ast.Node) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), n)
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\t", "")
	return s
}
