package cfg_test

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/analysis/cfg"
)

var update = flag.Bool("update", false, "rewrite the CFG golden file")

// TestGolden builds the CFG of every fixture function and compares the
// concatenated dumps against testdata/funcs.golden. Regenerate after a
// deliberate shape change with `go test ./internal/analysis/cfg -update`.
func TestGolden(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "funcs.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range f.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		g := cfg.New(cfg.FuncName(fn), fn.Body)
		sb.WriteString(g.String())
		sb.WriteString("\n")
	}
	got := sb.String()
	golden := filepath.Join("testdata", "funcs.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestShapes spot-checks structural properties the golden dump alone
// would not explain: edge counts, condition placement, defer capture.
func TestShapes(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "funcs.go"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*cfg.Graph{}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			graphs[fn.Name.Name] = cfg.New(fn.Name.Name, fn.Body)
		}
	}

	g := graphs["ifElse"]
	entry := g.Blocks[0]
	if entry.Cond == nil || len(entry.Succs) != 2 {
		t.Errorf("ifElse entry: want cond with 2 successors, got cond=%v succs=%d", entry.Cond, len(entry.Succs))
	}

	g = graphs["earlyReturn"]
	// Both the then-return and the final return must reach Exit.
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Errorf("earlyReturn: want 2 edges into exit, got %d", preds)
	}

	g = graphs["loop"]
	// The loop head must have a back edge pointing at it.
	var head *cfg.Block
	for _, b := range g.Blocks {
		if b.Cond != nil && len(b.Succs) == 2 {
			head = b
			break
		}
	}
	if head == nil {
		t.Fatal("loop: no conditional head block")
	}
	back := false
	for _, b := range g.Blocks {
		if b == head {
			continue
		}
		for _, s := range b.Succs {
			if s == head {
				back = true
			}
		}
	}
	if !back {
		t.Error("loop: no back edge to the head")
	}

	if g := graphs["deferred"]; len(g.Defers) != 1 {
		t.Errorf("deferred: want 1 collected defer, got %d", len(g.Defers))
	}

	// goto joins: the label block must have two predecessors (the fall-in
	// and the goto).
	g = graphs["gotos"]
	counts := map[*cfg.Block]int{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			counts[s]++
		}
	}
	joined := false
	for _, n := range counts {
		if n >= 2 {
			joined = true
		}
	}
	if !joined {
		t.Error("gotos: expected a join block with 2 predecessors")
	}
}
