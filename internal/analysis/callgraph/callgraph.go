// Package callgraph builds a whole-program static call graph over the
// type information the loader already produces, the reachability
// substrate under the purity analyzer. Standard library only.
//
// The graph is conservative in the direction lint needs: every direct
// call (plain function, qualified package function, method on a
// concrete receiver) becomes an edge, and every *reference* to a
// function that is not itself the callee of a call — a function value
// passed, stored or returned — becomes a Ref edge, on the assumption
// that a function someone took the value of may be called. What it
// deliberately does not attempt: dynamic dispatch through interfaces
// and resolution of arbitrary function-typed variables. Those callees
// are invisible, which a purity-style analyzer accepts as a documented
// limitation (the repo's training paths call concrete helpers).
//
// Calls made inside a function literal are attributed to the enclosing
// declared function: the closure either runs inside the caller or
// escapes from it, and for "does this entry point transitively reach X"
// both cases charge the encloser.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Pkg is one loaded package, the subset of the loader's output the
// builder needs (decoupled so cfg/callgraph stay importable from the
// framework without cycles).
type Pkg struct {
	Files []*ast.File
	Info  *types.Info
}

// Call is one outgoing edge of a node.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
	// Ref marks a bare function-value reference rather than a direct
	// call expression.
	Ref bool
}

// Node is one declared function and its outgoing edges.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Calls lists the static callees in source order, deduplicated by
	// callee (first position wins).
	Calls []Call
}

// Graph maps every declared function of the analyzed packages to its
// node. Functions only known through export data (imported packages)
// have no node; analyzers consult cross-package facts for those.
type Graph struct {
	nodes map[*types.Func]*Node
}

// Build walks every function declaration of every package and records
// its outgoing call and reference edges.
func Build(pkgs []Pkg) *Graph {
	g := &Graph{nodes: map[*types.Func]*Node{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &Node{Fn: fn, Decl: decl}
				if decl.Body != nil {
					collectEdges(pkg.Info, decl.Body, node)
				}
				g.nodes[fn] = node
			}
		}
	}
	return g
}

// Node returns fn's node, or nil when fn was not declared in the
// analyzed packages.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Decl returns fn's declaration, or nil.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl {
	if n := g.nodes[fn]; n != nil {
		return n.Decl
	}
	return nil
}

// Funcs returns every declared function, sorted by full name so
// iteration order (and everything derived from it) is deterministic.
func (g *Graph) Funcs() []*types.Func {
	out := make([]*types.Func, 0, len(g.nodes))
	for fn := range g.nodes {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Reachable reports whether target is reachable from `from` over call
// and reference edges, and returns the shortest chain of callees
// leading to it (excluding `from`, including target). Both ends must be
// declared in the analyzed packages for edges to exist.
func (g *Graph) Reachable(from, target *types.Func) ([]*types.Func, bool) {
	type item struct {
		fn   *types.Func
		prev *item
	}
	seen := map[*types.Func]bool{from: true}
	queue := []*item{{fn: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.nodes[cur.fn]
		if node == nil {
			continue
		}
		for _, c := range node.Calls {
			if seen[c.Callee] {
				continue
			}
			seen[c.Callee] = true
			next := &item{fn: c.Callee, prev: cur}
			if c.Callee == target {
				var chain []*types.Func
				for it := next; it.prev != nil; it = it.prev {
					chain = append(chain, it.fn)
				}
				for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
					chain[i], chain[j] = chain[j], chain[i]
				}
				return chain, true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

// collectEdges gathers call and reference edges from one body,
// deduplicating by callee.
func collectEdges(info *types.Info, body *ast.BlockStmt, node *Node) {
	seen := map[*types.Func]bool{}
	// calleeIdents marks identifiers consumed as the Fun of a call, so
	// the reference sweep does not double-count them.
	calleeIdents := map[*ast.Ident]bool{}
	add := func(fn *types.Func, pos token.Pos, ref bool) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		node.Calls = append(node.Calls, Call{Callee: fn, Pos: pos, Ref: ref})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, id := resolveCallee(info, call.Fun)
		if id != nil {
			calleeIdents[id] = true
		}
		add(fn, call.Pos(), false)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			add(fn, id.Pos(), true)
		}
		return true
	})
}

// resolveCallee resolves the callee of a call expression to a declared
// or imported *types.Func, also returning the identifier that named it
// (the selector's Sel, or the plain ident).
func resolveCallee(info *types.Info, fun ast.Expr) (*types.Func, *ast.Ident) {
	switch e := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn, e
	case *ast.SelectorExpr:
		// Methods (concrete receivers) and qualified package functions
		// both resolve through Uses of the selector identifier; method
		// expressions/values resolve the same way.
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn, e.Sel
	case *ast.ParenExpr:
		return resolveCallee(info, e.X)
	}
	return nil, nil
}
