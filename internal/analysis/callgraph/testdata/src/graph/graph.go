// Fixture for the call-graph reachability table test: direct calls,
// method calls, a function value passed as an argument (Ref edge), a
// mutual recursion cycle, and a call made from inside a goroutine
// closure (attributed to the enclosing function).
package graph

func A() { B() }

func B() {
	C()
	D()
}

func C() {}

func D() {
	helper(E) // E escapes as a value: a Ref edge
}

func E() {}

func helper(f func()) { f() }

type T struct{}

func (t T) M() { C() }

func F() {
	T{}.M()
}

func Cycle1() { Cycle2() }
func Cycle2() { Cycle1() }

func Closure() {
	go func() {
		C()
	}()
}

func Isolated() {}
