package callgraph_test

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"temporaldoc/internal/analysis/callgraph"
	"temporaldoc/internal/analysis/load"
)

func buildFixture(t *testing.T) (*callgraph.Graph, map[string]*types.Func) {
	t.Helper()
	res, err := load.Packages(filepath.Join("testdata", "src"), "cgfix/graph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var pkgs []callgraph.Pkg
	for _, p := range res.Packages {
		pkgs = append(pkgs, callgraph.Pkg{Files: p.Files, Info: p.Info})
	}
	g := callgraph.Build(pkgs)
	byName := map[string]*types.Func{}
	for _, fn := range g.Funcs() {
		byName[fn.Name()] = fn
	}
	return g, byName
}

// TestReachability drives the table: who can reach whom, over call and
// reference edges.
func TestReachability(t *testing.T) {
	g, fns := buildFixture(t)
	table := []struct {
		from, to string
		want     bool
	}{
		{"A", "C", true},      // A → B → C
		{"A", "E", true},      // A → B → D → (ref) E
		{"A", "helper", true}, // A → B → D → helper
		{"C", "A", false},     // no edges out of C
		{"F", "C", true},      // F → T.M → C
		{"Cycle1", "Cycle2", true},
		{"Cycle2", "Cycle1", true},
		{"Closure", "C", true}, // closure body attributed to Closure
		{"A", "Isolated", false},
		{"Isolated", "A", false},
	}
	for _, tc := range table {
		from, ok := fns[tc.from]
		if !ok {
			t.Fatalf("fixture function %q not in graph", tc.from)
		}
		to, ok := fns[tc.to]
		if !ok {
			t.Fatalf("fixture function %q not in graph", tc.to)
		}
		_, got := g.Reachable(from, to)
		if got != tc.want {
			t.Errorf("Reachable(%s, %s) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

// TestChain checks the shortest-path provenance the purity analyzer
// renders: A reaches C through B, in that order.
func TestChain(t *testing.T) {
	g, fns := buildFixture(t)
	chain, ok := g.Reachable(fns["A"], fns["C"])
	if !ok {
		t.Fatal("A should reach C")
	}
	var names []string
	for _, fn := range chain {
		names = append(names, fn.Name())
	}
	if got := strings.Join(names, "→"); got != "B→C" {
		t.Errorf("chain = %s, want B→C", got)
	}
}

// TestRefEdge asserts the function-value reference is marked Ref and
// the plain call is not.
func TestRefEdge(t *testing.T) {
	g, fns := buildFixture(t)
	node := g.Node(fns["D"])
	if node == nil {
		t.Fatal("no node for D")
	}
	var sawHelper, sawE bool
	for _, c := range node.Calls {
		switch c.Callee.Name() {
		case "helper":
			sawHelper = true
			if c.Ref {
				t.Error("helper is a direct call, marked Ref")
			}
		case "E":
			sawE = true
			if !c.Ref {
				t.Error("E is a value reference, not marked Ref")
			}
		}
	}
	if !sawHelper || !sawE {
		t.Errorf("D's edges missing: helper=%v E=%v", sawHelper, sawE)
	}
}
