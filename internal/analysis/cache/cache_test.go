package cache_test

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"temporaldoc/internal/analysis/cache"
	"temporaldoc/internal/analysis/facts"
)

func openStore(t *testing.T) *cache.Store {
	t.Helper()
	s, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func sampleEntry() *cache.Entry {
	return &cache.Entry{
		Key:        "k123",
		ImportPath: "mod/p",
		Check:      "purity",
		Facts:      []byte(`{"f":"blob"}`),
		Diags: []cache.Diag{
			{Check: "purity", File: "p/p.go", Line: 3, Col: 7, Message: "m", Suppressed: true},
		},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t)
	want := sampleEntry()
	if err := s.Put(want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(want.Key, want.ImportPath, want.Check)
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if !bytes.Equal(got.Facts, want.Facts) {
		t.Errorf("Facts = %s, want %s", got.Facts, want.Facts)
	}
	if len(got.Diags) != 1 || got.Diags[0] != want.Diags[0] {
		t.Errorf("Diags = %+v, want %+v", got.Diags, want.Diags)
	}
	if key, ok := s.LastKey(want.ImportPath, want.Check); !ok || key != want.Key {
		t.Errorf("LastKey = %q, %v; want %q, true", key, ok, want.Key)
	}
}

// TestGetValidatesIdentity: an entry found under the right key but
// recording a different package or check is a miss (hand-edited or
// colliding stores must not leak wrong results).
func TestGetValidatesIdentity(t *testing.T) {
	s := openStore(t)
	if err := s.Put(sampleEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k123", "mod/other", "purity"); ok {
		t.Error("Get hit with a mismatched import path")
	}
	if _, ok := s.Get("k123", "mod/p", "determinism"); ok {
		t.Error("Get hit with a mismatched check")
	}
	if _, ok := s.Get("nope", "mod/p", "purity"); ok {
		t.Error("Get hit a never-written key")
	}
}

// TestCorruptObjectIsMiss: undecodable objects behave exactly like
// absent ones.
func TestCorruptObjectIsMiss(t *testing.T) {
	s := openStore(t)
	e := sampleEntry()
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	var clobbered bool
	err := filepath.WalkDir(filepath.Join(s.Dir(), "o"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		clobbered = true
		return os.WriteFile(path, []byte("{torn"), 0o644)
	})
	if err != nil || !clobbered {
		t.Fatalf("clobbering objects: err=%v clobbered=%v", err, clobbered)
	}
	if _, ok := s.Get(e.Key, e.ImportPath, e.Check); ok {
		t.Error("Get returned a corrupt entry")
	}
	// The advisory index survives — that is what distinguishes a stale
	// entry from a cold one in the driver's stats.
	if key, ok := s.LastKey(e.ImportPath, e.Check); !ok || key != e.Key {
		t.Errorf("LastKey after corruption = %q, %v; want %q, true", key, ok, e.Key)
	}
}

// TestFactBlobFileRoundTrip: a sealed facts blob survives the full
// disk round trip — Store.Export → cache entry → Get → facts.Import —
// which is the path a warm run's cross-package reads take.
func TestFactBlobFileRoundTrip(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", "package p\nfunc A() {}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}}
	pkg, err := (&types.Config{Importer: importer.Default()}).Check("fix/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	var fn *types.Func
	for _, obj := range info.Defs {
		if tf, ok := obj.(*types.Func); ok && tf.Name() == "A" {
			fn = tf
		}
	}
	if fn == nil {
		t.Fatal("fixture func not found")
	}
	_ = pkg

	src := facts.NewStore()
	if err := src.Begin("fix/p"); err != nil {
		t.Fatal(err)
	}
	src.Put(fn, "unseeded", "rand.New at p.go:2 seeded from time.Now")
	if err := src.Seal(); err != nil {
		t.Fatal(err)
	}

	s := openStore(t)
	if err := s.Put(&cache.Entry{Key: "k", ImportPath: "fix/p", Check: "seedflow", Facts: src.Export("fix/p")}); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get("k", "fix/p", "seedflow")
	if !ok {
		t.Fatal("entry missed")
	}
	dst := facts.NewStore()
	if err := dst.Import("fix/p", e.Facts); err != nil {
		t.Fatalf("Import of round-tripped blob: %v", err)
	}
	if d, ok := dst.Get(facts.FuncID(fn), "unseeded"); !ok || d != "rand.New at p.go:2 seeded from time.Now" {
		t.Fatalf("round-tripped fact = %q, %v", d, ok)
	}
}
