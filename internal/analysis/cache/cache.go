// Package cache is the on-disk store behind tdlint's incremental
// analysis. It is content-addressed the way the go build cache is:
// every (package, analyzer) pair owns an *action key* — a hash of
// everything that can influence that analyzer's output on that package
// (source bytes, direct dependencies' action keys, compiler export
// data of out-of-set imports, the analyzer's name/version/config, the
// engine and toolchain fingerprint; the driver computes it) — and the
// store maps the key to the sealed result: the analyzer's serialized
// fact blob plus its diagnostics, positions resolved and in-source
// suppression state baked in.
//
// Entries are immutable: a key names exactly one possible value, so a
// lookup never needs validation beyond "does the object decode and
// carry the key it was filed under". Corrupt or truncated objects are
// a miss, never an error — the driver recomputes and rewrites. Writes
// go through a temp file and a rename, so concurrent workers (and
// concurrent tdlint processes sharing a cache directory) can only ever
// observe complete entries.
//
// Alongside the object store the cache keeps a tiny index mapping
// (package, analyzer) to the last key written for it. The index is
// advisory — only the stats counters read it, to distinguish a cold
// miss from an invalidation — and its loss is harmless.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Diag is one cached diagnostic: the position is pre-resolved to a
// module-relative path so a hit never needs the package parsed, and
// the in-source suppression verdict is baked in (the directives live
// in the same sources the action key hashes, so the verdict can never
// go stale while the key still matches).
type Diag struct {
	// Check is the analyzer that reported the diagnostic. Usually the
	// entry's own check; the suppression pseudo-entry stores
	// "lintdirective" findings here.
	Check string `json:"check"`
	// File is the module-relative source path.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message is the diagnostic text, byte-for-byte what the live run
	// reported.
	Message string `json:"message"`
	// Suppressed marks a finding silenced by an in-source //lint:ignore
	// directive. Path excludes and the baseline are applied fresh on
	// every run, never cached.
	Suppressed bool `json:"suppressed,omitempty"`
}

// Entry is one sealed (package, analyzer) result.
type Entry struct {
	// Key is the action key the entry was stored under.
	Key string `json:"key"`
	// ImportPath and Check identify what was analyzed; they are
	// validated on load as a defense against hash-collision absurdity
	// and hand-edited stores.
	ImportPath string `json:"importPath"`
	Check      string `json:"check"`
	// Facts is the analyzer's sealed fact blob for the package (absent
	// for purely intraprocedural analyzers) — the exact bytes
	// facts.Store.Export returns, ready for Import by a warm run.
	Facts json.RawMessage `json:"facts,omitempty"`
	// Diags are the diagnostics the analyzer reported on this package.
	Diags []Diag `json:"diags,omitempty"`
}

// Store is one cache directory.
type Store struct {
	dir string
}

// Open prepares a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	for _, sub := range []string{"o", "i"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cache: %v", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// objectPath shards objects by the key's first byte, go-build-cache
// style, so one directory never accumulates every entry.
func (s *Store) objectPath(key string) string {
	if len(key) < 3 {
		return filepath.Join(s.dir, "o", "xx", key+".json")
	}
	return filepath.Join(s.dir, "o", key[:2], key[2:]+".json")
}

// indexPath addresses the advisory last-key record of one
// (package, analyzer) pair.
func (s *Store) indexPath(importPath, check string) string {
	h := sha256.Sum256([]byte(importPath + "\x00" + check))
	return filepath.Join(s.dir, "i", hex.EncodeToString(h[:16]))
}

// Get returns the entry stored under key, or (nil, false) on any kind
// of absence: missing file, undecodable JSON, or an entry whose
// recorded identity disagrees with what the caller is looking for.
// Corruption is deliberately indistinguishable from a cold miss.
func (s *Store) Get(key, importPath, check string) (*Entry, bool) {
	data, err := os.ReadFile(s.objectPath(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Key != key || e.ImportPath != importPath || e.Check != check {
		return nil, false
	}
	return &e, true
}

// Put stores the entry under its key and records it as the last key of
// its (package, analyzer) pair. Both writes are atomic
// (temp-file-plus-rename), so readers never see a torn object.
func (s *Store) Put(e *Entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cache: encoding %s/%s: %v", e.ImportPath, e.Check, err)
	}
	if err := writeAtomic(s.objectPath(e.Key), data); err != nil {
		return fmt.Errorf("cache: %v", err)
	}
	if err := writeAtomic(s.indexPath(e.ImportPath, e.Check), []byte(e.Key)); err != nil {
		return fmt.Errorf("cache: %v", err)
	}
	return nil
}

// LastKey reports the most recent key written for (package, analyzer),
// letting the driver count an entry that exists under a *different*
// key as invalidated rather than cold.
func (s *Store) LastKey(importPath, check string) (string, bool) {
	data, err := os.ReadFile(s.indexPath(importPath, check))
	if err != nil || len(data) == 0 {
		return "", false
	}
	return string(data), true
}

// writeAtomic publishes data at path via a same-directory temp file and
// rename.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
