// Package load turns Go package patterns into parsed, type-checked
// packages using only the standard library and the go tool itself: it
// shells out to `go list -export -deps -json` for package metadata and
// compiled export data, parses the main-module sources with go/parser,
// and type-checks them with go/types against a gc-export-data importer.
// This is the subset of golang.org/x/tools/go/packages that tdlint
// needs, without the dependency.
//
// Loading is split into two phases so the incremental cache can decide
// what to parse before paying for it: List fetches the `go list`
// metadata (file lists, export-data paths, the import graph) and
// Meta.Load parses and type-checks a chosen subset of the main-module
// packages. Packages that the driver proves unchanged — their cache
// action keys hit — are never parsed at all.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked main-module package.
type Package struct {
	ImportPath string
	Dir        string
	// Files are the parsed non-test sources (comments included), in the
	// build-order go list reports.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Result is the outcome of one Packages call.
type Result struct {
	Fset *token.FileSet
	// Packages holds the type-checked main-module packages matched by
	// the patterns, sorted by import path.
	Packages []*Package
	// ModuleDir is the main module root, for rendering relative paths.
	ModuleDir string
}

// MetaPkg is the per-package `go list` metadata the cache layer reads:
// enough to hash a package's inputs (sources, imports, export data)
// without parsing anything.
type MetaPkg struct {
	ImportPath string
	Dir        string
	// GoFiles are the non-test sources, relative to Dir.
	GoFiles []string
	// Export is the compiled export-data file, when go list produced
	// one.
	Export string
	// Imports are the direct imports, as import paths.
	Imports []string
	// Main marks a package of the main module — the analyzed set.
	Main bool
}

// Meta is the listed-but-not-yet-loaded view of a pattern set.
type Meta struct {
	// ModuleDir is the main module root.
	ModuleDir string
	// Pkgs holds every package in the dependency closure, keyed by
	// import path.
	Pkgs map[string]*MetaPkg
	// Targets are the main-module packages with sources — the set a
	// full load would parse and type-check — sorted by import path.
	Targets []*MetaPkg

	dir string
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Imports    []string
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
	Error *struct{ Err string }
}

// goList runs `go list` in dir and decodes its JSON package stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Imports,Standard,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports returns the import-path → export-data-file table for the
// patterns and all of their dependencies. Tests use it to resolve
// standard-library imports of fixture packages.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Importer returns a types.Importer that reads gc export data through
// the given import-path → file table.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewInfo returns a types.Info with every map analyzers rely on
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// List fetches `go list` metadata for the patterns rooted at dir
// without parsing or type-checking anything.
func List(dir string, patterns ...string) (*Meta, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	m := &Meta{Pkgs: make(map[string]*MetaPkg, len(pkgs)), dir: dir}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		mp := &MetaPkg{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			GoFiles:    p.GoFiles,
			Export:     p.Export,
			Imports:    p.Imports,
			Main:       p.Module != nil && p.Module.Main,
		}
		m.Pkgs[mp.ImportPath] = mp
		if mp.Main {
			m.ModuleDir = p.Module.Dir
			if len(mp.GoFiles) > 0 {
				m.Targets = append(m.Targets, mp)
			}
		}
	}
	sort.Slice(m.Targets, func(i, j int) bool { return m.Targets[i].ImportPath < m.Targets[j].ImportPath })
	return m, nil
}

// Load parses and type-checks the target packages for which only
// returns true (nil loads every target). Dependencies — targets
// excluded from the load included — resolve through compiled export
// data, so skipping a target changes nothing for the packages that
// import it.
func (m *Meta) Load(only func(importPath string) bool) (*Result, error) {
	exports := make(map[string]string, len(m.Pkgs))
	for _, p := range m.Pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	res := &Result{Fset: fset, ModuleDir: m.ModuleDir}
	for _, p := range m.Targets {
		if only != nil && !only(p.ImportPath) {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		res.Packages = append(res.Packages, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return res, nil
}

// Packages loads, parses and type-checks the main-module packages
// matched by patterns, rooted at dir. Dependencies (the standard
// library included) come from compiled export data, so only the
// analyzed sources are parsed.
func Packages(dir string, patterns ...string) (*Result, error) {
	m, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return m.Load(nil)
}

// DependencyOrder topologically sorts pkgs so every package follows all
// of its in-set dependencies — the order fact computation must run in.
// Ties (and everything else) stay deterministic: the walk visits
// packages and imports in sorted order.
func DependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	seen := make(map[string]bool, len(pkgs))
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.ImportPath] {
			return
		}
		seen[p.ImportPath] = true
		imports := p.Types.Imports()
		paths := make([]string, 0, len(imports))
		for _, imp := range imports {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			if dep, ok := byPath[path]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}
	return out
}
