// Package analysis is the dependency-free static-analysis framework
// behind cmd/tdlint. It mirrors the shape of golang.org/x/tools/go/
// analysis — an Analyzer carries a Run function over a type-checked
// Pass and reports Diagnostics — but is built entirely on the standard
// library (go/parser, go/types, go/importer), so the linter adds no
// module dependencies.
//
// The framework exists to turn the pipeline's hardest-won dynamic
// properties — bit-deterministic training across worker counts,
// byte-identical models with telemetry on or off, nil-safe zero-cost
// telemetry — into statically checked contracts. Each analyzer in
// internal/analysis/analyzers guards one such invariant; the driver in
// internal/analysis/driver applies them with suppression and baseline
// handling; cmd/tdlint is the CLI front end wired into `make lint`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"temporaldoc/internal/analysis/callgraph"
	"temporaldoc/internal/analysis/facts"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the check in diagnostics, //lint:ignore comments
	// and the baseline file. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant the check
	// guards, shown by `tdlint -help`.
	Doc string
	// Version is the analyzer's cache-busting version string. It is
	// folded into the incremental cache's action keys, so bumping it
	// invalidates exactly this analyzer's cached results — bump it on
	// any change to the analyzer's semantics (new patterns, changed
	// messages, fixed false negatives). Empty behaves as "0".
	Version string
	// Config is a canonical fingerprint of per-instance configuration
	// (entry-point lists, anchor package paths). Like Version it is
	// folded into cache action keys, so a reconfigured analyzer never
	// reads results computed under a different configuration.
	Config string
	// Facts, when non-nil, makes the analyzer interprocedural: the
	// driver runs it once per package in dependency order, before any
	// Run, to compute per-function summaries into pass.Facts. Each
	// package's facts are sealed (serialized) before its importers run,
	// so summaries cross package boundaries the same way export data
	// does. Facts must not report diagnostics — that is Run's job.
	Facts func(pass *Pass) error
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf. A non-nil error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed non-test sources of the package, with
	// comments (suppressions are comment-driven).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Graph is the whole-program call graph over every analyzed
	// package. Nil when the driver ran without interprocedural context.
	Graph *callgraph.Graph
	// Facts is this analyzer's cross-package fact store; non-nil only
	// for analyzers that declare a Facts phase.
	Facts *facts.Store

	report func(Diagnostic)
}

// NewPass assembles a pass that forwards findings to report. The driver
// owns construction; tests may build passes directly.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, report: report}
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     pos,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when untracked.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// Position resolves a diagnostic against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
