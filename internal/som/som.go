// Package som implements the Self-Organizing Feature Map used by both
// levels of the paper's hierarchical encoding architecture.
//
// The implementation is the classic online (incremental) SOM of Kohonen:
// a rectangular grid of units, each holding a weight vector of the input
// dimension; for every presented input the best-matching unit (BMU) is
// found by Euclidean distance and the BMU together with its neighbourhood
// is pulled towards the input. The neighbourhood kernel is Gaussian — the
// paper depends on this for the Gaussian membership functions built on
// top of trained maps (section 6.2).
//
// Training is deterministic for a fixed Config.Seed, which the rest of
// the system relies on for reproducible experiments.
package som

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config parameterises map construction and training.
type Config struct {
	// Width and Height give the grid dimensions (units = Width*Height).
	Width, Height int
	// Dim is the input/weight vector dimension.
	Dim int
	// Epochs is the number of passes over the training inputs.
	Epochs int
	// InitialLearningRate is the learning rate at t=0; it decays linearly
	// to FinalLearningRate over training.
	InitialLearningRate float64
	// FinalLearningRate is the learning rate at the final step.
	FinalLearningRate float64
	// InitialRadius is the Gaussian neighbourhood radius at t=0; it decays
	// exponentially to ~1 over training. Zero means max(Width,Height)/2.
	InitialRadius float64
	// Seed seeds weight initialisation and input shuffling.
	Seed int64
	// Shuffle controls whether inputs are presented in random order each
	// epoch. The paper presents words "in the same order" as the corpus,
	// so the hierarchical encoder disables shuffling.
	Shuffle bool
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("som: grid %dx%d must be positive", c.Width, c.Height)
	}
	if c.Dim <= 0 {
		return fmt.Errorf("som: dimension %d must be positive", c.Dim)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("som: epochs %d must be positive", c.Epochs)
	}
	if c.InitialLearningRate <= 0 {
		return errors.New("som: initial learning rate must be positive")
	}
	return nil
}

// Map is a trained (or in-training) self-organizing map.
type Map struct {
	cfg     Config
	weights [][]float64 // [unit][dim]
	awc     []float64   // average weight change per epoch, recorded by Train
}

// New creates a map with random initial weights in [0,1) scaled by
// initScale (use the input data range). Returns an error on a bad config.
func New(cfg Config, initScale float64) (*Map, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.InitialRadius <= 0 {
		cfg.InitialRadius = math.Max(float64(cfg.Width), float64(cfg.Height)) / 2
	}
	if cfg.FinalLearningRate <= 0 {
		cfg.FinalLearningRate = 0.01
	}
	if initScale <= 0 {
		initScale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	units := cfg.Width * cfg.Height
	weights := make([][]float64, units)
	backing := make([]float64, units*cfg.Dim)
	for u := range weights {
		weights[u], backing = backing[:cfg.Dim], backing[cfg.Dim:]
		for d := range weights[u] {
			weights[u][d] = rng.Float64() * initScale
		}
	}
	return &Map{cfg: cfg, weights: weights}, nil
}

// Config returns the configuration the map was built with (radius and
// final learning rate defaults resolved).
func (m *Map) Config() Config { return m.cfg }

// Units returns the number of units on the map (Width*Height).
func (m *Map) Units() int { return len(m.weights) }

// Dim returns the weight vector dimension.
func (m *Map) Dim() int { return m.cfg.Dim }

// Weights returns the weight vector of unit u. The returned slice aliases
// the map's storage; callers must not modify it.
func (m *Map) Weights(u int) []float64 { return m.weights[u] }

// Coords returns the (column, row) grid position of unit u.
func (m *Map) Coords(u int) (x, y int) {
	return u % m.cfg.Width, u / m.cfg.Width
}

// UnitAt returns the unit index at grid position (x, y).
func (m *Map) UnitAt(x, y int) int { return y*m.cfg.Width + x }

// gridDist2 is the squared Euclidean distance between two units on the grid.
func (m *Map) gridDist2(a, b int) float64 {
	ax, ay := m.Coords(a)
	bx, by := m.Coords(b)
	dx, dy := float64(ax-bx), float64(ay-by)
	return dx*dx + dy*dy
}

// dist2 is the squared Euclidean distance between input x and unit u's
// weight vector.
func (m *Map) dist2(x []float64, u int) float64 {
	var sum float64
	w := m.weights[u]
	for d := range w {
		diff := x[d] - w[d]
		sum += diff * diff
	}
	return sum
}

// BMU returns the best-matching unit for input x: the unit whose weight
// vector has the smallest Euclidean distance to x. Ties break towards the
// lower unit index, keeping results deterministic.
func (m *Map) BMU(x []float64) int {
	best, bestD := 0, math.Inf(1)
	for u := range m.weights {
		if d := m.dist2(x, u); d < bestD {
			best, bestD = u, d
		}
	}
	return best
}

// NearestK returns the k units closest to input x in weight space,
// ordered from nearest to farthest (the paper's "k most affected BMUs").
// If k exceeds the unit count, all units are returned.
func (m *Map) NearestK(x []float64, k int) []int {
	if k > len(m.weights) {
		k = len(m.weights)
	}
	if k <= 0 {
		return nil
	}
	// Selection over a small fixed k — maps here are at most 8x13 units.
	type cand struct {
		u int
		d float64
	}
	best := make([]cand, 0, k)
	for u := range m.weights {
		d := m.dist2(x, u)
		if len(best) < k {
			best = append(best, cand{u, d})
			for i := len(best) - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			continue
		}
		if d < best[k-1].d {
			best[k-1] = cand{u, d}
			for i := k - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.u
	}
	return out
}

// Train runs online SOM training over the inputs for the configured
// number of epochs, recording the average weight change (AWC) per epoch.
// Every input must have dimension Config.Dim.
func (m *Map) Train(inputs [][]float64) error {
	if len(inputs) == 0 {
		return errors.New("som: no training inputs")
	}
	for i, x := range inputs {
		if len(x) != m.cfg.Dim {
			return fmt.Errorf("som: input %d has dim %d, want %d", i, len(x), m.cfg.Dim)
		}
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	totalSteps := m.cfg.Epochs * len(inputs)
	// Exponential radius decay time constant so radius reaches ~1 at end.
	lambda := float64(totalSteps) / math.Max(math.Log(m.cfg.InitialRadius), 1e-9)
	step := 0
	m.awc = m.awc[:0]
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		if m.cfg.Shuffle {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var change float64
		var updates int
		for _, idx := range order {
			x := inputs[idx]
			t := float64(step) / float64(totalSteps)
			lr := m.cfg.InitialLearningRate + t*(m.cfg.FinalLearningRate-m.cfg.InitialLearningRate)
			radius := m.cfg.InitialRadius * math.Exp(-float64(step)/lambda)
			if radius < 0.5 {
				radius = 0.5
			}
			bmu := m.BMU(x)
			r2 := radius * radius
			for u := range m.weights {
				g2 := m.gridDist2(u, bmu)
				// Cut the neighbourhood at 3 radii: beyond that the
				// Gaussian factor is negligible.
				if g2 > 9*r2 {
					continue
				}
				h := math.Exp(-g2 / (2 * r2))
				w := m.weights[u]
				for d := range w {
					delta := lr * h * (x[d] - w[d])
					w[d] += delta
					change += math.Abs(delta)
					updates++
				}
			}
			step++
		}
		if updates > 0 {
			m.awc = append(m.awc, change/float64(updates))
		} else {
			m.awc = append(m.awc, 0)
		}
	}
	return nil
}

// AWC returns the average weight change recorded for each training epoch.
// The paper uses AWC curves to choose map sizes (7x13 and 8x8).
func (m *Map) AWC() []float64 { return append([]float64(nil), m.awc...) }

// QuantizationError returns the mean distance between each input and its
// BMU's weight vector — a standard goodness-of-fit diagnostic.
func (m *Map) QuantizationError(inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range inputs {
		sum += math.Sqrt(m.dist2(x, m.BMU(x)))
	}
	return sum / float64(len(inputs))
}

// TopographicError returns the fraction of inputs whose first and second
// BMUs are not grid neighbours — a standard topology-preservation
// diagnostic.
func (m *Map) TopographicError(inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	bad := 0
	for _, x := range inputs {
		nk := m.NearestK(x, 2)
		if len(nk) < 2 {
			continue
		}
		if m.gridDist2(nk[0], nk[1]) > 2 { // not in the 8-neighbourhood
			bad++
		}
	}
	return float64(bad) / float64(len(inputs))
}

// HitHistogram counts, for each unit, how many of the inputs select it as
// their BMU.
func (m *Map) HitHistogram(inputs [][]float64) []int {
	hits := make([]int, m.Units())
	for _, x := range inputs {
		hits[m.BMU(x)]++
	}
	return hits
}
