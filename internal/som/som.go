// Package som implements the Self-Organizing Feature Map used by both
// levels of the paper's hierarchical encoding architecture.
//
// The implementation is the classic online (incremental) SOM of Kohonen:
// a rectangular grid of units, each holding a weight vector of the input
// dimension; for every presented input the best-matching unit (BMU) is
// found by Euclidean distance and the BMU together with its neighbourhood
// is pulled towards the input. The neighbourhood kernel is Gaussian — the
// paper depends on this for the Gaussian membership functions built on
// top of trained maps (section 6.2).
//
// Weight storage is a single contiguous []float64 (unit-major) with a
// cached squared norm per unit, so BMU search is one cache-friendly sweep
// using the |x−w|² = |x|² − 2x·w + |w|² identity (|x|² is constant across
// units and drops out of the argmin). BMUBatch shards independent BMU
// queries across workers.
//
// Training is deterministic for a fixed Config.Seed, which the rest of
// the system relies on for reproducible experiments.
package som

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Config parameterises map construction and training.
type Config struct {
	// Width and Height give the grid dimensions (units = Width*Height).
	Width, Height int
	// Dim is the input/weight vector dimension.
	Dim int
	// Epochs is the number of passes over the training inputs.
	Epochs int
	// InitialLearningRate is the learning rate at t=0; it decays linearly
	// to FinalLearningRate over training.
	InitialLearningRate float64
	// FinalLearningRate is the learning rate at the final step.
	FinalLearningRate float64
	// InitialRadius is the Gaussian neighbourhood radius at t=0; it decays
	// exponentially to ~1 over training. Zero means max(Width,Height)/2.
	InitialRadius float64
	// Seed seeds weight initialisation and input shuffling.
	Seed int64
	// Shuffle controls whether inputs are presented in random order each
	// epoch. The paper presents words "in the same order" as the corpus,
	// so the hierarchical encoder disables shuffling.
	Shuffle bool
	// Observer, when non-nil, is called after every training epoch with
	// that epoch's statistics. It is diagnostics-only: observers must not
	// mutate the map, and training never reads anything back from them,
	// so results are bit-identical with and without an observer. The
	// per-epoch quantisation error is only computed when an observer is
	// attached (it costs one BMU sweep over the inputs per epoch).
	// Excluded from snapshots.
	Observer func(EpochStats) `json:"-"`
}

// EpochStats is the per-epoch training telemetry handed to
// Config.Observer.
type EpochStats struct {
	// Epoch is the 0-based epoch index.
	Epoch int
	// AWC is the epoch's average weight change (the paper's map-sizing
	// diagnostic).
	AWC float64
	// QuantError is the mean input-to-BMU distance at the end of the
	// epoch.
	QuantError float64
	// Radius and LearningRate are the neighbourhood radius and learning
	// rate in effect at the end of the epoch.
	Radius, LearningRate float64
	// Duration is the epoch's wall-clock training time (excluding the
	// observer's own quantisation-error sweep).
	Duration time.Duration
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("som: grid %dx%d must be positive", c.Width, c.Height)
	}
	if c.Dim <= 0 {
		return fmt.Errorf("som: dimension %d must be positive", c.Dim)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("som: epochs %d must be positive", c.Epochs)
	}
	if c.InitialLearningRate <= 0 {
		return errors.New("som: initial learning rate must be positive")
	}
	return nil
}

// Map is a trained (or in-training) self-organizing map.
type Map struct {
	cfg Config
	// flat holds every weight vector back to back (unit-major): unit u's
	// vector is flat[u*Dim : (u+1)*Dim].
	flat []float64
	// norm2 caches |w_u|² per unit, maintained incrementally by the
	// training rules, so BMU search needs only one dot product per unit.
	norm2 []float64
	awc   []float64 // average weight change per epoch, recorded by Train
}

// New creates a map with random initial weights in [0,1) scaled by
// initScale (use the input data range). Returns an error on a bad config.
func New(cfg Config, initScale float64) (*Map, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.InitialRadius <= 0 {
		cfg.InitialRadius = math.Max(float64(cfg.Width), float64(cfg.Height)) / 2
	}
	if cfg.FinalLearningRate <= 0 {
		cfg.FinalLearningRate = 0.01
	}
	if initScale <= 0 {
		initScale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	units := cfg.Width * cfg.Height
	flat := make([]float64, units*cfg.Dim)
	for i := range flat {
		flat[i] = rng.Float64() * initScale
	}
	m := &Map{cfg: cfg, flat: flat, norm2: make([]float64, units)}
	for u := 0; u < units; u++ {
		m.updateNorm(u)
	}
	return m, nil
}

// Config returns the configuration the map was built with (radius and
// final learning rate defaults resolved).
func (m *Map) Config() Config { return m.cfg }

// Units returns the number of units on the map (Width*Height).
func (m *Map) Units() int { return len(m.norm2) }

// Dim returns the weight vector dimension.
func (m *Map) Dim() int { return m.cfg.Dim }

// Weights returns the weight vector of unit u. The returned slice aliases
// the map's contiguous storage; callers must not modify it.
func (m *Map) Weights(u int) []float64 {
	d := m.cfg.Dim
	return m.flat[u*d : (u+1)*d : (u+1)*d]
}

// updateNorm recomputes the cached squared norm of unit u after its
// weight vector changed.
func (m *Map) updateNorm(u int) {
	w := m.Weights(u)
	var sum float64
	for _, v := range w {
		sum += v * v
	}
	m.norm2[u] = sum
}

// Coords returns the (column, row) grid position of unit u.
func (m *Map) Coords(u int) (x, y int) {
	return u % m.cfg.Width, u / m.cfg.Width
}

// UnitAt returns the unit index at grid position (x, y).
func (m *Map) UnitAt(x, y int) int { return y*m.cfg.Width + x }

// gridDist2 is the squared Euclidean distance between two units on the grid.
func (m *Map) gridDist2(a, b int) float64 {
	ax, ay := m.Coords(a)
	bx, by := m.Coords(b)
	dx, dy := float64(ax-bx), float64(ay-by)
	return dx*dx + dy*dy
}

// dist2 is the squared Euclidean distance between input x and unit u's
// weight vector.
func (m *Map) dist2(x []float64, u int) float64 {
	var sum float64
	w := m.Weights(u)
	for d := range w {
		diff := x[d] - w[d]
		sum += diff * diff
	}
	return sum
}

// dotProduct computes x·w with four accumulators, breaking the
// loop-carried add dependency so the sweep runs at multiplier throughput
// instead of add latency. The accumulation order is fixed, keeping BMU
// results deterministic.
//
//tdlint:hotpath
func dotProduct(x, w []float64) float64 {
	n := len(x)
	w = w[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * w[i]
		s1 += x[i+1] * w[i+1]
		s2 += x[i+2] * w[i+2]
		s3 += x[i+3] * w[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * w[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// score returns |w_u|² − 2·x·w_u, the BMU ranking score: it orders units
// exactly as squared Euclidean distance does (the |x|² term is constant
// across units) but needs one dot product instead of a subtract-square
// per dimension, against the cached norm.
//
//tdlint:hotpath
func (m *Map) score(x []float64, u int) float64 {
	return m.norm2[u] - 2*dotProduct(x, m.Weights(u))
}

// BMU returns the best-matching unit for input x: the unit whose weight
// vector has the smallest Euclidean distance to x. Ties break towards the
// lower unit index, keeping results deterministic.
//
//tdlint:hotpath
func (m *Map) BMU(x []float64) int {
	dim := len(x)
	best, bestS := 0, math.Inf(1)
	off := 0
	for u, n2 := range m.norm2 {
		// dotProduct inlined by hand (its loops defeat the inliner and a
		// per-unit call dominates at small dims); arithmetic is identical,
		// so BMU and score agree bit for bit.
		w := m.flat[off : off+dim : off+dim]
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= dim; i += 4 {
			s0 += x[i] * w[i]
			s1 += x[i+1] * w[i+1]
			s2 += x[i+2] * w[i+2]
			s3 += x[i+3] * w[i+3]
		}
		for ; i < dim; i++ {
			s0 += x[i] * w[i]
		}
		s := n2 - 2*((s0+s1)+(s2+s3))
		if s < bestS {
			best, bestS = u, s
		}
		off += dim
	}
	return best
}

// BMUBatch computes the BMU of every input, sharding the (independent)
// searches across workers goroutines. workers <= 0 means
// runtime.GOMAXPROCS(0). The result is positionally identical to calling
// BMU in a loop, for any worker count.
func (m *Map) BMUBatch(inputs [][]float64, workers int) []int {
	out := make([]int, len(inputs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers <= 1 {
		for i, x := range inputs {
			out[i] = m.BMU(x)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(inputs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = m.BMU(inputs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// NearestK returns the k units closest to input x in weight space,
// ordered from nearest to farthest (the paper's "k most affected BMUs").
// If k exceeds the unit count, all units are returned. Ranking uses the
// same score as BMU, so NearestK(x, 1)[0] == BMU(x) always holds.
func (m *Map) NearestK(x []float64, k int) []int {
	if k > m.Units() {
		k = m.Units()
	}
	if k <= 0 {
		return nil
	}
	// Selection over a small fixed k — maps here are at most 8x13 units.
	type cand struct {
		u int
		d float64
	}
	best := make([]cand, 0, k)
	for u := 0; u < m.Units(); u++ {
		d := m.score(x, u)
		if len(best) < k {
			best = append(best, cand{u, d})
			for i := len(best) - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			continue
		}
		if d < best[k-1].d {
			best[k-1] = cand{u, d}
			for i := k - 1; i > 0 && best[i].d < best[i-1].d; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.u
	}
	return out
}

// Train runs online SOM training over the inputs for the configured
// number of epochs, recording the average weight change (AWC) per epoch.
// Every input must have dimension Config.Dim.
func (m *Map) Train(inputs [][]float64) error {
	if len(inputs) == 0 {
		return errors.New("som: no training inputs")
	}
	for i, x := range inputs {
		if len(x) != m.cfg.Dim {
			return fmt.Errorf("som: input %d has dim %d, want %d", i, len(x), m.cfg.Dim)
		}
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
	order := make([]int, len(inputs))
	for i := range order {
		order[i] = i
	}
	totalSteps := m.cfg.Epochs * len(inputs)
	// Exponential radius decay time constant so radius reaches ~1 at end.
	lambda := float64(totalSteps) / math.Max(math.Log(m.cfg.InitialRadius), 1e-9)
	step := 0
	m.awc = m.awc[:0]
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		var epochStart time.Time
		if m.cfg.Observer != nil {
			epochStart = time.Now()
		}
		if m.cfg.Shuffle {
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var change float64
		var updates int
		var lastLR, lastRadius float64
		for _, idx := range order {
			x := inputs[idx]
			t := float64(step) / float64(totalSteps)
			lr := m.cfg.InitialLearningRate + t*(m.cfg.FinalLearningRate-m.cfg.InitialLearningRate)
			radius := m.cfg.InitialRadius * math.Exp(-float64(step)/lambda)
			if radius < 0.5 {
				radius = 0.5
			}
			lastLR, lastRadius = lr, radius
			bmu := m.BMU(x)
			r2 := radius * radius
			// Only units within 3 radii of the BMU receive a non-negligible
			// Gaussian pull; restrict the sweep to that bounding box instead
			// of scanning the whole grid. Units inside the box but outside
			// the circular cutoff are skipped exactly as before, so the
			// update sequence is bit-identical to a full-grid sweep.
			bx, by := m.Coords(bmu)
			reach := int(3 * radius)
			x0, x1 := bx-reach, bx+reach
			y0, y1 := by-reach, by+reach
			if x0 < 0 {
				x0 = 0
			}
			if y0 < 0 {
				y0 = 0
			}
			if x1 >= m.cfg.Width {
				x1 = m.cfg.Width - 1
			}
			if y1 >= m.cfg.Height {
				y1 = m.cfg.Height - 1
			}
			for gy := y0; gy <= y1; gy++ {
				for gx := x0; gx <= x1; gx++ {
					u := m.UnitAt(gx, gy)
					g2 := m.gridDist2(u, bmu)
					if g2 > 9*r2 {
						continue
					}
					h := math.Exp(-g2 / (2 * r2))
					w := m.Weights(u)
					// Accumulate the new squared norm while updating, in the
					// same order updateNorm would, saving a second pass.
					var nrm float64
					for d := range w {
						delta := lr * h * (x[d] - w[d])
						w[d] += delta
						change += math.Abs(delta)
						updates++
						nrm += w[d] * w[d]
					}
					m.norm2[u] = nrm
				}
			}
			step++
		}
		if updates > 0 {
			m.awc = append(m.awc, change/float64(updates))
		} else {
			m.awc = append(m.awc, 0)
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer(EpochStats{
				Epoch:        epoch,
				AWC:          m.awc[len(m.awc)-1],
				QuantError:   m.QuantizationError(inputs),
				Radius:       lastRadius,
				LearningRate: lastLR,
				Duration:     time.Since(epochStart),
			})
		}
	}
	return nil
}

// AWC returns a copy of the average weight change recorded for each
// training epoch (one allocation per call — cache the result outside
// loops). The paper uses AWC curves to choose map sizes (7x13 and 8x8).
func (m *Map) AWC() []float64 { return append([]float64(nil), m.awc...) }

// QuantizationError returns the mean distance between each input and its
// BMU's weight vector — a standard goodness-of-fit diagnostic.
func (m *Map) QuantizationError(inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range inputs {
		sum += math.Sqrt(m.dist2(x, m.BMU(x)))
	}
	return sum / float64(len(inputs))
}

// TopographicError returns the fraction of inputs whose first and second
// BMUs are not grid neighbours — a standard topology-preservation
// diagnostic.
func (m *Map) TopographicError(inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	bad := 0
	for _, x := range inputs {
		nk := m.NearestK(x, 2)
		if len(nk) < 2 {
			continue
		}
		if m.gridDist2(nk[0], nk[1]) > 2 { // not in the 8-neighbourhood
			bad++
		}
	}
	return float64(bad) / float64(len(inputs))
}

// HitHistogram counts, for each unit, how many of the inputs select it as
// their BMU.
func (m *Map) HitHistogram(inputs [][]float64) []int {
	hits := make([]int, m.Units())
	for _, bmu := range m.BMUBatch(inputs, 0) {
		hits[bmu]++
	}
	return hits
}
