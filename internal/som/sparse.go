package som

import "math"

// This file holds the table-driven/sparse encode kernels: BMU search
// over sparse inputs in float64 (bit-identical to the dense sweep) and
// an opt-in float32 variant.
//
// A level-2 word vector has at most 3×len(word) non-zero entries out of
// the char-map's unit count (91 in the paper's geometry), so the dense
// BMU sweep multiplies mostly by zero. The sparse kernels walk only the
// non-zero (index, value) pairs — but a skipped zero term must not
// change a single output bit, so the summation order is pinned to the
// dense kernel's exactly:
//
//   - dotProduct (and the hand-inlined sweep in BMU) splits indices
//     into four accumulator lanes — lane i%4 for i < dim&^3, lane 0 for
//     the tail — and reduces them as (s0+s1)+(s2+s3);
//   - BMUSparse assigns every non-zero term to the same lane, in the
//     same increasing-index order, and reduces identically;
//   - the skipped terms are x[i]*w[i] with x[i] = ±0.0, which contribute
//     exactly ±0.0: adding −0.0 is always a float64 identity, and adding
//     +0.0 is an identity unless the accumulator is −0.0 — impossible
//     here, because a lane only ever becomes −0.0 by summing −0.0
//     terms, in which case the sparse lane holds +0.0 and both reduce
//     to equal scores (−0.0 == +0.0 under the < that picks the BMU).
//
// TestBMUSparseLaneOrder pins the lane layout; if the dense kernel's
// accumulation scheme ever changes, that test (not a late parity
// failure) is what breaks.

// sparseLane returns the dense kernel's accumulator lane for index i:
// lane i%4 inside the unrolled body, lane 0 in the scalar tail that
// starts at n4 = dim&^3.
//
//tdlint:hotpath
func sparseLane(i, n4 int) int {
	if i >= n4 {
		return 0
	}
	return i & 3
}

// BMUSparse returns the best-matching unit of the sparse input whose
// dense expansion has val[k] at index idx[k] and zero everywhere else.
// Indices must be strictly increasing and within [0, Dim). The result —
// including tie-breaking towards the lower unit index — is bit-identical
// to calling BMU on the dense expansion (see the file comment for the
// exactness argument).
//
//tdlint:hotpath
func (m *Map) BMUSparse(idx []int32, val []float64) int {
	dim := m.cfg.Dim
	n4 := dim &^ 3
	val = val[:len(idx)]
	best, bestS := 0, math.Inf(1)
	off := 0
	for u, n2 := range m.norm2 {
		w := m.flat[off : off+dim : off+dim]
		var s [4]float64
		for k, i := range idx {
			s[sparseLane(int(i), n4)] += val[k] * w[i]
		}
		sc := n2 - 2*((s[0]+s[1])+(s[2]+s[3]))
		if sc < bestS {
			best, bestS = u, sc
		}
		off += dim
	}
	return best
}

// F32Kernel is a derived float32 view of a trained map's weights and
// cached squared norms, backing the opt-in float32 level-2 distance
// kernel. It is rebuilt from the float64 weights on demand — never
// persisted — so snapshots stay precision-agnostic. Norms are
// recomputed in float32 from the converted weights (not truncated from
// the float64 norms), keeping the |w|² − 2·x·w score arithmetic
// consistent within one precision.
type F32Kernel struct {
	dim   int
	flat  []float32
	norm2 []float32
}

// F32Kernel converts the map's weights to a float32 kernel view.
func (m *Map) F32Kernel() *F32Kernel {
	k := &F32Kernel{
		dim:   m.cfg.Dim,
		flat:  make([]float32, len(m.flat)),
		norm2: make([]float32, len(m.norm2)),
	}
	for i, v := range m.flat {
		k.flat[i] = float32(v)
	}
	for u := range k.norm2 {
		w := k.flat[u*k.dim : (u+1)*k.dim]
		var s float32
		for _, x := range w {
			s += x * x
		}
		k.norm2[u] = s
	}
	return k
}

// BMUSparse is the float32 analogue of Map.BMUSparse: same sparse input
// contract, same lane layout and tie-breaking, float32 arithmetic
// throughout. Deterministic, but NOT bit-identical to the float64
// kernels — callers opt in explicitly and must gate on an accuracy
// bound (see hsom.KernelFloat32).
//
//tdlint:hotpath
func (k *F32Kernel) BMUSparse(idx []int32, val []float32) int {
	dim := k.dim
	n4 := dim &^ 3
	val = val[:len(idx)]
	best := 0
	bestS := float32(math.Inf(1))
	off := 0
	for u, n2 := range k.norm2 {
		w := k.flat[off : off+dim : off+dim]
		var s [4]float32
		for j, i := range idx {
			s[sparseLane(int(i), n4)] += val[j] * w[i]
		}
		sc := n2 - 2*((s[0]+s[1])+(s[2]+s[3]))
		if sc < bestS {
			best, bestS = u, sc
		}
		off += dim
	}
	return best
}
