package som

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestTrainBatchRejectsBadInputs(t *testing.T) {
	m := mustNew(t, baseCfg())
	if err := m.TrainBatch(nil); err == nil {
		t.Error("empty inputs accepted")
	}
	if err := m.TrainBatch([][]float64{{1}}); err == nil {
		t.Error("wrong dimension accepted")
	}
}

func TestTrainBatchSeparatesClusters(t *testing.T) {
	cfg := baseCfg()
	cfg.Width, cfg.Height = 6, 6
	cfg.Epochs = 15
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(7))
	var inputs [][]float64
	for i := 0; i < 60; i++ {
		inputs = append(inputs, []float64{rng.Float64() * 0.1, rng.Float64() * 0.1})
		inputs = append(inputs, []float64{0.9 + rng.Float64()*0.1, 0.9 + rng.Float64()*0.1})
	}
	if err := m.TrainBatch(inputs); err != nil {
		t.Fatal(err)
	}
	a := m.BMU([]float64{0.05, 0.05})
	b := m.BMU([]float64{0.95, 0.95})
	if a == b {
		t.Fatal("clusters share a BMU after batch training")
	}
	if qe := m.QuantizationError(inputs); qe > 0.3 {
		t.Errorf("quantization error %v", qe)
	}
}

func TestTrainBatchOrderInvariant(t *testing.T) {
	// The defining property of batch training: presentation order does
	// not matter.
	rng := rand.New(rand.NewSource(9))
	var inputs [][]float64
	for i := 0; i < 50; i++ {
		inputs = append(inputs, []float64{rng.Float64(), rng.Float64()})
	}
	reversed := make([][]float64, len(inputs))
	for i := range inputs {
		reversed[len(inputs)-1-i] = inputs[i]
	}
	cfg := baseCfg()
	cfg.Epochs = 8
	m1, m2 := mustNew(t, cfg), mustNew(t, cfg)
	if err := m1.TrainBatch(inputs); err != nil {
		t.Fatal(err)
	}
	if err := m2.TrainBatch(reversed); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < m1.Units(); u++ {
		a, b := m1.Weights(u), m2.Weights(u)
		for d := range a {
			if math.Abs(a[d]-b[d]) > 1e-9 {
				t.Fatalf("unit %d differs under reordering: %v vs %v", u, a, b)
			}
		}
	}
}

func TestTrainBatchRecordsAWC(t *testing.T) {
	cfg := baseCfg()
	cfg.Epochs = 10
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(3))
	var inputs [][]float64
	for i := 0; i < 40; i++ {
		inputs = append(inputs, []float64{rng.Float64(), rng.Float64()})
	}
	if err := m.TrainBatch(inputs); err != nil {
		t.Fatal(err)
	}
	awc := m.AWC()
	if len(awc) != cfg.Epochs {
		t.Fatalf("AWC length %d", len(awc))
	}
	if awc[len(awc)-1] >= awc[0] {
		t.Errorf("batch AWC did not decrease: %v -> %v", awc[0], awc[len(awc)-1])
	}
}

func TestUMatrixShapeAndBoundary(t *testing.T) {
	cfg := baseCfg()
	cfg.Width, cfg.Height = 6, 6
	cfg.Epochs = 15
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(7))
	var inputs [][]float64
	for i := 0; i < 80; i++ {
		inputs = append(inputs, []float64{rng.Float64() * 0.05, rng.Float64() * 0.05})
		inputs = append(inputs, []float64{0.95 + rng.Float64()*0.05, 0.95 + rng.Float64()*0.05})
	}
	if err := m.TrainBatch(inputs); err != nil {
		t.Fatal(err)
	}
	um := m.UMatrix()
	if len(um) != m.Units() {
		t.Fatalf("U-matrix length %d", len(um))
	}
	// The boundary between the two clusters must contain larger
	// distances than the cluster interiors.
	aBMU := m.BMU([]float64{0.02, 0.02})
	var maxUM float64
	for _, v := range um {
		if v > maxUM {
			maxUM = v
		}
	}
	if um[aBMU] >= maxUM {
		t.Errorf("cluster interior has the maximal U-matrix value")
	}
}

func TestRenderUMatrix(t *testing.T) {
	m := mustNew(t, baseCfg())
	out := m.RenderUMatrix()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, line := range lines {
		if len(line) != 4 {
			t.Fatalf("row width %d: %q", len(line), line)
		}
	}
}

func TestBatchAndOnlineAgreeOnStructure(t *testing.T) {
	// Both training rules must discover the same 2-cluster structure
	// (identical BMU separation), even though exact weights differ.
	rng := rand.New(rand.NewSource(12))
	var inputs [][]float64
	for i := 0; i < 60; i++ {
		inputs = append(inputs, []float64{rng.Float64() * 0.1, 0})
		inputs = append(inputs, []float64{0.9 + rng.Float64()*0.1, 1})
	}
	cfg := baseCfg()
	cfg.Epochs = 15
	online, batch := mustNew(t, cfg), mustNew(t, cfg)
	if err := online.Train(inputs); err != nil {
		t.Fatal(err)
	}
	if err := batch.TrainBatch(inputs); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Map{online, batch} {
		if m.BMU([]float64{0.05, 0}) == m.BMU([]float64{0.95, 1}) {
			t.Error("a training rule failed to separate the clusters")
		}
	}
	if !reflect.DeepEqual(online.Config(), batch.Config()) {
		t.Error("configs diverged")
	}
}
