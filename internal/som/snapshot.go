package som

import "fmt"

// Snapshot is the serialisable state of a trained map.
type Snapshot struct {
	Config  Config      `json:"config"`
	Weights [][]float64 `json:"weights"`
	AWC     []float64   `json:"awc,omitempty"`
}

// Snapshot captures the map state for persistence.
func (m *Map) Snapshot() Snapshot {
	s := Snapshot{
		Config:  m.cfg,
		Weights: make([][]float64, m.Units()),
		AWC:     append([]float64(nil), m.awc...),
	}
	for u := range s.Weights {
		s.Weights[u] = append([]float64(nil), m.Weights(u)...)
	}
	return s
}

// FromSnapshot reconstructs a map from persisted state.
func FromSnapshot(s Snapshot) (*Map, error) {
	if err := s.Config.validate(); err != nil {
		return nil, err
	}
	units := s.Config.Width * s.Config.Height
	if len(s.Weights) != units {
		return nil, fmt.Errorf("som: snapshot has %d weight vectors, want %d", len(s.Weights), units)
	}
	flat := make([]float64, 0, units*s.Config.Dim)
	for u, w := range s.Weights {
		if len(w) != s.Config.Dim {
			return nil, fmt.Errorf("som: snapshot unit %d has dim %d, want %d", u, len(w), s.Config.Dim)
		}
		flat = append(flat, w...)
	}
	m := &Map{
		cfg:   s.Config,
		flat:  flat,
		norm2: make([]float64, units),
		awc:   append([]float64(nil), s.AWC...),
	}
	for u := 0; u < units; u++ {
		m.updateNorm(u)
	}
	return m, nil
}
