package som

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	m := mustNew(t, baseCfg())
	inputs := [][]float64{{0.1, 0.2}, {0.8, 0.9}, {0.4, 0.5}}
	if err := m.Train(inputs); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	m2, err := FromSnapshot(back)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	for u := 0; u < m.Units(); u++ {
		if !reflect.DeepEqual(m.Weights(u), m2.Weights(u)) {
			t.Fatalf("unit %d weights differ", u)
		}
	}
	if !reflect.DeepEqual(m.AWC(), m2.AWC()) {
		t.Error("AWC differs")
	}
	for _, x := range inputs {
		if m.BMU(x) != m2.BMU(x) {
			t.Fatalf("BMU differs for %v", x)
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := mustNew(t, baseCfg())
	snap := m.Snapshot()
	snap.Weights[0][0] = 999
	if m.Weights(0)[0] == 999 {
		t.Error("snapshot aliases map weights")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	m := mustNew(t, baseCfg())
	good := m.Snapshot()

	bad := good
	bad.Weights = good.Weights[:3]
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("short weights accepted")
	}

	bad = good
	bad.Weights = make([][]float64, len(good.Weights))
	for i := range bad.Weights {
		bad.Weights[i] = []float64{1} // wrong dim
	}
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("wrong-dimension weights accepted")
	}

	bad = good
	bad.Config.Width = 0
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("invalid config accepted")
	}
}
