package som

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchMap builds a trained-shape map and input set matching the paper's
// word-SOM workload: an 8x8 grid over 91-dimensional word vectors.
func benchMap(b *testing.B, n int) (*Map, [][]float64) {
	b.Helper()
	m, err := New(Config{
		Width: 8, Height: 8, Dim: 91, Epochs: 1,
		InitialLearningRate: 0.3, Seed: 1,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]float64, n)
	for i := range inputs {
		v := make([]float64, 91)
		for d := range v {
			v[d] = rng.Float64() * 3
		}
		inputs[i] = v
	}
	return m, inputs
}

func BenchmarkBMU(b *testing.B) {
	m, inputs := benchMap(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BMU(inputs[i%len(inputs)])
	}
}

func BenchmarkBMUBatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			m, inputs := benchMap(b, 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.BMUBatch(inputs, workers)
			}
		})
	}
}

// BenchmarkBMUSparse compares the dense level-2 sweep against the
// sparse kernels on word-vector-shaped inputs (~3×wordlen non-zeros of
// 91 dims) — the PR-6 encode-kernel numbers in BENCH_PR6.json.
func BenchmarkBMUSparse(b *testing.B) {
	m, idxs, vals := sparseFixture(b, 256)
	dense := make([][]float64, len(idxs))
	val32s := make([][]float32, len(idxs))
	for i := range idxs {
		dense[i] = denseFromSparse(91, idxs[i], vals[i])
		val32s[i] = make([]float32, len(vals[i]))
		for k, v := range vals[i] {
			val32s[i][k] = float32(v)
		}
	}
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.BMU(dense[i%len(dense)])
		}
	})
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i % len(idxs)
			m.BMUSparse(idxs[j], vals[j])
		}
	})
	b.Run("sparse32", func(b *testing.B) {
		k32 := m.F32Kernel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % len(idxs)
			k32.BMUSparse(idxs[j], val32s[j])
		}
	})
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, 2000)
	for i := range inputs {
		inputs[i] = []float64{1 + rng.Float64()*25, 1 + rng.Float64()*24}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(Config{
			Width: 7, Height: 13, Dim: 2, Epochs: 1,
			InitialLearningRate: 0.5, Seed: int64(i),
		}, 26)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Train(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
