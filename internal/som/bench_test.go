package som

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchMap builds a trained-shape map and input set matching the paper's
// word-SOM workload: an 8x8 grid over 91-dimensional word vectors.
func benchMap(b *testing.B, n int) (*Map, [][]float64) {
	b.Helper()
	m, err := New(Config{
		Width: 8, Height: 8, Dim: 91, Epochs: 1,
		InitialLearningRate: 0.3, Seed: 1,
	}, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]float64, n)
	for i := range inputs {
		v := make([]float64, 91)
		for d := range v {
			v[d] = rng.Float64() * 3
		}
		inputs[i] = v
	}
	return m, inputs
}

func BenchmarkBMU(b *testing.B) {
	m, inputs := benchMap(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BMU(inputs[i%len(inputs)])
	}
}

func BenchmarkBMUBatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			m, inputs := benchMap(b, 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.BMUBatch(inputs, workers)
			}
		})
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, 2000)
	for i := range inputs {
		inputs[i] = []float64{1 + rng.Float64()*25, 1 + rng.Float64()*24}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(Config{
			Width: 7, Height: 13, Dim: 2, Epochs: 1,
			InitialLearningRate: 0.5, Seed: int64(i),
		}, 26)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Train(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
