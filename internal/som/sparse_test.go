package som

import (
	"math"
	"math/rand"
	"testing"
)

// sparseFixture trains a word-SOM-shaped map and builds n sparse inputs
// mimicking word vectors: a handful of non-zero entries with the
// 1, 1/2, 1/3 contribution values (plus sums thereof).
func sparseFixture(t testing.TB, n int) (*Map, [][]int32, [][]float64) {
	t.Helper()
	m, err := New(Config{
		Width: 8, Height: 8, Dim: 91, Epochs: 2,
		InitialLearningRate: 0.3, Seed: 7,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	train := make([][]float64, 64)
	for i := range train {
		ti, tv := randSparse(rng)
		train[i] = denseFromSparse(91, ti, tv)
	}
	if err := m.Train(train); err != nil {
		t.Fatal(err)
	}
	idxs := make([][]int32, n)
	vals := make([][]float64, n)
	for i := range idxs {
		idxs[i], vals[i] = randSparse(rng)
	}
	return m, idxs, vals
}

// randSparse draws a word-vector-shaped sparse input: sorted unique
// indices, values that are sums of 1, 1/2, 1/3 contributions.
func randSparse(rng *rand.Rand) ([]int32, []float64) {
	contrib := []float64{1, 0.5, 1.0 / 3.0}
	nnz := 3 + rng.Intn(18)
	seen := make(map[int32]float64)
	for k := 0; k < nnz; k++ {
		seen[int32(rng.Intn(91))] += contrib[rng.Intn(3)]
	}
	idx := make([]int32, 0, len(seen))
	for i := range seen {
		idx = append(idx, i)
	}
	for a := 1; a < len(idx); a++ { // insertion sort, small n
		for b := a; b > 0 && idx[b] < idx[b-1]; b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	val := make([]float64, len(idx))
	for k, i := range idx {
		val[k] = seen[i]
	}
	return idx, val
}

func denseFromSparse(dim int, idx []int32, val []float64) []float64 {
	x := make([]float64, dim)
	for k, i := range idx {
		x[i] = val[k]
	}
	return x
}

// TestBMUSparseMatchesDense is the kernel's bit-identity wall at the
// som level: for word-vector-shaped sparse inputs over a trained map,
// the sparse sweep must select exactly the unit the dense sweep does.
func TestBMUSparseMatchesDense(t *testing.T) {
	m, idxs, vals := sparseFixture(t, 500)
	for i := range idxs {
		dense := denseFromSparse(91, idxs[i], vals[i])
		want := m.BMU(dense)
		if got := m.BMUSparse(idxs[i], vals[i]); got != want {
			t.Fatalf("input %d: BMUSparse = %d, BMU = %d", i, got, want)
		}
	}
}

// TestBMUSparseTieBreak forces exact score ties (duplicated weight
// vectors) and checks both kernels break them towards the lower unit
// index.
func TestBMUSparseTieBreak(t *testing.T) {
	weights := make([][]float64, 6)
	for u := range weights {
		w := make([]float64, 8)
		for d := range w {
			w[d] = float64((u/2)*3+d) * 0.25 // units 0&1, 2&3, 4&5 identical
		}
		weights[u] = w
	}
	m, err := FromSnapshot(Snapshot{
		Config: Config{Width: 3, Height: 2, Dim: 8, Epochs: 1,
			InitialLearningRate: 0.1},
		Weights: weights,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := []int32{1, 4, 6}
	val := []float64{1, 0.5, 1.0 / 3.0}
	dense := denseFromSparse(8, idx, val)
	want := m.BMU(dense)
	if got := m.BMUSparse(idx, val); got != want {
		t.Fatalf("tie broken differently: sparse %d, dense %d", got, want)
	}
	// The winner must be the lower-indexed unit of its duplicate pair.
	if want%2 != 0 {
		t.Fatalf("dense BMU %d is not the lower unit of a duplicate pair", want)
	}
}

// TestBMUSparseLaneOrder pins the accumulator-lane contract the sparse
// kernels replicate: lane i%4 for i < dim&^3, lane 0 for the tail.
// If the dense dot kernel's unroll scheme changes, this fails before
// any parity test does.
func TestBMUSparseLaneOrder(t *testing.T) {
	for _, tc := range []struct{ i, n4, want int }{
		{0, 88, 0}, {1, 88, 1}, {2, 88, 2}, {3, 88, 3},
		{4, 88, 0}, {87, 88, 3},
		{88, 88, 0}, {89, 88, 0}, {90, 88, 0}, // scalar tail
		{0, 0, 0}, {2, 0, 0}, // dim < 4: everything is tail
	} {
		if got := sparseLane(tc.i, tc.n4); got != tc.want {
			t.Errorf("sparseLane(%d, %d) = %d, want %d", tc.i, tc.n4, got, tc.want)
		}
	}
	// Cross-check against the dense kernel on inputs whose per-lane sums
	// are order-sensitive: values of wildly different magnitudes make a
	// mis-laned term change low-order bits.
	m, err := FromSnapshot(Snapshot{
		Config: Config{Width: 2, Height: 1, Dim: 7, Epochs: 1,
			InitialLearningRate: 0.1},
		Weights: [][]float64{
			{1e-9, 1, 1e9, 1e-3, 7, 1e6, 1e-6},
			{3, 1e8, 1e-8, 2, 1e5, 1e-5, 11},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := []int32{0, 2, 3, 5, 6}
	val := []float64{1e9, 1e-9, 1, 1e-6, 1e6}
	dense := denseFromSparse(7, idx, val)
	for u := 0; u < m.Units(); u++ {
		want := m.score(dense, u)
		var s [4]float64
		n4 := 7 &^ 3
		w := m.Weights(u)
		for k, i := range idx {
			s[sparseLane(int(i), n4)] += val[k] * w[i]
		}
		got := m.norm2[u] - 2*((s[0]+s[1])+(s[2]+s[3]))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("unit %d: sparse score %x, dense %x", u, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestF32KernelAgreesOnSeparatedInputs checks the float32 kernel picks
// the same BMU as float64 whenever the top-2 scores are not within
// float32 noise — i.e. the precision downgrade only ever flips
// genuinely ambiguous ties.
func TestF32KernelAgreesOnSeparatedInputs(t *testing.T) {
	m, idxs, vals := sparseFixture(t, 300)
	k32 := m.F32Kernel()
	checked := 0
	for i := range idxs {
		dense := denseFromSparse(91, idxs[i], vals[i])
		near := m.NearestK(dense, 2)
		d1 := m.score(dense, near[0])
		d2 := m.score(dense, near[1])
		if d2-d1 < 1e-3 { // too close to assert across precisions
			continue
		}
		checked++
		val32 := make([]float32, len(vals[i]))
		for k, v := range vals[i] {
			val32[k] = float32(v)
		}
		if got := k32.BMUSparse(idxs[i], val32); got != near[0] {
			t.Fatalf("input %d: float32 BMU %d, float64 %d (gap %g)", i, got, near[0], d2-d1)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d separated inputs checked; fixture too degenerate", checked)
	}
}

// TestF32KernelNormsMatchWeights checks the float32 norms are computed
// from the converted weights, not truncated float64 norms.
func TestF32KernelNormsMatchWeights(t *testing.T) {
	m, _, _ := sparseFixture(t, 1)
	k32 := m.F32Kernel()
	for u := 0; u < m.Units(); u++ {
		var want float32
		for _, v := range m.Weights(u) {
			f := float32(v)
			want += f * f
		}
		if math.Float32bits(k32.norm2[u]) != math.Float32bits(want) {
			t.Errorf("unit %d: norm %g, want %g", u, k32.norm2[u], want)
		}
	}
}

// TestSparseKernelZeroAlloc is the no-alloc contract of the
// //tdlint:hotpath sparse kernels, enforced by `make encode-smoke`.
func TestSparseKernelZeroAlloc(t *testing.T) {
	m, idxs, vals := sparseFixture(t, 4)
	k32 := m.F32Kernel()
	val32 := make([]float32, len(vals[0]))
	for k, v := range vals[0] {
		val32[k] = float32(v)
	}
	sink := 0
	if n := testing.AllocsPerRun(100, func() {
		sink += m.BMUSparse(idxs[0], vals[0])
	}); n != 0 {
		t.Errorf("BMUSparse allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink += k32.BMUSparse(idxs[0], val32)
	}); n != 0 {
		t.Errorf("F32Kernel.BMUSparse allocates %v per op", n)
	}
	if sink < 0 {
		t.Fatal("impossible")
	}
}
