package som

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Map {
	t.Helper()
	m, err := New(cfg, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func baseCfg() Config {
	return Config{
		Width: 4, Height: 4, Dim: 2,
		Epochs:              10,
		InitialLearningRate: 0.5,
		FinalLearningRate:   0.02,
		Seed:                1,
		Shuffle:             true,
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Width: 0, Height: 4, Dim: 2, Epochs: 1, InitialLearningRate: 0.5},
		{Width: 4, Height: -1, Dim: 2, Epochs: 1, InitialLearningRate: 0.5},
		{Width: 4, Height: 4, Dim: 0, Epochs: 1, InitialLearningRate: 0.5},
		{Width: 4, Height: 4, Dim: 2, Epochs: 0, InitialLearningRate: 0.5},
		{Width: 4, Height: 4, Dim: 2, Epochs: 1, InitialLearningRate: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("case %d: expected error for config %+v", i, cfg)
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	m := mustNew(t, baseCfg())
	for u := 0; u < m.Units(); u++ {
		x, y := m.Coords(u)
		if got := m.UnitAt(x, y); got != u {
			t.Fatalf("UnitAt(Coords(%d)) = %d", u, got)
		}
		if x < 0 || x >= 4 || y < 0 || y >= 4 {
			t.Fatalf("unit %d coords (%d,%d) out of grid", u, x, y)
		}
	}
}

func TestTrainRejectsBadInputs(t *testing.T) {
	m := mustNew(t, baseCfg())
	if err := m.Train(nil); err == nil {
		t.Error("expected error for empty inputs")
	}
	if err := m.Train([][]float64{{1, 2, 3}}); err == nil {
		t.Error("expected error for wrong-dimension input")
	}
}

// Training on two well-separated clusters must map members of the same
// cluster to nearby units and members of different clusters to distant
// units.
func TestTrainSeparatesClusters(t *testing.T) {
	cfg := baseCfg()
	cfg.Width, cfg.Height = 6, 6
	cfg.Epochs = 30
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(7))
	var inputs [][]float64
	for i := 0; i < 60; i++ {
		inputs = append(inputs, []float64{rng.Float64() * 0.1, rng.Float64() * 0.1})
		inputs = append(inputs, []float64{0.9 + rng.Float64()*0.1, 0.9 + rng.Float64()*0.1})
	}
	if err := m.Train(inputs); err != nil {
		t.Fatalf("Train: %v", err)
	}
	aBMU := m.BMU([]float64{0.05, 0.05})
	bBMU := m.BMU([]float64{0.95, 0.95})
	if aBMU == bBMU {
		t.Fatalf("separated clusters share BMU %d", aBMU)
	}
	if d := m.gridDist2(aBMU, bBMU); d < 4 {
		t.Errorf("cluster BMUs too close on grid: dist2=%v", d)
	}
	// Quantization error must be small relative to the cluster separation.
	if qe := m.QuantizationError(inputs); qe > 0.3 {
		t.Errorf("quantization error %v too large", qe)
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	inputs := [][]float64{{0, 0}, {1, 1}, {0.5, 0.2}, {0.1, 0.9}}
	run := func() [][]float64 {
		m := mustNew(t, baseCfg())
		if err := m.Train(inputs); err != nil {
			t.Fatalf("Train: %v", err)
		}
		out := make([][]float64, m.Units())
		for u := range out {
			out[u] = append([]float64(nil), m.Weights(u)...)
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("training not deterministic for fixed seed")
	}
}

func TestTrainSeedChangesResult(t *testing.T) {
	inputs := [][]float64{{0, 0}, {1, 1}, {0.5, 0.2}, {0.1, 0.9}}
	cfgA, cfgB := baseCfg(), baseCfg()
	cfgB.Seed = 99
	mA, mB := mustNew(t, cfgA), mustNew(t, cfgB)
	if err := mA.Train(inputs); err != nil {
		t.Fatal(err)
	}
	if err := mB.Train(inputs); err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < mA.Units() && same; u++ {
		same = reflect.DeepEqual(mA.Weights(u), mB.Weights(u))
	}
	if same {
		t.Error("different seeds produced identical maps")
	}
}

func TestAWCDecreases(t *testing.T) {
	cfg := baseCfg()
	cfg.Epochs = 20
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(3))
	var inputs [][]float64
	for i := 0; i < 50; i++ {
		inputs = append(inputs, []float64{rng.Float64(), rng.Float64()})
	}
	if err := m.Train(inputs); err != nil {
		t.Fatal(err)
	}
	awc := m.AWC()
	if len(awc) != cfg.Epochs {
		t.Fatalf("AWC length %d, want %d", len(awc), cfg.Epochs)
	}
	if awc[len(awc)-1] >= awc[0] {
		t.Errorf("AWC did not decrease: first=%v last=%v", awc[0], awc[len(awc)-1])
	}
}

func TestNearestKOrderingAndBounds(t *testing.T) {
	m := mustNew(t, baseCfg())
	x := []float64{0.3, 0.7}
	for k := 0; k <= m.Units()+3; k++ {
		nk := m.NearestK(x, k)
		wantLen := k
		if wantLen > m.Units() {
			wantLen = m.Units()
		}
		if wantLen < 0 {
			wantLen = 0
		}
		if len(nk) != wantLen {
			t.Fatalf("NearestK(%d) len=%d want %d", k, len(nk), wantLen)
		}
		for i := 1; i < len(nk); i++ {
			if m.dist2(x, nk[i-1]) > m.dist2(x, nk[i]) {
				t.Fatalf("NearestK(%d) not sorted at %d", k, i)
			}
		}
	}
	if nk := m.NearestK(x, 1); nk[0] != m.BMU(x) {
		t.Errorf("NearestK(1)=%d != BMU=%d", nk[0], m.BMU(x))
	}
}

// Property: for any input, NearestK(3) contains distinct units and the
// first is always the BMU.
func TestNearestKProperty(t *testing.T) {
	m := mustNew(t, baseCfg())
	f := func(a, b float64) bool {
		x := []float64{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		nk := m.NearestK(x, 3)
		if len(nk) != 3 || nk[0] != m.BMU(x) {
			return false
		}
		return nk[0] != nk[1] && nk[1] != nk[2] && nk[0] != nk[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHitHistogramSumsToInputs(t *testing.T) {
	m := mustNew(t, baseCfg())
	rng := rand.New(rand.NewSource(5))
	var inputs [][]float64
	for i := 0; i < 37; i++ {
		inputs = append(inputs, []float64{rng.Float64(), rng.Float64()})
	}
	hits := m.HitHistogram(inputs)
	if len(hits) != m.Units() {
		t.Fatalf("histogram length %d, want %d", len(hits), m.Units())
	}
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != len(inputs) {
		t.Errorf("histogram sums to %d, want %d", total, len(inputs))
	}
}

func TestQuantizationErrorZeroOnExactWeights(t *testing.T) {
	m := mustNew(t, baseCfg())
	inputs := [][]float64{
		append([]float64(nil), m.Weights(0)...),
		append([]float64(nil), m.Weights(5)...),
	}
	if qe := m.QuantizationError(inputs); qe != 0 {
		t.Errorf("QE on exact weight vectors = %v, want 0", qe)
	}
	if qe := m.QuantizationError(nil); qe != 0 {
		t.Errorf("QE on empty inputs = %v, want 0", qe)
	}
}

func TestTopographicErrorRange(t *testing.T) {
	cfg := baseCfg()
	cfg.Epochs = 25
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(11))
	var inputs [][]float64
	for i := 0; i < 80; i++ {
		inputs = append(inputs, []float64{rng.Float64(), rng.Float64()})
	}
	if err := m.Train(inputs); err != nil {
		t.Fatal(err)
	}
	te := m.TopographicError(inputs)
	if te < 0 || te > 1 {
		t.Errorf("topographic error %v out of [0,1]", te)
	}
	if te := m.TopographicError(nil); te != 0 {
		t.Errorf("topographic error on empty = %v", te)
	}
}

func TestPaperMapSizes(t *testing.T) {
	// The paper's two map geometries must construct cleanly.
	if m := mustNew(t, Config{Width: 7, Height: 13, Dim: 2, Epochs: 1, InitialLearningRate: 0.5, Seed: 1}); m.Units() != 91 {
		t.Errorf("7x13 map has %d units, want 91", m.Units())
	}
	if m := mustNew(t, Config{Width: 8, Height: 8, Dim: 91, Epochs: 1, InitialLearningRate: 0.5, Seed: 1}); m.Units() != 64 {
		t.Errorf("8x8 map has %d units, want 64", m.Units())
	}
}

// Property: training never produces NaN or infinite weights.
func TestTrainWeightsFinite(t *testing.T) {
	cfg := baseCfg()
	cfg.Epochs = 5
	m := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(13))
	var inputs [][]float64
	for i := 0; i < 40; i++ {
		inputs = append(inputs, []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	if err := m.Train(inputs); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < m.Units(); u++ {
		for _, w := range m.Weights(u) {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				t.Fatalf("unit %d has non-finite weight %v", u, w)
			}
		}
	}
}
