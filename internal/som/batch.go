package som

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// TrainBatch runs batch-SOM training: every epoch, each input is
// assigned to its BMU and every unit's weight vector is replaced by the
// neighbourhood-weighted mean of all inputs (the classic batch update).
// Batch training is deterministic regardless of presentation order and
// typically converges in fewer epochs than the online rule; the online
// Train remains the paper-faithful default (the paper presents words
// "in the same order" as the corpus, which only matters online).
func (m *Map) TrainBatch(inputs [][]float64) error {
	if len(inputs) == 0 {
		return errors.New("som: no training inputs")
	}
	for i, x := range inputs {
		if len(x) != m.cfg.Dim {
			return fmt.Errorf("som: input %d has dim %d, want %d", i, len(x), m.cfg.Dim)
		}
	}
	units := m.Units()
	numer := make([][]float64, units)
	denom := make([]float64, units)
	for u := range numer {
		numer[u] = make([]float64, m.cfg.Dim)
	}
	m.awc = m.awc[:0]
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		var epochStart time.Time
		if m.cfg.Observer != nil {
			epochStart = time.Now()
		}
		t := float64(epoch) / float64(m.cfg.Epochs)
		radius := m.cfg.InitialRadius * math.Pow(0.5/math.Max(m.cfg.InitialRadius, 1), t)
		if radius < 0.5 {
			radius = 0.5
		}
		r2 := radius * radius
		for u := range numer {
			for d := range numer[u] {
				numer[u][d] = 0
			}
			denom[u] = 0
		}
		bmus := m.BMUBatch(inputs, 0)
		for i, x := range inputs {
			bmu := bmus[i]
			for u := range numer {
				g2 := m.gridDist2(u, bmu)
				if g2 > 9*r2 {
					continue
				}
				h := math.Exp(-g2 / (2 * r2))
				nu := numer[u]
				for d := range x {
					nu[d] += h * x[d]
				}
				denom[u] += h
			}
		}
		var change float64
		var updates int
		for u := range numer {
			if denom[u] == 0 {
				continue
			}
			w := m.Weights(u)
			for d := range w {
				next := numer[u][d] / denom[u]
				change += math.Abs(next - w[d])
				w[d] = next
				updates++
			}
			m.updateNorm(u)
		}
		if updates > 0 {
			m.awc = append(m.awc, change/float64(updates))
		} else {
			m.awc = append(m.awc, 0)
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer(EpochStats{
				Epoch:      epoch,
				AWC:        m.awc[len(m.awc)-1],
				QuantError: m.QuantizationError(inputs),
				Radius:     radius,
				Duration:   time.Since(epochStart),
			})
		}
	}
	return nil
}

// UMatrix returns the unified distance matrix of the trained map: for
// each unit, the mean Euclidean distance between its weight vector and
// those of its grid neighbours. High values mark cluster boundaries —
// the standard SOM visualisation for inspecting code-books like the
// paper's word maps.
func (m *Map) UMatrix() []float64 {
	out := make([]float64, m.Units())
	for u := range out {
		ux, uy := m.Coords(u)
		var sum float64
		var n int
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := ux+dx, uy+dy
				if nx < 0 || nx >= m.cfg.Width || ny < 0 || ny >= m.cfg.Height {
					continue
				}
				v := m.UnitAt(nx, ny)
				sum += math.Sqrt(m.dist2(m.Weights(u), v))
				n++
			}
		}
		if n > 0 {
			out[u] = sum / float64(n)
		}
	}
	return out
}

// RenderUMatrix draws the U-matrix as an ASCII shade grid (' ' low,
// '#' high), row by row.
func (m *Map) RenderUMatrix() string {
	um := m.UMatrix()
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range um {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	shades := []byte(" .:-=+*#")
	var b strings.Builder
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			v := um[m.UnitAt(x, y)]
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(shades)-1))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
