package telemetry

import (
	"math"
	"testing"
)

// fillHistogram builds a snapshot by observing vs into a histogram with
// the given bounds — the estimator is tested through the same
// Observe/Snapshot pipeline production uses.
func fillHistogram(t *testing.T, bounds, vs []float64) HistogramSnapshot {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram("q", bounds)
	for _, v := range vs {
		h.Observe(v)
	}
	return reg.Snapshot().Histograms["q"]
}

func TestQuantileExactSyntheticFills(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}

	t.Run("uniform one bucket", func(t *testing.T) {
		// 100 observations all landing in the (1,2] bucket: quantiles
		// interpolate linearly across that bucket.
		vs := make([]float64, 100)
		for i := range vs {
			vs[i] = 1.5
		}
		hs := fillHistogram(t, bounds, vs)
		cases := []struct{ q, want float64 }{
			{0.0, 1.0}, // lower edge of the only occupied bucket
			{0.5, 1.5}, // midpoint
			{1.0, 2.0}, // upper edge
		}
		for _, c := range cases {
			if got := hs.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		}
	})

	t.Run("two equal buckets", func(t *testing.T) {
		// 50 observations in (0,1], 50 in (2,4]: p50 is the boundary of
		// the first bucket, p75 the midpoint of the second.
		vs := make([]float64, 0, 100)
		for i := 0; i < 50; i++ {
			vs = append(vs, 0.5, 3.0)
		}
		hs := fillHistogram(t, bounds, vs)
		if got := hs.Quantile(0.5); math.Abs(got-1.0) > 1e-12 {
			t.Errorf("p50 = %v, want 1.0 (upper edge of first bucket)", got)
		}
		if got := hs.Quantile(0.75); math.Abs(got-3.0) > 1e-12 {
			t.Errorf("p75 = %v, want 3.0 (midpoint of (2,4])", got)
		}
	})

	t.Run("first bucket interpolates from zero", func(t *testing.T) {
		vs := make([]float64, 10)
		for i := range vs {
			vs[i] = 0.5
		}
		hs := fillHistogram(t, bounds, vs)
		if got := hs.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("p50 = %v, want 0.5 (midpoint of implicit (0,1])", got)
		}
	})

	t.Run("overflow clamps to last bound", func(t *testing.T) {
		hs := fillHistogram(t, bounds, []float64{100, 200, 300})
		for _, q := range []float64{0.1, 0.5, 0.99} {
			if got := hs.Quantile(q); got != 8 {
				t.Errorf("Quantile(%v) with all-overflow fill = %v, want last bound 8", q, got)
			}
		}
	})

	t.Run("q clamped outside [0,1]", func(t *testing.T) {
		hs := fillHistogram(t, bounds, []float64{1.5, 1.5})
		if got := hs.Quantile(-1); math.Abs(got-1.0) > 1e-12 {
			t.Errorf("Quantile(-1) = %v, want lower edge 1.0", got)
		}
		if got := hs.Quantile(2); math.Abs(got-2.0) > 1e-12 {
			t.Errorf("Quantile(2) = %v, want upper edge 2.0", got)
		}
	})
}

func TestQuantileMonotone(t *testing.T) {
	// A spread of values across buckets, including overflow; the
	// estimate must be non-decreasing in q.
	vs := []float64{0.1, 0.2, 0.7, 1.5, 1.6, 2.2, 3.9, 5, 6, 7.5, 9, 20}
	hs := fillHistogram(t, []float64{1, 2, 4, 8}, vs)
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	got := hs.Quantiles(qs...)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("quantiles not monotone: q=%v → %v but q=%v → %v (all: %v)",
				qs[i-1], got[i-1], qs[i], got[i], got)
		}
	}
	if !(got[1] <= hs.Quantile(0.5) && hs.Quantile(0.5) <= hs.Quantile(0.95) && hs.Quantile(0.95) <= hs.Quantile(0.99)) {
		t.Fatalf("p50 ≤ p95 ≤ p99 violated: %v %v %v",
			hs.Quantile(0.5), hs.Quantile(0.95), hs.Quantile(0.99))
	}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	hs := fillHistogram(t, []float64{1, 2, 4}, nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := hs.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := hs.Mean(); got != 0 {
		t.Errorf("empty histogram Mean() = %v, want 0", got)
	}
	// The zero-value snapshot (no bounds at all) must also be safe.
	var zero HistogramSnapshot
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("zero snapshot Quantile = %v, want 0", got)
	}
}

func TestQuantileMean(t *testing.T) {
	hs := fillHistogram(t, []float64{10}, []float64{1, 2, 3})
	if got := hs.Mean(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
}
