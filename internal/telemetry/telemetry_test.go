package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %v, want -1.25", got)
	}
}

// TestHistogramBucketBoundaries pins the bucket semantics: value v lands
// in the first bucket whose bound is >= v; values above the last bound
// land in the overflow bucket; values below the first bound land in
// bucket 0 (no lost underflow).
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{-3, 0.5, 1, 1.0001, 2, 3.9, 4, 4.0001, 100} {
		h.Observe(v)
	}
	want := []int64{
		3, // -3, 0.5, 1  (underflow folds into bucket 0; 1 <= bound 1)
		2, // 1.0001, 2
		2, // 3.9, 4
		2, // 4.0001, 100 (overflow)
	}
	snap := r.Snapshot().Histograms["h"]
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 9 {
		t.Errorf("count = %d, want 9", snap.Count)
	}
	wantSum := -3 + 0.5 + 1 + 1.0001 + 2 + 3.9 + 4 + 4.0001 + 100.0
	if snap.Sum != wantSum {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{4, 1, 2, 2, 1})
	if want := []float64{1, 2, 4}; !reflect.DeepEqual(h.bounds, want) {
		t.Errorf("bounds = %v, want %v", h.bounds, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.level").Set(0.75)
	h := r.Histogram("c.lat", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, r.Snapshot()) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, r.Snapshot())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(2)
	sp := r.Timer("t").Start()
	sp.End()
	r.Timer("t").Observe(time.Second)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if r.Names() != nil {
		t.Errorf("nil registry has names: %v", r.Names())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestDisabledPathZeroAlloc is the gate the Makefile ci target runs: the
// nil-safe no-op path must not allocate, or disabled telemetry would
// perturb the allocation-aware hot paths it instruments.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	tm := r.Timer("t")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(2)
		sp := tm.Start()
		sp.End()
		r.Counter("fresh").Inc()
		r.Timer("fresh").Observe(time.Millisecond)
	}); n != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", n)
	}
}

// TestConcurrentIncrements hammers one counter and one histogram from
// many goroutines; totals must be exact. Run under -race via `make race`.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("hist", []float64{0.5})
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(float64(j%2) * 1.0)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Snapshot().Histograms["hist"]
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	if want := float64(goroutines * perG / 2); h.Sum != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum, want)
	}
}

func TestTimerObservesSeconds(t *testing.T) {
	r := NewRegistry()
	r.Timer("lat").Observe(250 * time.Millisecond)
	h := r.Snapshot().Histograms["lat"]
	if h.Count != 1 || h.Sum != 0.25 {
		t.Errorf("timer snapshot = %+v, want count 1 sum 0.25", h)
	}
	sp := r.Timer("lat").Start()
	sp.End()
	if got := r.Snapshot().Histograms["lat"].Count; got != 2 {
		t.Errorf("count after span = %d, want 2", got)
	}
}

func TestEventWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewEventWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := w.Emit(map[string]int{"g": i, "j": j}); err != nil {
					t.Errorf("emit: %v", err)
				}
			}
		}(i)
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var v map[string]int
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 400 {
		t.Errorf("lines = %d, want 400", lines)
	}
	var nilW *EventWriter
	if err := nilW.Emit("dropped"); err != nil {
		t.Errorf("nil writer errored: %v", err)
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c", nil)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(r.Names(), want) {
		t.Errorf("names = %v, want %v", r.Names(), want)
	}
}

// BenchmarkDisabledNoop is the Makefile's telemetry bench smoke: the
// disabled path must run in a few nanoseconds and allocate nothing.
func BenchmarkDisabledNoop(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y", nil)
	tm := r.Timer("t")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
		sp := tm.Start()
		sp.End()
	}
}

// BenchmarkEnabledHistogram records the enabled-path cost for the
// overhead budget in BENCH_PR2.json.
func BenchmarkEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("y", LatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}
