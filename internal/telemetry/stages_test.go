package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestStageRecorderObservations(t *testing.T) {
	reg := NewRegistry()
	rec := NewStageRecorder(reg, "serve.stage", nil, 0)

	tr := rec.Begin()
	tr.Observe(StageDecode, 2*time.Millisecond)
	tr.Observe(StageQueue, 1*time.Millisecond)
	tr.Observe(StageClassify, 8*time.Millisecond)
	tr.Observe(StageWrite, 1*time.Millisecond)
	tr.Finish("req-1", 1, "hash", 200)

	// Worker-side direct observation shares the same histograms.
	rec.Observe(StageClassify, 4*time.Millisecond)

	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"serve.stage.decode.seconds":   1,
		"serve.stage.queue.seconds":    1,
		"serve.stage.classify.seconds": 2,
		"serve.stage.write.seconds":    1,
	} {
		if got := s.Histograms[name].Count; got != want {
			t.Errorf("%s count = %d, want %d", name, got, want)
		}
	}
}

func TestStageRecorderSampling(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	reg := NewRegistry()
	ew := NewEventWriter(&lockedWriter{w: &buf, mu: &mu})
	rec := NewStageRecorder(reg, "s", ew, 3)

	const n = 30
	for i := 0; i < n; i++ {
		tr := rec.Begin()
		tr.Observe(StageDecode, time.Millisecond)
		tr.Record(StageQueue, 2*time.Millisecond)
		tr.Finish("req", 4, "abc", 200)
	}
	var records []RequestTraceRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r RequestTraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		records = append(records, r)
	}
	if len(records) != n/3 {
		t.Fatalf("sampled %d of %d requests at rate 3, want %d", len(records), n, n/3)
	}
	r := records[0]
	if r.Kind != "request" || r.RequestID != "req" || r.Batch != 4 || r.ModelHash != "abc" || r.Status != 200 {
		t.Errorf("trace record fields = %+v", r)
	}
	if r.DecodeUS != 1000 {
		t.Errorf("decode_us = %v, want 1000", r.DecodeUS)
	}
	// Record() stores for the trace line without re-observing.
	if r.QueueUS != 2000 {
		t.Errorf("queue_us = %v, want 2000", r.QueueUS)
	}
	if r.TotalUS != 3000 {
		t.Errorf("total_us = %v, want 3000", r.TotalUS)
	}
	if got := reg.Snapshot().Histograms["s.queue.seconds"].Count; got != 0 {
		t.Errorf("Record() observed the histogram (%d), want trace-only", got)
	}
}

// lockedWriter makes a bytes.Buffer safe for the concurrent test below.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestStageRecorderConcurrent hammers one recorder from many goroutines
// under -race: every histogram count must balance, and every sampled
// trace line must be one intact JSON document (the EventWriter
// serialises lines).
func TestStageRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	reg := NewRegistry()
	ew := NewEventWriter(&lockedWriter{w: &buf, mu: &mu})
	rec := NewStageRecorder(reg, "c", ew, 5)

	const workers, perWorker = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := rec.Begin()
				tr.Observe(StageDecode, time.Microsecond)
				tr.Observe(StageClassify, 2*time.Microsecond)
				rec.Observe(StageQueue, time.Microsecond)
				tr.Finish("req", 1, "h", 200)
			}
		}()
	}
	wg.Wait()

	total := int64(workers * perWorker)
	s := reg.Snapshot()
	for _, name := range []string{"c.decode.seconds", "c.classify.seconds", "c.queue.seconds"} {
		if got := s.Histograms[name].Count; got != total {
			t.Errorf("%s count = %d, want %d", name, got, total)
		}
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r RequestTraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("interleaved/corrupt trace line: %v", err)
		}
		lines++
	}
	if want := int(total / 5); lines != want {
		t.Errorf("sampled %d lines, want %d", lines, want)
	}
}

// TestStageTraceZeroAllocWhenNotSampling is the sampling-off gate: a
// full begin→observe→finish request trace must not allocate when no
// request is sampled (the `make loadgen-smoke` / telemetry discipline).
func TestStageTraceZeroAllocWhenNotSampling(t *testing.T) {
	reg := NewRegistry()
	rec := NewStageRecorder(reg, "z", nil, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr := rec.Begin()
		tr.Observe(StageDecode, time.Millisecond)
		tr.Record(StageQueue, time.Millisecond)
		tr.Observe(StageClassify, time.Millisecond)
		tr.Observe(StageWrite, time.Millisecond)
		rec.Observe(StageQueue, time.Millisecond)
		tr.Finish("req", 1, "hash", 200)
	})
	if allocs != 0 {
		t.Fatalf("unsampled request trace allocates %.1f/op, want 0", allocs)
	}

	// Sampling enabled but this request not selected: still zero.
	var buf bytes.Buffer
	rec2 := NewStageRecorder(reg, "z2", NewEventWriter(&buf), 1<<30)
	allocs = testing.AllocsPerRun(1000, func() {
		tr := rec2.Begin()
		tr.Observe(StageDecode, time.Millisecond)
		tr.Finish("req", 1, "hash", 200)
	})
	if allocs != 0 {
		t.Fatalf("unselected request trace allocates %.1f/op, want 0", allocs)
	}

	// Nil recorder: the disabled path is free too.
	var nilRec *StageRecorder
	allocs = testing.AllocsPerRun(1000, func() {
		tr := nilRec.Begin()
		tr.Observe(StageDecode, time.Millisecond)
		nilRec.Observe(StageQueue, time.Millisecond)
		tr.Finish("req", 1, "hash", 200)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates %.1f/op, want 0", allocs)
	}
}

func TestStageStringCoversAllStages(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "unknown" || seen[name] {
			t.Errorf("stage %d has bad or duplicate name %q", s, name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range stage should stringify as unknown")
	}
}
