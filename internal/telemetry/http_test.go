package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestInstrumentHandlerNilRegistry(t *testing.T) {
	var reg *Registry
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	h := reg.InstrumentHandler("x", inner)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("nil-registry middleware altered the handler: status %d", rec.Code)
	}
}

func TestInstrumentHandlerCounts(t *testing.T) {
	reg := NewRegistry()
	status := http.StatusOK
	var sawInflight float64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Mid-request the inflight gauge must show this request.
		sawInflight = reg.Gauge("http.t.inflight").Value()
		w.WriteHeader(status)
	})
	h := reg.InstrumentHandler("t", inner)

	statuses := []int{200, 201, 404, 500, 302}
	for _, st := range statuses {
		status = st
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code != st {
			t.Fatalf("middleware rewrote status: got %d want %d", rec.Code, st)
		}
	}

	if got := reg.Counter("http.t.requests").Value(); got != int64(len(statuses)) {
		t.Errorf("requests = %d, want %d", got, len(statuses))
	}
	for name, want := range map[string]int64{
		"http.t.status.2xx": 2,
		"http.t.status.3xx": 1,
		"http.t.status.4xx": 1,
		"http.t.status.5xx": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Histogram("http.t.seconds", LatencyBuckets()).Count(); got != int64(len(statuses)) {
		t.Errorf("latency observations = %d, want %d", got, len(statuses))
	}
	if sawInflight != 1 {
		t.Errorf("inflight during request = %v, want 1", sawInflight)
	}
	if got := reg.Gauge("http.t.inflight").Value(); got != 0 {
		t.Errorf("inflight after requests = %v, want 0", got)
	}
}

// TestInstrumentHandlerImplicit200 covers the Write-without-WriteHeader
// path: net/http treats it as 200, and so must the recorder.
func TestInstrumentHandlerImplicit200(t *testing.T) {
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
		// A late WriteHeader must not override the implicit 200 in the
		// recorded class (net/http would log and ignore it too).
	})
	h := reg.InstrumentHandler("w", inner)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if got := reg.Counter("http.w.status.2xx").Value(); got != 1 {
		t.Errorf("implicit 200 not counted as 2xx: %d", got)
	}
}
