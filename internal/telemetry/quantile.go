package telemetry

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated from the
// snapshot's bucket counts by linear interpolation inside the bucket
// the quantile falls in, the standard fixed-bucket estimator:
//
//   - the target rank is q·count;
//   - buckets are walked in order accumulating counts until the
//     cumulative count reaches the rank;
//   - within that bucket the value is interpolated linearly between its
//     lower and upper bound, proportional to where the rank sits among
//     the bucket's own observations.
//
// The first bucket's lower edge is 0 — the right choice for the
// non-negative durations and sizes this package's histograms record.
// Ranks landing in the overflow bucket return the last bound (the
// largest value the histogram can still vouch for; there is no upper
// edge to interpolate toward). q outside [0,1] is clamped. An empty
// snapshot (no observations) returns 0.
//
// The estimate is monotone in q by construction: a larger rank can only
// move forward through the buckets and rightward inside one.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: unbounded above, so the last bound is the
			// best defensible answer.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	// Unreachable when total > 0; keep the zero answer for safety.
	return 0
}

// Quantiles evaluates several quantiles in one call, in the given
// order. Convenience over Quantile for statz-style reporting.
func (h HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// Sub returns this snapshot minus an earlier one of the same histogram,
// bucket by bucket — the distribution of the observations between the
// two snapshots. Counters only grow, so the diff is itself a valid
// snapshot. Mismatched bucket shapes mean the snapshots are not from
// the same histogram incarnation (a process restart, say); then the
// receiver is returned whole rather than a nonsense diff.
func (h HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(h.Counts) || len(prev.Bounds) != len(h.Bounds) {
		return h
	}
	out := HistogramSnapshot{
		Count:  h.Count - prev.Count,
		Sum:    h.Sum - prev.Sum,
		Bounds: h.Bounds,
		Counts: make([]int64, len(h.Counts)),
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return out
}

// Mean returns the snapshot's mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}
