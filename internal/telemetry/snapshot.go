package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of all observations; Sum/Count is the mean.
	Sum float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot is a point-in-time copy of every metric in a registry.
// Counters and gauges map name to value; histograms map name to their
// bucket state. It marshals to the JSON document `tdc -metrics` writes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric. On a
// nil registry it returns an empty (but fully initialised) snapshot.
// Concurrent writers may land between individual metric reads; each
// metric's own state is read atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[n] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Works on a nil
// registry (writes an empty snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns the sorted names of every registered metric — useful
// for coverage assertions in tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
