// Package telemetry is the dependency-free observability layer of the
// pipeline: a goroutine-safe registry of counters, gauges, fixed-bucket
// histograms and timers, plus a JSONL event writer for structured
// training traces.
//
// The package is built around a nil-safe no-op default: every method is
// a no-op on a nil receiver, and a nil *Registry hands out nil metric
// handles. Code instruments itself unconditionally —
//
//	reg.Counter("core.encode.hits").Inc()
//
// — and pays nothing (no allocation, no atomics, no time syscalls) when
// telemetry is disabled. This is what lets the hot paths (BMU search,
// tournament evaluation, Score) stay instrumented without perturbing
// the benchmarks that guard them.
//
// Telemetry never feeds back into computation: metrics are write-only
// from the pipeline's point of view, so enabling or disabling them
// cannot change a trained model by a single bit (guarded by the
// determinism regression test in internal/core).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a goroutine-safe collection of named metrics. The zero
// value is not usable — use NewRegistry — but a nil *Registry is: it
// returns nil handles whose methods are all no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (bounds are sorted and deduplicated;
// an extra overflow bucket is always appended). Later calls with the
// same name return the existing histogram regardless of bounds. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Timer returns a timer over the named histogram of seconds, creating
// it with LatencyBuckets on first use. Returns a nil-histogram timer (a
// no-op) on a nil registry.
func (r *Registry) Timer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{h: r.Histogram(name, LatencyBuckets())}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
//
//tdlint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (last write wins).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
//
//tdlint:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v with v <= Bounds[i] (and v > Bounds[i-1]); one extra
// bucket counts overflow observations above the last bound. Observations
// below the first bound land in bucket 0, so there is no separate
// underflow bucket to lose samples to.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		// Bit comparison: only exact duplicates collapse into one
		// bucket; epsilon-close bounds are distinct buckets by intent.
		if i == 0 || math.Float64bits(b) != math.Float64bits(bs[i-1]) {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
}

// Observe records one observation. No-op on a nil histogram.
//
//tdlint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Timer observes durations, as seconds, into a histogram. The zero
// Timer is a no-op. Timers are values, not pointers, so starting and
// ending a span allocates nothing.
type Timer struct {
	h *Histogram
}

// Start begins a span. On a no-op timer the span is free: no clock is
// read and End does nothing.
func (t Timer) Start() Span {
	if t.h == nil {
		return Span{}
	}
	return Span{h: t.h, start: time.Now()}
}

// Observe records an already-measured duration. No-op on a no-op timer.
func (t Timer) Observe(d time.Duration) {
	t.h.Observe(d.Seconds())
}

// Span is one in-flight timing measurement.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed time since Start. No-op on a zero span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// LatencyBuckets returns the default histogram bounds for timers:
// exponential from 1µs to ~8.6s (doubling), in seconds.
func LatencyBuckets() []float64 {
	out := make([]float64, 24)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}
