package telemetry

import (
	"sync/atomic"
	"time"
)

// Stage names one segment of a request's lifetime inside the server.
// The set is fixed so the recorder can keep its histograms in a flat
// array and a per-request trace in a stack value — no map, no
// allocation on the request path.
type Stage uint8

const (
	// StageDecode is request parsing: body read, JSON decode,
	// validation, tokenisation.
	StageDecode Stage = iota
	// StageQueue is the time a job waits in the bounded queue before a
	// worker dequeues it.
	StageQueue
	// StageClassify is scoring: encode + per-category rule execution
	// for every document of the job.
	StageClassify
	// StageWrite is response rendering: building the response value and
	// encoding it onto the wire.
	StageWrite
	// NumStages is the number of stages; also the implicit "all stages"
	// bound for arrays indexed by Stage.
	NumStages
)

// String returns the stage's metric-name segment.
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageQueue:
		return "queue"
	case StageClassify:
		return "classify"
	case StageWrite:
		return "write"
	default:
		return "unknown"
	}
}

// StageRecorder feeds per-stage latency histograms and, at a
// configurable sample rate, per-request JSONL trace records. It is the
// serving layer's request-lifecycle instrument: every request observes
// its stage durations (cheap: one histogram Observe per stage, no
// allocation), and every sampleEvery-th request additionally emits a
// RequestTraceRecord through the EventWriter (the sampled path may
// allocate — that is the deal sampling buys).
//
// A nil *StageRecorder is a no-op, matching the package's nil-safe
// default: Begin returns an inert RequestTrace whose methods do
// nothing.
type StageRecorder struct {
	hists  [NumStages]*Histogram
	events *EventWriter
	every  uint64
	seq    atomic.Uint64
}

// NewStageRecorder resolves one histogram per stage under
// "<prefix>.<stage>.seconds" in reg (nil reg → nil histograms, still
// usable, observations dropped). events receives sampled trace records;
// sampleEvery N > 0 samples every Nth request, N <= 0 (or a nil events
// writer) disables sampling entirely.
func NewStageRecorder(reg *Registry, prefix string, events *EventWriter, sampleEvery int) *StageRecorder {
	r := &StageRecorder{events: events}
	if sampleEvery > 0 && events != nil {
		r.every = uint64(sampleEvery)
	}
	for s := Stage(0); s < NumStages; s++ {
		r.hists[s] = reg.Histogram(prefix+"."+s.String()+".seconds", LatencyBuckets())
	}
	return r
}

// Begin starts one request's trace. The returned RequestTrace is a
// plain value the caller keeps on its stack — beginning, observing and
// finishing a trace allocates nothing when the request is not sampled.
func (r *StageRecorder) Begin() RequestTrace {
	if r == nil {
		return RequestTrace{}
	}
	sampled := false
	if r.every > 0 {
		sampled = r.seq.Add(1)%r.every == 0
	}
	return RequestTrace{rec: r, sampled: sampled}
}

// Observe records one stage's duration into the stage histogram without
// a RequestTrace — for code paths (a worker goroutine) that measure a
// stage but do not own the request's trace value. No-op on nil.
//
//tdlint:hotpath
func (r *StageRecorder) Observe(s Stage, d time.Duration) {
	if r == nil || s >= NumStages {
		return
	}
	r.hists[s].Observe(d.Seconds())
}

// RequestTrace accumulates one request's stage durations. It is a value
// type: create with StageRecorder.Begin, keep on the stack, finish with
// Finish. The zero RequestTrace is a no-op.
type RequestTrace struct {
	rec     *StageRecorder
	sampled bool
	durs    [NumStages]time.Duration
}

// Sampled reports whether this request will emit a JSONL trace record —
// callers can skip assembling record-only data (ids, hashes) when not.
func (t *RequestTrace) Sampled() bool { return t.rec != nil && t.sampled }

// Observe records one stage's duration: into the stage histogram and
// into the trace's own record. Observing the same stage twice keeps the
// last duration in the record (both land in the histogram). No-op on a
// zero trace.
//
//tdlint:hotpath
func (t *RequestTrace) Observe(s Stage, d time.Duration) {
	if t.rec == nil || s >= NumStages {
		return
	}
	t.durs[s] = d
	t.rec.hists[s].Observe(d.Seconds())
}

// Record stores an externally measured stage duration in the trace's
// record only, without re-observing the histogram — for durations that
// were already observed via StageRecorder.Observe on another goroutine.
//
//tdlint:hotpath
func (t *RequestTrace) Record(s Stage, d time.Duration) {
	if t.rec == nil || s >= NumStages {
		return
	}
	t.durs[s] = d
}

// RequestTraceRecord is the JSONL document a sampled request emits:
// one line per request, durations in microseconds (the natural grain of
// a classify request — big enough to avoid float noise, small enough to
// read).
type RequestTraceRecord struct {
	Kind       string  `json:"kind"` // always "request"
	RequestID  string  `json:"request_id"`
	Status     int     `json:"status"`
	Batch      int     `json:"batch"`
	ModelHash  string  `json:"model_hash,omitempty"`
	DecodeUS   float64 `json:"decode_us"`
	QueueUS    float64 `json:"queue_us"`
	ClassifyUS float64 `json:"classify_us"`
	WriteUS    float64 `json:"write_us"`
	TotalUS    float64 `json:"total_us"`
}

// Finish completes the trace: if this request was sampled, a
// RequestTraceRecord goes out through the EventWriter. Unsampled (and
// zero) traces return immediately without touching the writer.
func (t *RequestTrace) Finish(requestID string, batch int, modelHash string, status int) {
	if t.rec == nil || !t.sampled || t.rec.events == nil {
		return
	}
	us := func(s Stage) float64 { return float64(t.durs[s]) / float64(time.Microsecond) }
	var total time.Duration
	for s := Stage(0); s < NumStages; s++ {
		total += t.durs[s]
	}
	// The write error has nowhere actionable to go from a sampled hot
	// path; the EventWriter's sink is responsible for its own health.
	_ = t.rec.events.Emit(RequestTraceRecord{
		Kind:       "request",
		RequestID:  requestID,
		Status:     status,
		Batch:      batch,
		ModelHash:  modelHash,
		DecodeUS:   us(StageDecode),
		QueueUS:    us(StageQueue),
		ClassifyUS: us(StageClassify),
		WriteUS:    us(StageWrite),
		TotalUS:    float64(total) / float64(time.Microsecond),
	})
}
