package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventWriter serialises structured events as JSON Lines — the sink for
// the evolution traces and training-event streams the CLI's -trace flag
// produces. It is safe for concurrent use (per-category trainers emit
// from their own goroutines) and nil-safe: a nil *EventWriter drops
// every event.
type EventWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewEventWriter wraps w. Each Emit writes one compact JSON document
// followed by a newline.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{enc: json.NewEncoder(w)}
}

// Emit writes one event. No-op (returning nil) on a nil writer.
func (e *EventWriter) Emit(event any) error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(event)
}
