package telemetry

import (
	"net/http"
	"sync/atomic"
)

// InstrumentHandler wraps an http.Handler with request metrics under
// the given route label:
//
//	http.<route>.requests      counter of requests received
//	http.<route>.seconds       latency histogram (handler time)
//	http.<route>.inflight      gauge of currently executing requests
//	http.<route>.status.<c>xx  counters per status class (1xx..5xx)
//
// Metric handles are resolved once here — the per-request path touches
// only atomics. On a nil registry the handler is returned unwrapped,
// keeping the no-telemetry path free.
func (r *Registry) InstrumentHandler(route string, next http.Handler) http.Handler {
	if r == nil {
		return next
	}
	requests := r.Counter("http." + route + ".requests")
	latency := r.Timer("http." + route + ".seconds")
	inflight := r.Gauge("http." + route + ".inflight")
	var classes [5]*Counter
	for i, c := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		classes[i] = r.Counter("http." + route + ".status." + c)
	}
	var live atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		requests.Inc()
		inflight.Set(float64(live.Add(1)))
		sp := latency.Start()
		sw := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, req)
		sp.End()
		inflight.Set(float64(live.Add(-1)))
		if i := sw.code/100 - 1; i >= 0 && i < len(classes) {
			classes[i].Inc()
		}
	})
}

// statusRecorder captures the response status code. The first explicit
// WriteHeader wins, matching net/http semantics; an implicit 200 from
// Write-without-WriteHeader is the initial value.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (s *statusRecorder) WriteHeader(code int) {
	if !s.wrote {
		s.code = code
		s.wrote = true
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	s.wrote = true
	return s.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer
// (flush, deadlines) through the recorder.
func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }
