// Package metrics implements the information-retrieval measurements of
// the paper's Table 3 — Recall, Precision and F1 — together with the
// micro- and macro-averaging used for Tables 4–6.
package metrics

import (
	"fmt"
	"sort"
)

// Contingency is a binary-classification contingency table for one
// category: TP in-class documents classified in-class, FN in-class
// classified out-class, FP out-class classified in-class, TN the rest.
type Contingency struct {
	TP, FN, FP, TN int
}

// Add accumulates another table into c.
func (c *Contingency) Add(o Contingency) {
	c.TP += o.TP
	c.FN += o.FN
	c.FP += o.FP
	c.TN += o.TN
}

// Observe records one document: whether it truly belongs to the category
// and whether the classifier said it does.
func (c *Contingency) Observe(actual, predicted bool) {
	switch {
	case actual && predicted:
		c.TP++
	case actual && !predicted:
		c.FN++
	case !actual && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Contingency) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Contingency) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// F1 returns the harmonic mean of precision and recall, or 0 when both
// are 0.
func (c Contingency) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 on an empty table.
func (c Contingency) Accuracy() float64 {
	total := c.TP + c.FN + c.FP + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Total returns the number of observations in the table.
func (c Contingency) Total() int { return c.TP + c.FN + c.FP + c.TN }

// String renders the table compactly.
func (c Contingency) String() string {
	return fmt.Sprintf("TP=%d FN=%d FP=%d TN=%d", c.TP, c.FN, c.FP, c.TN)
}

// Set holds per-category contingency tables for a multi-category,
// binary-per-category evaluation (the paper's setting: one binary RLGP
// classifier per Reuters category).
type Set struct {
	tables map[string]*Contingency
}

// NewSet returns an empty evaluation set.
func NewSet() *Set {
	return &Set{tables: make(map[string]*Contingency)}
}

// Observe records one (document, category) decision.
func (s *Set) Observe(category string, actual, predicted bool) {
	t, ok := s.tables[category]
	if !ok {
		t = &Contingency{}
		s.tables[category] = t
	}
	t.Observe(actual, predicted)
}

// Table returns the contingency table for a category (zero table if the
// category was never observed).
func (s *Set) Table(category string) Contingency {
	if t, ok := s.tables[category]; ok {
		return *t
	}
	return Contingency{}
}

// Categories returns the observed category names in sorted order.
func (s *Set) Categories() []string {
	out := make([]string, 0, len(s.tables))
	for c := range s.tables {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MacroF1 returns the unweighted mean of per-category F1 scores — the
// paper's "Macro Ave.".
func (s *Set) MacroF1() float64 {
	if len(s.tables) == 0 {
		return 0
	}
	var sum float64
	for _, cat := range s.Categories() {
		sum += s.tables[cat].F1()
	}
	return sum / float64(len(s.tables))
}

// MicroF1 returns the F1 of the globally pooled contingency table — the
// paper's "Micro Ave.".
func (s *Set) MicroF1() float64 {
	return s.Pooled().F1()
}

// Pooled returns the sum of all per-category tables.
func (s *Set) Pooled() Contingency {
	var pooled Contingency
	for _, t := range s.tables {
		pooled.Add(*t)
	}
	return pooled
}

// MacroPrecision returns the unweighted mean per-category precision.
func (s *Set) MacroPrecision() float64 {
	if len(s.tables) == 0 {
		return 0
	}
	var sum float64
	for _, cat := range s.Categories() {
		sum += s.tables[cat].Precision()
	}
	return sum / float64(len(s.tables))
}

// MacroRecall returns the unweighted mean per-category recall.
func (s *Set) MacroRecall() float64 {
	if len(s.tables) == 0 {
		return 0
	}
	var sum float64
	for _, cat := range s.Categories() {
		sum += s.tables[cat].Recall()
	}
	return sum / float64(len(s.tables))
}
