package metrics

import (
	"math"
	"testing"
)

func TestPRCurvePerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	curve, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve = %v", curve)
	}
	// At the second point (both positives ranked first): P=1, R=1.
	if curve[1].Precision != 1 || curve[1].Recall != 1 {
		t.Errorf("curve[1] = %+v", curve[1])
	}
	// Recall never decreases along the sweep.
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Errorf("recall decreased at %d: %v", i, curve)
		}
	}
	// The final point always has recall 1.
	if curve[len(curve)-1].Recall != 1 {
		t.Errorf("final recall = %v", curve[len(curve)-1].Recall)
	}
}

func TestPRCurveTiedScores(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.1}
	labels := []bool{true, false, true}
	curve, err := PRCurve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Ties collapse into one point: 2 distinct scores -> 2 points.
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	if curve[0].Precision != 0.5 || curve[0].Recall != 0.5 {
		t.Errorf("tied point = %+v", curve[0])
	}
}

func TestPRCurveErrors(t *testing.T) {
	if _, err := PRCurve([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PRCurve(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := PRCurve([]float64{1, 2}, []bool{false, false}); err == nil {
		t.Error("no positives accepted")
	}
}

func TestBreakEvenPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	be, err := BreakEven(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if be != 1 {
		t.Errorf("break-even = %v, want 1", be)
	}
}

func TestBreakEvenMixedRanking(t *testing.T) {
	// Ranking: +, -, +, - : at rank 1 P=1,R=.5; rank2 P=.5,R=.5 (|d|=0);
	// rank3 P=2/3,R=1; rank4 P=.5,R=1.
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	labels := []bool{true, false, true, false}
	be, err := BreakEven(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(be-0.5) > 1e-12 {
		t.Errorf("break-even = %v, want 0.5", be)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Ranking +,-,+: AP = (1/1 + 2/3)/2 = 5/6.
	scores := []float64{0.9, 0.8, 0.7}
	labels := []bool{true, false, true}
	ap, err := AveragePrecision(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ap-5.0/6.0) > 1e-12 {
		t.Errorf("AP = %v, want 5/6", ap)
	}
	// Perfect ranking -> AP 1.
	ap, err = AveragePrecision([]float64{2, 1, 0}, []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if ap != 1 {
		t.Errorf("perfect AP = %v", ap)
	}
	if _, err := AveragePrecision([]float64{1}, []bool{false}); err == nil {
		t.Error("no positives accepted")
	}
	if _, err := AveragePrecision([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
}
