package metrics

import (
	"fmt"
	"math"
	"sort"
)

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve sweeps thresholds over decision scores and returns the
// precision-recall trade-off, ordered from high threshold (low recall)
// to low threshold (high recall). A point is emitted after each distinct
// score value.
func PRCurve(scores []float64, labels []bool) ([]PRPoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("metrics: PR curve length mismatch %d vs %d", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("metrics: PR curve needs scores")
	}
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	totalPos := 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			totalPos++
		}
	}
	if totalPos == 0 {
		return nil, fmt.Errorf("metrics: PR curve needs at least one positive")
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
	var out []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(ps); i++ {
		if ps[i].pos {
			tp++
		} else {
			fp++
		}
		// Epsilon-close scores share one curve point, mirroring
		// BestF1Threshold's candidate grouping.
		if i+1 < len(ps) && ApproxEqual(ps[i+1].s, ps[i].s) {
			continue
		}
		out = append(out, PRPoint{
			Threshold: ps[i].s,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(totalPos),
		})
	}
	return out, nil
}

// BreakEven returns the precision/recall break-even point — the classic
// single-number Reuters effectiveness measure: the value where
// precision equals recall along the curve (interpolated as the point
// minimising |P-R|, reporting (P+R)/2 there).
func BreakEven(scores []float64, labels []bool) (float64, error) {
	curve, err := PRCurve(scores, labels)
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	var value float64
	for _, pt := range curve {
		if d := math.Abs(pt.Precision - pt.Recall); d < best {
			best = d
			value = (pt.Precision + pt.Recall) / 2
		}
	}
	return value, nil
}

// AveragePrecision returns the area under the precision-recall curve
// computed by the standard step interpolation (sum of precision at each
// new true positive divided by total positives).
func AveragePrecision(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("metrics: AP length mismatch %d vs %d", len(scores), len(labels))
	}
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	totalPos := 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0, fmt.Errorf("metrics: AP needs at least one positive")
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })
	tp := 0
	var sum float64
	for i, p := range ps {
		if p.pos {
			tp++
			sum += float64(tp) / float64(i+1)
		}
	}
	return sum / float64(totalPos), nil
}
