package metrics

import "math"

// approxTol is the relative tolerance of ApproxEqual: generous enough
// to absorb the rounding drift of a few dependent operations, tight
// enough that genuinely distinct decision scores stay distinct.
const approxTol = 1e-12

// ApproxEqual reports whether a and b are equal within a relative
// tolerance of 1e-12 (absolute near zero). It is the package's standard
// for comparing computed floating-point quantities — thresholds,
// decision scores, F1 values — where exact == would silently demand
// that both sides took bit-identical arithmetic paths. The result is a
// pure function of its inputs, so replacing == with ApproxEqual keeps
// training bit-deterministic.
func ApproxEqual(a, b float64) bool {
	if a == b { // fast path; also handles equal infinities
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= approxTol
	}
	return diff <= scale*approxTol
}
