package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func f1At(scores []float64, labels []bool, thr float64) float64 {
	var c Contingency
	for i := range scores {
		c.Observe(labels[i], scores[i] > thr)
	}
	return c.F1()
}

func TestBestF1ThresholdSeparable(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	thr := BestF1Threshold(scores, labels)
	if got := f1At(scores, labels, thr); got != 1 {
		t.Errorf("F1 at chosen threshold = %v", got)
	}
}

func TestBestF1ThresholdEmpty(t *testing.T) {
	if thr := BestF1Threshold(nil, nil); thr != 0 {
		t.Errorf("empty input threshold = %v", thr)
	}
}

func TestBestF1ThresholdAllPositive(t *testing.T) {
	scores := []float64{3, 1, 2}
	labels := []bool{true, true, true}
	thr := BestF1Threshold(scores, labels)
	if got := f1At(scores, labels, thr); got != 1 {
		t.Errorf("F1 = %v", got)
	}
}

func TestBestF1ThresholdAllNegative(t *testing.T) {
	scores := []float64{3, 1, 2}
	labels := []bool{false, false, false}
	thr := BestF1Threshold(scores, labels)
	// F1 is 0 for every threshold; any choice is acceptable but the
	// sweep must not panic and must return a finite value.
	_ = thr
}

// Property: the returned threshold achieves the maximum F1 over a dense
// grid of alternatives.
func TestBestF1ThresholdOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = r.Float64()
			labels[i] = r.Float64() < 0.4
		}
		best := BestF1Threshold(scores, labels)
		bestF1 := f1At(scores, labels, best)
		// Compare against thresholds slightly below every score plus
		// extremes.
		for _, s := range scores {
			for _, alt := range []float64{s - 1e-6, s + 1e-6} {
				if f1At(scores, labels, alt) > bestF1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
