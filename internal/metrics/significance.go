package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Significance testing for classifier comparisons, following the
// protocol of Yang & Liu (SIGIR 1999), which evaluation studies of
// Reuters classifiers (including those the paper compares against)
// adopted: a micro sign test (s-test) over paired per-decision
// correctness, and a macro paired t-test over per-category F1 scores.

// SignTest performs the two-sided micro sign test on paired binary
// decisions: aCorrect and bCorrect report, per (document, category)
// decision, whether system A and system B were right. Ties (both right
// or both wrong) are discarded, as the s-test prescribes. It returns
// the counts where exactly one system was right and the two-sided
// p-value (exact binomial for n ≤ 50, normal approximation beyond).
func SignTest(aCorrect, bCorrect []bool) (aOnly, bOnly int, p float64, err error) {
	if len(aCorrect) != len(bCorrect) {
		return 0, 0, 0, fmt.Errorf("metrics: sign test length mismatch %d vs %d", len(aCorrect), len(bCorrect))
	}
	for i := range aCorrect {
		switch {
		case aCorrect[i] && !bCorrect[i]:
			aOnly++
		case !aCorrect[i] && bCorrect[i]:
			bOnly++
		}
	}
	n := aOnly + bOnly
	if n == 0 {
		return aOnly, bOnly, 1, nil
	}
	k := aOnly
	if bOnly < k {
		k = bOnly
	}
	if n <= 50 {
		// Exact two-sided binomial: 2·P(X ≤ k | n, ½), capped at 1.
		var cum float64
		for i := 0; i <= k; i++ {
			cum += binomialPMF(n, i)
		}
		p = 2 * cum
	} else {
		// Normal approximation with continuity correction.
		z := (float64(k) + 0.5 - float64(n)/2) / math.Sqrt(float64(n)/4)
		p = 2 * normalCDF(z)
	}
	if p > 1 {
		p = 1
	}
	return aOnly, bOnly, p, nil
}

// binomialPMF is C(n,k)·(1/2)^n computed in log space for stability.
func binomialPMF(n, k int) float64 {
	lg := lgammaf(float64(n+1)) - lgammaf(float64(k+1)) - lgammaf(float64(n-k+1))
	return math.Exp(lg - float64(n)*math.Ln2)
}

func lgammaf(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// normalCDF is Φ(z) for the standard normal.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// PairedTTest performs the two-sided paired t-test on per-category
// score pairs (e.g. F1 of two systems over the same categories),
// returning the t statistic, degrees of freedom and two-sided p-value.
// At least two non-identical pairs are required.
func PairedTTest(a, b []float64) (t float64, df int, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, 0, fmt.Errorf("metrics: t-test length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, 0, 0, fmt.Errorf("metrics: t-test needs at least 2 pairs, got %d", n)
	}
	diffs := make([]float64, n)
	var mean float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i]
	}
	mean /= float64(n)
	var variance float64
	for _, d := range diffs {
		dd := d - mean
		variance += dd * dd
	}
	variance /= float64(n - 1)
	if variance == 0 {
		if mean == 0 {
			return 0, n - 1, 1, nil
		}
		return math.Inf(sign(mean)), n - 1, 0, nil
	}
	t = mean / math.Sqrt(variance/float64(n))
	df = n - 1
	p = 2 * studentTSF(math.Abs(t), float64(df))
	if p > 1 {
		p = 1
	}
	return t, df, p, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTSF is the survival function P(T > t) of Student's t with df
// degrees of freedom, via the regularised incomplete beta function:
// P(T > t) = ½·I_{df/(df+t²)}(df/2, ½).
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta function I_x(a,b)
// by the continued-fraction expansion (Lentz's algorithm; Numerical
// Recipes 6.4).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lnBeta := lgammaf(a+b) - lgammaf(a) - lgammaf(b)
	front := math.Exp(lnBeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 200
	const eps = 3e-14
	const tiny = 1e-30
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// CompareSystems runs both tests over two evaluation sets that observed
// the same decisions in the same order: the micro s-test over pooled
// per-decision correctness and the macro t-test over per-category F1.
type Comparison struct {
	// AOnly and BOnly count decisions exactly one system got right.
	AOnly, BOnly int
	// SignP is the two-sided s-test p-value.
	SignP float64
	// T, DF and TTestP describe the macro paired t-test over F1 scores.
	T      float64
	DF     int
	TTestP float64
}

// Compare tests whether two systems differ significantly given their
// paired per-decision correctness vectors and per-category F1 maps over
// the same categories.
func Compare(aCorrect, bCorrect []bool, aF1, bF1 map[string]float64) (*Comparison, error) {
	aOnly, bOnly, signP, err := SignTest(aCorrect, bCorrect)
	if err != nil {
		return nil, err
	}
	// Pair the scores in sorted category order: the t statistic sums
	// floating-point differences, so map iteration order would change
	// its low bits run to run.
	cats := make([]string, 0, len(aF1))
	for cat := range aF1 {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	var av, bv []float64
	for _, cat := range cats {
		b, ok := bF1[cat]
		if !ok {
			return nil, fmt.Errorf("metrics: category %q missing from second system", cat)
		}
		av = append(av, aF1[cat])
		bv = append(bv, b)
	}
	t, df, tp, err := PairedTTest(av, bv)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		AOnly: aOnly, BOnly: bOnly, SignP: signP,
		T: t, DF: df, TTestP: tp,
	}, nil
}
