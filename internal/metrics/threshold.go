package metrics

// BestF1Threshold sweeps candidate thresholds over real-valued decision
// scores and returns the threshold maximising F1 against the labels
// (candidates are midpoints between adjacent distinct scores; a score
// counts as positive when strictly above the threshold). Used by
// score-based classifiers to convert a decision function into a binary
// rule.
func BestF1Threshold(scores []float64, labels []bool) float64 {
	if len(scores) == 0 {
		return 0
	}
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	totalPos := 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			totalPos++
		}
	}
	// Sort descending by score (insertion sort: callers pass at most a
	// few thousand training scores).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].s > ps[j-1].s; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	bestF1, bestThr := -1.0, ps[0].s+1
	tp, fp := 0, 0
	for i := 0; i < len(ps); i++ {
		if ps[i].pos {
			tp++
		} else {
			fp++
		}
		// Threshold just below ps[i].s: everything up to i is positive.
		// Epsilon-close scores are grouped as one candidate — a midpoint
		// between scores closer than the tolerance would be a degenerate
		// threshold no classifier could sit on reliably.
		if i+1 < len(ps) && ApproxEqual(ps[i+1].s, ps[i].s) {
			continue
		}
		fn := totalPos - tp
		den := 2*tp + fp + fn
		if den == 0 {
			continue
		}
		f1 := 2 * float64(tp) / float64(den)
		if f1 > bestF1 {
			bestF1 = f1
			if i+1 < len(ps) {
				bestThr = (ps[i].s + ps[i+1].s) / 2
			} else {
				bestThr = ps[i].s - 1e-9
			}
		}
	}
	return bestThr
}
