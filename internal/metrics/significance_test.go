package metrics

import (
	"math"
	"testing"
)

func TestSignTestExact(t *testing.T) {
	// 8 decisions only A got right, 2 only B, plus ties.
	var a, b []bool
	for i := 0; i < 8; i++ {
		a = append(a, true)
		b = append(b, false)
	}
	for i := 0; i < 2; i++ {
		a = append(a, false)
		b = append(b, true)
	}
	for i := 0; i < 5; i++ { // ties are discarded
		a = append(a, true)
		b = append(b, true)
	}
	aOnly, bOnly, p, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if aOnly != 8 || bOnly != 2 {
		t.Fatalf("counts %d/%d", aOnly, bOnly)
	}
	// 2·(C(10,0)+C(10,1)+C(10,2))/2^10 = 112/1024.
	if want := 112.0 / 1024.0; math.Abs(p-want) > 1e-12 {
		t.Errorf("p = %v, want %v", p, want)
	}
}

func TestSignTestAllTies(t *testing.T) {
	a := []bool{true, false, true}
	_, _, p, err := SignTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("all-ties p = %v", p)
	}
}

func TestSignTestNormalApproximation(t *testing.T) {
	var a, b []bool
	for i := 0; i < 65; i++ {
		a = append(a, true)
		b = append(b, false)
	}
	for i := 0; i < 35; i++ {
		a = append(a, false)
		b = append(b, true)
	}
	_, _, p, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// z = (35.5-50)/5 = -2.9 -> two-sided p ≈ 0.00373.
	if math.Abs(p-0.00373) > 0.0005 {
		t.Errorf("normal-approx p = %v, want ~0.00373", p)
	}
}

func TestSignTestMismatch(t *testing.T) {
	if _, _, _, err := SignTest([]bool{true}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestStudentTKnownQuantiles(t *testing.T) {
	// Standard t-table values: P(T > t) one-sided.
	cases := []struct {
		t, df, want float64
	}{
		{2.262, 9, 0.025},  // 95% two-sided critical value, df=9
		{1.833, 9, 0.05},   // 90% two-sided
		{2.228, 10, 0.025}, // df=10
		{1.96, 1e6, 0.025}, // large df -> normal
		{0, 9, 0.5},
	}
	for _, tc := range cases {
		if got := studentTSF(tc.t, tc.df); math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("SF(t=%v, df=%v) = %v, want %v", tc.t, tc.df, got, tc.want)
		}
	}
}

func TestPairedTTestAgainstTable(t *testing.T) {
	// Hand-computed: diffs with mean 0.65, sd 1.01572... give
	// t = 2.0237 at df=9; two-sided p from the t distribution ≈ 0.0737.
	diffs := []float64{1.5, -0.5, 1.0, 0.0, 2.0, -1.0, 1.2, 0.8, -0.2, 1.7}
	a := make([]float64, len(diffs))
	b := make([]float64, len(diffs))
	copy(a, diffs)
	tStat, df, p, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if df != 9 {
		t.Errorf("df = %d", df)
	}
	if math.Abs(tStat-2.0237) > 1e-3 {
		t.Errorf("t = %v, want ~2.0237", tStat)
	}
	if math.Abs(p-0.0737) > 1e-3 {
		t.Errorf("p = %v, want ~0.0737", p)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Identical systems: t=0, p=1.
	a := []float64{0.5, 0.7, 0.9}
	tStat, _, p, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if tStat != 0 || p != 1 {
		t.Errorf("identical systems: t=%v p=%v", tStat, p)
	}
	// Constant non-zero difference: infinitely significant.
	b := []float64{0.4, 0.6, 0.8}
	tStat, _, p, err = PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tStat, 1) || p != 0 {
		t.Errorf("constant difference: t=%v p=%v", tStat, p)
	}
	if _, _, _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair accepted")
	}
	if _, _, _, err := PairedTTest([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRegIncBetaIdentities(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.7} {
		lhs := regIncBeta(2.5, 1.5, x)
		rhs := 1 - regIncBeta(1.5, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestCompare(t *testing.T) {
	a := []bool{true, true, true, false}
	b := []bool{false, true, false, false}
	aF1 := map[string]float64{"earn": 0.9, "acq": 0.8, "grain": 0.7}
	bF1 := map[string]float64{"earn": 0.7, "acq": 0.6, "grain": 0.5}
	cmp, err := Compare(a, b, aF1, bF1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.AOnly != 2 || cmp.BOnly != 0 {
		t.Errorf("counts %d/%d", cmp.AOnly, cmp.BOnly)
	}
	if cmp.SignP < 0 || cmp.SignP > 1 || cmp.TTestP < 0 || cmp.TTestP > 1 {
		t.Errorf("p-values out of range: %+v", cmp)
	}
	// Constant 0.2 difference -> t-test maximally significant (tiny
	// floating-point variance keeps p slightly above zero).
	if cmp.TTestP > 1e-10 {
		t.Errorf("constant-diff TTestP = %v", cmp.TTestP)
	}
	if _, err := Compare(a, b, aF1, map[string]float64{"earn": 1}); err == nil {
		t.Error("missing category accepted")
	}
}
