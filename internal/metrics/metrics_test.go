package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestObserveRouting(t *testing.T) {
	var c Contingency
	c.Observe(true, true)
	c.Observe(true, false)
	c.Observe(false, true)
	c.Observe(false, false)
	if c != (Contingency{TP: 1, FN: 1, FP: 1, TN: 1}) {
		t.Errorf("Observe routing wrong: %v", c)
	}
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestRecallPrecisionF1(t *testing.T) {
	// Table 3 definitions: R = TP/(TP+FN), P = TP/(TP+FP), F1 = 2RP/(R+P).
	c := Contingency{TP: 8, FN: 2, FP: 4, TN: 86}
	if !almost(c.Recall(), 0.8) {
		t.Errorf("Recall = %v", c.Recall())
	}
	if !almost(c.Precision(), 8.0/12.0) {
		t.Errorf("Precision = %v", c.Precision())
	}
	wantF1 := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if !almost(c.F1(), wantF1) {
		t.Errorf("F1 = %v, want %v", c.F1(), wantF1)
	}
}

func TestUndefinedMeasuresAreZero(t *testing.T) {
	var c Contingency
	if c.Recall() != 0 || c.Precision() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty table measures not zero")
	}
	onlyTN := Contingency{TN: 10}
	if onlyTN.Recall() != 0 || onlyTN.Precision() != 0 || onlyTN.F1() != 0 {
		t.Error("TN-only table measures not zero")
	}
	if !almost(onlyTN.Accuracy(), 1) {
		t.Errorf("TN-only accuracy = %v", onlyTN.Accuracy())
	}
}

func TestPerfectClassifier(t *testing.T) {
	c := Contingency{TP: 5, TN: 95}
	if !almost(c.F1(), 1) || !almost(c.Accuracy(), 1) {
		t.Errorf("perfect classifier: F1=%v acc=%v", c.F1(), c.Accuracy())
	}
}

func TestAdd(t *testing.T) {
	a := Contingency{TP: 1, FN: 2, FP: 3, TN: 4}
	a.Add(Contingency{TP: 10, FN: 20, FP: 30, TN: 40})
	if a != (Contingency{TP: 11, FN: 22, FP: 33, TN: 44}) {
		t.Errorf("Add = %v", a)
	}
}

func TestSetMacroMicro(t *testing.T) {
	s := NewSet()
	// Category A: perfect (F1=1). Category B: nothing right (F1=0).
	for i := 0; i < 10; i++ {
		s.Observe("a", true, true)
		s.Observe("b", true, false)
	}
	if !almost(s.MacroF1(), 0.5) {
		t.Errorf("MacroF1 = %v, want 0.5", s.MacroF1())
	}
	// Pooled: TP=10, FN=10 -> P=1, R=0.5, F1=2/3.
	if !almost(s.MicroF1(), 2.0/3.0) {
		t.Errorf("MicroF1 = %v, want 2/3", s.MicroF1())
	}
}

func TestSetTableAndCategories(t *testing.T) {
	s := NewSet()
	s.Observe("earn", true, true)
	s.Observe("acq", false, true)
	if got := s.Categories(); len(got) != 2 || got[0] != "acq" || got[1] != "earn" {
		t.Errorf("Categories = %v", got)
	}
	if tab := s.Table("earn"); tab.TP != 1 {
		t.Errorf("Table(earn) = %v", tab)
	}
	if tab := s.Table("missing"); tab.Total() != 0 {
		t.Errorf("Table(missing) = %v", tab)
	}
}

func TestEmptySetAverages(t *testing.T) {
	s := NewSet()
	if s.MacroF1() != 0 || s.MicroF1() != 0 || s.MacroPrecision() != 0 || s.MacroRecall() != 0 {
		t.Error("empty set averages not zero")
	}
}

func TestMacroPrecisionRecall(t *testing.T) {
	s := NewSet()
	// a: P=1, R=0.5. b: P=0.5, R=1.
	s.Observe("a", true, true)
	s.Observe("a", true, false)
	s.Observe("b", true, true)
	s.Observe("b", false, true)
	if !almost(s.MacroPrecision(), 0.75) {
		t.Errorf("MacroPrecision = %v", s.MacroPrecision())
	}
	if !almost(s.MacroRecall(), 0.75) {
		t.Errorf("MacroRecall = %v", s.MacroRecall())
	}
}

// Property: F1 always lies between min and max of precision and recall,
// and all measures lie in [0,1].
func TestMeasureBoundsProperty(t *testing.T) {
	f := func(tp, fn, fp, tn uint8) bool {
		c := Contingency{TP: int(tp), FN: int(fn), FP: int(fp), TN: int(tn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		for _, v := range []float64{p, r, f1, c.Accuracy()} {
			if v < 0 || v > 1 {
				return false
			}
		}
		if p > 0 && r > 0 {
			lo, hi := math.Min(p, r), math.Max(p, r)
			if f1 < lo-1e-12 || f1 > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: pooled table equals the sum of per-category observations.
func TestPooledSumProperty(t *testing.T) {
	f := func(obs []bool) bool {
		s := NewSet()
		n := 0
		for i, b := range obs {
			cat := "x"
			if i%2 == 0 {
				cat = "y"
			}
			s.Observe(cat, b, !b)
			n++
		}
		return s.Pooled().Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestContingencyString(t *testing.T) {
	c := Contingency{TP: 1, FN: 2, FP: 3, TN: 4}
	if got := c.String(); got != "TP=1 FN=2 FP=3 TN=4" {
		t.Errorf("String = %q", got)
	}
}
