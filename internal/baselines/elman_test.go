package baselines

import (
	"math"
	"math/rand"
	"testing"

	"temporaldoc/internal/corpus"
)

func TestElmanDefaults(t *testing.T) {
	e := NewElman(ElmanConfig{})
	if e.cfg.Hidden != 8 || e.cfg.Epochs != 30 || e.cfg.MaxWords != 50 {
		t.Errorf("defaults: %+v", e.cfg)
	}
	if e.Name() != "elman-rnn" {
		t.Errorf("Name = %q", e.Name())
	}
	if got := e.Score([]string{"x"}); got != 0 {
		t.Errorf("untrained Score = %v", got)
	}
}

func TestElmanLearnsSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := syntheticTrain(rng, 25)
	test := syntheticTrain(rng, 10)
	e := NewElman(ElmanConfig{Seed: 1, Epochs: 25})
	if err := e.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, d := range test {
		if e.Predict(d.Words) == d.HasCategory("earn") {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.85 {
		t.Errorf("elman accuracy = %v", acc)
	}
}

func TestElmanRejectsSingleClass(t *testing.T) {
	docs := []corpus.Document{
		{ID: "1", Words: []string{"profit"}, Categories: []string{"earn"}},
	}
	if err := NewElman(ElmanConfig{}).Train(docs, "earn"); err == nil {
		t.Error("single-class training accepted")
	}
}

func TestElmanSignificanceVectors(t *testing.T) {
	e := NewElman(ElmanConfig{})
	train := []corpus.Document{
		{ID: "1", Words: []string{"wheat"}, Categories: []string{"grain"}},
		{ID: "2", Words: []string{"wheat", "profit"}, Categories: []string{"earn"}},
		{ID: "3", Words: []string{"profit"}, Categories: []string{"earn"}},
	}
	e.buildSignificance(train)
	// "profit" appears only under earn -> its earn component is 1.
	sig := e.input("profit")
	var sum float64
	for _, v := range sig {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("significance vector not normalised: %v", sig)
	}
	max := 0.0
	for _, v := range sig {
		if v > max {
			max = v
		}
	}
	if max != 1 {
		t.Errorf("pure-category word not concentrated: %v", sig)
	}
	// "wheat" splits between grain and earn.
	wheat := e.input("wheat")
	nonzero := 0
	for _, v := range wheat {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 2 {
		t.Errorf("mixed word significance = %v", wheat)
	}
	// Unknown words get the uniform vector.
	unk := e.input("zzz")
	for _, v := range unk {
		if math.Abs(v-1/float64(e.nCats)) > 1e-12 {
			t.Errorf("unknown word vector = %v", unk)
		}
	}
}

// Finite-difference gradient check: perturb each parameter class and
// compare the analytic BPTT gradient against (L(θ+ε)-L(θ-ε))/2ε.
func TestElmanBPTTGradientCheck(t *testing.T) {
	e := NewElman(ElmanConfig{Hidden: 3, Seed: 4})
	train := []corpus.Document{
		{ID: "1", Words: []string{"a", "b", "a"}, Categories: []string{"x"}},
		{ID: "2", Words: []string{"c", "b"}, Categories: []string{"y"}},
	}
	e.buildSignificance(train)
	rng := rand.New(rand.NewSource(5))
	h := e.cfg.Hidden
	e.wx = make([][]float64, h)
	e.wh = make([][]float64, h)
	for i := 0; i < h; i++ {
		e.wx[i] = make([]float64, e.nCats)
		e.wh[i] = make([]float64, h)
		for j := range e.wx[i] {
			e.wx[i][j] = rng.Float64() - 0.5
		}
		for j := range e.wh[i] {
			e.wh[i][j] = rng.Float64() - 0.5
		}
	}
	e.bh = make([]float64, h)
	e.wo = []float64{0.3, -0.2, 0.4}
	e.bo = 0.1

	words := []string{"a", "b", "c", "a"}
	target := 1.0
	loss := func() float64 {
		_, y := e.forward(words)
		d := y - target
		return d * d
	}
	// Analytic gradient via one BPTT step with learning rate lr: the
	// parameter moves by -lr*g, so g = (before-after)/lr per parameter.
	// Instead of exposing the gradients, compare loss decrease direction
	// for each parameter perturbation: use finite differences on a copy
	// and verify the BPTT update reduces loss.
	const eps = 1e-6
	// Finite-difference gradient for a single weight:
	e.wx[0][0] += eps
	lp := loss()
	e.wx[0][0] -= 2 * eps
	lm := loss()
	e.wx[0][0] += eps
	fd := (lp - lm) / (2 * eps)

	// Capture parameter before a tiny BPTT step, derive analytic grad.
	before := e.wx[0][0]
	lrSave := e.cfg.LearningRate
	e.cfg.LearningRate = 1e-4
	e.bptt(words, target)
	analytic := (before - e.wx[0][0]) / e.cfg.LearningRate
	e.cfg.LearningRate = lrSave

	if math.Abs(fd-analytic) > 1e-3*(1+math.Abs(fd)) {
		t.Errorf("gradient mismatch: finite-diff %v vs analytic %v", fd, analytic)
	}
}

func TestElmanBPTTStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := syntheticTrain(rng, 6)
	e := NewElman(ElmanConfig{Hidden: 4, Seed: 7, Epochs: 1})
	if err := e.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	words := train[0].Words
	target := 1.0
	if !train[0].HasCategory("earn") {
		target = -1
	}
	lossOf := func() float64 {
		_, y := e.forward(e.truncate(words))
		d := y - target
		return d * d
	}
	before := lossOf()
	for k := 0; k < 5; k++ {
		e.bptt(e.truncate(words), target)
	}
	if after := lossOf(); after > before+1e-9 {
		t.Errorf("BPTT increased loss: %v -> %v", before, after)
	}
}

func TestElmanUsesWordOrderState(t *testing.T) {
	// The hidden state must evolve over the sequence: hidden states at
	// successive steps differ.
	rng := rand.New(rand.NewSource(8))
	train := syntheticTrain(rng, 10)
	e := NewElman(ElmanConfig{Seed: 2, Epochs: 5})
	if err := e.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	hs, _ := e.forward([]string{"profit", "wheat", "profit"})
	if len(hs) != 4 {
		t.Fatalf("hidden states = %d", len(hs))
	}
	same := true
	for i := range hs[1] {
		if hs[1][i] != hs[2][i] {
			same = false
		}
	}
	if same {
		t.Error("hidden state frozen across different words")
	}
}
