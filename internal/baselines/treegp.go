package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/ngram"
)

// TreeGPConfig parameterises the tree-based GP baseline (Hirsch et al.
// 2005: evolved arithmetic rules over n-gram statistics).
type TreeGPConfig struct {
	// NumFeatures is the number of top category n-grams used as
	// terminals. Zero means 40.
	NumFeatures int
	// MaxN is the largest n-gram order. Zero means 3.
	MaxN int
	// PopulationSize. Zero means 80.
	PopulationSize int
	// Generations of the generational loop. Zero means 30.
	Generations int
	// TournamentSize for parent selection. Zero means 3.
	TournamentSize int
	// MaxDepth bounds tree depth. Zero means 7.
	MaxDepth int
	// PCrossover and PMutate select the variation operator per offspring
	// (crossover first, else mutation, else reproduction). Zeroes mean
	// 0.9 and 0.1.
	PCrossover, PMutate float64
	// Seed drives evolution randomness.
	Seed int64
}

func (c *TreeGPConfig) setDefaults() {
	if c.NumFeatures <= 0 {
		c.NumFeatures = 40
	}
	if c.MaxN <= 0 {
		c.MaxN = 3
	}
	if c.PopulationSize <= 0 {
		c.PopulationSize = 80
	}
	if c.Generations <= 0 {
		c.Generations = 30
	}
	if c.TournamentSize <= 0 {
		c.TournamentSize = 3
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 7
	}
	if c.PCrossover <= 0 {
		c.PCrossover = 0.9
	}
	if c.PMutate <= 0 {
		c.PMutate = 0.1
	}
}

// TreeGP is the T-GP baseline of Table 5: a tree-structured GP whose
// terminals are n-gram counts of the document and whose functions are
// {+, -, ×, protected ÷}; the evolved expression's value thresholds into
// an in/out decision.
type TreeGP struct {
	cfg       TreeGPConfig
	features  []string
	best      *gpNode
	threshold float64
	trained   bool
}

// NewTreeGP builds a T-GP classifier; features are chosen from the
// target category's training documents at Train time.
func NewTreeGP(cfg TreeGPConfig) *TreeGP {
	cfg.setDefaults()
	return &TreeGP{cfg: cfg}
}

// Name implements Classifier.
func (t *TreeGP) Name() string { return "tree-gp" }

// gpNode is an expression-tree node: op < 0 marks a terminal (feature
// index feat >= 0, or constant feat < 0 with value in konst).
type gpNode struct {
	op          int // 0..3 = + - * /; -1 terminal
	left, right *gpNode
	feat        int
	konst       float64
}

func (n *gpNode) eval(x []float64) float64 {
	if n.op < 0 {
		if n.feat >= 0 {
			return x[n.feat]
		}
		return n.konst
	}
	l, r := n.left.eval(x), n.right.eval(x)
	switch n.op {
	case 0:
		return l + r
	case 1:
		return l - r
	case 2:
		return clampf(l * r)
	default:
		if math.Abs(r) < 1e-9 {
			return l
		}
		return clampf(l / r)
	}
}

func clampf(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > 1e9 {
		return 1e9
	}
	if v < -1e9 {
		return -1e9
	}
	return v
}

func (n *gpNode) clone() *gpNode {
	if n == nil {
		return nil
	}
	return &gpNode{op: n.op, left: n.left.clone(), right: n.right.clone(), feat: n.feat, konst: n.konst}
}

func (n *gpNode) depth() int {
	if n.op < 0 {
		return 1
	}
	l, r := n.left.depth(), n.right.depth()
	if r > l {
		l = r
	}
	return 1 + l
}

func (n *gpNode) size() int {
	if n.op < 0 {
		return 1
	}
	return 1 + n.left.size() + n.right.size()
}

// nth returns a pointer to the i-th node slot in preorder, enabling
// subtree replacement.
func nth(slot **gpNode, i *int) **gpNode {
	if *i == 0 {
		return slot
	}
	*i--
	n := *slot
	if n.op < 0 {
		return nil
	}
	if found := nth(&n.left, i); found != nil {
		return found
	}
	return nth(&n.right, i)
}

func (t *TreeGP) randomTree(rng *rand.Rand, depth int, full bool) *gpNode {
	if depth <= 1 || (!full && rng.Float64() < 0.3) {
		if rng.Float64() < 0.8 {
			return &gpNode{op: -1, feat: rng.Intn(len(t.features))}
		}
		return &gpNode{op: -1, feat: -1, konst: rng.Float64()*2 - 1}
	}
	return &gpNode{
		op:    rng.Intn(4),
		left:  t.randomTree(rng, depth-1, full),
		right: t.randomTree(rng, depth-1, full),
	}
}

// Train implements Classifier.
func (t *TreeGP) Train(train []corpus.Document, category string) error {
	if _, _, err := splitByLabel(train, category); err != nil {
		return err
	}
	t.features = ngram.TopByCategoryDF(train, category, t.cfg.MaxN, t.cfg.NumFeatures)
	if len(t.features) == 0 {
		return fmt.Errorf("baselines: no n-gram features for category %q", category)
	}
	n := len(train)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range train {
		xs[i] = ngram.CountVector(train[i].Words, t.features)
		if train[i].HasCategory(category) {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	rng := rand.New(rand.NewSource(t.cfg.Seed + 1))

	fitness := func(nd *gpNode) float64 {
		var sse float64
		for i := range xs {
			out := 2/(1+math.Exp(-nd.eval(xs[i]))) - 1
			d := ys[i] - out
			sse += d * d
		}
		return sse
	}

	// Ramped half-and-half initialisation.
	pop := make([]*gpNode, t.cfg.PopulationSize)
	fits := make([]float64, t.cfg.PopulationSize)
	for i := range pop {
		depth := 2 + i%(t.cfg.MaxDepth-2)
		pop[i] = t.randomTree(rng, depth, i%2 == 0)
		fits[i] = fitness(pop[i])
	}
	pick := func() int {
		best := rng.Intn(len(pop))
		for k := 1; k < t.cfg.TournamentSize; k++ {
			if c := rng.Intn(len(pop)); fits[c] < fits[best] {
				best = c
			}
		}
		return best
	}
	for gen := 0; gen < t.cfg.Generations; gen++ {
		next := make([]*gpNode, 0, len(pop))
		nextFits := make([]float64, 0, len(pop))
		// Elitism: carry the two best forward.
		b1, b2 := 0, 1
		if fits[b2] < fits[b1] {
			b1, b2 = b2, b1
		}
		for i := 2; i < len(pop); i++ {
			if fits[i] < fits[b1] {
				b2, b1 = b1, i
			} else if fits[i] < fits[b2] {
				b2 = i
			}
		}
		next = append(next, pop[b1].clone(), pop[b2].clone())
		nextFits = append(nextFits, fits[b1], fits[b2])
		for len(next) < len(pop) {
			child := pop[pick()].clone()
			switch r := rng.Float64(); {
			case r < t.cfg.PCrossover:
				donor := pop[pick()]
				i := rng.Intn(child.size())
				slot := nth(&child, &i)
				j := rng.Intn(donor.size())
				sub := donor
				jj := j
				if s := nth(&sub, &jj); s != nil {
					*slot = (*s).clone()
				}
				if child.depth() > t.cfg.MaxDepth {
					child = pop[pick()].clone() // reject oversize offspring
				}
			case r < t.cfg.PCrossover+t.cfg.PMutate:
				i := rng.Intn(child.size())
				slot := nth(&child, &i)
				*slot = t.randomTree(rng, 3, false)
				if child.depth() > t.cfg.MaxDepth {
					child = pop[pick()].clone()
				}
			}
			next = append(next, child)
			nextFits = append(nextFits, fitness(child))
		}
		pop, fits = next, nextFits
	}
	bestIdx := 0
	for i := range fits {
		if fits[i] < fits[bestIdx] {
			bestIdx = i
		}
	}
	t.best = pop[bestIdx]
	// Tune the decision threshold on training scores.
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range xs {
		scores[i] = t.best.eval(xs[i])
		labels[i] = ys[i] > 0
	}
	t.threshold = bestF1Threshold(scores, labels)
	t.trained = true
	return nil
}

// Score implements Classifier.
func (t *TreeGP) Score(words []string) float64 {
	if !t.trained {
		return 0
	}
	x := ngram.CountVector(words, t.features)
	return t.best.eval(x) - t.threshold
}

// Predict implements Classifier.
func (t *TreeGP) Predict(words []string) bool { return t.Score(words) > 0 }

// BestSize returns the node count of the evolved rule (diagnostic).
func (t *TreeGP) BestSize() int {
	if t.best == nil {
		return 0
	}
	return t.best.size()
}
