package baselines

import (
	"math"
	"math/rand"

	"temporaldoc/internal/corpus"
)

// SVMConfig parameterises the linear SVM baseline.
type SVMConfig struct {
	// Lambda is the Pegasos regularisation strength. Zero means 1e-4.
	Lambda float64
	// Epochs is the number of passes over the training set. Zero means 20.
	Epochs int
	// Seed drives the stochastic example order.
	Seed int64
	// NoClassWeights disables the positive-class weighting that
	// compensates the heavy class imbalance of per-category Reuters
	// training (rare categories would otherwise collapse to the
	// all-negative predictor).
	NoClassWeights bool
}

// LinearSVM is a linear support-vector machine trained with the Pegasos
// stochastic sub-gradient algorithm on tf-idf vectors, with
// imbalance-compensating class weights and an F1-tuned decision bias —
// the L-SVM baseline of Table 5 (Dumais et al.).
type LinearSVM struct {
	cfg       SVMConfig
	vec       *Vectorizer
	w         []float64
	b         float64
	threshold float64
	trained   bool
}

// NewLinearSVM builds a linear SVM over the feature set.
func NewLinearSVM(features []string, cfg SVMConfig) *LinearSVM {
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	return &LinearSVM{cfg: cfg, vec: NewVectorizer(features)}
}

// Name implements Classifier.
func (s *LinearSVM) Name() string { return "linear-svm" }

// Train implements Classifier.
func (s *LinearSVM) Train(train []corpus.Document, category string) error {
	pos, neg, err := splitByLabel(train, category)
	if err != nil {
		return err
	}
	s.vec.FitIDF(train)
	n := len(train)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range train {
		xs[i] = s.vec.TFIDF(train[i].Words)
		if train[i].HasCategory(category) {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	// Imbalance compensation: scale positive-example updates so both
	// classes exert equal total pull on w.
	posWeight := 1.0
	if !s.cfg.NoClassWeights {
		posWeight = float64(len(neg)) / float64(len(pos))
		// Cap the weight: very rare categories would otherwise swamp w
		// with positive pull and over-predict.
		if posWeight > 10 {
			posWeight = 10
		}
	}
	dim := s.vec.Dim()
	s.w = make([]float64, dim)
	s.b = 0
	rng := rand.New(rand.NewSource(s.cfg.Seed + 1))
	lambda := s.cfg.Lambda
	t := 0
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		for k := 0; k < n; k++ {
			t++
			i := rng.Intn(n)
			eta := 1 / (lambda * float64(t))
			margin := ys[i] * (dot(s.w, xs[i]) + s.b)
			// w <- (1 - eta*lambda) w [+ eta*y*x on margin violation]
			scale := 1 - eta*lambda
			if scale < 0 {
				scale = 0
			}
			for j := range s.w {
				s.w[j] *= scale
			}
			if margin < 1 {
				cw := 1.0
				if ys[i] > 0 {
					cw = posWeight
				}
				for j, x := range xs[i] {
					if x != 0 {
						s.w[j] += eta * cw * ys[i] * x
					}
				}
				s.b += eta * cw * ys[i]
			}
			// Project onto the 1/sqrt(lambda) ball.
			var norm float64
			for _, wj := range s.w {
				norm += wj * wj
			}
			norm = math.Sqrt(norm)
			if limit := 1 / math.Sqrt(lambda); norm > limit {
				f := limit / norm
				for j := range s.w {
					s.w[j] *= f
				}
			}
		}
	}
	// Tune the decision bias on the training scores: the paper's
	// baselines threshold per category.
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range xs {
		scores[i] = dot(s.w, xs[i]) + s.b
		labels[i] = ys[i] > 0
	}
	s.threshold = bestF1Threshold(scores, labels)
	s.trained = true
	return nil
}

// Score implements Classifier: the signed margin relative to the tuned
// decision bias.
func (s *LinearSVM) Score(words []string) float64 {
	if !s.trained {
		return 0
	}
	return dot(s.w, s.vec.TFIDF(words)) + s.b - s.threshold
}

// Predict implements Classifier.
func (s *LinearSVM) Predict(words []string) bool { return s.Score(words) > 0 }
