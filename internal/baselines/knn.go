package baselines

import (
	"sort"

	"temporaldoc/internal/corpus"
)

// KNNConfig parameterises the k-nearest-neighbour baseline.
type KNNConfig struct {
	// K is the neighbourhood size. Zero means 15 (a typical Reuters
	// setting).
	K int
}

// KNN is the k-nearest-neighbour text classifier (Yang's classic strong
// Reuters baseline): the score of a test document is the
// cosine-similarity-weighted vote of its k nearest training documents,
// thresholded by training F1.
type KNN struct {
	cfg       KNNConfig
	vec       *Vectorizer
	vectors   [][]float64
	positive  []bool
	threshold float64
	trained   bool
}

// NewKNN builds a kNN classifier over the feature set.
func NewKNN(features []string, cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 15
	}
	return &KNN{cfg: cfg, vec: NewVectorizer(features)}
}

// Name implements Classifier.
func (k *KNN) Name() string { return "knn" }

// Train implements Classifier. kNN is lazy: training stores the tf-idf
// vectors and tunes the vote threshold by leave-one-in training F1.
func (k *KNN) Train(train []corpus.Document, category string) error {
	if _, _, err := splitByLabel(train, category); err != nil {
		return err
	}
	k.vec.FitIDF(train)
	k.vectors = make([][]float64, len(train))
	k.positive = make([]bool, len(train))
	for i := range train {
		k.vectors[i] = k.vec.TFIDF(train[i].Words)
		k.positive[i] = train[i].HasCategory(category)
	}
	// Tune the vote threshold on training documents, excluding each
	// document from its own neighbourhood.
	scores := make([]float64, len(train))
	for i := range train {
		scores[i] = k.vote(k.vectors[i], i)
	}
	k.threshold = bestF1Threshold(scores, k.positive)
	k.trained = true
	return nil
}

// vote returns the similarity-weighted positive vote of the k nearest
// stored vectors to x, skipping index exclude (-1 for none).
func (k *KNN) vote(x []float64, exclude int) float64 {
	type neighbour struct {
		sim float64
		pos bool
	}
	// Keep the top-k by similarity with a small insertion buffer.
	top := make([]neighbour, 0, k.cfg.K)
	for i, v := range k.vectors {
		if i == exclude {
			continue
		}
		sim := dot(x, v) // vectors are L2-normalised: dot = cosine
		if len(top) < k.cfg.K {
			top = append(top, neighbour{sim, k.positive[i]})
			sort.Slice(top, func(a, b int) bool { return top[a].sim > top[b].sim })
			continue
		}
		if sim > top[len(top)-1].sim {
			top[len(top)-1] = neighbour{sim, k.positive[i]}
			for j := len(top) - 1; j > 0 && top[j].sim > top[j-1].sim; j-- {
				top[j], top[j-1] = top[j-1], top[j]
			}
		}
	}
	var score float64
	for _, n := range top {
		if n.pos {
			score += n.sim
		} else {
			score -= n.sim
		}
	}
	return score
}

// Score implements Classifier.
func (k *KNN) Score(words []string) float64 {
	if !k.trained {
		return 0
	}
	return k.vote(k.vec.TFIDF(words), -1) - k.threshold
}

// Predict implements Classifier.
func (k *KNN) Predict(words []string) bool { return k.Score(words) > 0 }
