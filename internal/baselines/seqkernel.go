package baselines

import (
	"math"
	"math/rand"

	"temporaldoc/internal/corpus"
)

// SeqKernelConfig parameterises the word-sequence-kernel classifier.
type SeqKernelConfig struct {
	// Length is the subsequence length n. Zero means 2.
	Length int
	// Decay is the gap penalty λ in (0, 1]. Zero means 0.5.
	Decay float64
	// Epochs is the number of kernel-perceptron passes. Zero means 10.
	Epochs int
	// MaxWords truncates documents before kernel evaluation (the kernel
	// is O(|s|·|t|·n)). Zero means 40.
	MaxWords int
	// Seed drives the perceptron's example order.
	Seed int64
}

// SeqKernel is a word-sequence-kernel classifier (Cancedda, Gaussier,
// Goutte & Renders 2003 — the paper's related-work §2): document
// similarity is the gap-weighted count of shared (possibly
// non-contiguous) word subsequences of a fixed length, and a kernel
// perceptron separates in-class from out-class in that feature space.
// The paper contrasts its own dynamic-length word tracking against this
// fixed-subsequence-length approach.
type SeqKernel struct {
	cfg       SeqKernelConfig
	docs      [][]string
	labels    []float64
	alphas    []float64
	selfK     []float64
	threshold float64
	trained   bool
}

// NewSeqKernel builds a word-sequence-kernel classifier. The feature
// vocabulary is implicit (all word subsequences), so no feature list is
// taken.
func NewSeqKernel(cfg SeqKernelConfig) *SeqKernel {
	if cfg.Length <= 0 {
		cfg.Length = 2
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = 0.5
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.MaxWords <= 0 {
		cfg.MaxWords = 40
	}
	return &SeqKernel{cfg: cfg}
}

// Name implements Classifier.
func (sk *SeqKernel) Name() string { return "seq-kernel" }

// ssk computes the raw order-n subsequence kernel between word
// sequences s and t with decay λ (Lodhi et al. dynamic programme,
// applied to words as the alphabet).
func ssk(s, t []string, n int, lambda float64) float64 {
	if len(s) < n || len(t) < n {
		return 0
	}
	l2 := lambda * lambda
	// kp[i][j] = K'_l(s[:i], t[:j]) for the current level l.
	kp := make([][]float64, len(s)+1)
	for i := range kp {
		kp[i] = make([]float64, len(t)+1)
		for j := range kp[i] {
			kp[i][j] = 1 // K'_0 = 1
		}
	}
	kpp := make([][]float64, len(s)+1)
	for i := range kpp {
		kpp[i] = make([]float64, len(t)+1)
	}
	for l := 1; l < n; l++ {
		for i := range kpp {
			for j := range kpp[i] {
				kpp[i][j] = 0
			}
		}
		next := make([][]float64, len(s)+1)
		for i := range next {
			next[i] = make([]float64, len(t)+1)
		}
		for i := l; i <= len(s); i++ {
			for j := l; j <= len(t); j++ {
				match := 0.0
				if s[i-1] == t[j-1] {
					match = l2 * kp[i-1][j-1]
				}
				kpp[i][j] = lambda*kpp[i][j-1] + match
				next[i][j] = lambda*next[i-1][j] + kpp[i][j]
			}
		}
		kp = next
	}
	var k float64
	for i := n; i <= len(s); i++ {
		for j := n; j <= len(t); j++ {
			if s[i-1] == t[j-1] {
				k += l2 * kp[i-1][j-1]
			}
		}
	}
	return k
}

// kernel computes the normalised kernel K(s,t)/√(K(s,s)K(t,t)), with
// self-kernels supplied by the caller when already known (pass <= 0 to
// compute).
func (sk *SeqKernel) kernel(s, t []string, selfS, selfT float64) float64 {
	if selfS <= 0 {
		selfS = ssk(s, s, sk.cfg.Length, sk.cfg.Decay)
	}
	if selfT <= 0 {
		selfT = ssk(t, t, sk.cfg.Length, sk.cfg.Decay)
	}
	if selfS == 0 || selfT == 0 {
		return 0
	}
	return ssk(s, t, sk.cfg.Length, sk.cfg.Decay) / math.Sqrt(selfS*selfT)
}

func (sk *SeqKernel) truncate(words []string) []string {
	if len(words) > sk.cfg.MaxWords {
		return words[:sk.cfg.MaxWords]
	}
	return words
}

// Train implements Classifier: a kernel perceptron over the precomputed
// normalised Gram matrix, followed by an F1-tuned threshold.
func (sk *SeqKernel) Train(train []corpus.Document, category string) error {
	if _, _, err := splitByLabel(train, category); err != nil {
		return err
	}
	n := len(train)
	sk.docs = make([][]string, n)
	sk.labels = make([]float64, n)
	sk.selfK = make([]float64, n)
	for i := range train {
		sk.docs[i] = sk.truncate(train[i].Words)
		if train[i].HasCategory(category) {
			sk.labels[i] = 1
		} else {
			sk.labels[i] = -1
		}
		sk.selfK[i] = ssk(sk.docs[i], sk.docs[i], sk.cfg.Length, sk.cfg.Decay)
	}
	// Precompute the Gram matrix once; the perceptron then only does
	// O(n²) work per epoch.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		gram[i][i] = 1
		if sk.selfK[i] == 0 {
			gram[i][i] = 0
		}
		for j := i + 1; j < n; j++ {
			k := sk.kernel(sk.docs[i], sk.docs[j], sk.selfK[i], sk.selfK[j])
			gram[i][j], gram[j][i] = k, k
		}
	}
	sk.alphas = make([]float64, n)
	rng := rand.New(rand.NewSource(sk.cfg.Seed + 1))
	order := rng.Perm(n)
	for epoch := 0; epoch < sk.cfg.Epochs; epoch++ {
		mistakes := 0
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			var score float64
			for j := 0; j < n; j++ {
				if sk.alphas[j] != 0 {
					score += sk.alphas[j] * sk.labels[j] * gram[j][i]
				}
			}
			if score*sk.labels[i] <= 0 {
				sk.alphas[i]++
				mistakes++
			}
		}
		if mistakes == 0 {
			break
		}
	}
	// Tune the decision threshold on the training scores.
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		var score float64
		for j := 0; j < n; j++ {
			if sk.alphas[j] != 0 {
				score += sk.alphas[j] * sk.labels[j] * gram[j][i]
			}
		}
		scores[i] = score
		labels[i] = sk.labels[i] > 0
	}
	sk.threshold = bestF1Threshold(scores, labels)
	sk.trained = true
	return nil
}

// Score implements Classifier.
func (sk *SeqKernel) Score(words []string) float64 {
	if !sk.trained {
		return 0
	}
	x := sk.truncate(words)
	selfX := ssk(x, x, sk.cfg.Length, sk.cfg.Decay)
	var score float64
	for j := range sk.docs {
		if sk.alphas[j] != 0 {
			score += sk.alphas[j] * sk.labels[j] * sk.kernel(sk.docs[j], x, sk.selfK[j], selfX)
		}
	}
	return score - sk.threshold
}

// Predict implements Classifier.
func (sk *SeqKernel) Predict(words []string) bool { return sk.Score(words) > 0 }
