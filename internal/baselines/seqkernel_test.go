package baselines

import (
	"math"
	"math/rand"
	"temporaldoc/internal/corpus"
	"testing"
)

// The classic Lodhi et al. worked example at n=2: treating characters as
// words, K2("cat","car") normalised = 1/(2+λ²).
func TestSSKLodhiExample(t *testing.T) {
	cat := []string{"c", "a", "t"}
	car := []string{"c", "a", "r"}
	for _, lambda := range []float64{0.3, 0.5, 0.9, 1.0} {
		raw := ssk(cat, car, 2, lambda)
		l4 := math.Pow(lambda, 4)
		if math.Abs(raw-l4) > 1e-12 {
			t.Errorf("λ=%v: K2(cat,car) = %v, want λ⁴ = %v", lambda, raw, l4)
		}
		self := ssk(cat, cat, 2, lambda)
		want := 2*l4 + math.Pow(lambda, 6)
		if math.Abs(self-want) > 1e-12 {
			t.Errorf("λ=%v: K2(cat,cat) = %v, want %v", lambda, self, want)
		}
		sk := NewSeqKernel(SeqKernelConfig{Length: 2, Decay: lambda})
		norm := sk.kernel(cat, car, 0, 0)
		if math.Abs(norm-1/(2+lambda*lambda)) > 1e-12 {
			t.Errorf("λ=%v: normalised = %v, want %v", lambda, norm, 1/(2+lambda*lambda))
		}
	}
}

func TestSSKEdgeCases(t *testing.T) {
	if got := ssk([]string{"a"}, []string{"a", "b"}, 2, 0.5); got != 0 {
		t.Errorf("too-short sequence kernel = %v", got)
	}
	if got := ssk(nil, nil, 1, 0.5); got != 0 {
		t.Errorf("empty kernel = %v", got)
	}
	// Order 1 with λ=1 counts shared word pairs.
	a := []string{"x", "y"}
	b := []string{"y", "x", "y"}
	// matches: x with 1 x, y with 2 y -> 1 + 2 = 3.
	if got := ssk(a, b, 1, 1); math.Abs(got-3) > 1e-12 {
		t.Errorf("order-1 kernel = %v, want 3", got)
	}
}

func TestSSKSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vocab := []string{"a", "b", "c", "d"}
	mk := func() []string {
		out := make([]string, 3+rng.Intn(6))
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	sk := NewSeqKernel(SeqKernelConfig{Length: 2, Decay: 0.6})
	for trial := 0; trial < 50; trial++ {
		s, u := mk(), mk()
		if math.Abs(ssk(s, u, 2, 0.6)-ssk(u, s, 2, 0.6)) > 1e-12 {
			t.Fatalf("kernel not symmetric for %v, %v", s, u)
		}
		norm := sk.kernel(s, u, 0, 0)
		if norm < -1e-12 || norm > 1+1e-9 {
			t.Fatalf("normalised kernel %v out of [0,1] for %v, %v", norm, s, u)
		}
		if self := sk.kernel(s, s, 0, 0); math.Abs(self-1) > 1e-9 {
			t.Fatalf("self kernel %v != 1 for %v", self, s)
		}
	}
}

func TestSSKOrderSensitivity(t *testing.T) {
	// The kernel must see word order: a sequence sharing an ordered
	// bigram scores higher than the same bag in reverse order.
	s := []string{"net", "profit", "rose"}
	same := []string{"net", "profit", "fell"}
	reversed := []string{"profit", "net", "fell"}
	kSame := ssk(s, same, 2, 0.5)
	kRev := ssk(s, reversed, 2, 0.5)
	if kSame <= kRev {
		t.Errorf("order insensitivity: same-order %v <= reversed %v", kSame, kRev)
	}
}

func TestSeqKernelClassifierLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := syntheticTrain(rng, 12)
	test := syntheticTrain(rng, 6)
	sk := NewSeqKernel(SeqKernelConfig{Seed: 1, Epochs: 8})
	if err := sk.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, d := range test {
		if sk.Predict(d.Words) == d.HasCategory("earn") {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(test)); acc < 0.85 {
		t.Errorf("seq-kernel accuracy = %v", acc)
	}
}

func TestSeqKernelValidation(t *testing.T) {
	sk := NewSeqKernel(SeqKernelConfig{})
	if sk.cfg.Length != 2 || sk.cfg.Decay != 0.5 || sk.cfg.MaxWords != 40 {
		t.Errorf("defaults: %+v", sk.cfg)
	}
	docs := []corpus.Document{
		{ID: "1", Words: []string{"profit"}, Categories: []string{"earn"}},
	}
	if err := sk.Train(docs, "earn"); err == nil {
		t.Error("single-class training accepted")
	}
	if got := sk.Score([]string{"profit"}); got != 0 {
		t.Errorf("untrained Score = %v", got)
	}
	if sk.Name() != "seq-kernel" {
		t.Errorf("Name = %q", sk.Name())
	}
}

func TestSeqKernelTruncation(t *testing.T) {
	sk := NewSeqKernel(SeqKernelConfig{MaxWords: 3})
	long := []string{"a", "b", "c", "d", "e"}
	if got := sk.truncate(long); len(got) != 3 {
		t.Errorf("truncate = %v", got)
	}
	short := []string{"a"}
	if got := sk.truncate(short); len(got) != 1 {
		t.Errorf("truncate(short) = %v", got)
	}
}
