package baselines

import (
	"math"

	"temporaldoc/internal/corpus"
)

// NaiveBayes is a multinomial Naive Bayes binary classifier with Laplace
// smoothing over the feature vocabulary — the NB baseline of Tables 5
// and 6.
type NaiveBayes struct {
	vec        *Vectorizer
	logPriorIn float64 // log P(in) - log P(out)
	logLikeIn  []float64
	logLikeOut []float64
	trained    bool
}

// NewNaiveBayes builds a Naive Bayes classifier over the feature set.
func NewNaiveBayes(features []string) *NaiveBayes {
	return &NaiveBayes{vec: NewVectorizer(features)}
}

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "naive-bayes" }

// Train implements Classifier.
func (nb *NaiveBayes) Train(train []corpus.Document, category string) error {
	pos, neg, err := splitByLabel(train, category)
	if err != nil {
		return err
	}
	dim := nb.vec.Dim()
	countsIn := make([]float64, dim)
	countsOut := make([]float64, dim)
	var totalIn, totalOut float64
	accumulate := func(docs []corpus.Document, counts []float64) float64 {
		var total float64
		for i := range docs {
			for j, c := range nb.vec.Counts(docs[i].Words) {
				counts[j] += c
				total += c
			}
		}
		return total
	}
	totalIn = accumulate(pos, countsIn)
	totalOut = accumulate(neg, countsOut)

	nb.logPriorIn = math.Log(float64(len(pos))) - math.Log(float64(len(neg)))
	nb.logLikeIn = make([]float64, dim)
	nb.logLikeOut = make([]float64, dim)
	for j := 0; j < dim; j++ {
		nb.logLikeIn[j] = math.Log((countsIn[j] + 1) / (totalIn + float64(dim)))
		nb.logLikeOut[j] = math.Log((countsOut[j] + 1) / (totalOut + float64(dim)))
	}
	nb.trained = true
	return nil
}

// Score implements Classifier: the log posterior odds of membership.
func (nb *NaiveBayes) Score(words []string) float64 {
	if !nb.trained {
		return 0
	}
	score := nb.logPriorIn
	for j, c := range nb.vec.Counts(words) {
		if c > 0 {
			score += c * (nb.logLikeIn[j] - nb.logLikeOut[j])
		}
	}
	return score
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(words []string) bool { return nb.Score(words) > 0 }
