package baselines

import (
	"math"

	"temporaldoc/internal/corpus"
)

// TreeConfig parameterises the decision-tree baseline.
type TreeConfig struct {
	// MaxDepth bounds tree depth. Zero means 12.
	MaxDepth int
	// MinSamples stops splitting below this node size. Zero means 4.
	MinSamples int
}

// DecisionTree is an entropy-based (C4.5-style) decision tree over binary
// word-presence features — the DT baseline of Table 5.
type DecisionTree struct {
	cfg     TreeConfig
	vec     *Vectorizer
	root    *treeNode
	trained bool
}

type treeNode struct {
	// feature is the split feature index, or -1 for a leaf.
	feature int
	// present and absent are the children for feature present/absent.
	present, absent *treeNode
	// prob is the leaf's in-class probability estimate.
	prob float64
}

// NewDecisionTree builds a decision tree over the feature set.
func NewDecisionTree(features []string, cfg TreeConfig) *DecisionTree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 4
	}
	return &DecisionTree{cfg: cfg, vec: NewVectorizer(features)}
}

// Name implements Classifier.
func (dt *DecisionTree) Name() string { return "decision-tree" }

// Train implements Classifier.
func (dt *DecisionTree) Train(train []corpus.Document, category string) error {
	if _, _, err := splitByLabel(train, category); err != nil {
		return err
	}
	n := len(train)
	xs := make([][]float64, n)
	ys := make([]bool, n)
	for i := range train {
		xs[i] = dt.vec.Presence(train[i].Words)
		ys[i] = train[i].HasCategory(category)
	}
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	dt.root = dt.grow(xs, ys, idxs, 0)
	dt.trained = true
	return nil
}

func entropy(pos, total int) float64 {
	if total == 0 || pos == 0 || pos == total {
		return 0
	}
	p := float64(pos) / float64(total)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func (dt *DecisionTree) grow(xs [][]float64, ys []bool, idxs []int, depth int) *treeNode {
	pos := 0
	for _, i := range idxs {
		if ys[i] {
			pos++
		}
	}
	leaf := &treeNode{feature: -1, prob: float64(pos) / float64(len(idxs))}
	if depth >= dt.cfg.MaxDepth || len(idxs) < dt.cfg.MinSamples || pos == 0 || pos == len(idxs) {
		return leaf
	}
	baseH := entropy(pos, len(idxs))
	bestGain, bestFeat := 0.0, -1
	for f := 0; f < dt.vec.Dim(); f++ {
		var nPresent, posPresent int
		for _, i := range idxs {
			if xs[i][f] > 0 {
				nPresent++
				if ys[i] {
					posPresent++
				}
			}
		}
		nAbsent := len(idxs) - nPresent
		if nPresent == 0 || nAbsent == 0 {
			continue
		}
		posAbsent := pos - posPresent
		hSplit := (float64(nPresent)*entropy(posPresent, nPresent) +
			float64(nAbsent)*entropy(posAbsent, nAbsent)) / float64(len(idxs))
		if gain := baseH - hSplit; gain > bestGain+1e-12 {
			bestGain, bestFeat = gain, f
		}
	}
	if bestFeat < 0 {
		return leaf
	}
	var presentIdx, absentIdx []int
	for _, i := range idxs {
		if xs[i][bestFeat] > 0 {
			presentIdx = append(presentIdx, i)
		} else {
			absentIdx = append(absentIdx, i)
		}
	}
	return &treeNode{
		feature: bestFeat,
		prob:    leaf.prob,
		present: dt.grow(xs, ys, presentIdx, depth+1),
		absent:  dt.grow(xs, ys, absentIdx, depth+1),
	}
}

// Score implements Classifier: the leaf in-class probability minus 0.5.
func (dt *DecisionTree) Score(words []string) float64 {
	if !dt.trained {
		return 0
	}
	x := dt.vec.Presence(words)
	node := dt.root
	for node.feature >= 0 {
		if x[node.feature] > 0 {
			node = node.present
		} else {
			node = node.absent
		}
	}
	return node.prob - 0.5
}

// Predict implements Classifier.
func (dt *DecisionTree) Predict(words []string) bool { return dt.Score(words) > 0 }

// Depth returns the trained tree's depth (diagnostic).
func (dt *DecisionTree) Depth() int { return nodeDepth(dt.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	d1, d2 := nodeDepth(n.present), nodeDepth(n.absent)
	if d2 > d1 {
		d1 = d2
	}
	return 1 + d1
}
