package baselines

import (
	"temporaldoc/internal/corpus"
)

// Rocchio is the classic Rocchio relevance-feedback classifier used as a
// baseline in Table 6 (Wu et al. 2002): a class prototype built as
// β·centroid(positive) − γ·centroid(negative) over tf-idf vectors, with
// the decision threshold tuned on the training set by F1.
type Rocchio struct {
	vec       *Vectorizer
	beta      float64
	gamma     float64
	prototype []float64
	threshold float64
	trained   bool
}

// NewRocchio builds a Rocchio classifier with the conventional β=16,
// γ=4 weights (pass other values to override; zero values take the
// defaults).
func NewRocchio(features []string, beta, gamma float64) *Rocchio {
	if beta == 0 {
		beta = 16
	}
	if gamma == 0 {
		gamma = 4
	}
	return &Rocchio{vec: NewVectorizer(features), beta: beta, gamma: gamma}
}

// Name implements Classifier.
func (r *Rocchio) Name() string { return "rocchio" }

// Train implements Classifier.
func (r *Rocchio) Train(train []corpus.Document, category string) error {
	pos, neg, err := splitByLabel(train, category)
	if err != nil {
		return err
	}
	r.vec.FitIDF(train)
	dim := r.vec.Dim()
	centroid := func(docs []corpus.Document) []float64 {
		c := make([]float64, dim)
		for i := range docs {
			for j, x := range r.vec.TFIDF(docs[i].Words) {
				c[j] += x
			}
		}
		for j := range c {
			c[j] /= float64(len(docs))
		}
		return c
	}
	posC, negC := centroid(pos), centroid(neg)
	r.prototype = make([]float64, dim)
	for j := 0; j < dim; j++ {
		r.prototype[j] = r.beta*posC[j] - r.gamma*negC[j]
	}
	// Tune the decision threshold on the training scores.
	scores := make([]float64, len(train))
	labels := make([]bool, len(train))
	for i := range train {
		scores[i] = dot(r.vec.TFIDF(train[i].Words), r.prototype)
		labels[i] = train[i].HasCategory(category)
	}
	r.threshold = bestF1Threshold(scores, labels)
	r.trained = true
	return nil
}

// Score implements Classifier: the prototype dot product minus the tuned
// threshold.
func (r *Rocchio) Score(words []string) float64 {
	if !r.trained {
		return 0
	}
	return dot(r.vec.TFIDF(words), r.prototype) - r.threshold
}

// Predict implements Classifier.
func (r *Rocchio) Predict(words []string) bool { return r.Score(words) > 0 }
