package baselines

import (
	"math"
	"math/rand"
	"sort"

	"temporaldoc/internal/corpus"
)

// ElmanConfig parameterises the recurrent-network baseline.
type ElmanConfig struct {
	// Hidden is the recurrent layer width. Zero means 8.
	Hidden int
	// Epochs of online BPTT. Zero means 30.
	Epochs int
	// LearningRate for SGD. Zero means 0.05.
	LearningRate float64
	// MaxWords truncates documents (BPTT runs over the full sequence).
	// Zero means 50.
	MaxWords int
	// Seed drives weight initialisation and example order.
	Seed int64
}

// Elman is a simple recurrent network text classifier in the spirit of
// Wermter et al. (1995/1999), the recurrent approach the paper's
// related-work section discusses: each word is represented by its
// "significance vector" — the distribution of categories it appears
// under in training — and fed sequentially into an Elman network whose
// hidden state persists across the document; the output unit after the
// last word decides membership. The paper criticises exactly this input
// coding ("this could mislead the classification process according to
// the category sequences instead of the actual word sequences"), which
// makes the network a meaningful temporal baseline.
type Elman struct {
	cfg ElmanConfig
	// significance vectors: word -> category distribution.
	sig    map[string][]float64
	nCats  int
	unifor []float64
	// parameters
	wx, wh    [][]float64 // hidden×input, hidden×hidden
	bh        []float64
	wo        []float64
	bo        float64
	threshold float64
	trained   bool
}

// NewElman builds an Elman recurrent network baseline.
func NewElman(cfg ElmanConfig) *Elman {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 8
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.MaxWords <= 0 {
		cfg.MaxWords = 50
	}
	return &Elman{cfg: cfg}
}

// Name implements Classifier.
func (e *Elman) Name() string { return "elman-rnn" }

// buildSignificance computes Wermter-style significance vectors: for
// each word, the normalised distribution of label assignments of the
// training documents containing it.
func (e *Elman) buildSignificance(train []corpus.Document) {
	catIdx := make(map[string]int)
	for i := range train {
		for _, c := range train[i].Categories {
			if _, ok := catIdx[c]; !ok {
				catIdx[c] = len(catIdx)
			}
		}
	}
	// Deterministic category order.
	cats := make([]string, 0, len(catIdx))
	for c := range catIdx {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for i, c := range cats {
		catIdx[c] = i
	}
	e.nCats = len(cats)
	counts := make(map[string][]float64)
	for i := range train {
		for _, w := range train[i].Words {
			row, ok := counts[w]
			if !ok {
				row = make([]float64, e.nCats)
				counts[w] = row
			}
			for _, c := range train[i].Categories {
				row[catIdx[c]]++
			}
		}
	}
	e.sig = make(map[string][]float64, len(counts))
	for w, row := range counts {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			continue
		}
		norm := make([]float64, e.nCats)
		for i, v := range row {
			norm[i] = v / sum
		}
		e.sig[w] = norm
	}
	e.unifor = make([]float64, e.nCats)
	for i := range e.unifor {
		e.unifor[i] = 1 / float64(e.nCats)
	}
}

func (e *Elman) input(word string) []float64 {
	if v, ok := e.sig[word]; ok {
		return v
	}
	return e.unifor
}

// forward runs the network over the word sequence, returning the hidden
// states (h[0] is the zero initial state, h[t] after word t) and the
// final output.
func (e *Elman) forward(words []string) (hs [][]float64, y float64) {
	h := make([]float64, e.cfg.Hidden)
	hs = append(hs, append([]float64(nil), h...))
	for _, w := range words {
		x := e.input(w)
		next := make([]float64, e.cfg.Hidden)
		for i := 0; i < e.cfg.Hidden; i++ {
			pre := e.bh[i]
			for j, xv := range x {
				pre += e.wx[i][j] * xv
			}
			for j, hv := range h {
				pre += e.wh[i][j] * hv
			}
			next[i] = math.Tanh(pre)
		}
		h = next
		hs = append(hs, append([]float64(nil), h...))
	}
	pre := e.bo
	for i, hv := range h {
		pre += e.wo[i] * hv
	}
	return hs, math.Tanh(pre)
}

func (e *Elman) truncate(words []string) []string {
	if len(words) > e.cfg.MaxWords {
		return words[:e.cfg.MaxWords]
	}
	return words
}

// Train implements Classifier: online backpropagation through time over
// the full (truncated) sequence of each document.
func (e *Elman) Train(train []corpus.Document, category string) error {
	if _, _, err := splitByLabel(train, category); err != nil {
		return err
	}
	e.buildSignificance(train)
	rng := rand.New(rand.NewSource(e.cfg.Seed + 1))
	h := e.cfg.Hidden
	initW := func(rows, cols int) [][]float64 {
		m := make([][]float64, rows)
		for i := range m {
			m[i] = make([]float64, cols)
			for j := range m[i] {
				m[i][j] = (rng.Float64()*2 - 1) * 0.5
			}
		}
		return m
	}
	e.wx = initW(h, e.nCats)
	e.wh = initW(h, h)
	e.bh = make([]float64, h)
	e.wo = make([]float64, h)
	for i := range e.wo {
		e.wo[i] = (rng.Float64()*2 - 1) * 0.5
	}
	e.bo = 0

	order := rng.Perm(len(train))
	for epoch := 0; epoch < e.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			words := e.truncate(train[idx].Words)
			if len(words) == 0 {
				continue
			}
			target := -1.0
			if train[idx].HasCategory(category) {
				target = 1.0
			}
			e.bptt(words, target)
		}
	}
	// Tune the decision threshold on training outputs.
	scores := make([]float64, len(train))
	labels := make([]bool, len(train))
	for i := range train {
		_, y := e.forward(e.truncate(train[i].Words))
		scores[i] = y
		labels[i] = train[i].HasCategory(category)
	}
	e.threshold = bestF1Threshold(scores, labels)
	e.trained = true
	return nil
}

// bptt applies one stochastic gradient step on (words, target) by full
// backpropagation through time with gradient-norm clipping.
func (e *Elman) bptt(words []string, target float64) {
	hs, y := e.forward(words)
	h := e.cfg.Hidden
	gwx := make([][]float64, h)
	gwh := make([][]float64, h)
	for i := 0; i < h; i++ {
		gwx[i] = make([]float64, e.nCats)
		gwh[i] = make([]float64, h)
	}
	gbh := make([]float64, h)
	gwo := make([]float64, h)

	dL := 2 * (y - target)
	deltaO := dL * (1 - y*y)
	last := hs[len(hs)-1]
	for i := 0; i < h; i++ {
		gwo[i] = deltaO * last[i]
	}
	gbo := deltaO
	dh := make([]float64, h)
	for i := 0; i < h; i++ {
		dh[i] = deltaO * e.wo[i]
	}
	for t := len(words); t >= 1; t-- {
		ht := hs[t]
		hprev := hs[t-1]
		x := e.input(words[t-1])
		dpre := make([]float64, h)
		for i := 0; i < h; i++ {
			dpre[i] = dh[i] * (1 - ht[i]*ht[i])
		}
		for i := 0; i < h; i++ {
			for j, xv := range x {
				gwx[i][j] += dpre[i] * xv
			}
			for j, hv := range hprev {
				gwh[i][j] += dpre[i] * hv
			}
			gbh[i] += dpre[i]
		}
		next := make([]float64, h)
		for j := 0; j < h; j++ {
			var s float64
			for i := 0; i < h; i++ {
				s += e.wh[i][j] * dpre[i]
			}
			next[j] = s
		}
		dh = next
	}
	// Clip the global gradient norm.
	var norm float64
	accum := func(v float64) { norm += v * v }
	for i := 0; i < h; i++ {
		for _, v := range gwx[i] {
			accum(v)
		}
		for _, v := range gwh[i] {
			accum(v)
		}
		accum(gbh[i])
		accum(gwo[i])
	}
	accum(gbo)
	norm = math.Sqrt(norm)
	scale := 1.0
	if norm > 5 {
		scale = 5 / norm
	}
	lr := e.cfg.LearningRate * scale
	for i := 0; i < h; i++ {
		for j := range gwx[i] {
			e.wx[i][j] -= lr * gwx[i][j]
		}
		for j := range gwh[i] {
			e.wh[i][j] -= lr * gwh[i][j]
		}
		e.bh[i] -= lr * gbh[i]
		e.wo[i] -= lr * gwo[i]
	}
	e.bo -= lr * gbo
}

// Score implements Classifier.
func (e *Elman) Score(words []string) float64 {
	if !e.trained {
		return 0
	}
	_, y := e.forward(e.truncate(words))
	return y - e.threshold
}

// Predict implements Classifier.
func (e *Elman) Predict(words []string) bool { return e.Score(words) > 0 }
