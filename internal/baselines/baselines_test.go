package baselines

import (
	"math"
	"math/rand"
	"testing"

	"temporaldoc/internal/corpus"
)

// syntheticTrain builds a linearly separable two-topic training set with
// some shared vocabulary.
func syntheticTrain(rng *rand.Rand, nPerClass int) []corpus.Document {
	earnWords := []string{"profit", "dividend", "quarter", "shares", "net"}
	grainWords := []string{"wheat", "tonnes", "crop", "harvest", "export"}
	shared := []string{"company", "year", "market", "report"}
	var docs []corpus.Document
	mk := func(id string, topical []string, cat string) corpus.Document {
		words := make([]string, 0, 12)
		for k := 0; k < 8; k++ {
			words = append(words, topical[rng.Intn(len(topical))])
		}
		for k := 0; k < 4; k++ {
			words = append(words, shared[rng.Intn(len(shared))])
		}
		return corpus.Document{ID: id, Words: words, Categories: []string{cat}}
	}
	for i := 0; i < nPerClass; i++ {
		docs = append(docs,
			mk("e"+itoa(i), earnWords, "earn"),
			mk("g"+itoa(i), grainWords, "grain"))
	}
	return docs
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func allFeatures() []string {
	return []string{
		"profit", "dividend", "quarter", "shares", "net",
		"wheat", "tonnes", "crop", "harvest", "export",
		"company", "year", "market", "report",
	}
}

// classifiers under test, constructed fresh per invocation.
func makeClassifiers() map[string]Classifier {
	return map[string]Classifier{
		"naive-bayes":   NewNaiveBayes(allFeatures()),
		"rocchio":       NewRocchio(allFeatures(), 0, 0),
		"linear-svm":    NewLinearSVM(allFeatures(), SVMConfig{Seed: 1}),
		"decision-tree": NewDecisionTree(allFeatures(), TreeConfig{}),
		"tree-gp":       NewTreeGP(TreeGPConfig{Seed: 1, Generations: 15, PopulationSize: 40}),
		"knn":           NewKNN(allFeatures(), KNNConfig{K: 5}),
	}
}

func TestAllClassifiersLearnSeparableTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := syntheticTrain(rng, 25)
	test := syntheticTrain(rng, 10)
	for name, clf := range makeClassifiers() {
		t.Run(name, func(t *testing.T) {
			if err := clf.Train(train, "earn"); err != nil {
				t.Fatalf("Train: %v", err)
			}
			correct := 0
			for _, d := range test {
				if clf.Predict(d.Words) == d.HasCategory("earn") {
					correct++
				}
			}
			if acc := float64(correct) / float64(len(test)); acc < 0.9 {
				t.Errorf("%s accuracy = %v on separable task", name, acc)
			}
		})
	}
}

func TestClassifiersRejectSingleClassTraining(t *testing.T) {
	docs := []corpus.Document{
		{ID: "1", Words: []string{"profit"}, Categories: []string{"earn"}},
		{ID: "2", Words: []string{"dividend"}, Categories: []string{"earn"}},
	}
	for name, clf := range makeClassifiers() {
		if err := clf.Train(docs, "earn"); err == nil {
			t.Errorf("%s accepted training without negatives", name)
		}
		if err := clf.Train(docs, "grain"); err == nil {
			t.Errorf("%s accepted training without positives", name)
		}
	}
}

func TestScoreSignAgreesWithPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := syntheticTrain(rng, 20)
	probe := [][]string{
		{"profit", "dividend", "net"},
		{"wheat", "tonnes", "crop"},
		{"company", "year"},
	}
	for name, clf := range makeClassifiers() {
		if err := clf.Train(train, "earn"); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, words := range probe {
			if (clf.Score(words) > 0) != clf.Predict(words) {
				t.Errorf("%s: Score/Predict disagree on %v", name, words)
			}
		}
	}
}

func TestUntrainedClassifiersScoreZero(t *testing.T) {
	for name, clf := range makeClassifiers() {
		if got := clf.Score([]string{"profit"}); got != 0 {
			t.Errorf("%s untrained Score = %v", name, got)
		}
	}
}

func TestClassifierNames(t *testing.T) {
	for want, clf := range makeClassifiers() {
		if got := clf.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

// --- vectorizer ---

func TestVectorizerCounts(t *testing.T) {
	v := NewVectorizer([]string{"a", "b"})
	got := v.Counts([]string{"a", "a", "b", "zz"})
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("Counts = %v", got)
	}
}

func TestVectorizerPresence(t *testing.T) {
	v := NewVectorizer([]string{"a", "b"})
	got := v.Presence([]string{"a", "a"})
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("Presence = %v", got)
	}
}

func TestVectorizerTFIDFNormalised(t *testing.T) {
	v := NewVectorizer([]string{"a", "b", "c"})
	docs := []corpus.Document{
		{ID: "1", Words: []string{"a", "b"}},
		{ID: "2", Words: []string{"a", "c"}},
		{ID: "3", Words: []string{"a"}},
	}
	v.FitIDF(docs)
	vec := v.TFIDF([]string{"a", "b", "b"})
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("TFIDF norm = %v", norm)
	}
	// "b" (rarer) must outweigh "a" (ubiquitous) despite fewer counts?
	// Here b has count 2 and higher idf, so b must dominate.
	if vec[1] <= vec[0] {
		t.Errorf("idf weighting missing: %v", vec)
	}
}

func TestVectorizerTFIDFEmptyDoc(t *testing.T) {
	v := NewVectorizer([]string{"a"})
	vec := v.TFIDF(nil)
	if vec[0] != 0 {
		t.Errorf("TFIDF(empty) = %v", vec)
	}
}

// --- threshold tuning ---

func TestBestF1ThresholdSeparable(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	thr := bestF1Threshold(scores, labels)
	if thr <= 0.2 || thr >= 0.8 {
		t.Errorf("threshold = %v, want in (0.2, 0.8)", thr)
	}
}

func TestBestF1ThresholdAllPositive(t *testing.T) {
	thr := bestF1Threshold([]float64{1, 2, 3}, []bool{true, true, true})
	// All examples should be classified positive.
	for _, s := range []float64{1, 2, 3} {
		if s <= thr {
			t.Errorf("threshold %v excludes positive score %v", thr, s)
		}
	}
}

func TestBestF1ThresholdEmpty(t *testing.T) {
	if thr := bestF1Threshold(nil, nil); thr != 0 {
		t.Errorf("empty threshold = %v", thr)
	}
}

func TestBestF1ThresholdTiedScores(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.1}
	labels := []bool{true, true, false, false}
	thr := bestF1Threshold(scores, labels)
	// Tied scores must fall on the same side of the threshold.
	side := scores[0] > thr
	for i := 1; i < 3; i++ {
		if (scores[i] > thr) != side {
			t.Error("tied scores split by threshold")
		}
	}
}

// --- decision tree specifics ---

func TestDecisionTreeDepthBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := syntheticTrain(rng, 30)
	dt := NewDecisionTree(allFeatures(), TreeConfig{MaxDepth: 3})
	if err := dt.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	if d := dt.Depth(); d > 3 {
		t.Errorf("depth %d exceeds bound", d)
	}
}

// --- naive bayes specifics ---

func TestNaiveBayesPriorOnEmptyDoc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// 3:1 positive skew: prior should classify an empty document in-class.
	var train []corpus.Document
	for i := 0; i < 30; i++ {
		train = append(train, corpus.Document{
			ID: "p" + itoa(i), Words: []string{"profit"}, Categories: []string{"earn"}})
	}
	for i := 0; i < 10; i++ {
		train = append(train, corpus.Document{
			ID: "n" + itoa(i), Words: []string{"wheat"}, Categories: []string{"grain"}})
	}
	_ = rng
	nb := NewNaiveBayes([]string{"profit", "wheat"})
	if err := nb.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	if !nb.Predict(nil) {
		t.Error("empty doc not classified by prior")
	}
}

// --- knn specifics ---

func TestKNNDefaultK(t *testing.T) {
	k := NewKNN(allFeatures(), KNNConfig{})
	if k.cfg.K != 15 {
		t.Errorf("default K = %d", k.cfg.K)
	}
}

func TestKNNNearestNeighbourVote(t *testing.T) {
	// With K=1 a test document identical to a training document takes
	// its label.
	train := []corpus.Document{
		{ID: "1", Words: []string{"profit", "dividend"}, Categories: []string{"earn"}},
		{ID: "2", Words: []string{"wheat", "tonnes"}, Categories: []string{"grain"}},
		{ID: "3", Words: []string{"profit", "net"}, Categories: []string{"earn"}},
		{ID: "4", Words: []string{"crop", "tonnes"}, Categories: []string{"grain"}},
	}
	k := NewKNN([]string{"profit", "dividend", "wheat", "tonnes", "net", "crop"}, KNNConfig{K: 1})
	if err := k.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	if !k.Predict([]string{"profit", "dividend"}) {
		t.Error("exact earn duplicate not accepted")
	}
	if k.Predict([]string{"wheat", "tonnes"}) {
		t.Error("exact grain duplicate accepted as earn")
	}
}

// --- tree gp specifics ---

func TestTreeGPDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := syntheticTrain(rng, 15)
	run := func() float64 {
		gp := NewTreeGP(TreeGPConfig{Seed: 9, Generations: 8, PopulationSize: 30})
		if err := gp.Train(train, "earn"); err != nil {
			t.Fatal(err)
		}
		return gp.Score([]string{"profit", "dividend"})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("TreeGP not deterministic: %v vs %v", a, b)
	}
}

func TestTreeGPBestSize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := syntheticTrain(rng, 10)
	gp := NewTreeGP(TreeGPConfig{Seed: 2, Generations: 5, PopulationSize: 20})
	if gp.BestSize() != 0 {
		t.Error("untrained BestSize != 0")
	}
	if err := gp.Train(train, "earn"); err != nil {
		t.Fatal(err)
	}
	if gp.BestSize() == 0 {
		t.Error("trained BestSize == 0")
	}
}
