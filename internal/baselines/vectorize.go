// Package baselines implements the comparison classifiers of the paper's
// Tables 5 and 6 — Naive Bayes, Decision Tree, linear SVM, Rocchio and a
// tree-based GP over n-grams — all as binary per-category classifiers on
// bag-of-words (or n-gram) representations, mirroring the systems the
// paper compares against.
package baselines

import (
	"fmt"
	"math"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/metrics"
)

// Classifier is a binary per-category text classifier: trained on
// labelled documents for one target category, it predicts membership
// from an ordered word sequence (which bag-of-words models internally
// collapse).
type Classifier interface {
	// Name identifies the classifier family (e.g. "naive-bayes").
	Name() string
	// Train fits the classifier for the target category.
	Train(train []corpus.Document, category string) error
	// Predict reports whether the document belongs to the category.
	Predict(words []string) bool
	// Score returns the real-valued decision score behind Predict
	// (higher means more in-class).
	Score(words []string) float64
}

// Vectorizer maps word sequences to fixed-dimension vectors over a
// feature vocabulary.
type Vectorizer struct {
	vocab []string
	index map[string]int
	idf   []float64
}

// NewVectorizer builds a vectorizer over the given feature set.
func NewVectorizer(features []string) *Vectorizer {
	v := &Vectorizer{
		vocab: append([]string(nil), features...),
		index: make(map[string]int, len(features)),
	}
	for i, f := range v.vocab {
		v.index[f] = i
	}
	return v
}

// Dim returns the vector dimension.
func (v *Vectorizer) Dim() int { return len(v.vocab) }

// FitIDF estimates inverse document frequencies from the training
// documents: idf = ln((N+1)/(df+1)) + 1.
func (v *Vectorizer) FitIDF(docs []corpus.Document) {
	df := make([]int, len(v.vocab))
	for i := range docs {
		seen := make(map[int]bool)
		for _, w := range docs[i].Words {
			if j, ok := v.index[w]; ok && !seen[j] {
				seen[j] = true
				df[j]++
			}
		}
	}
	n := float64(len(docs))
	v.idf = make([]float64, len(v.vocab))
	for j, d := range df {
		v.idf[j] = math.Log((n+1)/(float64(d)+1)) + 1
	}
}

// Counts returns the raw term-frequency vector of the word sequence.
func (v *Vectorizer) Counts(words []string) []float64 {
	vec := make([]float64, len(v.vocab))
	for _, w := range words {
		if j, ok := v.index[w]; ok {
			vec[j]++
		}
	}
	return vec
}

// TFIDF returns the L2-normalised tf-idf vector. FitIDF must have been
// called; without it, raw counts are L2-normalised.
func (v *Vectorizer) TFIDF(words []string) []float64 {
	vec := v.Counts(words)
	if v.idf != nil {
		for j := range vec {
			vec[j] *= v.idf[j]
		}
	}
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for j := range vec {
			vec[j] /= norm
		}
	}
	return vec
}

// Presence returns the binary presence vector of the word sequence.
func (v *Vectorizer) Presence(words []string) []float64 {
	vec := make([]float64, len(v.vocab))
	for _, w := range words {
		if j, ok := v.index[w]; ok {
			vec[j] = 1
		}
	}
	return vec
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// bestF1Threshold converts a real-valued decision function into a
// binary rule by sweeping the training scores for the F1-maximising
// threshold (see metrics.BestF1Threshold).
func bestF1Threshold(scores []float64, labels []bool) float64 {
	return metrics.BestF1Threshold(scores, labels)
}

// splitByLabel partitions training documents by membership of the target
// category. It errors when either side is empty — every baseline needs
// both classes.
func splitByLabel(train []corpus.Document, category string) (pos, neg []corpus.Document, err error) {
	for i := range train {
		if train[i].HasCategory(category) {
			pos = append(pos, train[i])
		} else {
			neg = append(neg, train[i])
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, nil, fmt.Errorf("baselines: category %q has %d positive and %d negative training documents", category, len(pos), len(neg))
	}
	return pos, neg, nil
}
