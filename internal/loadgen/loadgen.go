// Package loadgen is the serving benchmark harness: a stdlib-only load
// generator that drives a running `tdc serve` instance with synthetic
// classify traffic and measures what came back — the instrument the
// serving layer's performance story is told with.
//
// Two driving modes, after the GuideLLM-style generators the
// inference-sim literature uses:
//
//   - closed loop: N workers each keep exactly one request in flight —
//     throughput is emergent, concurrency is controlled;
//   - open loop: requests arrive on a clock at a configured rate
//     (constant or Poisson inter-arrivals) regardless of how fast the
//     server answers — latency under a fixed offered load is measured,
//     including the queueing the closed loop can never see.
//
// The run is phased: a warmup window that is driven but not measured,
// then a barrier (all in-flight requests drain) at which server-side
// telemetry snapshots are taken, then the measurement window, another
// drain, and a final snapshot. Because the barriers leave nothing in
// flight, the server-side deltas cover exactly the measured requests,
// and the client/server cross-check in the report can demand agreement
// rather than hand-wave at it.
//
// Document text is synthesised per request from a seeded RNG: lengths
// from a clamped normal distribution, words from a vocabulary, batch
// sizes from a weighted mix. Fixed seed → identical request stream,
// so runs are comparable across builds.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Mode selects the driving discipline.
type Mode string

const (
	// Closed keeps Concurrency requests in flight at all times.
	Closed Mode = "closed"
	// Open issues requests on an arrival clock at Rate per second.
	Open Mode = "open"
)

// Arrival selects the open-loop inter-arrival process.
type Arrival string

const (
	// Constant spaces arrivals exactly 1/Rate apart.
	Constant Arrival = "constant"
	// Poisson draws exponential inter-arrival gaps with mean 1/Rate —
	// the memoryless process real independent clients approximate.
	Poisson Arrival = "poisson"
)

// LengthDist parameterises the per-document word count: a normal
// distribution clamped to [Min, Max].
type LengthDist struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    int     `json:"min"`
	Max    int     `json:"max"`
}

// BatchWeight is one entry of the batch-size mix: batches of Size
// documents are issued in proportion to Weight.
type BatchWeight struct {
	Size   int     `json:"size"`
	Weight float64 `json:"weight"`
}

// Config parameterises one load run. Zero values take benchmark-safe
// defaults; BaseURL is required.
type Config struct {
	// BaseURL is the server under test, e.g. "http://localhost:8080".
	BaseURL string
	// Mode is closed (default) or open.
	Mode Mode
	// Concurrency is the closed-loop worker count (default 8) and the
	// open-loop in-flight cap (default 4×⌈Rate⌉, floor 64).
	Concurrency int
	// Rate is the open-loop arrival rate in requests/second (required
	// in open mode).
	Rate float64
	// Arrival is the open-loop inter-arrival process (default poisson).
	Arrival Arrival
	// Warmup is driven but not measured (default 1s).
	Warmup time.Duration
	// Duration is the measurement window (default 10s).
	Duration time.Duration
	// DocLen is the document word-count distribution
	// (default mean 40, stddev 15, min 5, max 200).
	DocLen LengthDist
	// BatchMix weights the batch sizes issued (default: all batches of
	// one document).
	BatchMix []BatchWeight
	// Vocabulary is the word pool documents draw from (default: a
	// built-in Reuters-flavoured list).
	Vocabulary []string
	// Seed makes the request stream reproducible (default 1).
	Seed int64
	// RequestTimeout bounds one HTTP round trip client-side (default
	// 30s — above the server's own 504 deadline, so server timeouts
	// surface as 504 counts, not client aborts).
	RequestTimeout time.Duration
}

func (c *Config) setDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: Config.BaseURL is required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	switch c.Mode {
	case "":
		c.Mode = Closed
	case Closed, Open:
	default:
		return fmt.Errorf("loadgen: unknown mode %q (closed, open)", c.Mode)
	}
	if c.Mode == Open && c.Rate <= 0 {
		return fmt.Errorf("loadgen: open mode requires Rate > 0")
	}
	switch c.Arrival {
	case "":
		c.Arrival = Poisson
	case Constant, Poisson:
	default:
		return fmt.Errorf("loadgen: unknown arrival %q (constant, poisson)", c.Arrival)
	}
	if c.Concurrency <= 0 {
		if c.Mode == Open {
			c.Concurrency = 4 * int(c.Rate+1)
			if c.Concurrency < 64 {
				c.Concurrency = 64
			}
		} else {
			c.Concurrency = 8
		}
	}
	if c.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup")
	}
	if c.Warmup == 0 {
		c.Warmup = time.Second
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.DocLen.Mean <= 0 {
		c.DocLen = LengthDist{Mean: 40, Stddev: 15, Min: 5, Max: 200}
	}
	if c.DocLen.Min <= 0 {
		c.DocLen.Min = 1
	}
	if c.DocLen.Max < c.DocLen.Min {
		return fmt.Errorf("loadgen: DocLen.Max %d < Min %d", c.DocLen.Max, c.DocLen.Min)
	}
	if len(c.BatchMix) == 0 {
		c.BatchMix = []BatchWeight{{Size: 1, Weight: 1}}
	}
	for _, bw := range c.BatchMix {
		if bw.Size <= 0 || bw.Weight < 0 {
			return fmt.Errorf("loadgen: bad batch mix entry %+v", bw)
		}
	}
	if len(c.Vocabulary) == 0 {
		c.Vocabulary = defaultVocabulary
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return nil
}

// defaultVocabulary is a Reuters-flavoured word pool; enough variety to
// defeat the server's word cache being a single entry, small enough
// that caches still warm up like production text would.
var defaultVocabulary = []string{
	"oil", "crude", "barrel", "prices", "rose", "fell", "sharply", "market",
	"wheat", "corn", "grain", "tonnes", "shipment", "export", "harvest",
	"bank", "rate", "money", "interest", "dollar", "yen", "currency",
	"trade", "deficit", "surplus", "earnings", "quarter", "profit", "loss",
	"shares", "stock", "dividend", "merger", "acquisition", "company",
	"ship", "port", "cargo", "tanker", "freight", "sugar", "coffee",
	"cocoa", "copper", "gold", "reserves", "supply", "demand", "output",
	"production", "opec", "agreement", "minister", "government", "budget",
}

// requestGen synthesises classify request bodies from one RNG. Not
// goroutine-safe; each producer owns one.
type requestGen struct {
	cfg *Config
	rng *rand.Rand
	// cumulative batch-mix weights for O(mix) sampling
	cum      []float64
	cumTotal float64
	buf      bytes.Buffer
}

func newRequestGen(cfg *Config, seed int64) *requestGen {
	g := &requestGen{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	g.cum = make([]float64, len(cfg.BatchMix))
	for i, bw := range cfg.BatchMix {
		g.cumTotal += bw.Weight
		g.cum[i] = g.cumTotal
	}
	return g
}

// next returns one request body and the number of documents in it. The
// returned bytes are valid until the following call.
func (g *requestGen) next() ([]byte, int) {
	batch := g.cfg.BatchMix[0].Size
	if g.cumTotal > 0 && len(g.cum) > 1 {
		u := g.rng.Float64() * g.cumTotal
		for i, c := range g.cum {
			if u <= c {
				batch = g.cfg.BatchMix[i].Size
				break
			}
		}
	}
	g.buf.Reset()
	if batch == 1 {
		g.buf.WriteString(`{"text":"`)
		g.writeDoc()
		g.buf.WriteString(`"}`)
		return g.buf.Bytes(), 1
	}
	g.buf.WriteString(`{"documents":[`)
	for i := 0; i < batch; i++ {
		if i > 0 {
			g.buf.WriteByte(',')
		}
		g.buf.WriteString(`{"text":"`)
		g.writeDoc()
		g.buf.WriteString(`"}`)
	}
	g.buf.WriteString(`]}`)
	return g.buf.Bytes(), batch
}

// writeDoc appends one synthetic document's text (vocabulary words only
// — no JSON escaping needed).
func (g *requestGen) writeDoc() {
	n := int(g.rng.NormFloat64()*g.cfg.DocLen.Stddev + g.cfg.DocLen.Mean)
	if n < g.cfg.DocLen.Min {
		n = g.cfg.DocLen.Min
	}
	if n > g.cfg.DocLen.Max {
		n = g.cfg.DocLen.Max
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			g.buf.WriteByte(' ')
		}
		g.buf.WriteString(g.cfg.Vocabulary[g.rng.Intn(len(g.cfg.Vocabulary))])
	}
}

// outcome classifies one request's fate client-side.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeClientErr
	outcomeShed
	outcomeTimeout
	outcomeServerErr
	outcomeTransport
	numOutcomes
)

func classify(status int, err error) outcome {
	switch {
	case err != nil:
		return outcomeTransport
	case status == http.StatusServiceUnavailable:
		return outcomeShed
	case status == http.StatusGatewayTimeout:
		return outcomeTimeout
	case status >= 500:
		return outcomeServerErr
	case status >= 400:
		return outcomeClientErr
	default:
		return outcomeOK
	}
}

// fire issues one classify request and reports its latency and fate.
func fire(client *http.Client, url string, body []byte) (time.Duration, outcome) {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return time.Since(start), outcomeTransport
	}
	// Drain so the connection is reusable; the payload itself is not
	// the measurement's business.
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return time.Since(start), classify(resp.StatusCode, err)
}

// Run drives the configured load and returns the measured Report. The
// context cancels the run early (the report covers what was measured up
// to then).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	client := &http.Client{
		Timeout: cfg.RequestTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency + 8,
			MaxIdleConnsPerHost: cfg.Concurrency + 8,
		},
	}
	url := cfg.BaseURL + "/v1/classify"

	// Warmup phase: driven, not recorded. A cancelled context is not an
	// error — the run reports whatever was measured before the cancel.
	if cfg.Warmup > 0 {
		warmupCol := newCollector(false)
		if err := drive(ctx, &cfg, client, url, cfg.Warmup, warmupCol, cfg.Seed+7919); err != nil && !isCtxErr(err) {
			return nil, fmt.Errorf("loadgen: warmup: %w", err)
		}
	}

	// Barrier: nothing in flight. Snapshot the server.
	pre, preErr := fetchServerState(client, cfg.BaseURL)

	col := newCollector(true)
	start := time.Now()
	runErr := drive(ctx, &cfg, client, url, cfg.Duration, col, cfg.Seed)
	elapsed := time.Since(start)
	if runErr != nil && !isCtxErr(runErr) {
		return nil, runErr
	}

	post, postErr := fetchServerState(client, cfg.BaseURL)
	rep := buildReport(&cfg, col, elapsed)
	switch {
	case preErr != nil:
		rep.Server = &ServerSide{Error: fmt.Sprintf("pre-run statz: %v", preErr)}
	case postErr != nil:
		rep.Server = &ServerSide{Error: fmt.Sprintf("post-run statz: %v", postErr)}
	default:
		rep.Server = crossCheck(pre, post, rep)
	}
	return rep, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// drive runs one phase (warmup or measurement) to completion: issues
// load for d, then drains every in-flight request before returning.
func drive(ctx context.Context, cfg *Config, client *http.Client, url string, d time.Duration, col *collector, seed int64) error {
	switch cfg.Mode {
	case Closed:
		return driveClosed(ctx, cfg, client, url, d, col, seed)
	default:
		return driveOpen(ctx, cfg, client, url, d, col, seed)
	}
}

// driveClosed keeps cfg.Concurrency requests in flight until the
// deadline; each worker owns its generator (seeded distinctly, so the
// streams differ but reproducibly) and loops request → record.
func driveClosed(ctx context.Context, cfg *Config, client *http.Client, url string, d time.Duration, col *collector, seed int64) error {
	deadline := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		gen := newRequestGen(cfg, seed+int64(w)*104729)
		go func(gen *requestGen) {
			defer wg.Done()
			for time.Since(deadline) < d && ctx.Err() == nil {
				body, docs := gen.next()
				lat, out := fire(client, url, body)
				col.record(lat, out, docs)
			}
		}(gen)
	}
	wg.Wait()
	return ctx.Err()
}

// driveOpen issues arrivals on the configured clock until the deadline,
// then waits for stragglers. In-flight requests are capped at
// cfg.Concurrency; arrivals that would exceed the cap are counted as
// saturated rather than silently delayed, keeping the offered-load
// accounting honest.
func driveOpen(ctx context.Context, cfg *Config, client *http.Client, url string, d time.Duration, col *collector, seed int64) error {
	gen := newRequestGen(cfg, seed)
	arrivalRNG := rand.New(rand.NewSource(seed + 15485863))
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for time.Since(start) < d && ctx.Err() == nil {
		var gap time.Duration
		if cfg.Arrival == Poisson {
			gap = time.Duration(arrivalRNG.ExpFloat64() / cfg.Rate * float64(time.Second))
		} else {
			gap = time.Duration(float64(time.Second) / cfg.Rate)
		}
		select {
		case <-time.After(gap):
		case <-ctx.Done():
		}
		if time.Since(start) >= d || ctx.Err() != nil {
			break
		}
		body, docs := gen.next()
		select {
		case sem <- struct{}{}:
			// The generator's buffer is reused; the goroutine needs its
			// own copy.
			b := append([]byte(nil), body...)
			wg.Add(1)
			go func(b []byte, docs int) {
				defer wg.Done()
				defer func() { <-sem }()
				lat, out := fire(client, url, b)
				col.record(lat, out, docs)
			}(b, docs)
		default:
			col.saturated()
		}
	}
	wg.Wait()
	return ctx.Err()
}
