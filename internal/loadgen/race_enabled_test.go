//go:build race

package loadgen

// raceEnabled reports whether the race detector instruments this test
// binary. Its ~10x slowdown lands unevenly on the client HTTP stack vs
// the handler-clocked server window, so timing-agreement assertions are
// relaxed to logs under -race (counts stay strict).
const raceEnabled = true
