package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"temporaldoc/internal/serve"
	"temporaldoc/internal/telemetry"
)

// collector accumulates per-request results from concurrent workers.
// One mutex is plenty: the serving stack's per-request work is orders
// of magnitude above a lock-append, so the collector never shows up in
// the measurement.
type collector struct {
	keep      bool // warmup collectors drive load but discard samples
	mu        sync.Mutex
	lats      []float64 // seconds, all completed requests (any HTTP status)
	byOutcome [numOutcomes]int64
	docsOK    int64 // documents inside 2xx responses
	sat       int64 // open-loop arrivals dropped at the in-flight cap
}

func newCollector(keep bool) *collector { return &collector{keep: keep} }

func (c *collector) record(lat time.Duration, out outcome, docs int) {
	if !c.keep {
		return
	}
	c.mu.Lock()
	c.byOutcome[out]++
	if out != outcomeTransport {
		c.lats = append(c.lats, lat.Seconds())
	}
	if out == outcomeOK {
		c.docsOK += int64(docs)
	}
	c.mu.Unlock()
}

func (c *collector) saturated() {
	if !c.keep {
		return
	}
	c.mu.Lock()
	c.sat++
	c.mu.Unlock()
}

// quantileExact is the order-statistic quantile of a sorted sample with
// linear interpolation between neighbours — the client side's exact
// counterpart to the server's bucket-interpolated estimate.
func quantileExact(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// LatencySummary is one side's latency distribution in milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// RequestCounts is the client-side error-class accounting of the
// measurement window. Sent = every request that got an HTTP response;
// Transport errors got none; Saturated open-loop arrivals were never
// sent (the in-flight cap was full).
type RequestCounts struct {
	Sent        int64 `json:"sent"`
	OK          int64 `json:"ok"`
	ClientError int64 `json:"client_error"`
	Shed        int64 `json:"shed"`
	Timeout     int64 `json:"timeout"`
	ServerError int64 `json:"server_error"`
	Transport   int64 `json:"transport_error"`
	Saturated   int64 `json:"saturated,omitempty"`
}

// ServerSide is the /v1/statz cross-check block of a Report. The
// pre/post snapshots bracket the measurement window with all requests
// drained, so the deltas cover exactly the client's requests; Window*
// percentiles come from subtracting the pre histogram buckets from the
// post ones and running the same interpolated-quantile estimator statz
// itself uses.
type ServerSide struct {
	// Error is set (and everything else zero) when statz could not be
	// fetched — the run still reports its client-side half.
	Error string `json:"error,omitempty"`

	ModelHash string `json:"model_hash,omitempty"`
	// RequestsDelta etc. are post-minus-pre statz counters.
	RequestsDelta int64 `json:"requests_delta"`
	OKDelta       int64 `json:"ok_delta"`
	ShedDelta     int64 `json:"shed_delta"`
	TimeoutDelta  int64 `json:"timeout_delta"`
	DocsDelta     int64 `json:"docs_delta"`

	// WindowLatency is the server-side end-to-end handler latency over
	// the measurement window (bucket-diffed http.classify.seconds).
	WindowLatency LatencySummary `json:"window_latency"`
	// WindowStages is the same diff for each pipeline stage.
	WindowStages map[string]LatencySummary `json:"window_stages"`

	// CountsAgree: server-side request delta matches client Sent within
	// the transport-error tolerance (a client-aborted request may or may
	// not have completed server-side).
	CountsAgree bool  `json:"counts_agree"`
	CountsDiff  int64 `json:"counts_diff"`
	// PercentilesAgree: client and server p50/p99 within tolerance
	// (factor 2 or 5ms absolute — the server histogram's bucket
	// resolution plus client-side network and scheduling overhead).
	PercentilesAgree bool    `json:"percentiles_agree"`
	P50RatioClient   float64 `json:"p50_ratio_client_over_server"`
	P99RatioClient   float64 `json:"p99_ratio_client_over_server"`
}

// Report is the JSON document a loadgen run produces.
type Report struct {
	// Run parameters, echoed for reproducibility.
	Mode        Mode          `json:"mode"`
	Concurrency int           `json:"concurrency"`
	RateRPS     float64       `json:"rate_rps,omitempty"`
	Arrival     Arrival       `json:"arrival,omitempty"`
	Seed        int64         `json:"seed"`
	WarmupMS    int64         `json:"warmup_ms"`
	DurationMS  int64         `json:"duration_ms"`
	DocLen      LengthDist    `json:"doc_len"`
	BatchMix    []BatchWeight `json:"batch_mix"`

	// ElapsedMS is the measurement wall time including the final drain.
	ElapsedMS float64       `json:"elapsed_ms"`
	Requests  RequestCounts `json:"requests"`
	// AchievedRPS counts completed requests (any status) per elapsed
	// second; GoodputRPS counts only 2xx.
	AchievedRPS float64 `json:"achieved_rps"`
	GoodputRPS  float64 `json:"goodput_rps"`
	DocsPS      float64 `json:"docs_per_second"`
	ShedRate    float64 `json:"shed_rate"`
	TimeoutRate float64 `json:"timeout_rate"`

	// Latency is client-side, over all completed requests.
	Latency LatencySummary `json:"latency"`

	Server *ServerSide `json:"server,omitempty"`
}

// buildReport renders the collector into the client-side half.
func buildReport(cfg *Config, col *collector, elapsed time.Duration) *Report {
	col.mu.Lock()
	defer col.mu.Unlock()
	rep := &Report{
		Mode:        cfg.Mode,
		Concurrency: cfg.Concurrency,
		Seed:        cfg.Seed,
		WarmupMS:    cfg.Warmup.Milliseconds(),
		DurationMS:  cfg.Duration.Milliseconds(),
		DocLen:      cfg.DocLen,
		BatchMix:    cfg.BatchMix,
		ElapsedMS:   float64(elapsed) / float64(time.Millisecond),
	}
	if cfg.Mode == Open {
		rep.RateRPS = cfg.Rate
		rep.Arrival = cfg.Arrival
	}
	rep.Requests = RequestCounts{
		OK:          col.byOutcome[outcomeOK],
		ClientError: col.byOutcome[outcomeClientErr],
		Shed:        col.byOutcome[outcomeShed],
		Timeout:     col.byOutcome[outcomeTimeout],
		ServerError: col.byOutcome[outcomeServerErr],
		Transport:   col.byOutcome[outcomeTransport],
		Saturated:   col.sat,
	}
	rep.Requests.Sent = rep.Requests.OK + rep.Requests.ClientError + rep.Requests.Shed +
		rep.Requests.Timeout + rep.Requests.ServerError + rep.Requests.Transport

	sort.Float64s(col.lats)
	rep.Latency = summarizeExact(col.lats)
	sec := elapsed.Seconds()
	if sec > 0 {
		rep.AchievedRPS = float64(len(col.lats)) / sec
		rep.GoodputRPS = float64(rep.Requests.OK) / sec
		rep.DocsPS = float64(col.docsOK) / sec
	}
	if rep.Requests.Sent > 0 {
		rep.ShedRate = float64(rep.Requests.Shed) / float64(rep.Requests.Sent)
		rep.TimeoutRate = float64(rep.Requests.Timeout) / float64(rep.Requests.Sent)
	}
	return rep
}

func summarizeExact(sorted []float64) LatencySummary {
	const msPerSec = 1e3
	s := LatencySummary{Count: int64(len(sorted))}
	if len(sorted) == 0 {
		return s
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.MeanMS = sum / float64(len(sorted)) * msPerSec
	s.P50MS = quantileExact(sorted, 0.50) * msPerSec
	s.P90MS = quantileExact(sorted, 0.90) * msPerSec
	s.P95MS = quantileExact(sorted, 0.95) * msPerSec
	s.P99MS = quantileExact(sorted, 0.99) * msPerSec
	s.MaxMS = sorted[len(sorted)-1] * msPerSec
	return s
}

func summarizeHist(h telemetry.HistogramSnapshot) LatencySummary {
	const msPerSec = 1e3
	qs := h.Quantiles(0.50, 0.90, 0.95, 0.99)
	return LatencySummary{
		Count:  h.Count,
		MeanMS: h.Mean() * msPerSec,
		P50MS:  qs[0] * msPerSec,
		P90MS:  qs[1] * msPerSec,
		P95MS:  qs[2] * msPerSec,
		P99MS:  qs[3] * msPerSec,
		// A histogram has no exact max; the p99 is the last defensible
		// tail figure, so MaxMS stays 0 server-side.
	}
}

// serverState is one pre- or post-run observation of the server: the
// statz document plus the raw histograms from /v1/modelz (statz only
// carries rendered percentiles; the cross-check needs buckets to diff).
type serverState struct {
	statz serve.StatzResponse
	hists map[string]telemetry.HistogramSnapshot
}

func fetchServerState(client *http.Client, base string) (*serverState, error) {
	st := &serverState{}
	if err := getJSON(client, base+"/v1/statz", &st.statz); err != nil {
		return nil, err
	}
	var mz struct {
		Metrics struct {
			Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
		} `json:"metrics"`
	}
	if err := getJSON(client, base+"/v1/modelz", &mz); err != nil {
		return nil, err
	}
	st.hists = mz.Metrics.Histograms
	return st, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	// Read path: a Close error cannot lose data we already decoded.
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// crossCheck builds the ServerSide block: statz deltas over the
// measurement window, window percentiles from bucket diffs, and the two
// agreement verdicts the smoke targets assert on.
func crossCheck(pre, post *serverState, rep *Report) *ServerSide {
	ss := &ServerSide{
		ModelHash:     post.statz.ModelHash,
		RequestsDelta: post.statz.Requests.Total - pre.statz.Requests.Total,
		OKDelta:       post.statz.Requests.OK - pre.statz.Requests.OK,
		ShedDelta:     post.statz.Requests.Shed - pre.statz.Requests.Shed,
		TimeoutDelta:  post.statz.Requests.Timeout - pre.statz.Requests.Timeout,
		DocsDelta:     post.statz.DocsClassified - pre.statz.DocsClassified,
		WindowStages:  map[string]LatencySummary{},
	}
	window := post.hists["http.classify.seconds"].Sub(pre.hists["http.classify.seconds"])
	ss.WindowLatency = summarizeHist(window)
	for _, stage := range []string{"decode", "queue", "classify", "write"} {
		name := "serve.stage." + stage + ".seconds"
		ss.WindowStages[stage] = summarizeHist(post.hists[name].Sub(pre.hists[name]))
	}

	// Counts: both phases drain before the snapshots, so the server must
	// have seen exactly the requests the client completed — except ones
	// the client aborted at the transport layer, which may or may not
	// have reached (or finished in) the handler.
	ss.CountsDiff = ss.RequestsDelta - (rep.Requests.Sent - rep.Requests.Transport)
	tol := rep.Requests.Transport
	ss.CountsAgree = ss.CountsDiff >= 0 && ss.CountsDiff <= tol

	// Percentiles: client latency = server handler latency + network and
	// client scheduling, measured with exact order statistics against a
	// bucketed estimate. Agreement = each of p50/p99 within a factor of
	// 2 or 5ms absolute, whichever is looser.
	ss.P50RatioClient = ratio(rep.Latency.P50MS, ss.WindowLatency.P50MS)
	ss.P99RatioClient = ratio(rep.Latency.P99MS, ss.WindowLatency.P99MS)
	ss.PercentilesAgree = window.Count > 0 && rep.Latency.Count > 0 &&
		close2(rep.Latency.P50MS, ss.WindowLatency.P50MS) &&
		close2(rep.Latency.P99MS, ss.WindowLatency.P99MS)
	return ss
}

func ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// close2 is the percentile tolerance: within a factor of 2 either way,
// or within 5ms absolute (sub-bucket-resolution noise at the fast end).
func close2(clientMS, serverMS float64) bool {
	if math.Abs(clientMS-serverMS) <= 5 {
		return true
	}
	r := ratio(clientMS, serverMS)
	return r >= 0.5 && r <= 2
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
