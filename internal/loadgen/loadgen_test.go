package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/reuters"
	"temporaldoc/internal/serve"
	"temporaldoc/internal/telemetry"
)

// --- fixture: one tiny trained snapshot served in-process ---

var (
	fixOnce sync.Once
	fixPath string
	fixErr  error
)

func modelPath(t *testing.T) string {
	t.Helper()
	fixOnce.Do(func() {
		gen := reuters.DefaultGenConfig()
		gen.Scale = 0.008
		gen.Seed = 11
		c, err := reuters.GenerateCorpus(gen)
		if err != nil {
			fixErr = err
			return
		}
		gp := lgp.DefaultConfig()
		gp.PopulationSize = 20
		gp.Tournaments = 300
		gp.MaxPages = 4
		gp.MaxPageSize = 4
		gp.DSS = &lgp.DSSConfig{SubsetSize: 20, Interval: 25}
		m, err := core.Train(core.Config{
			FeatureMethod: featsel.DF,
			FeatureConfig: featsel.Config{GlobalN: 60, PerCategoryN: 25},
			Encoder: hsom.Config{
				CharWidth: 5, CharHeight: 5,
				WordWidth: 4, WordHeight: 4,
				CharEpochs: 2, WordEpochs: 3,
				BMUFanout: 3,
				Seed:      6,
			},
			GP:       gp,
			Restarts: 1,
			Seed:     5,
		}, c)
		if err != nil {
			fixErr = err
			return
		}
		dir, err := os.MkdirTemp("", "loadgen-fixture")
		if err != nil {
			fixErr = err
			return
		}
		fixPath = filepath.Join(dir, "model.json")
		out, err := os.Create(fixPath)
		if err != nil {
			fixErr = err
			return
		}
		if err := m.Save(out); err != nil {
			out.Close()
			fixErr = err
			return
		}
		fixErr = out.Close()
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixPath
}

// startServer boots a real serve.Server over the fixture model on an
// httptest listener.
func startServer(t *testing.T, mod func(*serve.Config)) string {
	t.Helper()
	cfg := serve.Config{
		ModelPath:      modelPath(t),
		Workers:        2,
		QueueDepth:     32,
		MaxBatch:       16,
		MaxBodyBytes:   1 << 20,
		RequestTimeout: 30 * time.Second,
		Metrics:        telemetry.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

func TestRequestGenDeterministic(t *testing.T) {
	cfg := Config{BaseURL: "http://x"}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	a, b := newRequestGen(&cfg, 42), newRequestGen(&cfg, 42)
	other := newRequestGen(&cfg, 43)
	differ := false
	for i := 0; i < 50; i++ {
		ba, da := a.next()
		bb, db := b.next()
		if !bytes.Equal(ba, bb) || da != db {
			t.Fatalf("request %d: same seed produced different bodies", i)
		}
		bo, _ := other.next()
		if !bytes.Equal(ba, bo) {
			differ = true
		}
		var req struct {
			Text      string `json:"text"`
			Documents []struct {
				Text string `json:"text"`
			} `json:"documents"`
		}
		if err := json.Unmarshal(ba, &req); err != nil {
			t.Fatalf("request %d not valid JSON: %v\n%s", i, err, ba)
		}
		words := len(bytes.Fields([]byte(req.Text)))
		if da == 1 && (words < cfg.DocLen.Min || words > cfg.DocLen.Max) {
			t.Errorf("request %d: %d words outside [%d,%d]", i, words, cfg.DocLen.Min, cfg.DocLen.Max)
		}
	}
	if !differ {
		t.Error("different seeds never produced a different stream")
	}
}

func TestRequestGenBatchMix(t *testing.T) {
	cfg := Config{
		BaseURL:  "http://x",
		BatchMix: []BatchWeight{{Size: 1, Weight: 0}, {Size: 3, Weight: 1}},
	}
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	g := newRequestGen(&cfg, 1)
	for i := 0; i < 20; i++ {
		body, docs := g.next()
		if docs != 3 {
			t.Fatalf("request %d: batch %d, want 3 (weight-0 size must never fire)", i, docs)
		}
		var req struct {
			Documents []struct {
				Text string `json:"text"`
			} `json:"documents"`
		}
		if err := json.Unmarshal(body, &req); err != nil || len(req.Documents) != 3 {
			t.Fatalf("request %d: bad batch body (%v): %s", i, err, body)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},                                    // missing BaseURL
		{BaseURL: "http://x", Mode: "weird"},  // unknown mode
		{BaseURL: "http://x", Mode: Open},     // open without rate
		{BaseURL: "http://x", Arrival: "now"}, // unknown arrival
		{BaseURL: "http://x", DocLen: LengthDist{Mean: 10, Min: 9, Max: 4}},
		{BaseURL: "http://x", BatchMix: []BatchWeight{{Size: 0, Weight: 1}}},
	}
	for i, c := range cases {
		if err := c.setDefaults(); err == nil {
			t.Errorf("case %d: bad config %+v accepted", i, c)
		}
	}
	good := Config{BaseURL: "http://x/"}
	if err := good.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if good.BaseURL != "http://x" || good.Mode != Closed || good.Concurrency != 8 || good.Seed != 1 {
		t.Errorf("defaults wrong: %+v", good)
	}
}

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		status int
		err    error
		want   outcome
	}{
		{200, nil, outcomeOK},
		{400, nil, outcomeClientErr},
		{413, nil, outcomeClientErr},
		{503, nil, outcomeShed},
		{504, nil, outcomeTimeout},
		{500, nil, outcomeServerErr},
		{0, context.DeadlineExceeded, outcomeTransport},
	}
	for _, tc := range cases {
		if got := classify(tc.status, tc.err); got != tc.want {
			t.Errorf("classify(%d, %v) = %v, want %v", tc.status, tc.err, got, tc.want)
		}
	}
}

func TestQuantileExact(t *testing.T) {
	if got := quantileExact(nil, 0.5); got != 0 {
		t.Errorf("empty sample quantile = %v", got)
	}
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {0.75, 4},
	}
	for _, tc := range cases {
		if got := quantileExact(s, tc.q); got != tc.want {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	// Interpolation between order statistics.
	if got := quantileExact([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("median of {1,2} = %v, want 1.5", got)
	}
}

func TestHistogramWindowDiff(t *testing.T) {
	pre := telemetry.HistogramSnapshot{
		Count: 3, Sum: 5, Bounds: []float64{1, 2}, Counts: []int64{1, 1, 1},
	}
	post := telemetry.HistogramSnapshot{
		Count: 10, Sum: 20, Bounds: []float64{1, 2}, Counts: []int64{4, 3, 3},
	}
	d := post.Sub(pre)
	if d.Count != 7 || d.Sum != 15 {
		t.Errorf("diff totals: %+v", d)
	}
	for i, want := range []int64{3, 2, 2} {
		if d.Counts[i] != want {
			t.Errorf("diff bucket %d = %d, want %d", i, d.Counts[i], want)
		}
	}
	// Mismatched shapes (server restart) fall back to the post snapshot.
	if d := post.Sub(telemetry.HistogramSnapshot{}); d.Count != post.Count {
		t.Errorf("mismatched diff = %+v, want post snapshot", d)
	}
}

// TestLoadgenSoak is the closed-loop soak the Makefile target wraps: a
// short run against the real in-process server must finish with zero
// 5xx, matching client/server counts and agreeing percentiles.
func TestLoadgenSoak(t *testing.T) {
	base := startServer(t, nil)
	rep, err := Run(context.Background(), Config{
		BaseURL:     base,
		Mode:        Closed,
		Concurrency: 4,
		Warmup:      200 * time.Millisecond,
		Duration:    time.Second,
		DocLen:      LengthDist{Mean: 30, Stddev: 10, Min: 5, Max: 80},
		BatchMix:    []BatchWeight{{Size: 1, Weight: 3}, {Size: 4, Weight: 1}},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Requests
	if r.Sent == 0 || r.OK == 0 {
		t.Fatalf("soak sent nothing: %+v", r)
	}
	if r.ClientError+r.ServerError+r.Shed+r.Timeout+r.Transport != 0 {
		t.Fatalf("soak saw errors: %+v", r)
	}
	if rep.AchievedRPS <= 0 || rep.GoodputRPS <= 0 || rep.DocsPS <= 0 {
		t.Errorf("throughput not positive: %+v", rep)
	}
	if rep.Latency.Count != r.Sent || rep.Latency.P50MS <= 0 {
		t.Errorf("latency summary wrong: %+v", rep.Latency)
	}
	if rep.Latency.P50MS > rep.Latency.P95MS || rep.Latency.P95MS > rep.Latency.P99MS ||
		rep.Latency.P99MS > rep.Latency.MaxMS {
		t.Errorf("client percentiles not monotone: %+v", rep.Latency)
	}
	ss := rep.Server
	if ss == nil || ss.Error != "" {
		t.Fatalf("server cross-check missing: %+v", ss)
	}
	if !ss.CountsAgree {
		t.Errorf("counts disagree: server delta %d vs client %d (diff %d)",
			ss.RequestsDelta, r.Sent, ss.CountsDiff)
	}
	if ss.OKDelta != r.OK {
		t.Errorf("ok delta %d, want %d", ss.OKDelta, r.OK)
	}
	if !ss.PercentilesAgree {
		// The race detector slows the instrumented client HTTP stack far
		// more than the handler-clocked server window, so the two views
		// legitimately diverge under -race; the verdict stays strict in
		// normal runs and in bench-serve.
		if raceEnabled {
			t.Logf("percentiles disagree under -race (expected skew): client p50 %.3fms p99 %.3fms vs server p50 %.3fms p99 %.3fms",
				rep.Latency.P50MS, rep.Latency.P99MS, ss.WindowLatency.P50MS, ss.WindowLatency.P99MS)
		} else {
			t.Errorf("percentiles disagree: client p50 %.3fms p99 %.3fms vs server p50 %.3fms p99 %.3fms",
				rep.Latency.P50MS, rep.Latency.P99MS, ss.WindowLatency.P50MS, ss.WindowLatency.P99MS)
		}
	}
	if ss.WindowLatency.Count != r.Sent {
		t.Errorf("server window count %d, want %d", ss.WindowLatency.Count, r.Sent)
	}
	for _, stage := range []string{"decode", "queue", "classify", "write"} {
		if ss.WindowStages[stage].Count != r.Sent {
			t.Errorf("stage %s window count %d, want %d", stage, ss.WindowStages[stage].Count, r.Sent)
		}
	}
	// The report must round-trip as JSON (it is the benchmark artifact).
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

// TestLoadgenOpenLoop drives the open loop at a modest Poisson rate: the
// achieved rate must be in the configured ballpark and the cross-check
// must hold there too.
func TestLoadgenOpenLoop(t *testing.T) {
	base := startServer(t, nil)
	rep, err := Run(context.Background(), Config{
		BaseURL:  base,
		Mode:     Open,
		Rate:     50,
		Arrival:  Poisson,
		Warmup:   200 * time.Millisecond,
		Duration: time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.Sent == 0 {
		t.Fatal("open loop sent nothing")
	}
	if rep.Requests.Shed+rep.Requests.Timeout+rep.Requests.ServerError+rep.Requests.Transport != 0 {
		t.Fatalf("open loop saw errors: %+v", rep.Requests)
	}
	// Poisson arrivals at 50/s over ~1s: demand at least a loose lower
	// bound — a starved arrival clock would land way under.
	if rep.AchievedRPS < 15 {
		t.Errorf("achieved %.1f rps at offered 50", rep.AchievedRPS)
	}
	if rep.Server == nil || !rep.Server.CountsAgree {
		t.Errorf("open-loop cross-check failed: %+v", rep.Server)
	}
}

// TestLoadgenServerlessStatz: when statz is unreachable the run still
// returns its client-side report with the error recorded.
func TestLoadgenNoStatz(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"model_hash":"x","results":[{"categories":[]}]}`))
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()
	rep, err := Run(context.Background(), Config{
		BaseURL:     hs.URL,
		Concurrency: 2,
		Warmup:      50 * time.Millisecond,
		Duration:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests.OK == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Server == nil || rep.Server.Error == "" {
		t.Errorf("missing statz should be reported in Server.Error: %+v", rep.Server)
	}
}
