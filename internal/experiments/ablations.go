package experiments

import (
	"fmt"
	"strings"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/lgp"
)

// AblationResult compares two variants of one design choice.
type AblationResult struct {
	Name           string
	VariantA       string
	VariantB       string
	MicroA, MicroB float64
	MacroA, MacroB float64
	FitnessA       float64 // mean training fitness over categories
	FitnessB       float64
}

// Format renders the comparison.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: %s\n", r.Name)
	fmt.Fprintf(&b, "%-28s microF1=%.3f macroF1=%.3f meanFitness=%.2f\n",
		r.VariantA, r.MicroA, r.MacroA, r.FitnessA)
	fmt.Fprintf(&b, "%-28s microF1=%.3f macroF1=%.3f meanFitness=%.2f\n",
		r.VariantB, r.MicroB, r.MacroB, r.FitnessB)
	return b.String()
}

// runVariant trains and evaluates one pipeline configuration.
func runVariant(cfg core.Config, c *corpus.Corpus) (micro, macro, meanFitness float64, err error) {
	model, err := core.Train(cfg, c)
	if err != nil {
		return 0, 0, 0, err
	}
	set, err := model.Evaluate(c.Test)
	if err != nil {
		return 0, 0, 0, err
	}
	var fit float64
	for _, cat := range model.Categories() {
		fit += model.CategoryModelFor(cat).Fitness
	}
	fit /= float64(len(model.Categories()))
	return set.MicroF1(), set.MacroF1(), fit, nil
}

func (p Profile) ablate(name, labelA, labelB string, c *corpus.Corpus,
	mutateA, mutateB func(*core.Config)) (*AblationResult, error) {
	base := p.coreConfig(featsel.DF)
	cfgA, cfgB := base, base
	mutateA(&cfgA)
	mutateB(&cfgB)
	microA, macroA, fitA, err := runVariant(cfgA, c)
	if err != nil {
		return nil, fmt.Errorf("%s variant A: %w", name, err)
	}
	microB, macroB, fitB, err := runVariant(cfgB, c)
	if err != nil {
		return nil, fmt.Errorf("%s variant B: %w", name, err)
	}
	return &AblationResult{
		Name: name, VariantA: labelA, VariantB: labelB,
		MicroA: microA, MacroA: macroA, FitnessA: fitA,
		MicroB: microB, MacroB: macroB, FitnessB: fitB,
	}, nil
}

// RunAblationRecurrence compares RLGP against the register-reset variant:
// the paper's central claim is that temporal state matters.
func RunAblationRecurrence(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("recurrent vs non-recurrent LGP",
		"recurrent (RLGP, paper)", "non-recurrent (reset/word)", c,
		func(cfg *core.Config) { cfg.GP.Recurrent = true },
		func(cfg *core.Config) { cfg.GP.Recurrent = false })
}

// RunAblationBMUFanout compares the paper's 3-BMU word vectors (weights
// 1, 1/2, 1/3) against single-BMU vectors.
func RunAblationBMUFanout(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("3-BMU vs 1-BMU word vectors",
		"fanout 3 (paper)", "fanout 1", c,
		func(cfg *core.Config) { cfg.Encoder.BMUFanout = 3 },
		func(cfg *core.Config) { cfg.Encoder.BMUFanout = 1 })
}

// RunAblationDSS compares DSS subset fitness evaluation against
// full-training-set evaluation at an equal tournament budget.
func RunAblationDSS(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("DSS vs full-set fitness",
		"DSS (paper)", "full training set", c,
		func(cfg *core.Config) {
			if cfg.GP.DSS == nil {
				cfg.GP.DSS = &lgp.DSSConfig{SubsetSize: 40, Interval: 50}
			}
		},
		func(cfg *core.Config) { cfg.GP.DSS = nil })
}

// RunAblationDynamicPages compares the dynamic page-size schedule against
// a fixed single-instruction page.
func RunAblationDynamicPages(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("dynamic vs fixed page size",
		"dynamic pages (paper)", "fixed page size 1", c,
		func(cfg *core.Config) {},
		func(cfg *core.Config) {
			// MaxPageSize 1 pins the schedule at single-instruction
			// pages; keep the node limit equal.
			cfg.GP.MaxPages = cfg.GP.MaxPages * cfg.GP.MaxPageSize
			cfg.GP.MaxPageSize = 1
		})
}

// RunAblationMembership compares the full 2-dimensional word code against
// BMU-index-only input.
func RunAblationMembership(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("membership input vs index-only",
		"index+membership (paper)", "index only", c,
		func(cfg *core.Config) { cfg.DropMembershipInput = false },
		func(cfg *core.Config) { cfg.DropMembershipInput = true })
}

// RunAblationThresholdRule compares Equation 6's median-of-medians
// decision threshold against a training-F1-maximising sweep.
func RunAblationThresholdRule(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("Equation 6 vs F1-tuned threshold",
		"median of medians (Eq. 6)", "F1-tuned threshold", c,
		func(cfg *core.Config) { cfg.Threshold = core.ThresholdMedian },
		func(cfg *core.Config) { cfg.Threshold = core.ThresholdF1 })
}

// RunAblationF1Fitness compares the paper's SSE fitness (Equation 5)
// against the F1-based fitness its conclusion proposes as future work.
func RunAblationF1Fitness(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	return p.ablate("SSE vs F1 fitness",
		"SSE fitness (paper)", "F1 fitness (future work)", c,
		func(cfg *core.Config) { cfg.GP.Fitness = lgp.FitnessSSE },
		func(cfg *core.Config) { cfg.GP.Fitness = lgp.FitnessF1 })
}

// RunAblationStratifiedDSS compares plain difficulty/age DSS against the
// category-aware stratified variant the paper proposes as future work.
func RunAblationStratifiedDSS(p Profile, c *corpus.Corpus) (*AblationResult, error) {
	ensure := func(cfg *core.Config) {
		if cfg.GP.DSS == nil {
			cfg.GP.DSS = &lgp.DSSConfig{SubsetSize: 40, Interval: 50}
		} else {
			dss := *cfg.GP.DSS
			cfg.GP.DSS = &dss
		}
	}
	return p.ablate("plain vs stratified DSS",
		"difficulty/age DSS (paper)", "stratified DSS (future work)", c,
		func(cfg *core.Config) { ensure(cfg); cfg.GP.DSS.Stratify = false },
		func(cfg *core.Config) { ensure(cfg); cfg.GP.DSS.Stratify = true })
}
