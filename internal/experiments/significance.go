package experiments

import (
	"fmt"
	"sort"
	"strings"

	"temporaldoc/internal/baselines"
	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/metrics"
)

// SystemEval captures one system's paired evaluation data: per-decision
// correctness over (test document × category) in a fixed order, and
// per-category F1 — the inputs of the Yang & Liu significance tests.
type SystemEval struct {
	Name    string
	Correct []bool
	F1      map[string]float64
	Micro   float64
	Macro   float64
}

// evalDecisions runs a per-(doc, category) predicate over the test
// split in a fixed order, building the paired evaluation record.
func evalDecisions(name string, c *corpus.Corpus, predict func(doc *corpus.Document, cat string) (bool, error)) (*SystemEval, error) {
	set := metrics.NewSet()
	var correct []bool
	for i := range c.Test {
		doc := &c.Test[i]
		for _, cat := range c.Categories {
			pred, err := predict(doc, cat)
			if err != nil {
				return nil, err
			}
			actual := doc.HasCategory(cat)
			set.Observe(cat, actual, pred)
			correct = append(correct, pred == actual)
		}
	}
	f1 := make(map[string]float64, len(c.Categories))
	for _, cat := range c.Categories {
		f1[cat] = set.Table(cat).F1()
	}
	return &SystemEval{
		Name: name, Correct: correct, F1: f1,
		Micro: set.MicroF1(), Macro: set.MacroF1(),
	}, nil
}

// evalProSys wraps a trained model as a SystemEval.
func evalProSys(model *core.Model, c *corpus.Corpus) (*SystemEval, error) {
	return evalDecisions("ProSys", c, func(doc *corpus.Document, cat string) (bool, error) {
		score, err := model.Score(cat, doc)
		if err != nil {
			return false, err
		}
		return score > model.CategoryModelFor(cat).Threshold, nil
	})
}

// evalBaselineSystem trains one baseline per category under the
// selection and wraps it as a SystemEval.
func evalBaselineSystem(name string, sel *featsel.Selection, c *corpus.Corpus, seed int64) (*SystemEval, error) {
	clfs := make(map[string]baselines.Classifier, len(c.Categories))
	keeps := make(map[string]map[string]bool, len(c.Categories))
	for _, cat := range c.Categories {
		keep := sel.KeepFor(cat)
		keeps[cat] = keep
		features := make([]string, 0, len(keep))
		for f := range keep {
			features = append(features, f)
		}
		sort.Strings(features)
		var clf baselines.Classifier
		switch name {
		case "NB":
			clf = baselines.NewNaiveBayes(features)
		case "DT":
			clf = baselines.NewDecisionTree(features, baselines.TreeConfig{})
		case "L-SVM":
			clf = baselines.NewLinearSVM(features, baselines.SVMConfig{Seed: seed})
		case "Rocchio":
			clf = baselines.NewRocchio(features, 0, 0)
		case "kNN":
			clf = baselines.NewKNN(features, baselines.KNNConfig{})
		default:
			return nil, fmt.Errorf("experiments: unsupported significance baseline %q", name)
		}
		train := make([]corpus.Document, len(c.Train))
		for i := range c.Train {
			train[i] = corpus.FilterWords(c.Train[i], keep)
		}
		if err := clf.Train(train, cat); err != nil {
			return nil, err
		}
		clfs[cat] = clf
	}
	return evalDecisions(name, c, func(doc *corpus.Document, cat string) (bool, error) {
		filtered := corpus.FilterWords(*doc, keeps[cat])
		return clfs[cat].Predict(filtered.Words), nil
	})
}

// RunSignificance compares ProSys against the Table 5 baselines under
// MI features with the micro sign test and the macro paired t-test,
// returning a formatted report.
func RunSignificance(p Profile, c *corpus.Corpus) (string, error) {
	model, err := p.TrainProSys(c, featsel.MI)
	if err != nil {
		return "", err
	}
	pro, err := evalProSys(model, c)
	if err != nil {
		return "", err
	}
	budget := p.FeatureBudget
	if budget == (featsel.Config{}) {
		budget = featsel.DefaultConfig(featsel.MI)
	}
	sel, err := featsel.Select(featsel.MI, c.Train, c.Categories, budget)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Significance of ProSys vs baselines (MI features)\n")
	b.WriteString("micro s-test over paired decisions; macro paired t-test over per-category F1\n\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %10s %10s %8s %10s\n",
		"system", "microF1", "macroF1", "ProSys-only", "sys-only", "signP", "tTestP")
	fmt.Fprintf(&b, "%-8s %8.3f %8.3f\n", "ProSys", pro.Micro, pro.Macro)
	for _, name := range []string{"NB", "DT", "L-SVM", "Rocchio", "kNN"} {
		sys, err := evalBaselineSystem(name, sel, c, p.Seed)
		if err != nil {
			return "", err
		}
		cmp, err := metrics.Compare(pro.Correct, sys.Correct, pro.F1, sys.F1)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s %8.3f %8.3f %10d %10d %8.4f %10.4f\n",
			name, sys.Micro, sys.Macro, cmp.AOnly, cmp.BOnly, cmp.SignP, cmp.TTestP)
	}
	return b.String(), nil
}
