package experiments

import (
	"strings"
	"testing"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/lgp"
)

// The smoke profile and its corpus are shared across the package tests.
var (
	testProfile = SmokeProfile()
	testCorpus  *corpus.Corpus
)

func profileCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	if testCorpus == nil {
		c, err := testProfile.Corpus()
		if err != nil {
			t.Fatalf("Corpus: %v", err)
		}
		testCorpus = c
	}
	return testCorpus
}

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range []Profile{SmokeProfile(), QuickProfile(), FullProfile()} {
		if p.Name == "" || p.Scale <= 0 || p.Restarts < 1 {
			t.Errorf("profile %+v malformed", p)
		}
	}
	full := FullProfile()
	if full.Scale != 1.0 || full.GP.Tournaments != 48000 || full.Restarts != 20 {
		t.Errorf("FullProfile not paper-scale: %+v", full)
	}
}

func TestRunTable1(t *testing.T) {
	c := profileCorpus(t)
	rows, err := RunTable1(testProfile, c)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Selected <= 0 {
			t.Errorf("method %s selected %d features", r.Method, r.Selected)
		}
	}
	// Per-category methods select more total features than their
	// per-category budget.
	out := FormatTable1(rows)
	for _, name := range []string{"Document Frequency", "Information Gain", "Mutual Information", "Frequent Nouns"} {
		if !strings.Contains(out, name) {
			t.Errorf("FormatTable1 missing %q:\n%s", name, out)
		}
	}
}

func TestFormatTable2(t *testing.T) {
	out := FormatTable2(lgp.DefaultConfig())
	for _, want := range []string{"Tournament", "125", "48000", "Node Limit", "256", "0.9", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable4SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 smoke run skipped in -short")
	}
	c := profileCorpus(t)
	table, err := RunTable4(testProfile, c)
	if err != nil {
		t.Fatalf("RunTable4: %v", err)
	}
	if len(table.Systems) != 4 {
		t.Fatalf("systems = %v", table.Systems)
	}
	for _, s := range table.Systems {
		if table.Micro[s] < 0 || table.Micro[s] > 1 {
			t.Errorf("%s micro F1 = %v", s, table.Micro[s])
		}
		for _, cat := range table.Categories {
			if f := table.F1[s][cat]; f < 0 || f > 1 {
				t.Errorf("%s/%s F1 = %v", s, cat, f)
			}
		}
	}
	out := table.Format()
	if !strings.Contains(out, "Macro Ave.") || !strings.Contains(out, "Micro Ave.") {
		t.Errorf("Format missing averages:\n%s", out)
	}
}

func TestRunTable5SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 smoke run skipped in -short")
	}
	c := profileCorpus(t)
	table, err := RunTable5(testProfile, c)
	if err != nil {
		t.Fatalf("RunTable5: %v", err)
	}
	want := []string{"ProSys", "T-GP", "L-SVM", "DT", "NB"}
	for i, s := range want {
		if table.Systems[i] != s {
			t.Fatalf("systems = %v", table.Systems)
		}
	}
	// The baselines on a bag-of-words-separable synthetic corpus should
	// do reasonably; sanity-check L-SVM.
	if table.Micro["L-SVM"] < 0.3 {
		t.Errorf("L-SVM micro = %v, implausibly low", table.Micro["L-SVM"])
	}
}

func TestRunTable6SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 6 smoke run skipped in -short")
	}
	c := profileCorpus(t)
	table, err := RunTable6(testProfile, c)
	if err != nil {
		t.Fatalf("RunTable6: %v", err)
	}
	if len(table.Systems) != 3 || table.Systems[0] != "ProSys" {
		t.Fatalf("systems = %v", table.Systems)
	}
	if table.Micro["NB"] <= 0 {
		t.Errorf("NB micro = %v", table.Micro["NB"])
	}
}

func TestRunFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 3 smoke run skipped in -short")
	}
	c := profileCorpus(t)
	out, err := RunFigure3(testProfile, c, "earn")
	if err != nil {
		t.Fatalf("RunFigure3: %v", err)
	}
	if !strings.Contains(out, "->") || !strings.Contains(out, "*") {
		t.Errorf("figure 3 output incomplete:\n%s", out)
	}
	if _, err := RunFigure3(testProfile, c, "bogus"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestRunFigure5And6(t *testing.T) {
	if testing.Short() {
		t.Skip("figure traces skipped in -short")
	}
	c := profileCorpus(t)
	res5, _, err := RunFigure5(testProfile, c, "earn")
	if err != nil {
		t.Fatalf("RunFigure5: %v", err)
	}
	if len(res5.Categories) != 1 || res5.Categories[0] != "earn" {
		t.Errorf("figure 5 doc labels = %v, want single-label earn", res5.Categories)
	}
	out := FormatTrace("Figure 5", res5)
	if !strings.Contains(out, "classifier") || !strings.Contains(out, "|") {
		t.Errorf("trace render incomplete:\n%s", out)
	}

	res6, _, err := RunFigure6(testProfile, c)
	if err != nil {
		t.Fatalf("RunFigure6: %v", err)
	}
	if len(res6.Categories) < 2 {
		t.Errorf("figure 6 doc labels = %v, want multi-label", res6.Categories)
	}
	if len(res6.Traces) != len(res6.Categories) {
		t.Errorf("traces for %d of %d labels", len(res6.Traces), len(res6.Categories))
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short")
	}
	c := profileCorpus(t)
	runners := map[string]func(Profile, *corpus.Corpus) (*AblationResult, error){
		"recurrence":    RunAblationRecurrence,
		"fanout":        RunAblationBMUFanout,
		"dss":           RunAblationDSS,
		"dynamicpages":  RunAblationDynamicPages,
		"membership":    RunAblationMembership,
		"f1fitness":     RunAblationF1Fitness,
		"stratifieddss": RunAblationStratifiedDSS,
		"threshold":     RunAblationThresholdRule,
	}
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			res, err := run(testProfile, c)
			if err != nil {
				t.Fatalf("%v", err)
			}
			for _, v := range []float64{res.MicroA, res.MicroB, res.MacroA, res.MacroB} {
				if v < 0 || v > 1 {
					t.Errorf("F1 out of range in %+v", res)
				}
			}
			if out := res.Format(); !strings.Contains(out, "microF1") {
				t.Errorf("Format incomplete: %s", out)
			}
		})
	}
}

func TestRunSignificance(t *testing.T) {
	if testing.Short() {
		t.Skip("significance run skipped in -short")
	}
	c := profileCorpus(t)
	out, err := RunSignificance(testProfile, c)
	if err != nil {
		t.Fatalf("RunSignificance: %v", err)
	}
	for _, want := range []string{"ProSys", "NB", "Rocchio", "signP", "tTestP"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableTemporalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("temporal table skipped in -short")
	}
	c := profileCorpus(t)
	table, err := RunTableTemporal(testProfile, c)
	if err != nil {
		t.Fatalf("RunTableTemporal: %v", err)
	}
	for _, s := range []string{"ProSys", "SeqK", "Elman"} {
		if table.Micro[s] < 0 || table.Micro[s] > 1 {
			t.Errorf("%s micro = %v", s, table.Micro[s])
		}
	}
}

func TestRenderBar(t *testing.T) {
	if got := renderBar(0); !strings.Contains(got, "|") || strings.Contains(got, "#") {
		t.Errorf("renderBar(0) = %q", got)
	}
	if got := renderBar(1); strings.Count(got, "#") != 10 {
		t.Errorf("renderBar(1) = %q", got)
	}
	if got := renderBar(-1); strings.Count(got, "#") != 10 {
		t.Errorf("renderBar(-1) = %q", got)
	}
	if got := renderBar(0.5); strings.Count(got, "#") != 5 {
		t.Errorf("renderBar(0.5) = %q", got)
	}
	// Positive bars sit right of the axis.
	pos := renderBar(0.5)
	if strings.Index(pos, "#") < strings.Index(pos, "|") {
		t.Errorf("positive bar on wrong side: %q", pos)
	}
}

func TestF1TableFormatLayout(t *testing.T) {
	table := newF1Table("Title", []string{"A", "B"}, []string{"earn", "acq"})
	table.F1["A"]["earn"] = 0.5
	table.Macro["A"] = 0.25
	out := table.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + 2 categories + macro + micro = 6 lines.
	if len(lines) != 6 {
		t.Errorf("layout = %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "0.50") {
		t.Errorf("value missing: %s", lines[2])
	}
}

func TestEvaluateBaselineUnknown(t *testing.T) {
	c := profileCorpus(t)
	sel, err := featsel.Select(featsel.DF, c.Train, c.Categories, featsel.Config{GlobalN: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evaluateBaseline("nope", sel, c, 1); err == nil {
		t.Error("unknown baseline accepted")
	}
}
