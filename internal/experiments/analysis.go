package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
)

// OverlapMatrix holds pairwise category vocabulary similarities — the
// paper attributes ProSys's money-fx/interest confusion to "heavily
// overlapped" word co-occurrences between the two categories.
type OverlapMatrix struct {
	Categories []string
	// Cosine[i][j] is the cosine similarity of the two categories'
	// term-frequency vectors.
	Cosine [][]float64
}

// CategoryOverlap computes the pairwise cosine similarity of category
// term-frequency vectors over the training split.
func CategoryOverlap(c *corpus.Corpus) *OverlapMatrix {
	freqs := make([]map[string]float64, len(c.Categories))
	for i, cat := range c.Categories {
		f := make(map[string]float64)
		for _, d := range c.TrainFor(cat) {
			for _, w := range d.Words {
				f[w]++
			}
		}
		freqs[i] = f
	}
	// Accumulate over a sorted vocabulary, not map order: float sums
	// depend on addition order, and the similarities feed reported
	// numbers that must not vary run to run.
	words := make([][]string, len(freqs))
	for i, f := range freqs {
		ws := make([]string, 0, len(f))
		for w := range f {
			ws = append(ws, w)
		}
		sort.Strings(ws)
		words[i] = ws
	}
	m := &OverlapMatrix{
		Categories: append([]string(nil), c.Categories...),
		Cosine:     make([][]float64, len(c.Categories)),
	}
	norms := make([]float64, len(freqs))
	for i := range freqs {
		var s float64
		for _, w := range words[i] {
			v := freqs[i][w]
			s += v * v
		}
		norms[i] = math.Sqrt(s)
	}
	for i := range freqs {
		m.Cosine[i] = make([]float64, len(freqs))
		for j := range freqs {
			if norms[i] == 0 || norms[j] == 0 {
				continue
			}
			var dot float64
			for _, w := range words[i] {
				dot += freqs[i][w] * freqs[j][w]
			}
			m.Cosine[i][j] = dot / (norms[i] * norms[j])
		}
	}
	return m
}

// Pair returns the cosine similarity between two categories (0 when
// either is unknown).
func (m *OverlapMatrix) Pair(a, b string) float64 {
	ia, ib := -1, -1
	for i, cat := range m.Categories {
		if cat == a {
			ia = i
		}
		if cat == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0
	}
	return m.Cosine[ia][ib]
}

// Format renders the overlap matrix with short headers.
func (m *OverlapMatrix) Format() string {
	var b strings.Builder
	b.WriteString("Category vocabulary overlap (cosine of term-frequency vectors)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, cat := range m.Categories {
		fmt.Fprintf(&b, " %6s", abbrev(cat))
	}
	b.WriteByte('\n')
	for i, cat := range m.Categories {
		fmt.Fprintf(&b, "%-10s", cat)
		for j := range m.Categories {
			fmt.Fprintf(&b, " %6.2f", m.Cosine[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func abbrev(s string) string {
	if len(s) > 6 {
		return s[:6]
	}
	return s
}

// ConfusionMatrix counts, for each true category, how documents of that
// category are labelled by every binary classifier: Rate[i][j] is the
// fraction of test documents truly in category i that classifier j
// accepts. High off-diagonal rates reproduce the paper's observation
// that money-fx and interest documents are "consistently categorised
// into one category".
type ConfusionMatrix struct {
	Categories []string
	Rate       [][]float64
	Support    []int
}

// RunConfusion evaluates a trained model's cross-classification rates on
// the test split.
func RunConfusion(model *core.Model, c *corpus.Corpus) (*ConfusionMatrix, error) {
	cats := model.Categories()
	idx := make(map[string]int, len(cats))
	for i, cat := range cats {
		idx[cat] = i
	}
	cm := &ConfusionMatrix{
		Categories: cats,
		Rate:       make([][]float64, len(cats)),
		Support:    make([]int, len(cats)),
	}
	counts := make([][]int, len(cats))
	for i := range counts {
		counts[i] = make([]int, len(cats))
		cm.Rate[i] = make([]float64, len(cats))
	}
	for i := range c.Test {
		doc := &c.Test[i]
		predicted, err := model.Classify(doc)
		if err != nil {
			return nil, err
		}
		for _, trueCat := range doc.Categories {
			ti, ok := idx[trueCat]
			if !ok {
				continue
			}
			cm.Support[ti]++
			for _, p := range predicted {
				counts[ti][idx[p]]++
			}
		}
	}
	for i := range counts {
		if cm.Support[i] == 0 {
			continue
		}
		for j := range counts[i] {
			cm.Rate[i][j] = float64(counts[i][j]) / float64(cm.Support[i])
		}
	}
	return cm, nil
}

// Format renders the confusion matrix (rows: true category; columns:
// accepting classifier).
func (cm *ConfusionMatrix) Format() string {
	var b strings.Builder
	b.WriteString("Cross-classification rates (row: true category, column: accepting classifier)\n")
	fmt.Fprintf(&b, "%-10s %4s", "", "n")
	for _, cat := range cm.Categories {
		fmt.Fprintf(&b, " %6s", abbrev(cat))
	}
	b.WriteByte('\n')
	for i, cat := range cm.Categories {
		fmt.Fprintf(&b, "%-10s %4d", cat, cm.Support[i])
		for j := range cm.Categories {
			fmt.Fprintf(&b, " %6.2f", cm.Rate[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
