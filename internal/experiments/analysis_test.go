package experiments

import (
	"strings"
	"testing"

	"temporaldoc/internal/featsel"
)

func TestCategoryOverlapMoneyInterest(t *testing.T) {
	c := profileCorpus(t)
	m := CategoryOverlap(c)
	if len(m.Categories) != len(c.Categories) {
		t.Fatalf("categories = %v", m.Categories)
	}
	// Diagonal is 1.
	for i := range m.Categories {
		if m.Cosine[i][i] < 0.999 {
			t.Errorf("diagonal %s = %v", m.Categories[i], m.Cosine[i][i])
		}
	}
	// Symmetry.
	for i := range m.Categories {
		for j := range m.Categories {
			if d := m.Cosine[i][j] - m.Cosine[j][i]; d > 1e-9 || d < -1e-9 {
				t.Errorf("asymmetric at %d,%d", i, j)
			}
		}
	}
	// The paper's money-fx/interest overlap must exceed a structurally
	// unrelated pair like earn/ship.
	if m.Pair("money-fx", "interest") <= m.Pair("earn", "ship") {
		t.Errorf("money/interest overlap %v not above earn/ship %v",
			m.Pair("money-fx", "interest"), m.Pair("earn", "ship"))
	}
	// wheat is a grain subset: also heavily overlapped.
	if m.Pair("wheat", "grain") <= m.Pair("wheat", "crude") {
		t.Errorf("wheat/grain overlap %v not above wheat/crude %v",
			m.Pair("wheat", "grain"), m.Pair("wheat", "crude"))
	}
	if m.Pair("bogus", "earn") != 0 {
		t.Error("unknown category overlap non-zero")
	}
	out := m.Format()
	if !strings.Contains(out, "money-fx") || !strings.Contains(out, "1.00") {
		t.Errorf("Format incomplete:\n%s", out)
	}
}

func TestRunConfusion(t *testing.T) {
	if testing.Short() {
		t.Skip("confusion matrix skipped in -short")
	}
	c := profileCorpus(t)
	model, err := testProfile.TrainProSys(c, featsel.MI)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	cm, err := RunConfusion(model, c)
	if err != nil {
		t.Fatalf("RunConfusion: %v", err)
	}
	if len(cm.Categories) != len(c.Categories) {
		t.Fatalf("categories = %v", cm.Categories)
	}
	totalSupport := 0
	for i := range cm.Categories {
		totalSupport += cm.Support[i]
		for j := range cm.Categories {
			if cm.Rate[i][j] < 0 || cm.Rate[i][j] > 1 {
				t.Errorf("rate[%d][%d] = %v", i, j, cm.Rate[i][j])
			}
		}
	}
	if totalSupport == 0 {
		t.Fatal("no support counted")
	}
	out := cm.Format()
	if !strings.Contains(out, "true category") {
		t.Errorf("Format incomplete:\n%s", out)
	}
}
