// Package experiments regenerates every table and figure of the paper's
// evaluation (section 8) against the synthetic Reuters-like corpus:
//
//	Table 1 — selected feature counts per method
//	Table 2 — GP parameters
//	Table 3 — IR measure definitions (exercised via internal/metrics)
//	Table 4 — ProSys F1 under DF / IG / Nouns / MI
//	Table 5 — ProSys vs T-GP / L-SVM / DT / NB under MI
//	Table 6 — ProSys vs NB / Rocchio under IG
//	Figure 3 — word → BMU mapping on a category SOM
//	Figure 5 — single-label word-tracking trace
//	Figure 6 — multi-label word-tracking trace
//
// Each runner is deterministic for a fixed Profile and is shared by the
// benchmark harness (bench_test.go) and the benchtables command.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"temporaldoc/internal/baselines"
	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/metrics"
	"temporaldoc/internal/plot"
	"temporaldoc/internal/reuters"
	"temporaldoc/internal/telemetry"
)

// Profile bundles the corpus scale and model budgets of one experimental
// run. QuickProfile is laptop-scale; FullProfile reproduces the paper's
// budgets (long runtimes).
type Profile struct {
	Name          string
	Scale         float64
	Seed          int64
	FeatureBudget featsel.Config
	Encoder       hsom.Config
	GP            lgp.Config
	Restarts      int
	// Workers is the evaluation-engine worker count threaded into
	// core.Config.Workers (tournament evaluation, batch BMU search,
	// document scoring). Zero keeps each stage's own default; results
	// are bit-identical for any value.
	Workers int
	// Metrics, when non-nil, is threaded into core.Config.Metrics so
	// experiment runs record pipeline telemetry. Diagnostics-only.
	Metrics *telemetry.Registry
	// Observer, when non-nil, receives the pipeline's typed TrainEvents
	// for every model the experiment trains. Diagnostics-only.
	Observer core.Observer
}

// QuickProfile returns a minutes-scale profile: ~3% corpus scale and
// reduced GP budgets. Experiment *shapes* (who wins, where ProSys is
// weak) are preserved; absolute F1 differs from the paper.
func QuickProfile() Profile {
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 30
	gp.Tournaments = 800
	gp.DSS = &lgp.DSSConfig{SubsetSize: 40, Interval: 50}
	return Profile{
		Name:  "quick",
		Scale: 0.03,
		Seed:  1,
		FeatureBudget: featsel.Config{
			GlobalN:      150,
			PerCategoryN: 40,
		},
		Encoder: hsom.Config{
			CharWidth: 7, CharHeight: 13,
			WordWidth: 8, WordHeight: 8,
			CharEpochs: 2, WordEpochs: 4,
			BMUFanout: 3,
			Seed:      2,
		},
		GP:       gp,
		Restarts: 1,
	}
}

// SmokeProfile is the smallest profile that still runs every stage —
// used by unit tests and -short benchmarks.
func SmokeProfile() Profile {
	p := QuickProfile()
	p.Name = "smoke"
	p.Scale = 0.008
	p.FeatureBudget = featsel.Config{GlobalN: 80, PerCategoryN: 25}
	p.Encoder.CharWidth, p.Encoder.CharHeight = 5, 5
	p.Encoder.WordWidth, p.Encoder.WordHeight = 4, 4
	p.GP.PopulationSize = 20
	p.GP.Tournaments = 200
	p.GP.DSS = &lgp.DSSConfig{SubsetSize: 25, Interval: 40}
	return p
}

// FullProfile reproduces the paper's budgets: full ModApte-size corpus,
// Table 1 feature counts, Table 2 GP parameters, 20 restarts.
func FullProfile() Profile {
	return Profile{
		Name:          "full",
		Scale:         1.0,
		Seed:          1,
		FeatureBudget: featsel.Config{GlobalN: 1000, PerCategoryN: 300},
		Encoder:       hsom.DefaultConfig(),
		GP:            lgp.DefaultConfig(),
		Restarts:      20,
	}
}

// Corpus generates the profile's synthetic corpus.
func (p Profile) Corpus() (*corpus.Corpus, error) {
	cfg := reuters.DefaultGenConfig()
	cfg.Scale = p.Scale
	cfg.Seed = p.Seed
	return reuters.GenerateCorpus(cfg)
}

// coreConfig assembles the pipeline configuration for a feature method.
func (p Profile) coreConfig(method featsel.Method) core.Config {
	budget := p.FeatureBudget
	if budget == (featsel.Config{}) {
		budget = featsel.DefaultConfig(method)
	}
	return core.Config{
		FeatureMethod: method,
		FeatureConfig: budget,
		Encoder:       p.Encoder,
		GP:            p.GP,
		Restarts:      p.Restarts,
		Workers:       p.Workers,
		Metrics:       p.Metrics,
		Observer:      p.Observer,
		Seed:          p.Seed,
	}
}

// TrainProSys trains the paper's system under one feature selection.
func (p Profile) TrainProSys(c *corpus.Corpus, method featsel.Method) (*core.Model, error) {
	return core.Train(p.coreConfig(method), c)
}

// CoreConfig exposes the pipeline configuration the profile would train
// with, so callers can attach progress callbacks or tweak fields.
func (p Profile) CoreConfig(method featsel.Method) core.Config {
	return p.coreConfig(method)
}

// --- Table 1 ---

// Table1Row reports one feature-selection method's configuration and the
// realised feature count on the profile corpus.
type Table1Row struct {
	Method   featsel.Method
	Budget   string
	Selected int
}

// RunTable1 reproduces Table 1: the number of selected features per
// method.
func RunTable1(p Profile, c *corpus.Corpus) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 4)
	for _, m := range []featsel.Method{featsel.DF, featsel.IG, featsel.MI, featsel.Nouns} {
		budget := p.FeatureBudget
		if budget == (featsel.Config{}) {
			budget = featsel.DefaultConfig(m)
		}
		sel, err := featsel.Select(m, c.Train, c.Categories, budget)
		if err != nil {
			return nil, err
		}
		desc := fmt.Sprintf("%d (whole corpus)", budget.GlobalN)
		if !sel.IsGlobal() {
			desc = fmt.Sprintf("%d (per category)", budget.PerCategoryN)
		}
		rows = append(rows, Table1Row{Method: m, Budget: desc, Selected: sel.Count()})
	}
	return rows, nil
}

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1. Number of Selected Features for Each Feature Selection Method\n")
	fmt.Fprintf(&b, "%-22s %-22s %s\n", "Method", "Budget", "Selected")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-22s %d\n", methodName(r.Method), r.Budget, r.Selected)
	}
	return b.String()
}

func methodName(m featsel.Method) string {
	switch m {
	case featsel.DF:
		return "Document Frequency"
	case featsel.IG:
		return "Information Gain"
	case featsel.MI:
		return "Mutual Information"
	case featsel.Nouns:
		return "Frequent Nouns"
	default:
		return string(m)
	}
}

// --- Table 2 ---

// FormatTable2 renders the GP parameter table from the live defaults.
func FormatTable2(cfg lgp.Config) string {
	var b strings.Builder
	b.WriteString("Table 2. GP Parameters\n")
	rows := [][2]string{
		{"Selection type", "Tournament"},
		{"Tournament size", fmt.Sprint(cfg.TournamentSize)},
		{"Functional Set", "+, -, *, /"},
		{"Instruction Type (Ratio)", fmt.Sprintf("Constants (%g), Internal (%g), External (%g)",
			cfg.ConstantRatio, cfg.InternalRatio, cfg.ExternalRatio)},
		{"Node Limit", fmt.Sprint(cfg.MaxPages * cfg.MaxPageSize)},
		{"Population Size", fmt.Sprint(cfg.PopulationSize)},
		{"Generations", fmt.Sprint(cfg.Tournaments)},
		{"Number of Registers", fmt.Sprint(cfg.NumRegisters)},
		{"P(Xover)", fmt.Sprint(cfg.PCrossover)},
		{"P(Mutate)", fmt.Sprint(cfg.PMutate)},
		{"P(Swap)", fmt.Sprint(cfg.PSwap)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %s\n", r[0], r[1])
	}
	return b.String()
}

// --- F1 tables (4, 5, 6) ---

// F1Table holds per-category F1 scores for a set of systems, plus macro
// and micro averages — the shared shape of Tables 4, 5 and 6.
type F1Table struct {
	Title      string
	Systems    []string
	Categories []string
	// F1 is indexed [system][category].
	F1 map[string]map[string]float64
	// Macro and Micro are indexed [system].
	Macro, Micro map[string]float64
}

func newF1Table(title string, systems, categories []string) *F1Table {
	t := &F1Table{
		Title:      title,
		Systems:    systems,
		Categories: categories,
		F1:         make(map[string]map[string]float64, len(systems)),
		Macro:      make(map[string]float64, len(systems)),
		Micro:      make(map[string]float64, len(systems)),
	}
	for _, s := range systems {
		t.F1[s] = make(map[string]float64, len(categories))
	}
	return t
}

func (t *F1Table) addSystem(name string, set *metrics.Set) {
	for _, cat := range t.Categories {
		t.F1[name][cat] = set.Table(cat).F1()
	}
	t.Macro[name] = set.MacroF1()
	t.Micro[name] = set.MicroF1()
}

// Format renders the table in the paper's layout.
func (t *F1Table) Format() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	fmt.Fprintf(&b, "%-12s", "Category")
	for _, s := range t.Systems {
		fmt.Fprintf(&b, " %10s", s)
	}
	b.WriteByte('\n')
	for _, cat := range t.Categories {
		fmt.Fprintf(&b, "%-12s", cat)
		for _, s := range t.Systems {
			fmt.Fprintf(&b, " %10.2f", t.F1[s][cat])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s", "Macro Ave.")
	for _, s := range t.Systems {
		fmt.Fprintf(&b, " %10.2f", t.Macro[s])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-12s", "Micro Ave.")
	for _, s := range t.Systems {
		fmt.Fprintf(&b, " %10.2f", t.Micro[s])
	}
	b.WriteByte('\n')
	return b.String()
}

// RunTable4 reproduces Table 4: ProSys F1 per category under the four
// feature-selection methods.
func RunTable4(p Profile, c *corpus.Corpus) (*F1Table, error) {
	methods := []featsel.Method{featsel.DF, featsel.IG, featsel.Nouns, featsel.MI}
	names := []string{"DF", "IG", "Nouns", "MI"}
	table := newF1Table("Table 4. Performance on Reuters-like corpus, four feature selections (F1)",
		names, c.Categories)
	for i, m := range methods {
		model, err := p.TrainProSys(c, m)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", m, err)
		}
		set, err := model.Evaluate(c.Test)
		if err != nil {
			return nil, err
		}
		table.addSystem(names[i], set)
	}
	return table, nil
}

// evaluateBaseline trains one baseline per category under a selection
// and evaluates it on the test split.
func evaluateBaseline(name string, sel *featsel.Selection, c *corpus.Corpus, seed int64) (*metrics.Set, error) {
	set := metrics.NewSet()
	for _, cat := range c.Categories {
		keep := sel.KeepFor(cat)
		features := make([]string, 0, len(keep))
		for f := range keep {
			features = append(features, f)
		}
		sort.Strings(features) // deterministic classifier construction
		var clf baselines.Classifier
		switch name {
		case "NB":
			clf = baselines.NewNaiveBayes(features)
		case "Rocchio":
			clf = baselines.NewRocchio(features, 0, 0)
		case "L-SVM":
			clf = baselines.NewLinearSVM(features, baselines.SVMConfig{Seed: seed})
		case "DT":
			clf = baselines.NewDecisionTree(features, baselines.TreeConfig{})
		case "T-GP":
			clf = baselines.NewTreeGP(baselines.TreeGPConfig{Seed: seed})
		case "kNN":
			clf = baselines.NewKNN(features, baselines.KNNConfig{})
		case "SeqK":
			clf = baselines.NewSeqKernel(baselines.SeqKernelConfig{Seed: seed})
		case "Elman":
			clf = baselines.NewElman(baselines.ElmanConfig{Seed: seed})
		default:
			return nil, fmt.Errorf("unknown baseline %q", name)
		}
		train := make([]corpus.Document, len(c.Train))
		for i := range c.Train {
			train[i] = corpus.FilterWords(c.Train[i], keep)
		}
		if err := clf.Train(train, cat); err != nil {
			return nil, fmt.Errorf("baseline %s on %s: %w", name, cat, err)
		}
		for i := range c.Test {
			filtered := corpus.FilterWords(c.Test[i], keep)
			set.Observe(cat, c.Test[i].HasCategory(cat), clf.Predict(filtered.Words))
		}
	}
	return set, nil
}

// RunTable5 reproduces Table 5: ProSys vs T-GP, L-SVM, DT and NB under
// Mutual Information feature selection.
func RunTable5(p Profile, c *corpus.Corpus) (*F1Table, error) {
	systems := []string{"ProSys", "T-GP", "L-SVM", "DT", "NB"}
	table := newF1Table("Table 5. Comparison: Mutual Information (F1)", systems, c.Categories)

	model, err := p.TrainProSys(c, featsel.MI)
	if err != nil {
		return nil, fmt.Errorf("table5 ProSys: %w", err)
	}
	set, err := model.Evaluate(c.Test)
	if err != nil {
		return nil, err
	}
	table.addSystem("ProSys", set)

	budget := p.FeatureBudget
	if budget == (featsel.Config{}) {
		budget = featsel.DefaultConfig(featsel.MI)
	}
	sel, err := featsel.Select(featsel.MI, c.Train, c.Categories, budget)
	if err != nil {
		return nil, err
	}
	for _, name := range systems[1:] {
		bset, err := evaluateBaseline(name, sel, c, p.Seed)
		if err != nil {
			return nil, err
		}
		table.addSystem(name, bset)
	}
	return table, nil
}

// RunTable6 reproduces Table 6: ProSys vs NB and Rocchio under
// Information Gain feature selection.
func RunTable6(p Profile, c *corpus.Corpus) (*F1Table, error) {
	systems := []string{"ProSys", "NB", "Rocchio"}
	table := newF1Table("Table 6. Comparison: Information Gain (F1)", systems, c.Categories)

	model, err := p.TrainProSys(c, featsel.IG)
	if err != nil {
		return nil, fmt.Errorf("table6 ProSys: %w", err)
	}
	set, err := model.Evaluate(c.Test)
	if err != nil {
		return nil, err
	}
	table.addSystem("ProSys", set)

	budget := p.FeatureBudget
	if budget == (featsel.Config{}) {
		budget = featsel.DefaultConfig(featsel.IG)
	}
	sel, err := featsel.Select(featsel.IG, c.Train, c.Categories, budget)
	if err != nil {
		return nil, err
	}
	for _, name := range systems[1:] {
		bset, err := evaluateBaseline(name, sel, c, p.Seed)
		if err != nil {
			return nil, err
		}
		table.addSystem(name, bset)
	}
	return table, nil
}

// RunTableTemporal is an extension table not in the paper: ProSys
// against the two *temporal* approaches its related-work section
// discusses — the word-sequence kernel (Cancedda et al. 2003) and a
// Wermter-style Elman recurrent network — under MI feature selection.
// This isolates the paper's contribution among order-aware systems,
// where Tables 5/6 compare against bag-of-words models.
func RunTableTemporal(p Profile, c *corpus.Corpus) (*F1Table, error) {
	systems := []string{"ProSys", "SeqK", "Elman"}
	table := newF1Table("Extension. Temporal systems comparison: Mutual Information (F1)",
		systems, c.Categories)
	model, err := p.TrainProSys(c, featsel.MI)
	if err != nil {
		return nil, fmt.Errorf("temporal table ProSys: %w", err)
	}
	set, err := model.Evaluate(c.Test)
	if err != nil {
		return nil, err
	}
	table.addSystem("ProSys", set)

	budget := p.FeatureBudget
	if budget == (featsel.Config{}) {
		budget = featsel.DefaultConfig(featsel.MI)
	}
	sel, err := featsel.Select(featsel.MI, c.Train, c.Categories, budget)
	if err != nil {
		return nil, err
	}
	for _, name := range systems[1:] {
		bset, err := evaluateBaseline(name, sel, c, p.Seed)
		if err != nil {
			return nil, err
		}
		table.addSystem(name, bset)
	}
	return table, nil
}

// --- Figures ---

// RunFigure3 trains the encoder alone and renders the category word SOM
// hit grid plus the ordered BMU trace of one document — the Figure 3
// word → BMU mapping view.
func RunFigure3(p Profile, c *corpus.Corpus, category string) (string, error) {
	model, err := p.TrainProSys(c, featsel.DF)
	if err != nil {
		return "", err
	}
	ce := model.Encoder().Category(category)
	if ce == nil {
		return "", fmt.Errorf("category %q not trained", category)
	}
	docs := c.TrainFor(category)
	if len(docs) == 0 {
		return "", fmt.Errorf("no documents for %q", category)
	}
	keep := model.Keep(category)
	filtered := corpus.FilterWords(docs[0], keep)
	trace, err := model.Encoder().BMUTrace(category, filtered.Words)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3. Word SOM hit grid for category %q ('*' = selected BMU)\n", category)
	b.WriteString(ce.RenderHitGrid())
	fmt.Fprintf(&b, "Ordered BMU trace of document %s:\n  ", docs[0].ID)
	parts := make([]string, len(trace))
	for i, u := range trace {
		parts[i] = fmt.Sprint(u)
	}
	b.WriteString(strings.Join(parts, " -> "))
	b.WriteByte('\n')
	return b.String(), nil
}

// TraceResult is the outcome of a word-tracking run (Figures 5 and 6).
type TraceResult struct {
	DocID      string
	Categories []string // the document's true labels
	// Traces maps category -> per-word classifier trajectory.
	Traces map[string][]core.TracePoint
}

// RunFigure5 trains ProSys under MI (the paper's Figure 5 setting) and
// traces a single-label document of the target category.
func RunFigure5(p Profile, c *corpus.Corpus, category string) (*TraceResult, *core.Model, error) {
	model, err := p.TrainProSys(c, featsel.MI)
	if err != nil {
		return nil, nil, err
	}
	doc := findDoc(c.Test, func(d *corpus.Document) bool {
		return len(d.Categories) == 1 && d.Categories[0] == category
	})
	if doc == nil {
		return nil, nil, fmt.Errorf("no single-label %q test document", category)
	}
	tr, err := model.Trace(category, doc)
	if err != nil {
		return nil, nil, err
	}
	return &TraceResult{
		DocID:      doc.ID,
		Categories: doc.Categories,
		Traces:     map[string][]core.TracePoint{category: tr},
	}, model, nil
}

// RunFigure6 traces a multi-label document (grain+wheat+trade when
// available) through every one of its label classifiers.
func RunFigure6(p Profile, c *corpus.Corpus) (*TraceResult, *core.Model, error) {
	model, err := p.TrainProSys(c, featsel.MI)
	if err != nil {
		return nil, nil, err
	}
	doc := findDoc(c.Test, func(d *corpus.Document) bool { return len(d.Categories) >= 3 })
	if doc == nil {
		doc = findDoc(c.Test, func(d *corpus.Document) bool { return len(d.Categories) >= 2 })
	}
	if doc == nil {
		return nil, nil, fmt.Errorf("no multi-label test document")
	}
	res := &TraceResult{
		DocID:      doc.ID,
		Categories: doc.Categories,
		Traces:     make(map[string][]core.TracePoint, len(doc.Categories)),
	}
	for _, cat := range doc.Categories {
		tr, err := model.Trace(cat, doc)
		if err != nil {
			return nil, nil, err
		}
		res.Traces[cat] = tr
	}
	return res, model, nil
}

func findDoc(docs []corpus.Document, pred func(*corpus.Document) bool) *corpus.Document {
	for i := range docs {
		if pred(&docs[i]) {
			return &docs[i]
		}
	}
	return nil
}

// FormatTrace renders a word-tracking trace as an ASCII chart: one line
// per word with the output register value and a bar, underlining (as the
// paper does with colour) the words whose classifier output is in-class.
func FormatTrace(title string, tr *TraceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\nDocument %s, labels %v\n", title, tr.DocID, tr.Categories)
	cats := make([]string, 0, len(tr.Traces))
	for cat := range tr.Traces {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		fmt.Fprintf(&b, "-- classifier %q --\n", cat)
		for i, p := range tr.Traces[cat] {
			bar := renderBar(p.Output)
			mark := " "
			if p.InClass {
				mark = "*"
			}
			fmt.Fprintf(&b, "%3d %-14s %+0.3f %s %s\n", i+1, p.Word, p.Output, mark, bar)
		}
	}
	return b.String()
}

// TraceChart converts a word-tracking trace into an SVG step chart:
// one series per category over the member-word axis, with each
// category's decision threshold drawn as a dashed reference line.
func TraceChart(title string, tr *TraceResult, model *core.Model) *plot.Chart {
	chart := &plot.Chart{
		Title:  title,
		XLabel: "member word",
		YLabel: "output register (squashed)",
		FixedY: true, YMin: -1, YMax: 1,
		Step: true,
	}
	cats := make([]string, 0, len(tr.Traces))
	for cat := range tr.Traces {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		points := tr.Traces[cat]
		s := plot.Series{Name: cat}
		for i, p := range points {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, p.Output)
		}
		chart.Series = append(chart.Series, s)
		if cm := model.CategoryModelFor(cat); cm != nil {
			chart.HLines = append(chart.HLines, cm.Threshold)
		}
	}
	return chart
}

// renderBar draws a 21-character bar for a value in [-1, 1].
func renderBar(v float64) string {
	const half = 10
	pos := int(v * half)
	cells := make([]byte, 2*half+1)
	for i := range cells {
		cells[i] = '.'
	}
	cells[half] = '|'
	switch {
	case pos > 0:
		for i := 1; i <= pos && i <= half; i++ {
			cells[half+i] = '#'
		}
	case pos < 0:
		for i := 1; i <= -pos && i <= half; i++ {
			cells[half-i] = '#'
		}
	}
	return string(cells)
}
