package postag

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTagWordLexicon(t *testing.T) {
	tg := New()
	cases := map[string]Tag{
		"the": DT, "of": IN, "wheat": NN, "tonnes": NNS, "will": MD,
		"said": VBD, "to": TO, "and": CC, "it": PRP, "new": JJ,
	}
	for w, want := range cases {
		if got := tg.TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagWordCaseInsensitive(t *testing.T) {
	tg := New()
	if got := tg.TagWord("Wheat"); got != NN {
		t.Errorf("TagWord(Wheat) = %v, want NN", got)
	}
}

func TestSuffixRules(t *testing.T) {
	tg := New()
	cases := map[string]Tag{
		"quickly":         RB,
		"restructuring":   VBG,
		"dangerous":       JJ,
		"profitable":      JJ,
		"nationalization": NN,
		"cargoes":         NNS,
		"business":        NN, // -ss is not a plural
		"privatized":      VBD,
		"modernize":       VB,
		"widgets":         NNS,
		"blorf":           NN, // unknown defaults to NN
	}
	for w, want := range cases {
		if got := tg.TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestAddLexiconOverrides(t *testing.T) {
	tg := New()
	tg.AddLexicon(map[string]Tag{"Blorf": VB})
	if got := tg.TagWord("blorf"); got != VB {
		t.Errorf("override not applied: %v", got)
	}
}

func TestContextRuleInfinitive(t *testing.T) {
	tg := New()
	tags := tg.Tag([]string{"to", "profit"})
	if tags[1] != VB {
		t.Errorf("NN after TO = %v, want VB", tags[1])
	}
}

func TestContextRuleModal(t *testing.T) {
	tg := New()
	tags := tg.Tag([]string{"will", "profit"})
	if tags[1] != VB {
		t.Errorf("NN after MD = %v, want VB", tags[1])
	}
}

func TestContextRuleParticipleModifier(t *testing.T) {
	tg := New()
	tags := tg.Tag([]string{"increased", "profits"})
	if tags[0] != JJ {
		t.Errorf("participle before noun = %v, want JJ", tags[0])
	}
	if tags[1] != NNS {
		t.Errorf("profits = %v, want NNS", tags[1])
	}
}

func TestContextRuleDeterminerNoun(t *testing.T) {
	tg := New()
	tags := tg.Tag([]string{"the", "report"})
	if tags[1] != NN {
		t.Errorf("VB after DT = %v, want NN", tags[1])
	}
}

func TestNounsExtraction(t *testing.T) {
	tg := New()
	words := []string{"the", "company", "reported", "record", "profits", "in", "wheat", "exports"}
	got := tg.Nouns(words)
	want := []string{"company", "record", "profits", "wheat", "exports"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Nouns = %v, want %v", got, want)
	}
}

func TestNounsKeepsDuplicates(t *testing.T) {
	tg := New()
	got := tg.Nouns([]string{"wheat", "prices", "wheat"})
	if len(got) != 3 {
		t.Errorf("Nouns dropped duplicates: %v", got)
	}
}

func TestIsNoun(t *testing.T) {
	if !IsNoun(NN) || !IsNoun(NNS) {
		t.Error("NN/NNS not recognised as nouns")
	}
	for _, tag := range []Tag{VB, JJ, RB, DT, IN} {
		if IsNoun(tag) {
			t.Errorf("IsNoun(%v) = true", tag)
		}
	}
}

func TestTagLengthMatches(t *testing.T) {
	tg := New()
	f := func(words []string) bool {
		return len(tg.Tag(words)) == len(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTagEmpty(t *testing.T) {
	tg := New()
	if tags := tg.Tag(nil); len(tags) != 0 {
		t.Errorf("Tag(nil) = %v", tags)
	}
	if nouns := tg.Nouns(nil); nouns != nil {
		t.Errorf("Nouns(nil) = %v", nouns)
	}
}
