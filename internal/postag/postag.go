// Package postag implements a Brill-style rule-based part-of-speech
// tagger: a seed lexicon assigns the most likely tag to known words,
// suffix rules guess tags for unknown words, and a small set of
// contextual transformation rules patch the initial assignment — the
// architecture of Brill (1992), which the paper uses to identify common
// nouns (NN) and their plurals (NNS) for the Frequent Nouns feature
// selection.
package postag

import "strings"

// Tag is a part-of-speech tag using the Penn Treebank names the paper
// refers to ("Common nouns and their plurals are marked as 'NNS' and
// 'NN'").
type Tag string

// The tag inventory. Only the subset needed for noun identification and
// the contextual rules is modelled.
const (
	NN  Tag = "NN"  // common noun, singular
	NNS Tag = "NNS" // common noun, plural
	VB  Tag = "VB"  // verb, base form
	VBD Tag = "VBD" // verb, past tense
	VBG Tag = "VBG" // verb, gerund
	VBZ Tag = "VBZ" // verb, 3rd person singular present
	JJ  Tag = "JJ"  // adjective
	RB  Tag = "RB"  // adverb
	IN  Tag = "IN"  // preposition / subordinating conjunction
	DT  Tag = "DT"  // determiner
	PRP Tag = "PRP" // personal pronoun
	CC  Tag = "CC"  // coordinating conjunction
	MD  Tag = "MD"  // modal
	TO  Tag = "TO"  // "to"
	CD  Tag = "CD"  // cardinal number (spelled out)
)

// IsNoun reports whether t marks a common noun (NN or NNS).
func IsNoun(t Tag) bool { return t == NN || t == NNS }

// Tagger assigns part-of-speech tags to token sequences.
type Tagger struct {
	lexicon map[string]Tag
}

// New returns a tagger with the embedded default lexicon.
func New() *Tagger {
	t := &Tagger{lexicon: make(map[string]Tag, len(defaultLexicon))}
	for w, tag := range defaultLexicon {
		t.lexicon[w] = tag
	}
	return t
}

// AddLexicon adds or overrides lexicon entries (word -> most likely tag).
// Words are lower-cased.
func (t *Tagger) AddLexicon(entries map[string]Tag) {
	for w, tag := range entries {
		t.lexicon[strings.ToLower(w)] = tag
	}
}

// TagWord returns the context-free tag for a single word: lexicon lookup
// first, then suffix rules, defaulting to NN (the most frequent open
// class, as in Brill's tagger).
func (t *Tagger) TagWord(word string) Tag {
	w := strings.ToLower(word)
	if tag, ok := t.lexicon[w]; ok {
		return tag
	}
	return suffixTag(w)
}

// Tag tags an ordered token sequence: context-free assignment followed by
// contextual transformation rules.
func (t *Tagger) Tag(words []string) []Tag {
	tags := make([]Tag, len(words))
	for i, w := range words {
		tags[i] = t.TagWord(w)
	}
	applyContextRules(words, tags)
	return tags
}

// Nouns returns the subsequence of words tagged NN or NNS, preserving
// order and duplicates (frequency matters downstream).
func (t *Tagger) Nouns(words []string) []string {
	tags := t.Tag(words)
	var out []string
	for i, tag := range tags {
		if IsNoun(tag) {
			out = append(out, words[i])
		}
	}
	return out
}

// suffixTag guesses a tag for an out-of-lexicon word from its suffix,
// mirroring Brill's lexical rules for unknown words.
func suffixTag(w string) Tag {
	switch {
	case len(w) > 4 && strings.HasSuffix(w, "ly"):
		return RB
	case len(w) > 5 && strings.HasSuffix(w, "ing"):
		return VBG
	case len(w) > 4 && (strings.HasSuffix(w, "ous") || strings.HasSuffix(w, "ful") ||
		strings.HasSuffix(w, "ive") || strings.HasSuffix(w, "able") ||
		strings.HasSuffix(w, "ible") || strings.HasSuffix(w, "ical") ||
		strings.HasSuffix(w, "less")):
		return JJ
	case len(w) > 6 && strings.HasSuffix(w, "tions"),
		len(w) > 6 && strings.HasSuffix(w, "ments"),
		len(w) > 6 && strings.HasSuffix(w, "ities"),
		len(w) > 5 && strings.HasSuffix(w, "ers"),
		len(w) > 5 && strings.HasSuffix(w, "ists"):
		return NNS
	case len(w) > 5 && (strings.HasSuffix(w, "tion") || strings.HasSuffix(w, "ment") ||
		strings.HasSuffix(w, "ness") || strings.HasSuffix(w, "ship") ||
		strings.HasSuffix(w, "ance") || strings.HasSuffix(w, "ence")),
		len(w) > 4 && (strings.HasSuffix(w, "ity") || strings.HasSuffix(w, "ism") ||
			strings.HasSuffix(w, "ist") || strings.HasSuffix(w, "age")),
		len(w) > 3 && strings.HasSuffix(w, "er"):
		return NN
	case len(w) > 4 && strings.HasSuffix(w, "ed"):
		return VBD
	case len(w) > 4 && strings.HasSuffix(w, "ize"), len(w) > 4 && strings.HasSuffix(w, "ise"):
		return VB
	case len(w) > 3 && strings.HasSuffix(w, "ss"):
		return NN // "loss", "business" — not a plural
	case len(w) > 2 && strings.HasSuffix(w, "s"):
		return NNS
	default:
		return NN
	}
}

// applyContextRules patches initial tags with Brill-style contextual
// transformations. Rules run in order over the whole sequence.
func applyContextRules(words []string, tags []Tag) {
	for i := range tags {
		prev := Tag("")
		if i > 0 {
			prev = tags[i-1]
		}
		switch {
		// Rule 1: NN -> VB after "to" (infinitive).
		case tags[i] == NN && prev == TO:
			tags[i] = VB
		// Rule 2: NN -> VB after a modal ("will report").
		case tags[i] == NN && prev == MD:
			tags[i] = VB
		// Rule 3: VBD/VBG -> JJ before a noun ("increased profits",
		// "operating income"): participle acting as a modifier.
		case (tags[i] == VBD || tags[i] == VBG) && i+1 < len(tags) && IsNoun(tags[i+1]):
			tags[i] = JJ
		// Rule 4: NNS -> VBZ after a pronoun or noun when the next word
		// is a determiner ("it reports the..."). Conservative version of
		// Brill's NN->VB PREVTAG PRP.
		case tags[i] == NNS && prev == PRP:
			tags[i] = VBZ
		// Rule 5: VB -> NN after a determiner ("the report").
		case (tags[i] == VB || tags[i] == VBZ) && prev == DT:
			tags[i] = NN
		}
	}
	_ = words
}
