package postag

// defaultLexicon seeds the tagger with the most likely tag for common
// English closed-class words, frequent verbs/adjectives, and the
// financial-news vocabulary dominating Reuters-style corpora. Out-of-
// lexicon words fall to the suffix rules.
var defaultLexicon = map[string]Tag{
	// Closed classes.
	"the": DT, "a": DT, "an": DT, "this": DT, "that": DT, "these": DT,
	"those": DT, "some": DT, "any": DT, "each": DT, "no": DT,
	"of": IN, "in": IN, "on": IN, "at": IN, "by": IN, "for": IN,
	"with": IN, "from": IN, "into": IN, "over": IN, "under": IN,
	"after": IN, "before": IN, "against": IN, "during": IN, "between": IN,
	"about": IN, "through": IN, "per": IN,
	"and": CC, "or": CC, "but": CC, "nor": CC,
	"to": TO,
	"it": PRP, "he": PRP, "she": PRP, "they": PRP, "we": PRP, "i": PRP,
	"you": PRP, "them": PRP, "him": PRP, "her": PRP, "us": PRP,
	"will": MD, "would": MD, "can": MD, "could": MD, "may": MD,
	"might": MD, "shall": MD, "should": MD, "must": MD,
	"one": CD, "two": CD, "three": CD, "four": CD, "five": CD,
	"six": CD, "seven": CD, "eight": CD, "nine": CD, "ten": CD,
	"billion": CD, "million": CD, "thousand": CD, "hundred": CD,

	// Frequent verbs (base and inflected forms that the suffix rules
	// would misread).
	"is": VBZ, "are": VB, "was": VBD, "were": VBD, "be": VB, "been": VBD,
	"has": VBZ, "have": VB, "had": VBD, "do": VB, "does": VBZ, "did": VBD,
	"say": VB, "says": VBZ, "said": VBD, "see": VB, "saw": VBD,
	"make": VB, "makes": VBZ, "made": VBD, "take": VB, "took": VBD,
	"give": VB, "gave": VBD, "get": VB, "got": VBD, "go": VB, "went": VBD,
	"come": VB, "came": VBD, "know": VB, "knew": VBD, "think": VB,
	"thought": VBD, "rose": VBD, "fell": VBD, "grew": VBD, "held": VBD,
	"sold": VBD, "bought": VBD, "told": VBD, "met": VBD, "set": VB,
	"cut": VB, "put": VB, "let": VB, "kept": VBD, "paid": VBD,
	"expect": VB, "expects": VBZ, "announce": VB, "announces": VBZ,
	"report": VB, "reports": VBZ, "agree": VB, "agrees": VBZ,
	"buy": VB, "sell": VB, "rise": VB, "fall": VB, "raise": VB,
	"lower": VB, "acquire": VB, "acquires": VBZ, "merge": VB,
	"complete": VB, "completes": VBZ, "approve": VB, "approves": VBZ,
	"remain": VB, "remains": VBZ, "include": VB, "includes": VBZ,

	// Frequent adjectives/adverbs misread by suffix rules.
	"new": JJ, "net": JJ, "gross": JJ, "high": JJ, "low": JJ, "higher": JJ,
	"lower_adj": JJ, "strong": JJ, "weak": JJ, "good": JJ, "bad": JJ,
	"large": JJ, "small": JJ, "major": JJ, "prior": JJ, "annual": JJ,
	"fiscal": JJ, "foreign": JJ, "domestic": JJ, "total": JJ, "due": JJ,
	"current": JJ, "previous": JJ, "average": JJ, "common": JJ,
	"preferred": JJ, "outstanding": JJ, "early": RB, "late": RB,
	"very": RB, "also": RB, "still": RB, "soon": RB, "again": RB,
	"not": RB, "up": RB, "down": RB, "about_rb": RB,

	// Core financial-news nouns (singular forms whose shape could
	// mislead the suffix rules: "share" ends like a VB -e form etc.).
	"share": NN, "shares": NNS, "stock": NN, "stocks": NNS,
	"profit": NN, "profits": NNS, "loss": NN, "losses": NNS,
	"price": NN, "prices": NNS, "rate": NN, "rates": NNS,
	"sale": NN, "sales": NNS, "trade": NN, "trades": NNS,
	"tonne": NN, "tonnes": NNS, "bushel": NN, "bushels": NNS,
	"barrel": NN, "barrels": NNS, "crop": NN, "crops": NNS,
	"wheat": NN, "corn": NN, "grain": NN, "maize": NN, "oil": NN,
	"crude": NN, "gas": NN, "ship": NN, "ships": NNS, "port": NN,
	"ports": NNS, "vessel": NN, "vessels": NNS, "cargo": NN,
	"bank": NN, "banks": NNS, "money": NN, "currency": NN, "dollar": NN,
	"dollars": NNS, "dlrs": NNS, "mln": NN, "blns": NNS, "bln": NN,
	"cts": NNS, "pct": NN, "interest": NN, "deficit": NN, "surplus": NN,
	"export": NN, "exports": NNS, "import": NN, "imports": NNS,
	"market": NN, "markets": NNS, "company": NN, "companies": NNS,
	"group": NN, "unit": NN, "units": NNS, "quarter": NN, "year": NN,
	"years": NNS, "month": NN, "months": NNS, "week": NN, "weeks": NNS,
	"dividend": NN, "dividends": NNS, "earnings": NNS, "revenue": NN,
	"revenues": NNS, "income": NN, "tax": NN, "taxes": NNS,
	"debt": NN, "bond": NN, "bonds": NNS, "fund": NN, "funds": NNS,
	"offer": NN, "bid": NN, "merger": NN, "acquisition": NN,
	"takeover": NN, "deal": NN, "stake": NN, "tender": NN,
	"government": NN, "ministry": NN, "minister": NN, "official": NN,
	"officials": NNS, "agreement": NN, "talks": NNS, "pact": NN,
	"tariff": NN, "tariffs": NNS, "quota": NN, "quotas": NNS,
	"supply": NN, "demand": NN, "output": NN, "production": NN,
	"harvest": NN, "season": NN, "weather": NN, "drought": NN,
	"opec": NN, "oecd": NN, "gatt": NN, "fed": NN, "treasury": NN,
}
