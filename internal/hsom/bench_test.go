package hsom

import (
	"fmt"
	"math/rand"
	"testing"

	"temporaldoc/internal/corpus"
)

// benchEncoder trains a paper-geometry encoder (7×13 char map, 8×8 word
// maps) over a synthetic vocabulary so benchmark inputs look like the
// real workload rather than the tiny test fixture.
func benchEncoder(b *testing.B) (*Encoder, []string) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	vocab := make([]string, 400)
	for i := range vocab {
		n := 3 + rng.Intn(9)
		w := make([]byte, n)
		for j := range w {
			w[j] = byte('a' + rng.Intn(26))
		}
		vocab[i] = string(w)
	}
	docs := benchDocs(rng, vocab)
	cfg := DefaultConfig()
	cfg.CharEpochs, cfg.WordEpochs = 2, 3 // enough to spread the maps
	enc, err := Train(cfg, docs)
	if err != nil {
		b.Fatal(err)
	}
	return enc, vocab
}

// BenchmarkWordVectorCold measures the cold-word path — the PR-6
// headline number. "table" reads the precomputed fanout; "legacy" is
// the pre-table live NearestK per character (the fallback path, still
// the same code the table was built from).
func BenchmarkWordVectorCold(b *testing.B) {
	enc, vocab := benchEncoder(b)
	fan := enc.fan
	for _, bc := range []struct {
		name string
		fan  *fanoutTable
	}{{"table", fan}, {"legacy", nil}} {
		b.Run(bc.name, func(b *testing.B) {
			enc.fan = bc.fan
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%len(vocab) == 0 {
					b.StopTimer()
					enc.ClearWordCache()
					b.StartTimer()
				}
				enc.WordVector(vocab[i%len(vocab)])
			}
		})
	}
	enc.fan = fan
}

// BenchmarkEncodeDocument measures steady-state full-document encoding
// (warm word cache) under each level-2 kernel.
func BenchmarkEncodeDocument(b *testing.B) {
	enc, vocab := benchEncoder(b)
	rng := rand.New(rand.NewSource(9))
	doc := make([]string, 200)
	for i := range doc {
		doc[i] = vocab[rng.Intn(len(vocab))]
	}
	cat := enc.Categories()[0]
	for _, k := range []Kernel{KernelLegacy, KernelFloat64, KernelFloat32} {
		b.Run(fmt.Sprintf("kernel=%s", k), func(b *testing.B) {
			if err := enc.SetKernel(k); err != nil {
				b.Fatal(err)
			}
			if _, err := enc.Encode(cat, doc); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(cat, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchDocs(rng *rand.Rand, vocab []string) map[string][]corpus.Document {
	out := make(map[string][]corpus.Document)
	for _, cat := range []string{"earn", "grain"} {
		docs := make([]corpus.Document, 4)
		for d := range docs {
			words := make([]string, 60)
			for i := range words {
				words[i] = vocab[rng.Intn(len(vocab))]
			}
			docs[d] = corpus.Document{
				ID:         fmt.Sprintf("%s-%d", cat, d),
				Words:      words,
				Categories: []string{cat},
			}
		}
		out[cat] = docs
	}
	return out
}
