package hsom

import (
	"math"
	"reflect"
	"testing"
)

func TestParseKernel(t *testing.T) {
	for name, want := range map[string]Kernel{
		"":        KernelFloat64,
		"float64": KernelFloat64,
		"float32": KernelFloat32,
		"legacy":  KernelLegacy,
	} {
		got, err := ParseKernel(name)
		if err != nil || got != want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseKernel("float16"); err == nil {
		t.Error("ParseKernel accepted an unknown kernel")
	}
	if err := trainedEncoder(t).SetKernel("float16"); err == nil {
		t.Error("SetKernel accepted an unknown kernel")
	}
}

// encodeAll encodes every train-doc word against every category under
// the encoder's current kernel.
func encodeAll(t *testing.T, enc *Encoder) map[string][]WordCode {
	t.Helper()
	words := []string{
		"profit", "dividend", "quarter", "shares", "wheat", "tonnes",
		"harvest", "crop", "unseen", "zzzz",
	}
	out := make(map[string][]WordCode)
	for _, cat := range enc.Categories() {
		codes, err := enc.Encode(cat, words)
		if err != nil {
			t.Fatalf("Encode %s: %v", cat, err)
		}
		out[cat] = codes
	}
	return out
}

// TestEncodeKernelParity is the hsom-level byte-identity wall: the
// default table+sparse kernel must produce exactly the word codes the
// legacy dense path does — units, memberships, member flags, all bits.
func TestEncodeKernelParity(t *testing.T) {
	enc := trainedEncoder(t)
	if enc.Kernel() != KernelFloat64 {
		t.Fatalf("default kernel = %v", enc.Kernel())
	}
	fast := encodeAll(t, enc)
	if err := enc.SetKernel(KernelLegacy); err != nil {
		t.Fatal(err)
	}
	enc.ClearWordCache() // force the legacy pass to also recompute vectors
	legacy := encodeAll(t, enc)
	if !reflect.DeepEqual(fast, legacy) {
		t.Fatalf("sparse and legacy kernels disagree:\nsparse: %+v\nlegacy: %+v", fast, legacy)
	}
}

// TestEvalSparseMatchesEval checks the sparse Gaussian evaluation is
// bit-identical to the dense one on real cached word entries.
func TestEvalSparseMatchesEval(t *testing.T) {
	enc := trainedEncoder(t)
	for _, cat := range enc.Categories() {
		ce := enc.Category(cat)
		for _, g := range ce.gauss {
			for _, w := range []string{"profit", "wheat", "unseen", "1234"} {
				en := enc.lookupWord(w)
				want := g.Eval(en.dense)
				got := g.EvalSparse(en.idx, en.val)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s %q: EvalSparse %x, Eval %x", cat, w,
						math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestFloat32KernelEncode checks the opt-in float32 kernel encodes
// deterministically, only ever differs from float64 in BMU choice (the
// membership maths stays float64), and builds its weight views lazily
// but exactly once.
func TestFloat32KernelEncode(t *testing.T) {
	enc := trainedEncoder(t)
	base := encodeAll(t, enc)
	if err := enc.SetKernel(KernelFloat32); err != nil {
		t.Fatal(err)
	}
	if enc.Kernel() != KernelFloat32 {
		t.Fatalf("kernel = %v after SetKernel(float32)", enc.Kernel())
	}
	for _, cat := range enc.Categories() {
		if enc.Category(cat).k32 == nil {
			t.Fatalf("category %s has no float32 view", cat)
		}
	}
	a := encodeAll(t, enc)
	b := encodeAll(t, enc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("float32 kernel is nondeterministic")
	}
	for cat, codes := range a {
		for i, c := range codes {
			if c.Unit == base[cat][i].Unit {
				// Same BMU ⇒ the whole code must match float64 bit-for-bit:
				// membership is evaluated by the same float64 kernel.
				if !reflect.DeepEqual(c, base[cat][i]) {
					t.Fatalf("%s %q: same BMU but different code: %+v vs %+v",
						cat, c.Word, c, base[cat][i])
				}
			}
		}
	}
	// Switching back restores the default path.
	if err := enc.SetKernel(""); err != nil {
		t.Fatal(err)
	}
	if got := encodeAll(t, enc); !reflect.DeepEqual(got, base) {
		t.Fatal("switching back to float64 did not restore baseline output")
	}
}

// TestEncodeKernelsZeroAlloc is the //tdlint:hotpath no-alloc contract
// of the steady-state encode path: warm cache lookup, sparse BMU sweep
// (both precisions) and sparse membership must not allocate.
func TestEncodeKernelsZeroAlloc(t *testing.T) {
	enc := trainedEncoder(t)
	if err := enc.SetKernel(KernelFloat32); err != nil {
		t.Fatal(err)
	}
	if err := enc.SetKernel(KernelFloat64); err != nil {
		t.Fatal(err)
	}
	cat := enc.Categories()[0]
	ce := enc.Category(cat)
	var g *Gaussian
	for _, cand := range ce.gauss {
		g = cand
		break
	}
	if g == nil {
		t.Fatal("no gaussian on first category")
	}
	en := enc.lookupWord("profit") // warm the cache
	sink := 0
	var fsink float64
	if n := testing.AllocsPerRun(100, func() {
		en = enc.lookupWord("profit")
	}); n != 0 {
		t.Errorf("warm lookupWord allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sink += enc.bmuFor(ce, en)
	}); n != 0 {
		t.Errorf("bmuFor(float64) allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		fsink += enc.membershipFor(g, en)
	}); n != 0 {
		t.Errorf("membershipFor allocates %v per op", n)
	}
	enc.kernel = KernelFloat32
	if n := testing.AllocsPerRun(100, func() {
		sink += enc.bmuFor(ce, en)
	}); n != 0 {
		t.Errorf("bmuFor(float32) allocates %v per op", n)
	}
	if sink < 0 || fsink < 0 {
		t.Fatal("impossible")
	}
}
