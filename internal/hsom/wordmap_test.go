package hsom

import (
	"strings"
	"testing"
)

func TestWordMapProjection(t *testing.T) {
	enc := trainedEncoder(t)
	words := []string{"profit", "profits", "dividend", "profit"}
	wm, err := enc.WordMap("earn", words)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[string]bool{}
	for u, ws := range wm {
		if u < 0 || u >= enc.Category("earn").Map.Units() {
			t.Errorf("unit %d out of range", u)
		}
		for i := 1; i < len(ws); i++ {
			if ws[i-1] >= ws[i] {
				t.Errorf("unit %d words unsorted: %v", u, ws)
			}
		}
		for _, w := range ws {
			if seen[w] {
				t.Errorf("word %q on multiple units", w)
			}
			seen[w] = true
			total++
		}
	}
	// Duplicates collapse: 3 distinct words.
	if total != 3 {
		t.Errorf("projected %d words, want 3", total)
	}
}

func TestWordMapUnknownCategory(t *testing.T) {
	enc := trainedEncoder(t)
	if _, err := enc.WordMap("bogus", []string{"x"}); err == nil {
		t.Error("unknown category accepted")
	}
	if _, err := enc.RenderWordGrid("bogus", []string{"x"}, 0); err == nil {
		t.Error("unknown category accepted by renderer")
	}
}

func TestRenderWordGrid(t *testing.T) {
	enc := trainedEncoder(t)
	out, err := enc.RenderWordGrid("earn", []string{"profit", "dividend", "quarter"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unit") || !strings.Contains(out, "profit") {
		t.Errorf("render incomplete:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, line := range lines {
		// maxWords 2: at most "unit NN (x,y):" + 2 words.
		if got := len(strings.Fields(line)); got > 5 {
			t.Errorf("line exceeds word cap: %q", line)
		}
	}
}

func TestWordMapSimilarWordsShareOrNeighbour(t *testing.T) {
	enc := trainedEncoder(t)
	wm, err := enc.WordMap("earn", []string{"profit", "profits"})
	if err != nil {
		t.Fatal(err)
	}
	// Find the two units.
	units := make([]int, 0, 2)
	for u, ws := range wm {
		for range ws {
			units = append(units, u)
		}
	}
	if len(units) != 2 {
		t.Fatalf("units = %v", units)
	}
	ce := enc.Category("earn")
	x1, y1 := ce.Map.Coords(units[0])
	x2, y2 := ce.Map.Coords(units[1])
	dx, dy := x1-x2, y1-y2
	if dx*dx+dy*dy > 8 {
		t.Errorf("morphologically similar words far apart: (%d,%d) vs (%d,%d)", x1, y1, x2, y2)
	}
}
