package hsom

import (
	"fmt"
	"math"
)

// Kernel selects the level-2 (word-map) distance kernel the encoder
// classifies with. It is a runtime knob, never persisted: snapshots
// always store float64 weights, and every kernel is derived from them
// after load.
type Kernel string

const (
	// KernelFloat64 is the default: the table-driven fanout plus the
	// sparse float64 BMU sweep, proven bit-identical to the legacy
	// dense search (the empty string also selects it).
	KernelFloat64 Kernel = "float64"
	// KernelFloat32 runs the level-2 BMU distance sweep in float32 over
	// a derived weight view. Opt-in only: deterministic, but not
	// bit-identical to float64 — ambiguous ties can resolve differently,
	// so it is gated by the macro-F1 bound in TestFloat32KernelAccuracy
	// and must never become the default. Gaussian membership stays in
	// float64 either way.
	KernelFloat32 Kernel = "float32"
	// KernelLegacy is the pre-table dense reference path (live NearestK
	// per character, dense BMU sweep, dense Gaussian evaluation). It is
	// what the byte-identity walls compare the fast kernels against.
	KernelLegacy Kernel = "legacy"
)

// ParseKernel resolves a user-supplied kernel name ("" selects the
// default).
func ParseKernel(name string) (Kernel, error) {
	switch Kernel(name) {
	case "", KernelFloat64:
		return KernelFloat64, nil
	case KernelFloat32:
		return KernelFloat32, nil
	case KernelLegacy:
		return KernelLegacy, nil
	default:
		return "", fmt.Errorf("hsom: unknown kernel %q (float64, float32, legacy)", name)
	}
}

// SetKernel selects the level-2 distance kernel. Selecting
// KernelFloat32 derives (and caches) the float32 weight views; they are
// never persisted. Not safe to call concurrently with encoding —
// services set the kernel once per loaded model, before serving it.
func (e *Encoder) SetKernel(k Kernel) error {
	switch k {
	case "", KernelFloat64:
		k = KernelFloat64
	case KernelLegacy:
	case KernelFloat32:
		for _, cat := range e.Categories() {
			ce := e.categories[cat]
			if ce.k32 == nil {
				ce.k32 = ce.Map.F32Kernel()
			}
		}
	default:
		return fmt.Errorf("hsom: unknown kernel %q (float64, float32, legacy)", k)
	}
	e.kernel = k
	return nil
}

// Kernel returns the active level-2 kernel.
func (e *Encoder) Kernel() Kernel {
	if e.kernel == "" {
		return KernelFloat64
	}
	return e.kernel
}

// value finishes a Gaussian evaluation from the squared distance d2 —
// shared by the dense and sparse kernels so their tails are the same
// instructions.
//
//tdlint:hotpath
func (g *Gaussian) value(d2 float64) float64 {
	sigma2 := g.Variance
	if sigma2 < 1e-12 {
		// Degenerate BMU: all training words identical. Exact matches
		// get the max value, everything else decays sharply.
		sigma2 = 1e-12
	}
	return 1 / math.Sqrt(2*math.Pi*sigma2) * math.Exp(-d2/(2*sigma2))
}

// EvalSparse returns exactly Eval of the sparse vector's dense
// expansion. A Gaussian's zero terms contribute (0 − Mean[i])² =
// Mean[i]² — NOT 0.0 — so unlike the dot-product kernels they cannot
// be skipped without changing bits. Instead the kernel walks the full
// mean with a cursor into the sorted sparse indices, performing the
// dense loop's operations in the dense loop's exact order; sparsity
// here buys freedom from the dense buffer, not fewer flops (the dense
// 91-dim walk is one unit's worth of work and never dominates — the
// BMU sweep over all 64 units is where the sparse dot pays off).
//
//tdlint:hotpath
func (g *Gaussian) EvalSparse(idx []int32, val []float64) float64 {
	var d2 float64
	j := 0
	for i := range g.Mean {
		var xi float64
		if j < len(idx) && int(idx[j]) == i {
			xi = val[j]
			j++
		}
		diff := xi - g.Mean[i]
		d2 += diff * diff
	}
	return g.value(d2)
}

// bmuFor runs the active kernel's level-2 BMU search for one cached
// word entry on one category map.
//
//tdlint:hotpath
func (e *Encoder) bmuFor(ce *CategoryEncoder, en *wordEntry) int {
	switch e.kernel {
	case KernelFloat32:
		return ce.k32.BMUSparse(en.idx, en.val32)
	case KernelLegacy:
		return ce.Map.BMU(en.dense)
	default:
		return ce.Map.BMUSparse(en.idx, en.val)
	}
}

// membershipFor evaluates the BMU's Gaussian for one cached word entry
// under the active kernel. Membership always runs in float64 — the
// float32 opt-in covers only the distance sweep.
//
//tdlint:hotpath
func (e *Encoder) membershipFor(g *Gaussian, en *wordEntry) float64 {
	if e.kernel == KernelLegacy {
		return g.Eval(en.dense)
	}
	return g.EvalSparse(en.idx, en.val)
}
