// Package hsom implements the paper's hierarchical SOM encoding
// architecture (sections 5 and 6):
//
//   - a first-level 7×13 SOM trained on (character, position) pairs of
//     every character occurrence in the training corpus — a character
//     code-book;
//   - one second-level 8×8 SOM per category, trained on 91-dimensional
//     word vectors built from the three most affected first-level BMUs of
//     each character (contributions 1, 1/2 and 1/3) — a word code-book
//     per category;
//   - per-category selection of the most informative BMUs from the hit
//     histogram (the minimal top-hit set such that every training
//     document of the category still hits at least one selected unit);
//   - a Gaussian membership function per selected BMU, used both to
//     decide whether a word is a member word of the category and as the
//     second dimension of the word representation fed to the classifier.
//
// The encoder turns a document into an ordered sequence of 2-dimensional
// word codes (normalised BMU index, Gaussian membership) — the temporal
// representation the RLGP classifier consumes.
package hsom

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/som"
	"temporaldoc/internal/telemetry"
)

// Config parameterises the two SOM levels. DefaultConfig reproduces the
// paper's geometry.
type Config struct {
	// CharWidth, CharHeight give the first-level map size (paper: 7×13).
	CharWidth, CharHeight int
	// WordWidth, WordHeight give the second-level map size (paper: 8×8).
	WordWidth, WordHeight int
	// CharEpochs and WordEpochs are training passes for each level.
	CharEpochs, WordEpochs int
	// BMUFanout is how many first-level BMUs represent each character
	// (paper: 3, with contributions 1, 1/2, 1/3).
	BMUFanout int
	// Workers bounds concurrent BMU searches during category training
	// and encoding. Zero means runtime.GOMAXPROCS(0); results are
	// identical for any worker count. It is a runtime knob, not a
	// model parameter, so it is excluded from persisted snapshots.
	Workers int `json:"-"`
	// Metrics, when non-nil, receives encoder telemetry: per-level SOM
	// epoch gauges, BMU-batch search timings and word-vector cache
	// hit/miss counters. Diagnostics only — never persisted, never read
	// back, so trained encoders are bit-identical with it on or off.
	Metrics *telemetry.Registry `json:"-"`
	// Epoch, when non-nil, is called after every SOM training epoch of
	// either level with the level ("char" or "word"), the category (""
	// for the character map) and the epoch statistics. Calls arrive from
	// the training goroutine; diagnostics only. Excluded from snapshots.
	Epoch func(level, category string, s som.EpochStats) `json:"-"`
	// Seed drives weight initialisation at both levels.
	Seed int64
}

// DefaultConfig returns the paper's architecture: 7×13 character map,
// 8×8 word maps, 3-BMU fan-out.
func DefaultConfig() Config {
	return Config{
		CharWidth: 7, CharHeight: 13,
		WordWidth: 8, WordHeight: 8,
		CharEpochs: 5, WordEpochs: 10,
		BMUFanout: 3,
		Seed:      1,
	}
}

func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.CharWidth <= 0 {
		c.CharWidth = d.CharWidth
	}
	if c.CharHeight <= 0 {
		c.CharHeight = d.CharHeight
	}
	if c.WordWidth <= 0 {
		c.WordWidth = d.WordWidth
	}
	if c.WordHeight <= 0 {
		c.WordHeight = d.WordHeight
	}
	if c.CharEpochs <= 0 {
		c.CharEpochs = d.CharEpochs
	}
	if c.WordEpochs <= 0 {
		c.WordEpochs = d.WordEpochs
	}
	if c.BMUFanout <= 0 {
		c.BMUFanout = d.BMUFanout
	}
}

// CharInputs enumerates the 2-dimensional character inputs of a word:
// the first dimension is the letter code (a=1 … z=26), the second is
// 2·index−1 for the 1-based character index, spreading both dimensions
// over a similar range so neither biases SOM training (section 5).
// Non-letter bytes are skipped (pre-processing removes them anyway).
func CharInputs(word string) [][]float64 {
	out := make([][]float64, 0, len(word))
	pos := 0
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c = c - 'A' + 'a'
		}
		if c < 'a' || c > 'z' {
			continue
		}
		pos++
		out = append(out, []float64{float64(c-'a') + 1, float64(2*pos - 1)})
	}
	return out
}

// WordCode is the classifier-facing representation of one word occurrence
// (section 6.2): the normalised index of the word's BMU on the category
// SOM and its Gaussian membership value. Member reports whether the word
// passed both the BMU-selection and membership filters; non-member words
// carry zero NormIndex/Membership and are skipped by the classifier.
type WordCode struct {
	Word       string
	Unit       int     // BMU index on the category word SOM
	NormIndex  float64 // Unit normalised to [0,1]
	Membership float64 // Gaussian membership, normalised to (0,1] per BMU
	Member     bool
}

// Gaussian is a per-BMU membership function: the mean vector and scalar
// variance of all training word vectors that selected the BMU
// (Figure 4). Values are evaluated as
//
//	G(x) = 1/(σ√2π) · exp(−‖x−M‖² / 2σ²)
type Gaussian struct {
	Mean     []float64
	Variance float64
	// MaxValue is the largest raw G over the BMU's training words; raw
	// values are divided by it so memberships lie in (0,1] regardless of
	// how small σ is (a numerical-stability normalisation; the paper
	// uses the raw value).
	MaxValue float64
	// MinValue is the smallest raw G over the BMU's training words —
	// the paper's membership threshold.
	MinValue float64
}

// Eval returns the raw Gaussian value at x. EvalSparse is the
// bit-identical sparse-input form.
//
//tdlint:hotpath
func (g *Gaussian) Eval(x []float64) float64 {
	var d2 float64
	for i := range g.Mean {
		diff := x[i] - g.Mean[i]
		d2 += diff * diff
	}
	return g.value(d2)
}

// CategoryEncoder is the trained second-level machinery of one category:
// its word SOM, the selected informative BMUs, and a Gaussian membership
// function per selected BMU.
type CategoryEncoder struct {
	Category string
	Map      *som.Map
	selected []int
	gauss    map[int]*Gaussian
	hits     []int // training hit histogram over all units
	// k32 is the derived float32 weight view backing KernelFloat32.
	// Built by SetKernel, never persisted.
	k32 *som.F32Kernel
}

// SelectedBMUs returns the selected (informative) unit indices in
// decreasing training-hit order.
func (ce *CategoryEncoder) SelectedBMUs() []int {
	return append([]int(nil), ce.selected...)
}

// Hits returns the training hit histogram over all units of the map.
func (ce *CategoryEncoder) Hits() []int { return append([]int(nil), ce.hits...) }

// somObserver builds the per-epoch observer for one SOM level,
// forwarding to Config.Epoch and recording registry metrics. Returns
// nil — leaving the SOM's fast uninstrumented path — when telemetry is
// fully disabled.
func (c *Config) somObserver(level, category string) func(som.EpochStats) {
	if c.Epoch == nil && c.Metrics == nil {
		return nil
	}
	// Metric names are constant per level: dynamic names hide the metric
	// namespace from grep and are an unbounded-cardinality hazard.
	var epochs *telemetry.Counter
	var qe, radius *telemetry.Gauge
	var dur telemetry.Timer
	if level == "char" {
		epochs = c.Metrics.Counter("hsom.char.epochs")
		qe = c.Metrics.Gauge("hsom.char.quant_error")
		radius = c.Metrics.Gauge("hsom.char.radius")
		dur = c.Metrics.Timer("hsom.char.epoch.seconds")
	} else {
		epochs = c.Metrics.Counter("hsom.word.epochs")
		qe = c.Metrics.Gauge("hsom.word.quant_error")
		radius = c.Metrics.Gauge("hsom.word.radius")
		dur = c.Metrics.Timer("hsom.word.epoch.seconds")
	}
	cb := c.Epoch
	return func(s som.EpochStats) {
		epochs.Inc()
		qe.Set(s.QuantError)
		radius.Set(s.Radius)
		dur.Observe(s.Duration)
		if cb != nil {
			cb(level, category, s)
		}
	}
}

// encMetrics holds the encoder's pre-resolved metric handles; the zero
// value (nil handles) is the no-op default.
type encMetrics struct {
	wvHit, wvMiss *telemetry.Counter
	// wvStampede counts cold-word computations that would have been
	// duplicated (and their results discarded) without the cache's
	// write-lock recheck — two goroutines racing on the same cold word.
	wvStampede *telemetry.Counter
	// wvFallback counts characters encoded through the live NearestK
	// search instead of the fanout table (positions past the table
	// bound).
	wvFallback *telemetry.Counter
	bmuBatch   telemetry.Timer
}

func newEncMetrics(reg *telemetry.Registry) encMetrics {
	if reg == nil {
		return encMetrics{}
	}
	return encMetrics{
		wvHit:      reg.Counter("hsom.wordvec.cache.hits"),
		wvMiss:     reg.Counter("hsom.wordvec.cache.misses"),
		wvStampede: reg.Counter("hsom.wordvec.cache.stampede"),
		wvFallback: reg.Counter("hsom.wordvec.fanout.fallback"),
		bmuBatch:   reg.Timer("hsom.bmu_batch.seconds"),
	}
}

// Encoder is the full two-level architecture.
type Encoder struct {
	cfg        Config
	charMap    *som.Map
	categories map[string]*CategoryEncoder
	met        encMetrics

	// fan is the precomputed (letter, position) → top-k-unit table the
	// cold-word path reads instead of searching the char map. Derived
	// from the frozen char map (rebuilt on snapshot load, never
	// persisted); nil forces every character onto the live-search
	// fallback.
	fan *fanoutTable

	// kernel is the active level-2 distance kernel (see SetKernel);
	// the zero value is KernelFloat64.
	kernel Kernel

	// wordVecs caches the (deterministic, charMap-derived) encoding
	// state of every word ever encoded — dense vector plus sparse forms
	// — so repeated occurrences (the common case both during
	// category-SOM training and document encoding) cost one map lookup
	// instead of a search per character. Guarded by mu; each entry is
	// filled exactly once under its own sync.Once (see lookupWord).
	mu       sync.RWMutex
	wordVecs map[string]*wordEntry
}

// Train builds the hierarchy from training documents. perCategory maps
// each category name to the training documents whose words feed that
// category's word SOM (already filtered by feature selection). The
// character map is trained on every character of every word of every
// supplied document, repeated as often as it occurs (section 5).
func Train(cfg Config, perCategory map[string][]corpus.Document) (*Encoder, error) {
	cfg.setDefaults()
	if len(perCategory) == 0 {
		return nil, fmt.Errorf("hsom: no categories to train")
	}

	// Level 1: character code-book over the union of all documents.
	// Categories are visited in sorted order: map iteration order would
	// otherwise make the presentation sequence — and the trained map —
	// nondeterministic.
	cats := make([]string, 0, len(perCategory))
	for cat := range perCategory {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	var charInputs [][]float64
	seenDocs := make(map[string]bool)
	for _, cat := range cats {
		for i := range perCategory[cat] {
			d := &perCategory[cat][i]
			if seenDocs[d.ID] {
				continue
			}
			seenDocs[d.ID] = true
			for _, w := range d.Words {
				charInputs = append(charInputs, CharInputs(w)...)
			}
		}
	}
	if len(charInputs) == 0 {
		return nil, fmt.Errorf("hsom: no characters in training documents")
	}
	charMap, err := som.New(som.Config{
		Width: cfg.CharWidth, Height: cfg.CharHeight, Dim: 2,
		Epochs:              cfg.CharEpochs,
		InitialLearningRate: 0.5,
		Seed:                cfg.Seed,
		Observer:            cfg.somObserver("char", ""),
	}, 26)
	if err != nil {
		return nil, fmt.Errorf("hsom: char map: %w", err)
	}
	if err := charMap.Train(charInputs); err != nil {
		return nil, fmt.Errorf("hsom: char map training: %w", err)
	}

	enc := &Encoder{
		cfg:        cfg,
		charMap:    charMap,
		categories: make(map[string]*CategoryEncoder, len(perCategory)),
		met:        newEncMetrics(cfg.Metrics),
	}
	// The char map is frozen from here on; precompute its fanout before
	// the category loop so level-2 training already encodes through it.
	enc.fan = newFanoutTable(charMap, cfg.BMUFanout)

	// Level 2: one word code-book per category, in deterministic order.
	for seedOffset, cat := range cats {
		ce, err := enc.trainCategory(cat, perCategory[cat], cfg.Seed+int64(seedOffset)+1)
		if err != nil {
			return nil, fmt.Errorf("hsom: category %s: %w", cat, err)
		}
		enc.categories[cat] = ce
	}
	return enc, nil
}

// WordVector builds the 91-dimensional (char-map-unit-count) vector of a
// word: for each character, the three most affected first-level BMUs
// contribute 1, 1/2 and 1/3 to their entries (section 5). Vectors are
// cached per word (the character map is frozen once trained), so the
// returned slice is shared — callers must not modify it.
func (e *Encoder) WordVector(word string) []float64 {
	return e.lookupWord(word).dense
}

// AttachTelemetry points the encoder's runtime metric handles at reg
// (nil detaches). Encoders reconstructed from snapshots start without a
// registry; classification services attach one here. Not safe to call
// concurrently with encoding.
func (e *Encoder) AttachTelemetry(reg *telemetry.Registry) {
	e.cfg.Metrics = reg
	e.met = newEncMetrics(reg)
}

// CharMap exposes the trained first-level map.
func (e *Encoder) CharMap() *som.Map { return e.charMap }

// Category returns the trained encoder of a category, or nil.
func (e *Encoder) Category(cat string) *CategoryEncoder { return e.categories[cat] }

// Categories lists trained category names in sorted order.
func (e *Encoder) Categories() []string {
	out := make([]string, 0, len(e.categories))
	for c := range e.categories {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func (e *Encoder) trainCategory(cat string, docs []corpus.Document, seed int64) (*CategoryEncoder, error) {
	// Words are presented as often as they occur and in corpus order
	// (section 5: "as many times as they occur in the category (and in
	// the same order)").
	var wordVecs [][]float64
	docRanges := make([][2]int, len(docs)) // word-vector index range per doc
	for i := range docs {
		start := len(wordVecs)
		for _, w := range docs[i].Words {
			wordVecs = append(wordVecs, e.WordVector(w))
		}
		docRanges[i] = [2]int{start, len(wordVecs)}
	}
	if len(wordVecs) == 0 {
		return nil, fmt.Errorf("no words in training documents")
	}
	wordMap, err := som.New(som.Config{
		Width: e.cfg.WordWidth, Height: e.cfg.WordHeight, Dim: e.charMap.Units(),
		Epochs:              e.cfg.WordEpochs,
		InitialLearningRate: 0.3,
		Seed:                seed,
		Shuffle:             false,
		Observer:            e.cfg.somObserver("word", cat),
	}, 3)
	if err != nil {
		return nil, err
	}
	if err := wordMap.Train(wordVecs); err != nil {
		return nil, err
	}

	// BMU of every training word occurrence, sharded across workers.
	sp := e.met.bmuBatch.Start()
	bmus := wordMap.BMUBatch(wordVecs, e.cfg.Workers)
	sp.End()
	hits := make([]int, wordMap.Units())
	for _, b := range bmus {
		hits[b]++
	}

	selected := selectInformativeBMUs(hits, bmus, docRanges)
	selectedSet := make(map[int]bool, len(selected))
	for _, u := range selected {
		selectedSet[u] = true
	}

	// Gaussian membership per selected BMU (Figure 4). Group occurrence
	// indices by BMU once — the per-unit rescan of every occurrence was
	// O(selected × occurrences). Appending in increasing occurrence order
	// preserves the rescan's member order exactly, so the fitted values
	// are the same bytes.
	byUnit := make([][]int, wordMap.Units())
	for i, b := range bmus {
		if selectedSet[b] {
			byUnit[b] = append(byUnit[b], i)
		}
	}
	gauss := make(map[int]*Gaussian, len(selected))
	for _, u := range selected {
		gauss[u] = fitGaussian(wordVecs, byUnit[u])
	}
	return &CategoryEncoder{
		Category: cat,
		Map:      wordMap,
		selected: selected,
		gauss:    gauss,
		hits:     hits,
	}, nil
}

// selectInformativeBMUs returns units in decreasing hit order, taking
// units until every training document has at least one word occurrence
// whose BMU is in the set (the paper's coverage heuristic, section 6.2).
func selectInformativeBMUs(hits []int, bmus []int, docRanges [][2]int) []int {
	order := make([]int, len(hits))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if hits[order[i]] != hits[order[j]] {
			return hits[order[i]] > hits[order[j]]
		}
		return order[i] < order[j]
	})
	selected := make([]int, 0, 8)
	selectedSet := make(map[int]bool)
	covered := make([]bool, len(docRanges))
	remaining := 0
	for i, r := range docRanges {
		if r[0] == r[1] {
			covered[i] = true // empty doc can never be covered
			continue
		}
		remaining++
	}
	for _, u := range order {
		if remaining == 0 {
			break
		}
		if hits[u] == 0 {
			break
		}
		selected = append(selected, u)
		selectedSet[u] = true
		for i, r := range docRanges {
			if covered[i] {
				continue
			}
			for k := r[0]; k < r[1]; k++ {
				if selectedSet[bmus[k]] {
					covered[i] = true
					remaining--
					break
				}
			}
		}
	}
	return selected
}

// fitGaussian computes the mean vector and scalar variance of the word
// vectors at occurrence indices members (one BMU's training words), plus
// the max/min raw Gaussian values over those words (Figure 4). members
// must be in increasing occurrence order — the accumulation order the
// determinism tests pin.
func fitGaussian(wordVecs [][]float64, members []int) *Gaussian {
	dim := len(wordVecs[0])
	mean := make([]float64, dim)
	for _, i := range members {
		v := wordVecs[i]
		for d := range v {
			mean[d] += v[d]
		}
	}
	for d := range mean {
		mean[d] /= float64(len(members))
	}
	var variance float64
	for _, i := range members {
		v := wordVecs[i]
		var d2 float64
		for d := range v {
			diff := v[d] - mean[d]
			d2 += diff * diff
		}
		variance += d2
	}
	variance /= float64(len(members))
	g := &Gaussian{Mean: mean, Variance: variance}
	g.MaxValue, g.MinValue = math.Inf(-1), math.Inf(1)
	for _, i := range members {
		val := g.Eval(wordVecs[i])
		if val > g.MaxValue {
			g.MaxValue = val
		}
		if val < g.MinValue {
			g.MinValue = val
		}
	}
	return g
}

// Encode maps a document's ordered words onto the category's code-book:
// each word becomes a WordCode. A word is a member word when its BMU is
// one of the selected informative units and its Gaussian membership
// reaches the minimum membership observed among the BMU's training words
// (section 6.2). The classifier consumes only member words, in order.
func (e *Encoder) Encode(cat string, words []string) ([]WordCode, error) {
	ce := e.categories[cat]
	if ce == nil {
		return nil, fmt.Errorf("hsom: category %q not trained", cat)
	}
	units := float64(ce.Map.Units() - 1)
	out := make([]WordCode, 0, len(words))
	for _, w := range words {
		en := e.lookupWord(w)
		u := e.bmuFor(ce, en)
		code := WordCode{Word: w, Unit: u}
		if g, ok := ce.gauss[u]; ok {
			raw := e.membershipFor(g, en)
			if raw >= g.MinValue {
				code.Member = true
				code.NormIndex = float64(u) / units
				code.Membership = raw / g.MaxValue
				if code.Membership > 1 {
					code.Membership = 1
				}
			}
		}
		out = append(out, code)
	}
	return out, nil
}

// BMUTrace returns the ordered BMU indices of a document's words on the
// category map — the Figure 3 view {8 → 1 → 43 → …}.
func (e *Encoder) BMUTrace(cat string, words []string) ([]int, error) {
	ce := e.categories[cat]
	if ce == nil {
		return nil, fmt.Errorf("hsom: category %q not trained", cat)
	}
	out := make([]int, len(words))
	for i, w := range words {
		out[i] = e.bmuFor(ce, e.lookupWord(w))
	}
	return out, nil
}

// RenderHitGrid renders the category map's training hit histogram as an
// ASCII grid with selected units marked by '*' — the Figure 3
// visualisation.
func (ce *CategoryEncoder) RenderHitGrid() string {
	sel := make(map[int]bool, len(ce.selected))
	for _, u := range ce.selected {
		sel[u] = true
	}
	var b strings.Builder
	cfg := ce.Map.Config()
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			u := ce.Map.UnitAt(x, y)
			mark := " "
			if sel[u] {
				mark = "*"
			}
			fmt.Fprintf(&b, "%5d%s", ce.hits[u], mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
