package hsom

import (
	"math"
	"sync"

	"temporaldoc/internal/som"
)

// Once character-map training freezes the weights, the 3-nearest-BMU
// search that WordVector runs per character is a fixed finite function
// of (letter, position): there are only 26 letters and positions encode
// as 2·pos−1. This file precomputes that function into a flat
// [26 × fanoutMaxPos × k] unit table, built by calling the live
// NearestK search once per cell — so the table is bit-exact against the
// search it replaces, tie-breaking included, by construction. The table
// is derived state: rebuilt after training and after every snapshot
// load, never persisted, so existing snapshot files stay valid.

// fanoutMaxPos bounds the precomputed positions. Characters beyond it
// (49-letter words, in practice noise) fall back to the live NearestK
// search, which stays the reference implementation.
const fanoutMaxPos = 32

// fanoutTable maps (letter, 1-based position) to the k most affected
// first-level BMUs, nearest first.
type fanoutTable struct {
	k      int
	maxPos int
	units  []int32 // [letter][pos-1][rank], row-major
}

// newFanoutTable precomputes the char-map fanout for every
// (letter, position) cell via the live search.
func newFanoutTable(m *som.Map, fanout int) *fanoutTable {
	k := fanout
	if k > m.Units() {
		k = m.Units()
	}
	if k <= 0 {
		return nil
	}
	t := &fanoutTable{
		k:      k,
		maxPos: fanoutMaxPos,
		units:  make([]int32, 26*fanoutMaxPos*k),
	}
	in := make([]float64, 2)
	for letter := 0; letter < 26; letter++ {
		for pos := 1; pos <= fanoutMaxPos; pos++ {
			in[0] = float64(letter) + 1
			in[1] = float64(2*pos - 1)
			near := m.NearestK(in, k)
			base := (letter*fanoutMaxPos + pos - 1) * k
			for rank, u := range near {
				t.units[base+rank] = int32(u)
			}
		}
	}
	return t
}

// row returns the precomputed fanout units of one (letter, position)
// cell, nearest first. letter is 0-based ('a' = 0); pos is 1-based and
// must be ≤ maxPos.
//
//tdlint:hotpath
func (t *fanoutTable) row(letter, pos int) []int32 {
	base := (letter*t.maxPos + pos - 1) * t.k
	return t.units[base : base+t.k : base+t.k]
}

// wordEntry is one word's cached encoding state: the dense char-map
// vector (the public WordVector result) plus its sparse (index, value)
// form in both precisions, shared with every level-2 kernel. The fields
// are written exactly once, inside once, and only read after once.Do
// returns — sync.Once publishes them safely to every waiter.
type wordEntry struct {
	once  sync.Once
	dense []float64
	idx   []int32   // sorted non-zero indices of dense
	val   []float64 // dense[idx[k]]
	val32 []float32 // float32(val[k]), for the opt-in float32 kernel
}

// lookupWord returns the word's filled cache entry, computing it
// exactly once per word however many goroutines race on a cold word:
// the entry is registered under the write lock (recheck included, so
// two racing registrations cannot both insert) and filled under its
// own sync.Once, which losers of the registration race simply wait on
// instead of re-running the per-character search and discarding the
// duplicate — the old stampede. The discarded-duplicate count lands in
// hsom.wordvec.cache.stampede.
func (e *Encoder) lookupWord(word string) *wordEntry {
	e.mu.RLock()
	en := e.wordVecs[word]
	e.mu.RUnlock()
	if en != nil {
		e.met.wvHit.Inc()
	} else {
		e.mu.Lock()
		if e.wordVecs == nil {
			e.wordVecs = make(map[string]*wordEntry)
		}
		if en = e.wordVecs[word]; en == nil {
			en = &wordEntry{}
			e.wordVecs[word] = en
		} else {
			// Another goroutine registered the word between our read
			// unlock and write lock: without the recheck this caller
			// would have recomputed the full per-character search and
			// raced to overwrite the entry. Count the computation we
			// just avoided discarding.
			e.met.wvStampede.Inc()
		}
		e.mu.Unlock()
	}
	en.once.Do(func() {
		e.met.wvMiss.Inc()
		e.fillWordEntry(en, word)
	})
	return en
}

// fillWordEntry computes a word's dense vector — through the fanout
// table where possible, through the live NearestK search beyond the
// table bound — and derives its sparse forms. The per-character
// contributions are added in exactly the legacy order (character by
// character, rank by rank), so the dense vector is bit-identical to
// the pre-table computation.
func (e *Encoder) fillWordEntry(en *wordEntry, word string) {
	dense := make([]float64, e.charMap.Units())
	fan := e.fan
	pos := 0
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c = c - 'A' + 'a'
		}
		if c < 'a' || c > 'z' {
			continue
		}
		pos++
		if fan != nil && pos <= fan.maxPos {
			for rank, unit := range fan.row(int(c-'a'), pos) {
				dense[unit] += 1 / float64(rank+1)
			}
			continue
		}
		// Fallback: the live search the table was built from. Taken for
		// positions beyond the table bound (and by encoders without a
		// table), so the two paths can never disagree.
		e.met.wvFallback.Inc()
		near := e.charMap.NearestK([]float64{float64(c-'a') + 1, float64(2*pos - 1)}, e.cfg.BMUFanout)
		for rank, unit := range near {
			dense[unit] += 1 / float64(rank+1)
		}
	}
	nnz := 0
	for _, v := range dense {
		if math.Float64bits(v) != 0 {
			nnz++
		}
	}
	en.idx = make([]int32, 0, nnz)
	en.val = make([]float64, 0, nnz)
	en.val32 = make([]float32, 0, nnz)
	for i, v := range dense {
		if math.Float64bits(v) != 0 {
			en.idx = append(en.idx, int32(i))
			en.val = append(en.val, v)
			en.val32 = append(en.val32, float32(v))
		}
	}
	en.dense = dense
}

// ClearWordCache drops every cached word vector. The cache is a pure
// function of the frozen character map, so clearing is always safe; it
// exists to bound memory on unbounded-vocabulary streams and to give
// benchmarks a cold-word path.
func (e *Encoder) ClearWordCache() {
	e.mu.Lock()
	e.wordVecs = nil
	e.mu.Unlock()
}
