package hsom

import (
	"math/rand"
	"testing"
)

func TestSuggestMapSizeValidation(t *testing.T) {
	if _, _, err := SuggestMapSize(nil, 2, 1, [][2]int{{2, 2}}); err == nil {
		t.Error("empty inputs accepted")
	}
	if _, _, err := SuggestMapSize([][]float64{{1, 2}}, 2, 1, nil); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := SuggestMapSize([][]float64{{1, 2}}, 2, 1, [][2]int{{0, 2}}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestSuggestMapSizeReturnsAllCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, 100)
	for i := range inputs {
		inputs[i] = []float64{rng.Float64() * 26, rng.Float64() * 25}
	}
	cands := [][2]int{{2, 2}, {4, 4}, {7, 13}}
	out, best, err := SuggestMapSize(inputs, 2, 1, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(cands) {
		t.Fatalf("got %d candidates", len(out))
	}
	if best < 0 || best >= len(out) {
		t.Fatalf("best index %d", best)
	}
	for i, c := range out {
		if c.Units != cands[i][0]*cands[i][1] {
			t.Errorf("candidate %d units %d", i, c.Units)
		}
		if c.QuantizationError < 0 || c.FinalAWC < 0 {
			t.Errorf("candidate %d has negative diagnostics: %+v", i, c)
		}
	}
	// Bigger maps quantise better on random data.
	if out[2].QuantizationError > out[0].QuantizationError {
		t.Errorf("QE did not improve with size: %v vs %v",
			out[2].QuantizationError, out[0].QuantizationError)
	}
}

func TestSuggestMapSizePicksSmallMapForTightCluster(t *testing.T) {
	// A single tight cluster needs very few units; the size penalty must
	// steer the choice away from the largest map.
	rng := rand.New(rand.NewSource(2))
	inputs := make([][]float64, 120)
	for i := range inputs {
		inputs[i] = []float64{5 + rng.Float64()*0.01, 5 + rng.Float64()*0.01}
	}
	out, best, err := SuggestMapSize(inputs, 3, 1, [][2]int{{2, 2}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if out[best].Units != 4 {
		t.Errorf("picked %dx%d for a point cluster", out[best].Width, out[best].Height)
	}
}

func TestSuggestMapSizePrefersSmallOnTies(t *testing.T) {
	// Uniform 1-D line: a 1xN map with enough units quantises about as
	// well as a much larger one, so the elbow rule must not pick the
	// largest geometry outright.
	rng := rand.New(rand.NewSource(3))
	inputs := make([][]float64, 200)
	for i := range inputs {
		inputs[i] = []float64{rng.Float64() * 10, 0}
	}
	out, best, err := SuggestMapSize(inputs, 3, 1, [][2]int{{25, 1}, {25, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Both resolve the line; QEs should be close and the smaller map
	// must be chosen if within tolerance.
	if out[0].QuantizationError <= out[1].QuantizationError*qeTolerance && out[best].Units != 25 {
		t.Errorf("picked %d units despite small map within tolerance (QEs %v, %v)",
			out[best].Units, out[0].QuantizationError, out[1].QuantizationError)
	}
}
