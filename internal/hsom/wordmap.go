package hsom

import (
	"fmt"
	"sort"
	"strings"
)

// WordMap projects a vocabulary onto a category's word SOM: the result
// maps each unit index to the distinct words whose BMU it is, sorted —
// the word-level annotation of the paper's Figure 3 ("words [that] have
// similar characters on close positions are projected to the same BMU
// or close BMUs").
func (e *Encoder) WordMap(cat string, words []string) (map[int][]string, error) {
	ce := e.categories[cat]
	if ce == nil {
		return nil, fmt.Errorf("hsom: category %q not trained", cat)
	}
	seen := make(map[string]bool, len(words))
	out := make(map[int][]string)
	for _, w := range words {
		if seen[w] {
			continue
		}
		seen[w] = true
		u := ce.Map.BMU(e.WordVector(w))
		out[u] = append(out[u], w)
	}
	for u := range out {
		sort.Strings(out[u])
	}
	return out, nil
}

// RenderWordGrid renders the word map as one line per occupied unit:
// "unit (x,y): word word ...", units in index order, at most maxWords
// words per unit (0 = all).
func (e *Encoder) RenderWordGrid(cat string, words []string, maxWords int) (string, error) {
	wm, err := e.WordMap(cat, words)
	if err != nil {
		return "", err
	}
	ce := e.categories[cat]
	units := make([]int, 0, len(wm))
	for u := range wm {
		units = append(units, u)
	}
	sort.Ints(units)
	var b strings.Builder
	for _, u := range units {
		ws := wm[u]
		if maxWords > 0 && len(ws) > maxWords {
			ws = ws[:maxWords]
		}
		x, y := ce.Map.Coords(u)
		fmt.Fprintf(&b, "unit %2d (%d,%d): %s\n", u, x, y, strings.Join(ws, " "))
	}
	return b.String(), nil
}
