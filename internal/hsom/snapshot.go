package hsom

import (
	"fmt"
	"sort"

	"temporaldoc/internal/som"
)

// GaussianSnapshot is the serialisable form of a membership function.
type GaussianSnapshot struct {
	Unit     int       `json:"unit"`
	Mean     []float64 `json:"mean"`
	Variance float64   `json:"variance"`
	MaxValue float64   `json:"max_value"`
	MinValue float64   `json:"min_value"`
}

// CategorySnapshot is the serialisable state of one category encoder.
type CategorySnapshot struct {
	Category string             `json:"category"`
	Map      som.Snapshot       `json:"map"`
	Selected []int              `json:"selected"`
	Gauss    []GaussianSnapshot `json:"gauss"`
	Hits     []int              `json:"hits"`
}

// Snapshot is the serialisable state of the full hierarchy.
type Snapshot struct {
	Config     Config             `json:"config"`
	CharMap    som.Snapshot       `json:"char_map"`
	Categories []CategorySnapshot `json:"categories"`
}

// Snapshot captures the encoder state for persistence.
func (e *Encoder) Snapshot() Snapshot {
	s := Snapshot{Config: e.cfg, CharMap: e.charMap.Snapshot()}
	for _, cat := range e.Categories() {
		ce := e.categories[cat]
		cs := CategorySnapshot{
			Category: ce.Category,
			Map:      ce.Map.Snapshot(),
			Selected: append([]int(nil), ce.selected...),
			Hits:     append([]int(nil), ce.hits...),
		}
		units := make([]int, 0, len(ce.gauss))
		for u := range ce.gauss {
			units = append(units, u)
		}
		sort.Ints(units)
		for _, u := range units {
			g := ce.gauss[u]
			cs.Gauss = append(cs.Gauss, GaussianSnapshot{
				Unit:     u,
				Mean:     append([]float64(nil), g.Mean...),
				Variance: g.Variance,
				MaxValue: g.MaxValue,
				MinValue: g.MinValue,
			})
		}
		s.Categories = append(s.Categories, cs)
	}
	return s
}

// FromSnapshot reconstructs an encoder from persisted state.
func FromSnapshot(s Snapshot) (*Encoder, error) {
	charMap, err := som.FromSnapshot(s.CharMap)
	if err != nil {
		return nil, fmt.Errorf("hsom: char map: %w", err)
	}
	cfg := s.Config
	cfg.setDefaults()
	enc := &Encoder{
		cfg:        cfg,
		charMap:    charMap,
		categories: make(map[string]*CategoryEncoder, len(s.Categories)),
	}
	// The fanout table is derived state — snapshots persist only the char
	// map weights, so rebuild the table from them here. Existing snapshot
	// files load (and re-save) byte-for-byte unchanged.
	enc.fan = newFanoutTable(charMap, cfg.BMUFanout)
	for _, cs := range s.Categories {
		if cs.Category == "" {
			return nil, fmt.Errorf("hsom: snapshot category with empty name")
		}
		if _, dup := enc.categories[cs.Category]; dup {
			return nil, fmt.Errorf("hsom: duplicate snapshot category %q", cs.Category)
		}
		wordMap, err := som.FromSnapshot(cs.Map)
		if err != nil {
			return nil, fmt.Errorf("hsom: category %s: %w", cs.Category, err)
		}
		if len(cs.Hits) != wordMap.Units() {
			return nil, fmt.Errorf("hsom: category %s: %d hits for %d units", cs.Category, len(cs.Hits), wordMap.Units())
		}
		ce := &CategoryEncoder{
			Category: cs.Category,
			Map:      wordMap,
			selected: append([]int(nil), cs.Selected...),
			gauss:    make(map[int]*Gaussian, len(cs.Gauss)),
			hits:     append([]int(nil), cs.Hits...),
		}
		for _, u := range cs.Selected {
			if u < 0 || u >= wordMap.Units() {
				return nil, fmt.Errorf("hsom: category %s: selected unit %d out of range", cs.Category, u)
			}
		}
		for _, gs := range cs.Gauss {
			if gs.Unit < 0 || gs.Unit >= wordMap.Units() {
				return nil, fmt.Errorf("hsom: category %s: gaussian unit %d out of range", cs.Category, gs.Unit)
			}
			if len(gs.Mean) != charMap.Units() {
				return nil, fmt.Errorf("hsom: category %s: gaussian dim %d, want %d", cs.Category, len(gs.Mean), charMap.Units())
			}
			ce.gauss[gs.Unit] = &Gaussian{
				Mean:     append([]float64(nil), gs.Mean...),
				Variance: gs.Variance,
				MaxValue: gs.MaxValue,
				MinValue: gs.MinValue,
			}
		}
		enc.categories[cs.Category] = ce
	}
	return enc, nil
}
