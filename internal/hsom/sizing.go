package hsom

import (
	"fmt"
	"math"

	"temporaldoc/internal/som"
)

// SizeCandidate is one evaluated map geometry.
type SizeCandidate struct {
	Width, Height int
	// FinalAWC is the average weight change of the last training epoch —
	// the paper's size-selection signal ("Based on the observation of
	// average weight change (AWC) the size we used ... is 7 by 13").
	FinalAWC float64
	// QuantizationError is the mean input-to-BMU distance after
	// training.
	QuantizationError float64
	// Units is Width*Height.
	Units int
}

// qeTolerance is the elbow rule's slack: the smallest map whose
// quantisation error is within this factor of the best candidate wins.
// Larger maps always quantise better, so raw QE alone would always pick
// the biggest geometry.
const qeTolerance = 1.10

// SuggestMapSize trains a throwaway SOM for every candidate geometry and
// returns all candidates (for inspection) plus the index of the chosen
// one: the smallest map whose quantisation error is within qeTolerance
// of the best — a scale-free elbow rule standing in for the paper's
// manual AWC-curve inspection. Inputs and epochs mirror the intended
// production training.
func SuggestMapSize(inputs [][]float64, epochs int, seed int64, candidates [][2]int) ([]SizeCandidate, int, error) {
	if len(inputs) == 0 {
		return nil, 0, fmt.Errorf("hsom: no inputs for size search")
	}
	if len(candidates) == 0 {
		return nil, 0, fmt.Errorf("hsom: no candidate sizes")
	}
	if epochs <= 0 {
		epochs = 3
	}
	dim := len(inputs[0])
	// Estimate the input scale for weight initialisation.
	var maxAbs float64
	for _, x := range inputs {
		for _, v := range x {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	out := make([]SizeCandidate, 0, len(candidates))
	for _, wh := range candidates {
		m, err := som.New(som.Config{
			Width: wh[0], Height: wh[1], Dim: dim,
			Epochs:              epochs,
			InitialLearningRate: 0.5,
			Seed:                seed,
		}, maxAbs)
		if err != nil {
			return nil, 0, fmt.Errorf("hsom: candidate %dx%d: %w", wh[0], wh[1], err)
		}
		if err := m.Train(inputs); err != nil {
			return nil, 0, fmt.Errorf("hsom: candidate %dx%d: %w", wh[0], wh[1], err)
		}
		awc := m.AWC()
		c := SizeCandidate{
			Width: wh[0], Height: wh[1],
			FinalAWC:          awc[len(awc)-1],
			QuantizationError: m.QuantizationError(inputs),
			Units:             wh[0] * wh[1],
		}
		out = append(out, c)
	}
	bestQE := math.Inf(1)
	for _, c := range out {
		if c.QuantizationError < bestQE {
			bestQE = c.QuantizationError
		}
	}
	// The absolute floor keeps the rule meaningful when every candidate
	// quantises a degenerate (near-point) distribution almost perfectly.
	threshold := bestQE*qeTolerance + 1e-3*maxAbs
	best := 0
	bestUnits := math.MaxInt
	for i, c := range out {
		if c.QuantizationError <= threshold && c.Units < bestUnits {
			best, bestUnits = i, c.Units
		}
	}
	return out, best, nil
}
