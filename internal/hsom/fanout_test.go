package hsom

import (
	"math"
	"strings"
	"sync"
	"testing"

	"temporaldoc/internal/telemetry"
)

// TestFanoutTableMatchesNearestK is the table's bit-exactness wall:
// every (letter, position) cell must hold exactly what the live search
// returns — ranks, tie-breaks and all.
func TestFanoutTableMatchesNearestK(t *testing.T) {
	enc := trainedEncoder(t)
	fan := enc.fan
	if fan == nil {
		t.Fatal("trained encoder has no fanout table")
	}
	if fan.k != enc.cfg.BMUFanout {
		t.Fatalf("fanout k = %d, want %d", fan.k, enc.cfg.BMUFanout)
	}
	for letter := 0; letter < 26; letter++ {
		for pos := 1; pos <= fan.maxPos; pos++ {
			in := []float64{float64(letter) + 1, float64(2*pos - 1)}
			want := enc.charMap.NearestK(in, fan.k)
			got := fan.row(letter, pos)
			for r := range want {
				if int(got[r]) != want[r] {
					t.Fatalf("letter %c pos %d rank %d: table %d, NearestK %d",
						'a'+letter, pos, r, got[r], want[r])
				}
			}
		}
	}
}

// tableVsFallback recomputes word's vector with the table disabled and
// asserts bit-identity with the table-driven result.
func tableVsFallback(t *testing.T, enc *Encoder, word string) []float64 {
	t.Helper()
	withTable := append([]float64(nil), enc.WordVector(word)...)
	fan := enc.fan
	enc.fan = nil
	enc.ClearWordCache()
	noTable := enc.WordVector(word)
	enc.fan = fan
	enc.ClearWordCache()
	if len(withTable) != len(noTable) {
		t.Fatalf("%q: dims differ: %d vs %d", word, len(withTable), len(noTable))
	}
	for i := range withTable {
		if math.Float64bits(withTable[i]) != math.Float64bits(noTable[i]) {
			t.Fatalf("%q dim %d: table %x, fallback %x", word, i,
				math.Float64bits(withTable[i]), math.Float64bits(noTable[i]))
		}
	}
	return withTable
}

// TestWordVectorTableEdgeCases drives the CharInputs edge cases through
// both the table path and the live-search fallback: words past the
// table bound, all-non-letter words, and mixed-case input must all
// produce bit-identical vectors either way.
func TestWordVectorTableEdgeCases(t *testing.T) {
	enc := trainedEncoder(t)
	long := strings.Repeat("abcdefgh", 6) // 48 letters: positions 33..48 take the fallback
	if len(long) <= fanoutMaxPos {
		t.Fatal("long word does not exceed the table bound")
	}
	for _, word := range []string{
		"profit",
		long,
		"1234!?",    // all non-letters: zero vector
		"",          // empty
		"PrO-FiT99", // mixed case + noise must normalise before the table index
	} {
		tableVsFallback(t, enc, word)
	}

	// Mixed case and noise must hit the same cache-independent vector as
	// the clean lowercase form.
	clean := append([]float64(nil), enc.WordVector("profit")...)
	noisy := enc.WordVector("PrO-FiT99")
	for i := range clean {
		if math.Float64bits(clean[i]) != math.Float64bits(noisy[i]) {
			t.Fatalf("dim %d: clean %g, noisy %g", i, clean[i], noisy[i])
		}
	}

	// All-non-letter words must encode as the zero vector with an empty
	// sparse form.
	en := enc.lookupWord("1234!?")
	for i, v := range en.dense {
		if v != 0 {
			t.Fatalf("non-letter word has mass at dim %d: %g", i, v)
		}
	}
	if len(en.idx) != 0 || len(en.val) != 0 || len(en.val32) != 0 {
		t.Fatalf("non-letter word has non-empty sparse form: %d indices", len(en.idx))
	}
}

// TestWordVectorFallbackCounter checks only positions beyond the table
// bound reach the live search.
func TestWordVectorFallbackCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := tinyCfg()
	cfg.Metrics = reg
	enc, err := Train(cfg, trainDocs())
	if err != nil {
		t.Fatal(err)
	}
	fallback := reg.Counter("hsom.wordvec.fanout.fallback")
	base := fallback.Value()
	enc.WordVector("short")
	if got := fallback.Value(); got != base {
		t.Fatalf("short word took %d fallback searches", got-base)
	}
	enc.WordVector(strings.Repeat("z", fanoutMaxPos+5))
	if got := fallback.Value() - base; got != 5 {
		t.Fatalf("long word took %d fallback searches, want 5", got)
	}
}

// TestWordEntrySparseMatchesDense checks every cached entry's sparse
// form is exactly the non-zero subset of its dense vector, indices
// sorted, with the float32 view converted value-wise.
func TestWordEntrySparseMatchesDense(t *testing.T) {
	enc := trainedEncoder(t)
	for _, w := range []string{"profit", "dividend", "wheat", "a", strings.Repeat("xyz", 20)} {
		en := enc.lookupWord(w)
		j := 0
		for i, v := range en.dense {
			zero := math.Float64bits(v) == 0
			if zero {
				continue
			}
			if j >= len(en.idx) || int(en.idx[j]) != i {
				t.Fatalf("%q: dense dim %d missing from sparse form", w, i)
			}
			if math.Float64bits(en.val[j]) != math.Float64bits(v) {
				t.Fatalf("%q dim %d: sparse val %g, dense %g", w, i, en.val[j], v)
			}
			if math.Float32bits(en.val32[j]) != math.Float32bits(float32(v)) {
				t.Fatalf("%q dim %d: val32 %g, want %g", w, i, en.val32[j], float32(v))
			}
			j++
		}
		if j != len(en.idx) {
			t.Fatalf("%q: sparse form has %d extra entries", w, len(en.idx)-j)
		}
	}
}

// TestLookupWordStampede hammers one cold word from many goroutines:
// the per-character computation must run exactly once (one miss), every
// caller must get the same entry, and the discarded-duplicate counter
// must account for every registration race.
func TestLookupWordStampede(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := tinyCfg()
	cfg.Metrics = reg
	enc, err := Train(cfg, trainDocs())
	if err != nil {
		t.Fatal(err)
	}
	enc.ClearWordCache()
	miss := reg.Counter("hsom.wordvec.cache.misses")
	stampede := reg.Counter("hsom.wordvec.cache.stampede")
	hit := reg.Counter("hsom.wordvec.cache.hits")
	miss0, hit0 := miss.Value(), hit.Value()

	const workers = 32
	entries := make([]*wordEntry, workers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			entries[w] = enc.lookupWord("stampede")
		}(w)
	}
	start.Done()
	done.Wait()

	for w := 1; w < workers; w++ {
		if entries[w] != entries[0] {
			t.Fatalf("worker %d got a different entry", w)
		}
	}
	if got := miss.Value() - miss0; got != 1 {
		t.Fatalf("cold word computed %d times, want exactly 1", got)
	}
	// Every lookup is either the fast-path hit, the single registration,
	// or a counted discarded duplicate.
	races := stampede.Value()
	hits := hit.Value() - hit0
	if hits+races+1 != workers {
		t.Fatalf("accounting off: %d hits + %d stampedes + 1 miss != %d lookups",
			hits, races, workers)
	}
}

// TestClearWordCache checks clearing forces a recompute that lands on
// identical bytes (the cache is a pure function of the frozen map).
func TestClearWordCache(t *testing.T) {
	enc := trainedEncoder(t)
	before := append([]float64(nil), enc.WordVector("profit")...)
	en1 := enc.lookupWord("profit")
	enc.ClearWordCache()
	en2 := enc.lookupWord("profit")
	if en1 == en2 {
		t.Fatal("ClearWordCache kept the old entry")
	}
	for i, v := range en2.dense {
		if math.Float64bits(v) != math.Float64bits(before[i]) {
			t.Fatalf("dim %d changed across cache clear", i)
		}
	}
}
