package hsom

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestEncoderSnapshotRoundTrip(t *testing.T) {
	enc := trainedEncoder(t)
	snap := enc.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	enc2, err := FromSnapshot(back)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if !reflect.DeepEqual(enc2.Categories(), enc.Categories()) {
		t.Fatalf("categories differ: %v vs %v", enc2.Categories(), enc.Categories())
	}
	words := []string{"profit", "dividend", "wheat", "unseen"}
	for _, cat := range enc.Categories() {
		a, err := enc.Encode(cat, words)
		if err != nil {
			t.Fatal(err)
		}
		b, err := enc2.Encode(cat, words)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("category %s encodes differently after round trip", cat)
		}
		if !reflect.DeepEqual(enc.Category(cat).SelectedBMUs(), enc2.Category(cat).SelectedBMUs()) {
			t.Fatalf("category %s selected BMUs differ", cat)
		}
		if !reflect.DeepEqual(enc.Category(cat).Hits(), enc2.Category(cat).Hits()) {
			t.Fatalf("category %s hits differ", cat)
		}
	}
	// Word vectors must match exactly (same char map).
	if !reflect.DeepEqual(enc.WordVector("profit"), enc2.WordVector("profit")) {
		t.Error("word vectors differ after round trip")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	enc := trainedEncoder(t)
	good := enc.Snapshot()

	mangle := func(f func(*Snapshot)) Snapshot {
		data, _ := json.Marshal(good)
		var s Snapshot
		_ = json.Unmarshal(data, &s)
		f(&s)
		return s
	}

	cases := []struct {
		name string
		snap Snapshot
	}{
		{"empty category name", mangle(func(s *Snapshot) { s.Categories[0].Category = "" })},
		{"duplicate category", mangle(func(s *Snapshot) { s.Categories[1].Category = s.Categories[0].Category })},
		{"selected out of range", mangle(func(s *Snapshot) { s.Categories[0].Selected[0] = 999 })},
		{"gaussian out of range", mangle(func(s *Snapshot) { s.Categories[0].Gauss[0].Unit = 999 })},
		{"gaussian wrong dim", mangle(func(s *Snapshot) { s.Categories[0].Gauss[0].Mean = []float64{1} })},
		{"hits wrong length", mangle(func(s *Snapshot) { s.Categories[0].Hits = s.Categories[0].Hits[:1] })},
		{"bad char map", mangle(func(s *Snapshot) { s.CharMap.Weights = nil })},
	}
	for _, tc := range cases {
		if _, err := FromSnapshot(tc.snap); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
