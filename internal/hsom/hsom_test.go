package hsom

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"temporaldoc/internal/corpus"
)

func tinyCfg() Config {
	return Config{
		CharWidth: 5, CharHeight: 5,
		WordWidth: 4, WordHeight: 4,
		CharEpochs: 3, WordEpochs: 5,
		BMUFanout: 3,
		Seed:      1,
	}
}

func trainDocs() map[string][]corpus.Document {
	earn := []corpus.Document{
		{ID: "e1", Words: []string{"profit", "dividend", "profit", "quarter"}, Categories: []string{"earn"}},
		{ID: "e2", Words: []string{"profit", "shares", "dividend"}, Categories: []string{"earn"}},
		{ID: "e3", Words: []string{"dividend", "quarter", "profit"}, Categories: []string{"earn"}},
	}
	grain := []corpus.Document{
		{ID: "g1", Words: []string{"wheat", "tonnes", "harvest", "wheat"}, Categories: []string{"grain"}},
		{ID: "g2", Words: []string{"wheat", "crop", "tonnes"}, Categories: []string{"grain"}},
	}
	return map[string][]corpus.Document{"earn": earn, "grain": grain}
}

func trainedEncoder(t *testing.T) *Encoder {
	t.Helper()
	enc, err := Train(tinyCfg(), trainDocs())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return enc
}

func TestCharInputsEncoding(t *testing.T) {
	got := CharInputs("cost")
	want := [][]float64{{3, 1}, {15, 3}, {19, 5}, {20, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharInputs(cost) = %v, want %v", got, want)
	}
}

func TestCharInputsCaseAndNoise(t *testing.T) {
	if got, want := CharInputs("AbC"), CharInputs("abc"); !reflect.DeepEqual(got, want) {
		t.Errorf("case sensitivity: %v vs %v", got, want)
	}
	// Non-letters are skipped without advancing the position index.
	if got, want := CharInputs("a-b"), CharInputs("ab"); !reflect.DeepEqual(got, want) {
		t.Errorf("noise handling: %v vs %v", got, want)
	}
	if got := CharInputs(""); len(got) != 0 {
		t.Errorf("CharInputs(\"\") = %v", got)
	}
}

func TestCharInputsRangeBalance(t *testing.T) {
	// Dimension ranges should be comparable (section 5): letters 1..26,
	// positions 1,3,5,... for typical word lengths.
	in := CharInputs("zymurgical") // 10 letters
	for _, v := range in {
		if v[0] < 1 || v[0] > 26 {
			t.Errorf("letter code %v out of range", v[0])
		}
		if v[1] < 1 || v[1] > 19 {
			t.Errorf("position code %v out of range", v[1])
		}
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(tinyCfg(), nil); err == nil {
		t.Error("empty category set accepted")
	}
	if _, err := Train(tinyCfg(), map[string][]corpus.Document{"earn": {}}); err == nil {
		t.Error("empty documents accepted")
	}
	empty := map[string][]corpus.Document{
		"earn": {{ID: "e", Words: nil, Categories: []string{"earn"}}},
	}
	if _, err := Train(tinyCfg(), empty); err == nil {
		t.Error("documents without words accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CharWidth*cfg.CharHeight != 91 {
		t.Errorf("char map units = %d, want 91", cfg.CharWidth*cfg.CharHeight)
	}
	if cfg.WordWidth*cfg.WordHeight != 64 {
		t.Errorf("word map units = %d, want 64", cfg.WordWidth*cfg.WordHeight)
	}
	if cfg.BMUFanout != 3 {
		t.Errorf("fanout = %d, want 3", cfg.BMUFanout)
	}
}

func TestWordVectorDimensionAndMass(t *testing.T) {
	enc := trainedEncoder(t)
	vec := enc.WordVector("profit")
	if len(vec) != enc.CharMap().Units() {
		t.Fatalf("vector dim %d, want %d", len(vec), enc.CharMap().Units())
	}
	// Each of the 6 characters contributes 1 + 1/2 + 1/3 = 11/6.
	var sum float64
	for _, v := range vec {
		sum += v
	}
	want := 6 * (1 + 0.5 + 1.0/3.0)
	if math.Abs(sum-want) > 1e-9 {
		t.Errorf("vector mass = %v, want %v", sum, want)
	}
}

func TestWordVectorSimilarWordsCloser(t *testing.T) {
	enc := trainedEncoder(t)
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	profit := enc.WordVector("profit")
	profits := enc.WordVector("profits")
	wheat := enc.WordVector("wheat")
	if dist(profit, profits) >= dist(profit, wheat) {
		t.Errorf("profit/profits (%v) not closer than profit/wheat (%v)",
			dist(profit, profits), dist(profit, wheat))
	}
}

func TestCategoriesTrained(t *testing.T) {
	enc := trainedEncoder(t)
	if got := enc.Categories(); !reflect.DeepEqual(got, []string{"earn", "grain"}) {
		t.Errorf("Categories = %v", got)
	}
	if enc.Category("earn") == nil || enc.Category("grain") == nil {
		t.Error("category encoders missing")
	}
	if enc.Category("nope") != nil {
		t.Error("unknown category returned an encoder")
	}
}

func TestSelectedBMUsCoverEveryTrainingDoc(t *testing.T) {
	enc := trainedEncoder(t)
	for cat, docs := range trainDocs() {
		ce := enc.Category(cat)
		sel := make(map[int]bool)
		for _, u := range ce.SelectedBMUs() {
			sel[u] = true
		}
		if len(sel) == 0 {
			t.Fatalf("%s: no BMUs selected", cat)
		}
		for _, d := range docs {
			trace, err := enc.BMUTrace(cat, d.Words)
			if err != nil {
				t.Fatal(err)
			}
			covered := false
			for _, u := range trace {
				if sel[u] {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("%s doc %s not covered by selected BMUs", cat, d.ID)
			}
		}
	}
}

func TestSelectedBMUsAreTopHits(t *testing.T) {
	enc := trainedEncoder(t)
	ce := enc.Category("earn")
	hits := ce.Hits()
	sel := ce.SelectedBMUs()
	for i := 1; i < len(sel); i++ {
		if hits[sel[i-1]] < hits[sel[i]] {
			t.Errorf("selected BMUs not in decreasing hit order: %v (hits %v)", sel, hits)
		}
	}
	if hits[sel[0]] == 0 {
		t.Error("top selected BMU has zero hits")
	}
}

func TestEncodeProducesOrderedCodes(t *testing.T) {
	enc := trainedEncoder(t)
	words := []string{"profit", "dividend", "quarter"}
	codes, err := enc.Encode("earn", words)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != len(words) {
		t.Fatalf("codes length %d, want %d", len(codes), len(words))
	}
	for i, c := range codes {
		if c.Word != words[i] {
			t.Errorf("code %d word %q, want %q (order violated)", i, c.Word, words[i])
		}
		if c.Member {
			if c.NormIndex < 0 || c.NormIndex > 1 {
				t.Errorf("NormIndex %v out of [0,1]", c.NormIndex)
			}
			if c.Membership <= 0 || c.Membership > 1 {
				t.Errorf("Membership %v out of (0,1]", c.Membership)
			}
		}
	}
}

func TestEncodeTrainingWordsAreMembers(t *testing.T) {
	// Every training word occurrence must pass its own BMU's membership
	// threshold (threshold is the min over training words).
	enc := trainedEncoder(t)
	ce := enc.Category("earn")
	sel := make(map[int]bool)
	for _, u := range ce.SelectedBMUs() {
		sel[u] = true
	}
	for _, d := range trainDocs()["earn"] {
		codes, err := enc.Encode("earn", d.Words)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range codes {
			if sel[c.Unit] && !c.Member {
				t.Errorf("training word %q hits selected BMU %d but fails membership", c.Word, c.Unit)
			}
		}
	}
}

func TestEncodeUnknownCategory(t *testing.T) {
	enc := trainedEncoder(t)
	if _, err := enc.Encode("bogus", []string{"x"}); err == nil {
		t.Error("unknown category accepted")
	}
	if _, err := enc.BMUTrace("bogus", []string{"x"}); err == nil {
		t.Error("unknown category accepted by BMUTrace")
	}
}

func TestEncodeEmptyDocument(t *testing.T) {
	enc := trainedEncoder(t)
	codes, err := enc.Encode("earn", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 0 {
		t.Errorf("Encode(empty) = %v", codes)
	}
}

func TestBMUTraceStableForSameWord(t *testing.T) {
	enc := trainedEncoder(t)
	trace, err := enc.BMUTrace("earn", []string{"profit", "wheat", "profit"})
	if err != nil {
		t.Fatal(err)
	}
	if trace[0] != trace[2] {
		t.Errorf("same word mapped to different BMUs: %v", trace)
	}
}

func TestGaussianEval(t *testing.T) {
	g := &Gaussian{Mean: []float64{0, 0}, Variance: 1}
	center := g.Eval([]float64{0, 0})
	off := g.Eval([]float64{1, 1})
	if center <= off {
		t.Errorf("Gaussian not peaked at mean: center=%v off=%v", center, off)
	}
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(center-want) > 1e-12 {
		t.Errorf("center value %v, want %v", center, want)
	}
}

func TestGaussianDegenerateVariance(t *testing.T) {
	g := &Gaussian{Mean: []float64{1, 2}, Variance: 0}
	exact := g.Eval([]float64{1, 2})
	if math.IsNaN(exact) || math.IsInf(exact, 0) {
		t.Errorf("degenerate Gaussian at mean = %v", exact)
	}
	away := g.Eval([]float64{5, 5})
	if away >= exact {
		t.Errorf("degenerate Gaussian not decaying: exact=%v away=%v", exact, away)
	}
}

func TestRenderHitGrid(t *testing.T) {
	enc := trainedEncoder(t)
	grid := enc.Category("earn").RenderHitGrid()
	lines := strings.Split(strings.TrimRight(grid, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("grid has %d rows, want 4:\n%s", len(lines), grid)
	}
	if !strings.Contains(grid, "*") {
		t.Errorf("no selected units marked:\n%s", grid)
	}
}

func TestTrainDeterministic(t *testing.T) {
	a, err := Train(tinyCfg(), trainDocs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(tinyCfg(), trainDocs())
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := a.Encode("earn", []string{"profit", "dividend"})
	cb, _ := b.Encode("earn", []string{"profit", "dividend"})
	if !reflect.DeepEqual(ca, cb) {
		t.Error("training not deterministic")
	}
}
