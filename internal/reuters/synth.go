// Package reuters provides the corpus substrate for the reproduction:
// a parser for the real Reuters-21578 SGML distribution (usable when the
// user supplies the reut2-*.sgm files) and a deterministic synthetic
// generator that reproduces the statistical structure of the ModApte
// top-10 split — skewed category sizes, Zipfian topical vocabularies,
// recurring in-category word sequences (phrases), multi-label documents
// (wheat/corn ⊂ grain, money-fx ↔ interest) and the heavy money/interest
// vocabulary overlap the paper discusses.
//
// The real corpus is not redistributable with this repository, so all
// experiments default to the synthetic corpus; the loader keeps the real
// data path exercised end-to-end.
package reuters

import (
	"fmt"
	"math"
	"math/rand"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/textproc"
)

// textprocIsStop keeps the stop-word dependency in one place.
func textprocIsStop(w string) bool { return textproc.IsStopWord(w) }

// GenConfig controls synthetic corpus generation.
type GenConfig struct {
	// Scale multiplies the ModApte per-category document counts.
	// 1.0 reproduces the full split sizes; experiments in tests use
	// small fractions.
	Scale float64
	// Seed drives all randomness; equal configs generate equal corpora.
	Seed int64
	// MinBodyWords and MaxBodyWords bound document body length (in
	// topical/general words, before markup decoration).
	MinBodyWords, MaxBodyWords int
	// MultiLabelFraction is the fraction of wheat documents that also
	// receive the trade label, and of money-fx/interest documents that
	// receive each other's label. Default 0.1.
	MultiLabelFraction float64
	// TailVocab is the number of generated low-frequency pseudo-words
	// mixed into every document. The tail makes the corpus vocabulary
	// realistically long-tailed so the paper's feature budgets (DF/IG
	// 1000, MI 300/category) actually discard something. Default 1500.
	TailVocab int
	// TailFraction is the fraction of body tokens drawn from the tail
	// vocabulary. Default 0.12.
	TailFraction float64
	// TopicPurity is the probability that a topical word is drawn from
	// the segment's own category rather than a random other category.
	// Values below 1 blur category vocabularies (real newswire text is
	// full of off-topic words), making the corpus realistically hard.
	// Default 0.8.
	TopicPurity float64
}

// DefaultGenConfig returns full-scale generation defaults.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Scale:              1.0,
		Seed:               1,
		MinBodyWords:       35,
		MaxBodyWords:       130,
		MultiLabelFraction: 0.1,
		TailVocab:          1500,
		TailFraction:       0.12,
		TopicPurity:        0.8,
	}
}

func (c *GenConfig) setDefaults() {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.MinBodyWords <= 0 {
		c.MinBodyWords = 35
	}
	if c.MaxBodyWords < c.MinBodyWords {
		c.MaxBodyWords = c.MinBodyWords + 95
	}
	if c.MultiLabelFraction < 0 || c.MultiLabelFraction >= 1 {
		c.MultiLabelFraction = 0.1
	}
	if c.TailVocab <= 0 {
		c.TailVocab = 1500
	}
	if c.TailFraction < 0 || c.TailFraction >= 1 {
		c.TailFraction = 0.12
	}
	if c.TopicPurity <= 0 || c.TopicPurity > 1 {
		c.TopicPurity = 0.8
	}
}

// zipfTable supports Zipf-weighted draws from an ordered vocabulary:
// the word at rank r is drawn with probability proportional to
// 1/(r+2)^1.05.
type zipfTable struct {
	words []string
	cum   []float64
}

func newZipfTable(words []string) *zipfTable {
	t := &zipfTable{words: words, cum: make([]float64, len(words))}
	var sum float64
	for i := range words {
		sum += 1 / math.Pow(float64(i+2), 1.05)
		t.cum[i] = sum
	}
	for i := range t.cum {
		t.cum[i] /= sum
	}
	return t
}

func (t *zipfTable) draw(rng *rand.Rand) string {
	x := rng.Float64()
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return t.words[lo]
}

// GenerateCorpus builds the synthetic ModApte-like corpus. The returned
// corpus validates (corpus.Validate) and its documents hold clean,
// ordered, pre-processed word sequences.
func GenerateCorpus(cfg GenConfig) (*corpus.Corpus, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	topics := make(map[string]*zipfTable, len(categoryVocab))
	for cat, vocab := range categoryVocab {
		topics[cat] = newZipfTable(vocab)
	}
	general := newZipfTable(generalVocab)
	tail := newZipfTable(makeTailVocab(cfg.Seed, cfg.TailVocab))

	scaled := func(cat string, split int) int {
		n := int(math.Round(float64(modApteCounts[cat][split]) * cfg.Scale))
		if n < 2 {
			n = 2
		}
		return n
	}

	c := &corpus.Corpus{Categories: append([]string(nil), Top10...)}
	nextID := 0
	emit := func(split int, labels []string) {
		nextID++
		prefix := "train"
		if split == 1 {
			prefix = "test"
		}
		doc := synthDoc(rng, cfg, topics, general, tail, labels)
		doc.ID = fmt.Sprintf("synth-%s-%05d", prefix, nextID)
		if split == 0 {
			c.Train = append(c.Train, doc)
		} else {
			c.Test = append(c.Test, doc)
		}
	}

	for split := 0; split < 2; split++ {
		nWheat := scaled("wheat", split)
		nCorn := scaled("corn", split)
		nGrain := scaled("grain", split) - nWheat - nCorn
		if nGrain < 1 {
			nGrain = 1
		}
		for _, cat := range Top10 {
			switch cat {
			case "grain":
				for i := 0; i < nGrain; i++ {
					emit(split, []string{"grain"})
				}
			case "wheat":
				for i := 0; i < nWheat; i++ {
					labels := []string{"grain", "wheat"}
					if rng.Float64() < cfg.MultiLabelFraction {
						labels = append(labels, "trade")
					}
					emit(split, labels)
				}
			case "corn":
				for i := 0; i < nCorn; i++ {
					emit(split, []string{"grain", "corn"})
				}
			case "money-fx":
				for i := 0; i < scaled(cat, split); i++ {
					labels := []string{"money-fx"}
					if rng.Float64() < cfg.MultiLabelFraction {
						labels = append(labels, "interest")
					}
					emit(split, labels)
				}
			case "interest":
				for i := 0; i < scaled(cat, split); i++ {
					labels := []string{"interest"}
					if rng.Float64() < cfg.MultiLabelFraction {
						labels = append(labels, "money-fx")
					}
					emit(split, labels)
				}
			default:
				for i := 0; i < scaled(cat, split); i++ {
					emit(split, []string{cat})
				}
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("reuters: generated corpus invalid: %w", err)
	}
	return c, nil
}

// synthDoc builds one document. Multi-label documents are written as one
// topical segment per label, giving them the within-document context
// changes (Figure 6) that the temporal classifier is designed to track.
func synthDoc(rng *rand.Rand, cfg GenConfig, topics map[string]*zipfTable, general, tail *zipfTable, labels []string) corpus.Document {
	bodyLen := cfg.MinBodyWords + rng.Intn(cfg.MaxBodyWords-cfg.MinBodyWords+1)
	perSegment := bodyLen / len(labels)
	if perSegment < 4 {
		perSegment = 4
	}
	// drawTopic draws a topical word for cat, leaking to a random other
	// category's vocabulary with probability 1-TopicPurity.
	drawTopic := func(cat string) string {
		if rng.Float64() < cfg.TopicPurity {
			return topics[cat].draw(rng)
		}
		other := Top10[rng.Intn(len(Top10))]
		return topics[other].draw(rng)
	}
	words := make([]string, 0, bodyLen+8)
	for _, cat := range labels {
		words = appendSegment(words, rng, cat, drawTopic, general, tail, cfg.TailFraction, perSegment)
	}
	title := make([]string, 0, 4)
	for i := 0; i < 3+rng.Intn(2); i++ {
		title = append(title, topics[labels[0]].draw(rng))
	}
	return corpus.Document{
		Title:      joinWords(title),
		Words:      words,
		Categories: append([]string(nil), labels...),
	}
}

// appendSegment writes ~n words of one category: a mixture of recurring
// category phrases (ordered word runs), topical words (drawn through
// drawTopic, which may leak other categories' vocabulary), general
// business vocabulary and long-tail noise words.
func appendSegment(words []string, rng *rand.Rand, cat string, drawTopic func(string) string, general, tail *zipfTable, tailFrac float64, n int) []string {
	phrases := categoryPhrases[cat]
	target := len(words) + n
	for len(words) < target {
		if rng.Float64() < tailFrac {
			words = append(words, tail.draw(rng))
			continue
		}
		switch r := rng.Float64(); {
		case r < 0.25 && len(phrases) > 0:
			words = append(words, phrases[rng.Intn(len(phrases))]...)
		case r < 0.75:
			words = append(words, drawTopic(cat))
		default:
			words = append(words, general.draw(rng))
		}
	}
	return words
}

// makeTailVocab generates n deterministic pseudo-words (CV-syllable
// shapes like "veromil") that collide with neither the topical
// vocabularies nor the stop-word list.
func makeTailVocab(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed ^ 0x7a11))
	consonants := "bcdfghjklmnprstvz"
	vowels := "aeiou"
	known := make(map[string]bool, 1024)
	for _, vocab := range categoryVocab {
		for _, w := range vocab {
			known[w] = true
		}
	}
	for _, w := range generalVocab {
		known[w] = true
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		syllables := 2 + rng.Intn(3)
		var b []byte
		for s := 0; s < syllables; s++ {
			b = append(b, consonants[rng.Intn(len(consonants))], vowels[rng.Intn(len(vowels))])
		}
		if rng.Intn(2) == 0 {
			b = append(b, consonants[rng.Intn(len(consonants))])
		}
		w := string(b)
		if seen[w] || known[w] || textprocIsStop(w) {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
