package reuters

import (
	"strings"
	"testing"
)

// FuzzParseSGML checks the parser never panics and only errors on
// truncated documents.
func FuzzParseSGML(f *testing.F) {
	f.Add(`<REUTERS TOPICS="YES" LEWISSPLIT="TRAIN" NEWID="1"><TOPICS><D>earn</D></TOPICS><TITLE>t</TITLE><BODY>b</BODY></REUTERS>`)
	f.Add(`<REUTERS`)
	f.Add(`no sgml at all`)
	f.Add(`<REUTERS TOPICS="NO" NEWID="2"></REUTERS><REUTERS NEWID="3"></REUTERS>`)
	f.Add(`<REUTERS><TOPICS><D></D><D>x</D></TOPICS><BODY>&#3;</BODY></REUTERS>`)
	f.Fuzz(func(t *testing.T, src string) {
		docs, err := ParseSGML(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, d := range docs {
			// Topics never contain markup.
			for _, topic := range d.Topics {
				if strings.ContainsAny(topic, "<>") {
					t.Fatalf("topic %q contains markup", topic)
				}
			}
		}
	})
}
