package reuters

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"temporaldoc/internal/textproc"
)

func smallCfg() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Scale = 0.02
	return cfg
}

func TestGenerateCorpusValidates(t *testing.T) {
	c, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !reflect.DeepEqual(c.Categories, Top10) {
		t.Errorf("Categories = %v", c.Categories)
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same config produced different corpora")
	}
	cfg := smallCfg()
	cfg.Seed = 42
	d, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Train[0].Words, d.Train[0].Words) {
		t.Error("different seeds produced identical first document")
	}
}

func TestGenerateCorpusCategorySkew(t *testing.T) {
	c, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	counts := c.CategoryCounts()
	// earn must dominate, as in ModApte.
	if counts["earn"][0] <= counts["corn"][0] {
		t.Errorf("earn (%d) not larger than corn (%d)", counts["earn"][0], counts["corn"][0])
	}
	for _, cat := range Top10 {
		if counts[cat][0] == 0 || counts[cat][1] == 0 {
			t.Errorf("category %s has empty split: %v", cat, counts[cat])
		}
	}
}

func TestGenerateCorpusMultiLabelStructure(t *testing.T) {
	c, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	wheatAlsoGrain, cornAlsoGrain := true, true
	anyWheat, anyCorn := false, false
	for _, d := range c.Train {
		if d.HasCategory("wheat") {
			anyWheat = true
			wheatAlsoGrain = wheatAlsoGrain && d.HasCategory("grain")
		}
		if d.HasCategory("corn") {
			anyCorn = true
			cornAlsoGrain = cornAlsoGrain && d.HasCategory("grain")
		}
	}
	if !anyWheat || !anyCorn {
		t.Fatal("no wheat/corn documents generated")
	}
	if !wheatAlsoGrain || !cornAlsoGrain {
		t.Error("wheat/corn documents missing grain label")
	}
}

func TestGenerateCorpusVocabularyOverlap(t *testing.T) {
	// money-fx and interest must share substantial vocabulary (the paper
	// attributes ProSys's weakness on these categories to this overlap).
	c, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	vocabOf := func(cat string) map[string]bool {
		m := make(map[string]bool)
		for _, d := range c.TrainFor(cat) {
			if len(d.Categories) > 1 {
				continue // only single-label docs for a clean measure
			}
			for _, w := range d.Words {
				m[w] = true
			}
		}
		return m
	}
	money, interest := vocabOf("money-fx"), vocabOf("interest")
	shared := 0
	for w := range money {
		if interest[w] {
			shared++
		}
	}
	if len(money) == 0 || float64(shared)/float64(len(money)) < 0.3 {
		t.Errorf("money-fx/interest overlap too small: %d shared of %d", shared, len(money))
	}
}

func TestGeneratedWordsAreCleanTokens(t *testing.T) {
	c, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range append(c.Train, c.Test...) {
		if len(d.Words) == 0 {
			t.Fatalf("document %s empty", d.ID)
		}
		for _, w := range d.Words {
			if textproc.IsStopWord(w) {
				t.Fatalf("document %s contains stop word %q", d.ID, w)
			}
			for i := 0; i < len(w); i++ {
				if w[i] < 'a' || w[i] > 'z' {
					t.Fatalf("document %s word %q not clean", d.ID, w)
				}
			}
		}
	}
}

func TestVocabListsAvoidStopWords(t *testing.T) {
	check := func(origin string, words []string) {
		for _, w := range words {
			if textproc.IsStopWord(w) {
				t.Errorf("%s vocabulary contains stop word %q", origin, w)
			}
		}
	}
	check("general", generalVocab)
	for cat, words := range categoryVocab {
		check(cat, words)
	}
	for cat, phrases := range categoryPhrases {
		for _, p := range phrases {
			check(cat+" phrase", p)
		}
	}
}

func TestPhrasesRecurAcrossDocuments(t *testing.T) {
	// The temporal signal: a category's phrase word-runs must appear in
	// many of its documents, in order.
	c, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	phrase := categoryPhrases["earn"][0]
	found := 0
	for _, d := range c.TrainFor("earn") {
		if containsRun(d.Words, phrase) {
			found++
		}
	}
	earnDocs := len(c.TrainFor("earn"))
	if found < earnDocs/4 {
		t.Errorf("phrase %v found in %d/%d earn docs", phrase, found, earnDocs)
	}
}

func containsRun(words, run []string) bool {
	for i := 0; i+len(run) <= len(words); i++ {
		match := true
		for j := range run {
			if words[i+j] != run[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestZipfTableSkew(t *testing.T) {
	tab := newZipfTable([]string{"a", "b", "c", "d", "e", "f", "g", "h"})
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[tab.draw(rng)]++
	}
	if counts["a"] <= counts["h"] {
		t.Errorf("Zipf skew missing: a=%d h=%d", counts["a"], counts["h"])
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 10000 {
		t.Errorf("draws lost: %d", total)
	}
}

func TestSGMLRoundTrip(t *testing.T) {
	orig, err := GenerateCorpus(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderSGML(&b, orig, 7); err != nil {
		t.Fatalf("RenderSGML: %v", err)
	}
	raws, err := ParseSGML(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseSGML: %v", err)
	}
	if len(raws) != len(orig.Train)+len(orig.Test) {
		t.Fatalf("parsed %d docs, want %d", len(raws), len(orig.Train)+len(orig.Test))
	}
	rebuilt := BuildCorpus(raws, Top10, textproc.NewPreprocessor(textproc.Options{}))
	if len(rebuilt.Train) != len(orig.Train) || len(rebuilt.Test) != len(orig.Test) {
		t.Fatalf("rebuilt splits %d/%d, want %d/%d",
			len(rebuilt.Train), len(rebuilt.Test), len(orig.Train), len(orig.Test))
	}
	for i := range orig.Train {
		if !reflect.DeepEqual(rebuilt.Train[i].Words, orig.Train[i].Words) {
			t.Fatalf("train doc %d words changed:\n got %v\nwant %v",
				i, rebuilt.Train[i].Words, orig.Train[i].Words)
		}
		if !reflect.DeepEqual(rebuilt.Train[i].Categories, orig.Train[i].Categories) {
			t.Fatalf("train doc %d labels changed", i)
		}
	}
}

func TestParseSGMLAttributes(t *testing.T) {
	src := `<!DOCTYPE lewis SYSTEM "lewis.dtd">
<REUTERS TOPICS="YES" LEWISSPLIT="TRAIN" CGISPLIT="TRAINING-SET" OLDID="5545" NEWID="17">
<DATE>26-FEB-1987</DATE>
<TOPICS><D>grain</D><D>wheat</D></TOPICS>
<TITLE>GRAIN SHIPS WAITING</TITLE>
<BODY>Wheat cargo loading continued. Reuter &#3;</BODY>
</REUTERS>`
	docs, err := ParseSGML(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("parsed %d docs", len(docs))
	}
	d := docs[0]
	if d.NewID != "17" || d.Split != "TRAIN" || !d.HasTopics {
		t.Errorf("attributes: %+v", d)
	}
	if !reflect.DeepEqual(d.Topics, []string{"grain", "wheat"}) {
		t.Errorf("topics: %v", d.Topics)
	}
	if d.Title != "GRAIN SHIPS WAITING" {
		t.Errorf("title: %q", d.Title)
	}
	if !strings.Contains(d.Body, "Wheat cargo") {
		t.Errorf("body: %q", d.Body)
	}
}

func TestParseSGMLTruncated(t *testing.T) {
	if _, err := ParseSGML(strings.NewReader(`<REUTERS TOPICS="YES" NEWID="1"><BODY>x`)); err == nil {
		t.Error("truncated document accepted")
	}
}

func TestParseSGMLEmptyAndNoDocs(t *testing.T) {
	docs, err := ParseSGML(strings.NewReader("no sgml here"))
	if err != nil || len(docs) != 0 {
		t.Errorf("ParseSGML(plain text) = %v, %v", docs, err)
	}
}

func TestBuildCorpusModApteDiscipline(t *testing.T) {
	pre := textproc.NewPreprocessor(textproc.Options{})
	raws := []RawDocument{
		{NewID: "1", Split: "TRAIN", HasTopics: true, Topics: []string{"earn"}, Body: "profit rose"},
		{NewID: "2", Split: "TEST", HasTopics: true, Topics: []string{"earn"}, Body: "dividend declared"},
		{NewID: "3", Split: "NOT-USED", HasTopics: true, Topics: []string{"earn"}, Body: "skip me"},
		{NewID: "4", Split: "TRAIN", HasTopics: false, Topics: []string{"earn"}, Body: "skip me"},
		{NewID: "5", Split: "TRAIN", HasTopics: true, Topics: []string{"obscure-topic"}, Body: "skip me"},
		{NewID: "6", Split: "TRAIN", HasTopics: true, Topics: []string{"earn", "obscure-topic"}, Body: "keep earn only"},
	}
	c := BuildCorpus(raws, []string{"earn"}, pre)
	if len(c.Train) != 2 || len(c.Test) != 1 {
		t.Fatalf("splits %d/%d, want 2/1", len(c.Train), len(c.Test))
	}
	if !reflect.DeepEqual(c.Train[1].Categories, []string{"earn"}) {
		t.Errorf("off-inventory label kept: %v", c.Train[1].Categories)
	}
}

func TestGenConfigDefaultsApplied(t *testing.T) {
	c, err := GenerateCorpus(GenConfig{Scale: 0.02})
	if err != nil {
		t.Fatalf("zero-value config rejected: %v", err)
	}
	if len(c.Train) == 0 {
		t.Error("no documents generated")
	}
}

func TestScaledCountsTrackModApte(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Scale = 0.1
	c, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := c.CategoryCounts()
	// earn train at scale 0.1 ~ 288 docs (some slack for rounding).
	if got := counts["earn"][0]; got < 250 || got > 330 {
		t.Errorf("earn train count = %d, want ~288", got)
	}
	// grain includes wheat and corn documents.
	if counts["grain"][0] < counts["wheat"][0]+counts["corn"][0] {
		t.Errorf("grain (%d) < wheat (%d) + corn (%d)",
			counts["grain"][0], counts["wheat"][0], counts["corn"][0])
	}
}

func TestMultiLabelMoneyInterest(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Scale = 0.1
	c, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	both := 0
	for _, d := range c.Train {
		if d.HasCategory("money-fx") && d.HasCategory("interest") {
			both++
		}
	}
	if both == 0 {
		t.Error("no money-fx+interest multi-label documents")
	}
}
