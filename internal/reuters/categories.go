package reuters

// Top10 lists the ten most frequent Reuters-21578 topics in the paper's
// Table 4 order.
var Top10 = []string{
	"earn", "acq", "money-fx", "grain", "crude",
	"trade", "interest", "wheat", "ship", "corn",
}

// modApteCounts gives the approximate ModApte train/test document counts
// per top-10 category. The synthetic generator scales these.
var modApteCounts = map[string][2]int{
	"earn":     {2877, 1087},
	"acq":      {1650, 719},
	"money-fx": {538, 179},
	"grain":    {433, 149},
	"crude":    {389, 189},
	"trade":    {369, 117},
	"interest": {347, 131},
	"wheat":    {212, 71},
	"ship":     {197, 89},
	"corn":     {181, 56},
}

// categoryVocab holds the topical vocabulary of each category. Words are
// drawn Zipf-weighted by list position, so the order encodes frequency
// rank. money-fx and interest deliberately share a large block of words —
// the paper attributes ProSys's weakness on these two categories to their
// "heavily overlapped" word co-occurrences.
var categoryVocab = map[string][]string{
	"earn": {
		"profit", "dividend", "shr", "qtr", "net", "revs", "earnings",
		"income", "quarterly", "payout", "loss", "share", "shares",
		"record", "avg", "results", "periods", "prior", "gain",
		"operations", "restated", "audited", "consolidated", "pretax",
		"margins", "fiscal", "halfyear", "payable", "stockholders",
		"splits", "adjusted", "extraordinary", "writeoff", "revenue",
		"book", "cents", "annualized", "interim", "surpassed", "posted",
	},
	"acq": {
		"acquisition", "merger", "takeover", "stake", "tender", "offer",
		"acquire", "bid", "shareholders", "buyout", "subsidiary",
		"purchase", "divestiture", "antitrust", "definitive", "agreement",
		"undisclosed", "terms", "outstanding", "approval", "board",
		"holdings", "unit", "assets", "transaction", "completes",
		"letter", "intent", "suitor", "hostile", "friendly", "poison",
		"pill", "raider", "target", "control", "majority", "minority",
	},
	"money-fx": {
		"currency", "dollar", "yen", "mark", "sterling", "intervention",
		"exchange", "bundesbank", "liquidity", "dealers", "stabilize",
		"volatility", "central", "monetary", "fed", "repurchase",
		"reserves", "deposits", "shortage", "assistance", "forecast",
		"injection", "francs", "bills", "surplus", "tight", "ease",
		// Shared money/interest block (overlap is intentional).
		"rates", "rate", "interbank", "money", "market", "banks",
		"lending", "discount", "prime", "basis", "points", "treasury",
		"maturity", "funds", "credit", "tightening", "easing",
	},
	"interest": {
		"interest", "cut", "raise", "percent", "pct", "borrowing",
		"bank", "yield", "bonds", "securities", "coupon", "bundesbank",
		"effective", "policy", "inflation", "growth", "stimulus",
		"federal", "chairman", "committee", "decision", "unchanged",
		// Shared money/interest block (same words as money-fx).
		"rates", "rate", "interbank", "money", "market", "banks",
		"lending", "discount", "prime", "basis", "points", "treasury",
		"maturity", "funds", "credit", "tightening", "easing",
	},
	"grain": {
		"grain", "tonnes", "crop", "harvest", "export", "agriculture",
		"usda", "shipment", "sowing", "bushels", "cereals", "silo",
		"farmers", "acreage", "yields", "subsidy", "stocks", "carryover",
		"drought", "rainfall", "planting", "soviet", "exporters",
		"enhancement", "commodity", "elevators", "barge", "delivery",
		"winter", "spring", "feed", "output", "estimate", "production",
	},
	"wheat": {
		"wheat", "winterkill", "durum", "milling", "hard", "soft",
		"protein", "kansas", "flour", "bakers", "rust", "bread",
		// wheat documents are grain documents: heavy reuse.
		"grain", "tonnes", "crop", "harvest", "export", "usda",
		"bushels", "farmers", "acreage", "drought", "planting",
		"stocks", "production", "exporters", "shipment",
	},
	"corn": {
		"corn", "maize", "ethanol", "feedgrains", "silking", "kernels",
		"iowa", "illinois", "sweeteners", "starch", "gluten", "hybrid",
		// corn documents are grain documents: heavy reuse.
		"grain", "tonnes", "crop", "harvest", "export", "usda",
		"bushels", "farmers", "acreage", "drought", "planting",
		"stocks", "production", "exporters", "shipment",
	},
	"crude": {
		"crude", "oil", "barrel", "barrels", "opec", "petroleum",
		"refinery", "output", "bpd", "drilling", "wells", "pipeline",
		"energy", "gasoline", "posted", "prices", "saudi", "kuwait",
		"quota", "ceiling", "production", "exploration", "fields",
		"offshore", "rig", "distillate", "heating", "naphtha", "spot",
		"cargoes", "sour", "sweet", "benchmark", "mideast", "texas",
	},
	"trade": {
		"trade", "deficit", "surplus", "tariff", "tariffs", "exports",
		"imports", "sanctions", "protectionism", "gatt", "retaliation",
		"dumping", "quotas", "bilateral", "negotiations", "washington",
		"japan", "semiconductor", "dispute", "barriers", "restraints",
		"pact", "agreement", "practices", "unfair", "legislation",
		"congress", "representative", "minister", "talks", "friction",
	},
	"ship": {
		"ship", "ships", "shipping", "vessel", "vessels", "port",
		"ports", "tanker", "tankers", "cargo", "gulf", "strike",
		"seamen", "dockers", "freight", "tonnage", "hull", "flag",
		"registry", "convoy", "escort", "mined", "attack", "missile",
		"iranian", "insurance", "lloyds", "charter", "berth", "loading",
		"unloading", "congestion", "canal", "strait", "ferry",
	},
}

// categoryPhrases holds short word runs characteristic of each category.
// Phrases give documents the *temporal* co-occurrence structure the
// paper's classifier is designed to exploit: the same ordered word
// sub-sequences recur across documents of a category.
var categoryPhrases = map[string][][]string{
	"earn": {
		{"net", "profit", "rose"},
		{"shr", "cents", "qtr"},
		{"declares", "quarterly", "dividend"},
		{"revs", "mln", "avg"},
		{"net", "loss", "widened"},
	},
	"acq": {
		{"tender", "offer", "shares"},
		{"definitive", "merger", "agreement"},
		{"acquire", "outstanding", "shares"},
		{"undisclosed", "terms", "transaction"},
		{"raises", "stake", "pct"},
	},
	"money-fx": {
		{"central", "bank", "intervention"},
		{"dollar", "fell", "yen"},
		{"money", "market", "shortage"},
		{"bundesbank", "repurchase", "pact"},
	},
	"interest": {
		{"cut", "discount", "rate"},
		{"raises", "prime", "rate"},
		{"interest", "rates", "unchanged"},
		{"basis", "points", "yield"},
	},
	"grain": {
		{"grain", "exports", "tonnes"},
		{"crop", "estimate", "lowered"},
		{"usda", "export", "enhancement"},
		{"harvest", "weather", "drought"},
	},
	"wheat": {
		{"winter", "wheat", "crop"},
		{"wheat", "tonnes", "shipment"},
		{"hard", "wheat", "protein"},
	},
	"corn": {
		{"corn", "crop", "estimate"},
		{"corn", "acreage", "planting"},
		{"maize", "tonnes", "export"},
	},
	"crude": {
		{"crude", "oil", "prices"},
		{"opec", "production", "ceiling"},
		{"mln", "barrels", "day"},
		{"posted", "prices", "barrel"},
	},
	"trade": {
		{"trade", "deficit", "narrowed"},
		{"tariffs", "japanese", "imports"},
		{"trade", "talks", "washington"},
		{"unfair", "trade", "practices"},
	},
	"ship": {
		{"gulf", "shipping", "attack"},
		{"port", "workers", "strike"},
		{"tanker", "cargo", "loading"},
		{"vessels", "gulf", "convoy"},
	},
}

// generalVocab is the topic-neutral business-news vocabulary mixed into
// every document (Zipf-weighted by position).
var generalVocab = []string{
	"company", "year", "market", "government", "week", "month", "prices",
	"statement", "analysts", "sources", "officials", "spokesman",
	"president", "chairman", "executive", "report", "figures", "level",
	"total", "compared", "earlier", "expected", "announced", "according",
	"added", "told", "yesterday", "today", "major", "group",
	"international", "national", "foreign", "domestic", "economic",
	"economy", "financial", "industry", "industrial", "commercial",
	"business", "meeting", "conference", "decision", "effect", "impact",
	"situation", "position", "increase", "decrease", "decline", "fall",
	"rise", "change", "growth", "demand", "supply", "costs", "value",
	"volume", "amount", "number", "time", "period", "end", "start",
	"high", "low", "strong", "weak", "new", "recent", "current", "late",
	"early", "likely", "possible", "continued", "remains", "making",
	"comment", "basis", "terms", "view", "outlook", "pressure",
	"concern", "confidence", "support", "moves", "action", "plans",
	"program", "policy", "measures", "review", "data", "estimates",
}
