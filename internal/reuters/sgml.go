package reuters

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/textproc"
)

// RawDocument is one <REUTERS> element of the Reuters-21578 SGML
// distribution, before pre-processing.
type RawDocument struct {
	// NewID is the NEWID attribute.
	NewID string
	// Split is the LEWISSPLIT attribute: TRAIN, TEST or NOT-USED.
	Split string
	// HasTopics reports the TOPICS="YES" attribute (ModApte requires it).
	HasTopics bool
	// Topics lists the <D> entries of the <TOPICS> element.
	Topics []string
	// Title is the raw <TITLE> text.
	Title string
	// Body is the raw <BODY> text, markup included.
	Body string
}

// ParseSGML reads a Reuters-21578 .sgm stream and returns its documents.
// The parser is a tolerant scanner: unknown elements are skipped, and a
// truncated trailing document yields an error.
func ParseSGML(r io.Reader) ([]RawDocument, error) {
	br := bufio.NewReader(r)
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("reuters: read sgml: %w", err)
	}
	text := string(data)
	var docs []RawDocument
	for {
		start := strings.Index(text, "<REUTERS")
		if start < 0 {
			break
		}
		text = text[start:]
		end := strings.Index(text, "</REUTERS>")
		if end < 0 {
			return docs, fmt.Errorf("reuters: truncated document after %d parsed", len(docs))
		}
		elem := text[:end]
		text = text[end+len("</REUTERS>"):]

		var doc RawDocument
		headEnd := strings.Index(elem, ">")
		if headEnd < 0 {
			return docs, fmt.Errorf("reuters: malformed REUTERS open tag")
		}
		head := elem[:headEnd]
		doc.NewID = attr(head, "NEWID")
		doc.Split = attr(head, "LEWISSPLIT")
		doc.HasTopics = attr(head, "TOPICS") == "YES"
		rest := elem[headEnd+1:]
		if topicsBlock, ok := between(rest, "<TOPICS>", "</TOPICS>"); ok {
			doc.Topics = parseDList(topicsBlock)
		}
		if title, ok := between(rest, "<TITLE>", "</TITLE>"); ok {
			doc.Title = strings.TrimSpace(title)
		}
		if body, ok := between(rest, "<BODY>", "</BODY>"); ok {
			doc.Body = body
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// attr extracts ATTR="value" from an SGML open tag.
func attr(head, name string) string {
	marker := name + "=\""
	i := strings.Index(head, marker)
	if i < 0 {
		return ""
	}
	rest := head[i+len(marker):]
	j := strings.Index(rest, "\"")
	if j < 0 {
		return ""
	}
	return rest[:j]
}

func between(s, open, close string) (string, bool) {
	i := strings.Index(s, open)
	if i < 0 {
		return "", false
	}
	rest := s[i+len(open):]
	j := strings.Index(rest, close)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// parseDList extracts the <D>...</D> entries of a TOPICS block.
// Malformed entries that still contain markup (an unclosed tag shifts
// the </D> match, e.g. <D>></D>) are dropped rather than surfaced as
// bogus topic names; real Reuters topics are bare lowercase words.
func parseDList(block string) []string {
	var out []string
	for {
		entry, ok := between(block, "<D>", "</D>")
		if !ok {
			return out
		}
		if t := strings.TrimSpace(entry); t != "" && !strings.ContainsAny(t, "<>") {
			out = append(out, t)
		}
		block = block[strings.Index(block, "</D>")+len("</D>"):]
	}
}

// BuildCorpus applies the ModApte discipline to parsed documents:
// LEWISSPLIT=TRAIN with TOPICS=YES goes to the training split,
// LEWISSPLIT=TEST with TOPICS=YES to the test split, everything else is
// dropped; only the given categories are kept as labels, and documents
// left with no label are dropped. Bodies run through the pre-processor.
func BuildCorpus(raws []RawDocument, categories []string, pre *textproc.Preprocessor) *corpus.Corpus {
	keep := make(map[string]bool, len(categories))
	for _, c := range categories {
		keep[c] = true
	}
	out := &corpus.Corpus{Categories: append([]string(nil), categories...)}
	for _, raw := range raws {
		if !raw.HasTopics {
			continue
		}
		var labels []string
		for _, t := range raw.Topics {
			if keep[t] {
				labels = append(labels, t)
			}
		}
		if len(labels) == 0 {
			continue
		}
		doc := corpus.Document{
			ID:         "reut-" + raw.NewID,
			Title:      raw.Title,
			Words:      pre.Process(raw.Body),
			Categories: labels,
		}
		switch raw.Split {
		case "TRAIN":
			out.Train = append(out.Train, doc)
		case "TEST":
			out.Test = append(out.Test, doc)
		}
	}
	return out
}

// RenderSGML writes the corpus in Reuters-21578 SGML form, decorating
// each body with markup noise (digits, punctuation, stop words) that the
// pre-processing stage is expected to remove. Round-tripping a corpus
// through RenderSGML -> ParseSGML -> BuildCorpus reproduces the original
// word sequences, which the tests rely on.
func RenderSGML(w io.Writer, c *corpus.Corpus, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	write := func(split string, docs []corpus.Document) error {
		for i := range docs {
			if err := renderDoc(w, &docs[i], split, rng); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("TRAIN", c.Train); err != nil {
		return err
	}
	return write("TEST", c.Test)
}

var sgmlNoise = []string{"the", "of", "and", "to", "in", "said", "12.5", "1987", "3,000", ",", "."}

func renderDoc(w io.Writer, d *corpus.Document, split string, rng *rand.Rand) error {
	var b strings.Builder
	fmt.Fprintf(&b, "<REUTERS TOPICS=\"YES\" LEWISSPLIT=\"%s\" NEWID=\"%s\">\n", split, d.ID)
	b.WriteString("<DATE>26-FEB-1987 15:01:01.79</DATE>\n<TOPICS>")
	for _, t := range d.Categories {
		fmt.Fprintf(&b, "<D>%s</D>", t)
	}
	b.WriteString("</TOPICS>\n")
	fmt.Fprintf(&b, "<TITLE>%s</TITLE>\n<BODY>", d.Title)
	for i, word := range d.Words {
		if i > 0 && rng.Intn(4) == 0 {
			b.WriteString(sgmlNoise[rng.Intn(len(sgmlNoise))])
			b.WriteByte(' ')
		}
		b.WriteString(word)
		b.WriteByte(' ')
	}
	b.WriteString("Reuter &#3;</BODY>\n</REUTERS>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
