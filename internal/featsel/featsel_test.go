package featsel

import (
	"reflect"
	"testing"

	"temporaldoc/internal/corpus"
)

func doc(id, cat string, words ...string) corpus.Document {
	return corpus.Document{ID: id, Words: words, Categories: []string{cat}}
}

func trainSet() []corpus.Document {
	return []corpus.Document{
		doc("1", "earn", "profit", "dividend", "quarter", "profit"),
		doc("2", "earn", "profit", "shares", "quarter"),
		doc("3", "earn", "dividend", "profit"),
		doc("4", "grain", "wheat", "tonnes", "harvest"),
		doc("5", "grain", "wheat", "crop", "exports"),
		doc("6", "grain", "wheat", "tonnes", "quarter"),
	}
}

var cats = []string{"earn", "grain"}

func TestSelectRejectsBadInput(t *testing.T) {
	if _, err := Select(DF, nil, cats, Config{GlobalN: 5}); err == nil {
		t.Error("empty train accepted")
	}
	if _, err := Select(DF, trainSet(), cats, Config{}); err == nil {
		t.Error("DF with zero budget accepted")
	}
	if _, err := Select(IG, trainSet(), nil, Config{GlobalN: 5}); err == nil {
		t.Error("IG without categories accepted")
	}
	if _, err := Select(MI, trainSet(), cats, Config{}); err == nil {
		t.Error("MI with zero budget accepted")
	}
	if _, err := Select(Method("bogus"), trainSet(), cats, Config{GlobalN: 5}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestDFRanksByDocumentFrequency(t *testing.T) {
	sel, err := Select(DF, trainSet(), cats, Config{GlobalN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.IsGlobal() {
		t.Fatal("DF selection not global")
	}
	// profit appears in 3 docs, wheat in 3, quarter in 3 — tie broken
	// alphabetically: profit, quarter, wheat. Top 2 = profit, quarter.
	want := []string{"profit", "quarter", "wheat"}
	sel3, _ := Select(DF, trainSet(), cats, Config{GlobalN: 3})
	if !reflect.DeepEqual(sel3.Global, want) {
		t.Errorf("DF top3 = %v, want %v", sel3.Global, want)
	}
	if len(sel.Global) != 2 {
		t.Errorf("budget not respected: %v", sel.Global)
	}
}

func TestDFBudgetLargerThanVocab(t *testing.T) {
	sel, err := Select(DF, trainSet(), cats, Config{GlobalN: 1000})
	if err != nil {
		t.Fatal(err)
	}
	vocab := corpus.Vocabulary(trainSet())
	if len(sel.Global) != len(vocab) {
		t.Errorf("DF returned %d features, vocab has %d", len(sel.Global), len(vocab))
	}
}

func TestIGPrefersDiscriminativeFeatures(t *testing.T) {
	sel, err := Select(IG, trainSet(), cats, Config{GlobalN: 3})
	if err != nil {
		t.Fatal(err)
	}
	// "profit" (earn-only, 3 docs) and "wheat" (grain-only, 3 docs) are
	// perfectly discriminative; "quarter" straddles both and must rank
	// below them.
	top := map[string]bool{}
	for _, f := range sel.Global {
		top[f] = true
	}
	if !top["profit"] || !top["wheat"] {
		t.Errorf("IG top3 missing discriminative features: %v", sel.Global)
	}
	for i, f := range sel.Global {
		if f == "quarter" && i < 2 {
			t.Errorf("IG ranked straddling feature 'quarter' at %d: %v", i, sel.Global)
		}
	}
}

func TestMIIsPerCategory(t *testing.T) {
	sel, err := Select(MI, trainSet(), cats, Config{PerCategoryN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.IsGlobal() {
		t.Fatal("MI selection global")
	}
	earn := sel.PerCategory["earn"]
	grain := sel.PerCategory["grain"]
	if len(earn) != 2 || len(grain) != 2 {
		t.Fatalf("per-category budgets: earn=%v grain=%v", earn, grain)
	}
	// The most informative feature for each category is its exclusive
	// high-frequency word.
	if earn[0] != "profit" {
		t.Errorf("MI earn top = %v", earn)
	}
	if grain[0] != "wheat" {
		t.Errorf("MI grain top = %v", grain)
	}
}

func TestNounsPerCategoryFrequencyRanked(t *testing.T) {
	sel, err := Select(Nouns, trainSet(), cats, Config{PerCategoryN: 3})
	if err != nil {
		t.Fatal(err)
	}
	grain := sel.PerCategory["grain"]
	if len(grain) == 0 || grain[0] != "wheat" {
		t.Errorf("Nouns grain = %v, want wheat first", grain)
	}
	earn := sel.PerCategory["earn"]
	if len(earn) == 0 || earn[0] != "profit" {
		t.Errorf("Nouns earn = %v, want profit first", earn)
	}
}

func TestKeepForGlobalAndPerCategory(t *testing.T) {
	dfSel, _ := Select(DF, trainSet(), cats, Config{GlobalN: 3})
	keep := dfSel.KeepFor("earn")
	if !keep["profit"] {
		t.Errorf("global KeepFor missing profit: %v", keep)
	}
	if !reflect.DeepEqual(keep, dfSel.KeepFor("grain")) {
		t.Error("global KeepFor differs across categories")
	}
	miSel, _ := Select(MI, trainSet(), cats, Config{PerCategoryN: 1})
	if !miSel.KeepFor("earn")["profit"] {
		t.Errorf("MI KeepFor(earn) = %v", miSel.KeepFor("earn"))
	}
	if miSel.KeepFor("earn")["wheat"] {
		t.Error("MI KeepFor(earn) leaked grain feature")
	}
	if len(miSel.KeepFor("nonexistent")) != 0 {
		t.Error("KeepFor unknown category non-empty")
	}
}

func TestKeepAllUnion(t *testing.T) {
	miSel, _ := Select(MI, trainSet(), cats, Config{PerCategoryN: 1})
	all := miSel.KeepAll()
	if !all["profit"] || !all["wheat"] {
		t.Errorf("KeepAll = %v", all)
	}
	if miSel.Count() != 2 {
		t.Errorf("Count = %d, want 2", miSel.Count())
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	if c := DefaultConfig(DF); c.GlobalN != 1000 {
		t.Errorf("DF default = %+v", c)
	}
	if c := DefaultConfig(IG); c.GlobalN != 1000 {
		t.Errorf("IG default = %+v", c)
	}
	if c := DefaultConfig(MI); c.PerCategoryN != 300 {
		t.Errorf("MI default = %+v", c)
	}
	if c := DefaultConfig(Nouns); c.PerCategoryN != 100 {
		t.Errorf("Nouns default = %+v", c)
	}
}

func TestMIScoreZeroForIndependent(t *testing.T) {
	// Feature present in exactly the class-proportional share of docs:
	// joint = P(f)P(c)N, MI must be ~0.
	if got := miScore(25, 50, 50, 100); got > 1e-12 || got < -1e-12 {
		t.Errorf("independent MI = %v, want 0", got)
	}
}

func TestMIScorePositiveForAssociated(t *testing.T) {
	if got := miScore(50, 50, 50, 100); got <= 0 {
		t.Errorf("perfectly associated MI = %v, want > 0", got)
	}
}

func TestMethodsList(t *testing.T) {
	if got := Methods(); len(got) != 4 {
		t.Errorf("Methods = %v", got)
	}
	if got := AllMethods(); len(got) != 5 || got[4] != CHI {
		t.Errorf("AllMethods = %v", got)
	}
}

func TestCHIPrefersDiscriminativeFeatures(t *testing.T) {
	sel, err := Select(CHI, trainSet(), cats, Config{PerCategoryN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sel.IsGlobal() {
		t.Fatal("CHI selection global")
	}
	if sel.PerCategory["earn"][0] != "profit" {
		t.Errorf("CHI earn = %v", sel.PerCategory["earn"])
	}
	if sel.PerCategory["grain"][0] != "wheat" {
		t.Errorf("CHI grain = %v", sel.PerCategory["grain"])
	}
}

func TestCHIValidation(t *testing.T) {
	if _, err := Select(CHI, trainSet(), cats, Config{}); err == nil {
		t.Error("CHI with zero budget accepted")
	}
	if _, err := Select(CHI, trainSet(), nil, Config{PerCategoryN: 2}); err == nil {
		t.Error("CHI without categories accepted")
	}
}

func TestCHIDefaultConfig(t *testing.T) {
	if c := DefaultConfig(CHI); c.PerCategoryN != 300 {
		t.Errorf("CHI default = %+v", c)
	}
}

func TestMultiLabelDocumentsCountForEachCategory(t *testing.T) {
	train := []corpus.Document{
		{ID: "1", Words: []string{"wheat", "export"}, Categories: []string{"grain", "wheat"}},
		{ID: "2", Words: []string{"profit"}, Categories: []string{"earn"}},
	}
	sel, err := Select(MI, train, []string{"earn", "grain", "wheat"}, Config{PerCategoryN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.PerCategory["grain"][0] != sel.PerCategory["wheat"][0] {
		t.Errorf("multi-label doc should drive both grain and wheat: %v", sel.PerCategory)
	}
}
