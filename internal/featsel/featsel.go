// Package featsel implements the four feature-selection techniques the
// paper evaluates (section 4, Table 1):
//
//   - Document Frequency (DF): top-N features over the whole corpus by
//     the number of training documents containing the feature.
//   - Information Gain (IG): top-N features over the whole corpus by the
//     entropy decrease due to the presence/absence of the feature
//     (Equation 1; Yang & Pedersen).
//   - Mutual Information (MI): top-K features per category by the
//     interdependence between feature and category (Equation 2).
//   - Frequent Nouns: top-K POS-tagged common nouns per category by
//     in-category frequency.
//
// The paper's selected-feature counts (Table 1) are the package defaults:
// DF 1000, IG 1000, MI 300 per category, Nouns 100 per category.
package featsel

import (
	"fmt"
	"math"
	"sort"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/postag"
)

// Method names a feature-selection technique.
type Method string

// The four techniques of the paper, plus CHI (χ² statistic, the other
// strong selector of Yang & Pedersen's comparison) as an extension.
const (
	DF    Method = "df"
	IG    Method = "ig"
	MI    Method = "mi"
	Nouns Method = "nouns"
	CHI   Method = "chi"
)

// Methods lists the paper's techniques in the paper's order.
func Methods() []Method { return []Method{DF, IG, Nouns, MI} }

// Known reports whether m names a supported feature-selection method.
// Persisted-model loaders use it to reject snapshots whose recorded
// method this build cannot reproduce.
func Known(m Method) bool {
	switch m {
	case DF, IG, MI, Nouns, CHI:
		return true
	}
	return false
}

// AllMethods lists every supported technique, extensions included.
func AllMethods() []Method { return []Method{DF, IG, Nouns, MI, CHI} }

// Config bounds the number of selected features.
type Config struct {
	// GlobalN is the corpus-wide feature budget for DF and IG.
	GlobalN int
	// PerCategoryN is the per-category budget for MI and Nouns.
	PerCategoryN int
}

// DefaultConfig returns the paper's Table 1 budgets for the method.
func DefaultConfig(m Method) Config {
	switch m {
	case DF, IG:
		return Config{GlobalN: 1000}
	case MI, CHI:
		return Config{PerCategoryN: 300}
	case Nouns:
		return Config{PerCategoryN: 100}
	default:
		return Config{}
	}
}

// Selection is the outcome of feature selection. Global methods (DF, IG)
// fill Global; per-category methods (MI, Nouns) fill PerCategory. Scores
// holds the ranking score of every selected feature (keyed by
// "category\x00feature" for per-category methods, or feature alone).
type Selection struct {
	Method      Method
	Global      []string
	PerCategory map[string][]string
}

// IsGlobal reports whether the selection is corpus-wide.
func (s *Selection) IsGlobal() bool { return s.PerCategory == nil }

// KeepFor returns the membership set of selected features relevant to
// category cat: the global set for DF/IG, the category's set for MI/Nouns.
func (s *Selection) KeepFor(cat string) map[string]bool {
	if s.IsGlobal() {
		return setOf(s.Global)
	}
	return setOf(s.PerCategory[cat])
}

// KeepAll returns the union of every selected feature.
func (s *Selection) KeepAll() map[string]bool {
	if s.IsGlobal() {
		return setOf(s.Global)
	}
	out := make(map[string]bool)
	for _, feats := range s.PerCategory {
		for _, f := range feats {
			out[f] = true
		}
	}
	return out
}

// Count returns the total number of (category-scoped) selected features:
// len(Global) for global methods, the sum of per-category list lengths
// otherwise.
func (s *Selection) Count() int {
	if s.IsGlobal() {
		return len(s.Global)
	}
	n := 0
	for _, feats := range s.PerCategory {
		n += len(feats)
	}
	return n
}

func setOf(feats []string) map[string]bool {
	m := make(map[string]bool, len(feats))
	for _, f := range feats {
		m[f] = true
	}
	return m
}

// Select runs the requested technique over the training documents.
// categories is the label inventory (needed by IG, MI and Nouns).
func Select(m Method, train []corpus.Document, categories []string, cfg Config) (*Selection, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("featsel: no training documents")
	}
	switch m {
	case DF:
		if cfg.GlobalN <= 0 {
			return nil, fmt.Errorf("featsel: DF requires GlobalN > 0")
		}
		return selectDF(train, cfg.GlobalN), nil
	case IG:
		if cfg.GlobalN <= 0 {
			return nil, fmt.Errorf("featsel: IG requires GlobalN > 0")
		}
		if len(categories) == 0 {
			return nil, fmt.Errorf("featsel: IG requires categories")
		}
		return selectIG(train, categories, cfg.GlobalN), nil
	case MI:
		if cfg.PerCategoryN <= 0 {
			return nil, fmt.Errorf("featsel: MI requires PerCategoryN > 0")
		}
		if len(categories) == 0 {
			return nil, fmt.Errorf("featsel: MI requires categories")
		}
		return selectMI(train, categories, cfg.PerCategoryN), nil
	case Nouns:
		if cfg.PerCategoryN <= 0 {
			return nil, fmt.Errorf("featsel: Nouns requires PerCategoryN > 0")
		}
		if len(categories) == 0 {
			return nil, fmt.Errorf("featsel: Nouns requires categories")
		}
		return selectNouns(train, categories, cfg.PerCategoryN), nil
	case CHI:
		if cfg.PerCategoryN <= 0 {
			return nil, fmt.Errorf("featsel: CHI requires PerCategoryN > 0")
		}
		if len(categories) == 0 {
			return nil, fmt.Errorf("featsel: CHI requires categories")
		}
		return selectCHI(train, categories, cfg.PerCategoryN), nil
	default:
		return nil, fmt.Errorf("featsel: unknown method %q", m)
	}
}

// scored pairs a feature with its ranking score.
type scored struct {
	feat  string
	score float64
}

// topN sorts by descending score (ties by ascending feature name for
// determinism) and returns the first n feature names. The comparator
// orders on exact score values — an epsilon-tolerant comparator would
// break sort transitivity.
func topN(items []scored, n int) []string {
	sort.Slice(items, func(i, j int) bool {
		if items[i].score > items[j].score {
			return true
		}
		if items[i].score < items[j].score {
			return false
		}
		return items[i].feat < items[j].feat
	})
	if n > len(items) {
		n = len(items)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = items[i].feat
	}
	return out
}

// docFreq counts, for each word, the number of documents containing it.
func docFreq(docs []corpus.Document) map[string]int {
	df := make(map[string]int)
	for i := range docs {
		seen := make(map[string]struct{}, len(docs[i].Words))
		for _, w := range docs[i].Words {
			if _, ok := seen[w]; ok {
				continue
			}
			seen[w] = struct{}{}
			df[w]++
		}
	}
	return df
}

// sortedKeys returns m's keys in lexical order. Score slices are built
// by iterating these, not the map, so their construction order is
// stable run to run.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func selectDF(train []corpus.Document, n int) *Selection {
	df := docFreq(train)
	items := make([]scored, 0, len(df))
	for _, f := range sortedKeys(df) {
		items = append(items, scored{f, float64(df[f])})
	}
	return &Selection{Method: DF, Global: topN(items, n)}
}

// jointCounts returns, per feature, the number of documents of each
// category containing the feature, plus per-category document counts.
func jointCounts(train []corpus.Document, categories []string) (featCat map[string][]int, catDocs []int, df map[string]int) {
	catIdx := make(map[string]int, len(categories))
	for i, c := range categories {
		catIdx[c] = i
	}
	featCat = make(map[string][]int)
	catDocs = make([]int, len(categories))
	df = make(map[string]int)
	for i := range train {
		d := &train[i]
		var idxs []int
		for _, c := range d.Categories {
			if j, ok := catIdx[c]; ok {
				idxs = append(idxs, j)
				catDocs[j]++
			}
		}
		seen := make(map[string]struct{}, len(d.Words))
		for _, w := range d.Words {
			if _, ok := seen[w]; ok {
				continue
			}
			seen[w] = struct{}{}
			df[w]++
			row, ok := featCat[w]
			if !ok {
				row = make([]int, len(categories))
				featCat[w] = row
			}
			for _, j := range idxs {
				row[j]++
			}
		}
	}
	return featCat, catDocs, df
}

// selectIG ranks features by Equation 1. Probabilities are estimated
// from document counts; multi-label documents contribute to every one of
// their categories, and P(Cj) is normalised over label assignments so the
// category prior is a distribution.
func selectIG(train []corpus.Document, categories []string, n int) *Selection {
	featCat, catDocs, df := jointCounts(train, categories)
	nDocs := float64(len(train))
	totalAssign := 0.0
	for _, c := range catDocs {
		totalAssign += float64(c)
	}
	if totalAssign == 0 {
		return &Selection{Method: IG, Global: nil}
	}
	// -sum P(Cj) log P(Cj): constant across features; kept for fidelity
	// to Equation 1 (it shifts every score equally).
	var baseEntropy float64
	for _, c := range catDocs {
		p := float64(c) / totalAssign
		if p > 0 {
			baseEntropy -= p * math.Log2(p)
		}
	}
	items := make([]scored, 0, len(featCat))
	for _, f := range sortedKeys(featCat) {
		row := featCat[f]
		pf := float64(df[f]) / nDocs
		pnf := 1 - pf
		// Conditional label distributions given presence/absence.
		var withF, withoutF float64
		for j, c := range catDocs {
			withF += float64(row[j])
			withoutF += float64(c - row[j])
		}
		var condPresent, condAbsent float64
		if withF > 0 {
			for j := range catDocs {
				p := float64(row[j]) / withF
				if p > 0 {
					condPresent += p * math.Log2(p)
				}
			}
		}
		if withoutF > 0 {
			for j, c := range catDocs {
				p := float64(c-row[j]) / withoutF
				if p > 0 {
					condAbsent += p * math.Log2(p)
				}
			}
		}
		ig := baseEntropy + pf*condPresent + pnf*condAbsent
		items = append(items, scored{f, ig})
	}
	return &Selection{Method: IG, Global: topN(items, n)}
}

// selectMI ranks features per category by Equation 2: the expected
// pointwise mutual information over the four (presence, membership)
// cells. Equation 2 is symmetric — a feature perfectly anti-correlated
// with the category scores as high as a perfect indicator — so, since the
// paper selects features that are "informative for category Cj",
// negatively associated features (P(f,Cj) < P(f)P(Cj)) are ranked below
// all positively associated ones by negating their score.
func selectMI(train []corpus.Document, categories []string, n int) *Selection {
	featCat, catDocs, df := jointCounts(train, categories)
	nDocs := float64(len(train))
	per := make(map[string][]string, len(categories))
	for j, cat := range categories {
		nc := float64(catDocs[j])
		items := make([]scored, 0, len(featCat))
		for _, f := range sortedKeys(featCat) {
			row := featCat[f]
			nf := float64(df[f])
			nfc := float64(row[j])
			score := miScore(nfc, nf, nc, nDocs)
			if nfc*nDocs < nf*nc {
				score = -score
			}
			items = append(items, scored{f, score})
		}
		per[cat] = topN(items, n)
	}
	return &Selection{Method: MI, PerCategory: per}
}

// miScore computes Equation 2 for one (feature, category) pair from
// document counts: nfc docs with both, nf docs with the feature, nc docs
// in the category, n total docs.
func miScore(nfc, nf, nc, n float64) float64 {
	cell := func(joint, pa, pb float64) float64 {
		if joint <= 0 || pa <= 0 || pb <= 0 {
			return 0
		}
		pj := joint / n
		return pj * math.Log2(pj/((pa/n)*(pb/n)))
	}
	var mi float64
	mi += cell(nfc, nf, nc)             // f present, in class
	mi += cell(nf-nfc, nf, n-nc)        // f present, out class
	mi += cell(nc-nfc, n-nf, nc)        // f absent, in class
	mi += cell(n-nf-nc+nfc, n-nf, n-nc) // f absent, out class
	return mi
}

// selectCHI ranks features per category by the χ² statistic of the
// 2×2 (presence, membership) contingency table (Yang & Pedersen). Like
// MI, negatively associated features rank below positive indicators.
func selectCHI(train []corpus.Document, categories []string, n int) *Selection {
	featCat, catDocs, df := jointCounts(train, categories)
	nDocs := float64(len(train))
	per := make(map[string][]string, len(categories))
	for j, cat := range categories {
		nc := float64(catDocs[j])
		items := make([]scored, 0, len(featCat))
		for _, f := range sortedKeys(featCat) {
			row := featCat[f]
			nf := float64(df[f])
			a := float64(row[j]) // f present, in class
			b := nf - a          // f present, out class
			c := nc - a          // f absent, in class
			d := nDocs - nf - c  // f absent, out class
			den := (a + c) * (b + d) * (a + b) * (c + d)
			var chi float64
			if den > 0 {
				diff := a*d - c*b
				chi = nDocs * diff * diff / den
				if a*nDocs < nf*nc {
					chi = -chi
				}
			}
			items = append(items, scored{f, chi})
		}
		per[cat] = topN(items, n)
	}
	return &Selection{Method: CHI, PerCategory: per}
}

// selectNouns ranks, per category, the common nouns (NN/NNS by the Brill
// tagger) of that category's documents by frequency.
func selectNouns(train []corpus.Document, categories []string, n int) *Selection {
	tagger := postag.New()
	per := make(map[string][]string, len(categories))
	for _, cat := range categories {
		freq := make(map[string]int)
		for i := range train {
			if !train[i].HasCategory(cat) {
				continue
			}
			for _, noun := range tagger.Nouns(train[i].Words) {
				freq[noun]++
			}
		}
		items := make([]scored, 0, len(freq))
		for _, f := range sortedKeys(freq) {
			items = append(items, scored{f, float64(freq[f])})
		}
		per[cat] = topN(items, n)
	}
	return &Selection{Method: Nouns, PerCategory: per}
}
