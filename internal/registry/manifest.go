// Package registry is the multi-tenant model store behind `tdc serve`:
// a file-backed, versioned catalog of persisted model snapshots plus an
// LRU cache of resident (loaded) models with single-flight loading.
//
// On-disk layout, one directory per published version:
//
//	<root>/<model>/<version>/snapshot.bin    the core.Model.Save bytes
//	<root>/<model>/<version>/manifest.json   identity + integrity record
//
// Three invariants hold the layout together:
//
//   - Atomic publish. A version is written into a dot-prefixed temp
//     directory next to its destination and renamed into place, so a
//     scan never observes a half-written version: either the rename
//     happened and both files are complete, or the directory name
//     starts with "." and the scan ignores it. Published versions are
//     immutable — republishing an existing (model, version) fails.
//   - Skipped, never fatal. A corrupt manifest, a missing or
//     size-mismatched snapshot.bin, or a crashed publish's leftover
//     temp directory makes that one version invisible (counted in
//     registry.scan.skipped / registry.scan.tempdirs); the rest of the
//     catalog keeps serving.
//   - Pin-once serving. Acquire hands out immutable *Snapshot values;
//     eviction from the resident LRU only drops the registry's own
//     reference, so a request that pinned a snapshot keeps a fully
//     valid model for its whole lifetime — evicted-while-serving is
//     impossible by construction.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
)

const (
	// manifestName and snapshotName are the two files of a published
	// version directory.
	manifestName = "manifest.json"
	snapshotName = "snapshot.bin"

	// maxNameLen bounds model and version names; the character set below
	// keeps them safe as single path segments on every platform.
	maxNameLen = 64

	// maxManifestBytes bounds how much of a manifest.json the decoder
	// will read — a manifest is a few hundred bytes, so anything bigger
	// is garbage (or hostile) and must not be slurped into memory.
	maxManifestBytes = 64 << 10

	// tempPrefix marks in-progress publish directories. Scans skip every
	// dot-prefixed entry, so the prefix only has to start with ".".
	tempPrefix = ".tmp-"
)

// Manifest is the identity record published next to every snapshot.
// Model and Version duplicate the directory names on purpose: a
// manifest that disagrees with where it sits was copied or tampered
// with, and the scan skips it.
type Manifest struct {
	Model   string `json:"model"`
	Version string `json:"version"`
	// SHA256 is the hex digest of snapshot.bin's exact bytes; Bytes its
	// size. The size is checked at scan time (one stat), the digest at
	// load time (core.LoadFile hashes what it read anyway).
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
	// FeatureMethod mirrors the snapshot header; the loaded model must
	// agree or the load fails.
	FeatureMethod string `json:"feature_method"`
	// Kernel, when set, overrides the registry's default encode kernel
	// for this version (runtime-only, like serve's -kernel).
	Kernel string `json:"kernel,omitempty"`
	// CreatedAt orders versions: the latest version of a model is the
	// one with the greatest (CreatedAt, Version) pair.
	CreatedAt time.Time `json:"created_at"`
}

// ValidateName reports whether s can be a model or version name: 1..64
// characters from [a-zA-Z0-9._-], not starting with a dot. The charset
// excludes path separators and the leading-dot rule excludes ".", ".."
// and collisions with publish temp directories, so a valid name is
// always a safe single path segment — path traversal is rejected here,
// before any filesystem call sees the name.
func ValidateName(s string) error {
	if s == "" {
		return errors.New("registry: empty name")
	}
	if len(s) > maxNameLen {
		return fmt.Errorf("registry: name longer than %d bytes", maxNameLen)
	}
	if s[0] == '.' {
		return fmt.Errorf("registry: name %q starts with a dot", s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("registry: name %q contains %q (allowed: [a-zA-Z0-9._-])", s, c)
		}
	}
	return nil
}

// Validate checks a decoded manifest's internal consistency. It does
// not touch the filesystem — callers additionally check the manifest
// agrees with the directory it sits in and the snapshot beside it.
func (m *Manifest) Validate() error {
	if err := ValidateName(m.Model); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	if err := ValidateName(m.Version); err != nil {
		return fmt.Errorf("version: %w", err)
	}
	if len(m.SHA256) != 64 {
		return fmt.Errorf("registry: sha256 %q is not 64 hex characters", m.SHA256)
	}
	for i := 0; i < len(m.SHA256); i++ {
		c := m.SHA256[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("registry: sha256 %q is not lowercase hex", m.SHA256)
		}
	}
	if m.Bytes <= 0 {
		return fmt.Errorf("registry: snapshot size %d must be positive", m.Bytes)
	}
	if !featsel.Known(featsel.Method(m.FeatureMethod)) {
		return fmt.Errorf("registry: unknown feature method %q", m.FeatureMethod)
	}
	if _, err := hsom.ParseKernel(m.Kernel); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	if m.CreatedAt.IsZero() {
		return errors.New("registry: created_at is zero")
	}
	return nil
}

// DecodeManifest reads, decodes and validates one manifest. It is the
// registry's untrusted-input surface (FuzzManifest): it must never
// panic and never accept a manifest whose names could escape the
// registry root. Reads are capped at maxManifestBytes and unknown
// fields are rejected — the registry owns both the writer and the
// reader of this format.
func DecodeManifest(r io.Reader) (Manifest, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxManifestBytes))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("registry: decode manifest: %w", err)
	}
	if dec.More() {
		return Manifest{}, errors.New("registry: trailing data after manifest object")
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}
